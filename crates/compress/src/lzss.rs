//! LZ77/LZSS codec — the in-tree substitution for zlib's deflate.
//!
//! Greedy parsing with a hash-chain match finder over 4-byte prefixes, a
//! 64 KiB sliding window, and a varint token stream:
//!
//! * literal run: `varint(count << 1)` followed by `count` raw bytes;
//! * match:       `varint(len << 1 | 1)` followed by `varint(distance)`.
//!
//! Matches may overlap their own output (`distance < len`), which is what
//! lets a run of identical bytes compress to a single token — the dominant
//! pattern in bitmap files. Compared to deflate the codec lacks the Huffman
//! entropy stage, so absolute ratios are a modest constant worse; the
//! redundancy it exploits (runs and repeated byte patterns) is the same, which
//! is all the paper's Section 9 conclusions rest on (see DESIGN.md §5).

use crate::lz77::{self, Token};
use crate::{varint, Codec, DecodeError};

/// LZSS codec. `max_chain` bounds the match-finder effort (default 64,
/// a zlib-level-6-like compromise).
#[derive(Debug, Clone, Copy)]
pub struct Lzss {
    max_chain: usize,
}

impl Default for Lzss {
    fn default() -> Self {
        Self { max_chain: 64 }
    }
}

impl Lzss {
    /// Creates a codec with a custom hash-chain search depth.
    ///
    /// Larger values find longer matches at higher CPU cost; `1` approximates
    /// the fastest deflate level.
    pub fn with_max_chain(max_chain: usize) -> Self {
        Self {
            max_chain: max_chain.max(1),
        }
    }
}

impl Codec for Lzss {
    fn name(&self) -> &'static str {
        "lzss"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + input.len() / 16);
        let mut lits: Vec<u8> = Vec::new();
        for token in lz77::parse(input, self.max_chain) {
            match token {
                Token::Literal(b) => lits.push(b),
                Token::Match { len, dist } => {
                    flush_literals(&mut out, &lits);
                    lits.clear();
                    varint::write(&mut out, (u64::from(len) << 1) | 1);
                    varint::write(&mut out, u64::from(dist));
                }
            }
        }
        flush_literals(&mut out, &lits);
        out
    }

    fn decompress(&self, input: &[u8], original_len: usize) -> Result<Vec<u8>, DecodeError> {
        let mut out = Vec::with_capacity(original_len);
        let mut pos = 0usize;
        while pos < input.len() {
            let token = varint::read(input, &mut pos)?;
            if token & 1 == 0 {
                // literal run
                let count = (token >> 1) as usize;
                let end = pos
                    .checked_add(count)
                    .ok_or_else(|| DecodeError("lzss: literal overflow".into()))?;
                if end > input.len() {
                    return Err(DecodeError("lzss: truncated literal run".into()));
                }
                out.extend_from_slice(&input[pos..end]);
                pos = end;
            } else {
                let len = (token >> 1) as usize;
                let dist = varint::read(input, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DecodeError(format!(
                        "lzss: bad distance {dist} at output length {}",
                        out.len()
                    )));
                }
                // Chunked copy: each `extend_from_within` chunk is at most
                // `dist` long, so overlapping matches replicate correctly.
                let mut remaining = len;
                while remaining > 0 {
                    let start = out.len() - dist;
                    let take = remaining.min(dist);
                    out.extend_from_within(start..start + take);
                    remaining -= take;
                }
            }
            if out.len() > original_len {
                return Err(DecodeError("lzss: output longer than declared".into()));
            }
        }
        if out.len() != original_len {
            return Err(DecodeError(format!(
                "lzss: produced {} bytes, expected {original_len}",
                out.len()
            )));
        }
        Ok(out)
    }
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    if !lits.is_empty() {
        varint::write(out, (lits.len() as u64) << 1);
        out.extend_from_slice(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let codec = Lzss::default();
        let c = codec.compress(data);
        assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[]);
        roundtrip(&[42]);
        roundtrip(&[1, 2, 3]);
    }

    #[test]
    fn long_zero_run_collapses() {
        let data = vec![0u8; 1 << 20];
        let size = roundtrip(&data);
        // match length caps at 64 KiB, so ~16 match tokens expected
        assert!(size < 128, "1 MiB of zeros compressed to {size} bytes");
    }

    #[test]
    fn repeated_pattern_compresses() {
        let pattern = b"bitmap-index-";
        let data: Vec<u8> = pattern.iter().cycle().take(50_000).copied().collect();
        let size = roundtrip(&data);
        assert!(size < data.len() / 50, "got {size}");
    }

    #[test]
    fn incompressible_random_survives() {
        // xorshift pseudo-random bytes: round-trips, expands only slightly.
        let mut state = 0x1234_5678_9abc_def0u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xff) as u8
            })
            .collect();
        let size = roundtrip(&data);
        assert!(size <= data.len() + data.len() / 64 + 16);
    }

    #[test]
    fn overlapping_match_distance_one() {
        // aaaa... must decode via overlapping copy.
        let data = vec![b'a'; 1000];
        let c = Lzss::default().compress(&data);
        assert_eq!(Lzss::default().decompress(&c, 1000).unwrap(), data);
    }

    #[test]
    fn far_back_reference_within_window() {
        let mut data = vec![0u8; 40_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let copy = data.clone();
        data.extend_from_slice(&copy); // second half matches 40 kB back
        let size = roundtrip(&data);
        assert!(size < data.len() / 2 + 1024);
    }

    #[test]
    fn rejects_bad_distance() {
        let mut buf = Vec::new();
        varint::write(&mut buf, (5u64 << 1) | 1); // match len 5
        varint::write(&mut buf, 3); // distance 3 but output is empty
        assert!(Lzss::default().decompress(&buf, 5).is_err());
    }

    #[test]
    fn rejects_wrong_declared_length() {
        let data = vec![9u8; 100];
        let c = Lzss::default().compress(&data);
        assert!(Lzss::default().decompress(&c, 99).is_err());
        assert!(Lzss::default().decompress(&c, 101).is_err());
    }

    #[test]
    fn max_chain_levels_agree() {
        let data: Vec<u8> = (0..30_000u32).map(|i| ((i / 100) % 256) as u8).collect();
        for chain in [1, 8, 256] {
            let codec = Lzss::with_max_chain(chain);
            let c = codec.compress(&data);
            assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
        }
    }
}
