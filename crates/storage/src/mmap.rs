//! Mapped segment reads: a pinned, share-on-read region cache that serves
//! slot representations as zero-copy views ([`MappedStore`]), gated by
//! `BINDEX_MMAP=1`.
//!
//! The real thing — `mmap(2)` plus page-cache-backed `&[u8]` views — is
//! off the table here: every crate is `#![forbid(unsafe_code)]` and
//! std-only, and safe Rust cannot express a file-backed mapping. What
//! this module preserves from the mmap design is the part the cold path
//! actually pays for: after the first (checksummed, fallible,
//! fault-injectable) load of a slot, every subsequent read of that slot
//! is an `Arc` clone of the resident region — no buffer-pool admission,
//! no eviction accounting, no byte copy — and segmented execution's
//! [`SegmentView`](bindex_bitvec::SegmentView)s borrow straight from the
//! pinned words, exactly as they would from a mapped page. What it does
//! *not* emulate is memory pressure: mapped regions are pinned until
//! [`MappedStore::clear`], where true maps would be reclaimable by the
//! OS. DESIGN.md §15 spells out this tradeoff.
//!
//! Failure semantics are unchanged from the pooled path: the first load
//! goes through the caller's fallible read (frame checksum verified,
//! faults injected under test, typed errors propagated), and nothing is
//! pinned unless that load succeeds. Repair must call
//! [`MappedStore::clear`] — [`SharedIndexReader::repair_index`]
//! (crate::SharedIndexReader) does — so no view can outlive the bytes it
//! was verified against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bindex_compress::Repr;

use crate::error::StorageError;

/// Environment variable enabling the mapped read path: set to `1` to
/// route slot fetches through a [`MappedStore`].
pub const MMAP_ENV: &str = "BINDEX_MMAP";

/// `true` when `BINDEX_MMAP=1` is set in the environment.
pub fn mmap_enabled() -> bool {
    matches!(std::env::var(MMAP_ENV), Ok(v) if v == "1")
}

/// Counters describing a [`MappedStore`]'s behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmapStats {
    /// Slots mapped (first-touch loads that pinned a region).
    pub maps: u64,
    /// Reads served from an already-mapped region (zero-copy).
    pub hits: u64,
    /// Heap bytes pinned by resident regions.
    pub resident_bytes: u64,
}

/// A pinned region cache over slot representations, keyed by
/// `(component, slot)`.
///
/// Each mapped slot is held in its stored execution representation — a
/// dense literal for v2/v3-literal slots, WAH for compressed ones — and
/// served by `Arc` clone, so readers share one resident copy and the
/// executor's segment views are zero-copy over it.
#[derive(Debug, Default)]
pub struct MappedStore {
    regions: Mutex<HashMap<(usize, usize), Repr>>,
    maps: AtomicU64,
    hits: AtomicU64,
    resident_bytes: AtomicU64,
}

impl MappedStore {
    /// An empty mapped store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the mapped representation of `key`, loading (and pinning)
    /// it through `load` on first touch. Concurrent first touches may
    /// load twice; the first insert wins, so all readers end up sharing
    /// one region. A failed load pins nothing and the typed error
    /// propagates to the caller's recovery path.
    pub fn get_or_map<F>(&self, key: (usize, usize), load: F) -> Result<Repr, StorageError>
    where
        F: FnOnce() -> Result<Repr, StorageError>,
    {
        if let Some(repr) = self.regions.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(repr.clone());
        }
        // Load outside the lock: one slow checksum-verified read must not
        // stall readers of other, already-mapped slots.
        let loaded = load()?;
        let mut regions = self.regions.lock().unwrap();
        if let Some(existing) = regions.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(existing.clone());
        }
        self.maps.fetch_add(1, Ordering::Relaxed);
        self.resident_bytes
            .fetch_add(loaded.heap_bytes() as u64, Ordering::Relaxed);
        regions.insert(key, loaded.clone());
        Ok(loaded)
    }

    /// Unpins every region. Must be called whenever the underlying store
    /// is mutated (repair, compaction), so no stale view survives a
    /// rewrite.
    pub fn clear(&self) {
        self.regions.lock().unwrap().clear();
        self.resident_bytes.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the map/hit/residency counters.
    pub fn stats(&self) -> MmapStats {
        MmapStats {
            maps: self.maps.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bindex_bitvec::BitVec;

    fn sample_repr() -> Repr {
        Repr::literal(BitVec::from_fn(512, |i| i.is_multiple_of(3)))
    }

    #[test]
    fn first_touch_maps_then_hits_share_one_region() {
        let store = MappedStore::new();
        let mut loads = 0;
        let a = store
            .get_or_map((1, 0), || {
                loads += 1;
                Ok(sample_repr())
            })
            .unwrap();
        let b = store
            .get_or_map((1, 0), || {
                loads += 1;
                Ok(sample_repr())
            })
            .unwrap();
        assert_eq!(loads, 1, "second read must not reload");
        match (&a, &b) {
            (Repr::Literal(x), Repr::Literal(y)) => assert!(std::sync::Arc::ptr_eq(x, y)),
            other => panic!("expected shared literals, got {other:?}"),
        }
        let stats = store.stats();
        assert_eq!((stats.maps, stats.hits), (1, 1));
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn failed_loads_pin_nothing() {
        let store = MappedStore::new();
        let err = store
            .get_or_map((1, 0), || {
                Err(StorageError::corrupt("c1_b0.bmp", "injected"))
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
        assert_eq!(store.stats().maps, 0);
        // A later good load maps normally.
        assert!(store.get_or_map((1, 0), || Ok(sample_repr())).is_ok());
        assert_eq!(store.stats().maps, 1);
    }

    #[test]
    fn clear_unpins_everything() {
        let store = MappedStore::new();
        store.get_or_map((1, 0), || Ok(sample_repr())).unwrap();
        store.clear();
        assert_eq!(store.stats().resident_bytes, 0);
        let mut reloaded = false;
        store
            .get_or_map((1, 0), || {
                reloaded = true;
                Ok(sample_repr())
            })
            .unwrap();
        assert!(reloaded, "cleared regions must reload");
    }

    #[test]
    fn env_gate_parses_strictly() {
        // Only the literal "1" enables the path; the test must not
        // mutate the process environment, so only the unset case is
        // asserted directly.
        assert!(!mmap_enabled() || std::env::var(MMAP_ENV).as_deref() == Ok("1"));
    }
}
