//! The optimal-index set `S` (Pareto frontier) and the gradient-based knee
//! definition of Section 7.
//!
//! `S` is the maximal subset of all (tight) indexes such that no member is
//! beaten in both space and time by another index. For interior frontier
//! points `I_j`, the left and right gradients are
//!
//! ```text
//! LG_j = (Time(I_{j−1}) − Time(I_j)) / (Space(I_j) − Space(I_{j−1})) · F
//! RG_j = (Time(I_j) − Time(I_{j+1})) / (Space(I_{j+1}) − Space(I_j)) · F
//! ```
//!
//! with normalizing factor `F = Space(I_p) / Time(I_1)`. The **knee** is
//! the point with `LG_j > 1`, `RG_j < 1` maximizing `LG_j / RG_j` — the
//! definition the closed-form Theorem 7.1 characterization is validated
//! against.

use crate::base::{tight_bases, Base};
use crate::cost::{time_equality_paper, time_paper, time_range_paper};
use crate::encoding::Encoding;

use super::range_space;

/// One index in a space–time tradeoff graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The index base (arranged time-optimally).
    pub base: Base,
    /// `Space(I)` in bitmaps.
    pub space: u64,
    /// `Time(I)` in expected scans (closed form).
    pub time: f64,
}

/// Evaluates every tight base for cardinality `c` under `encoding`,
/// up to `max_components` components.
pub fn all_points(c: u32, encoding: Encoding, max_components: usize) -> Vec<DesignPoint> {
    tight_bases(c, max_components)
        .into_iter()
        .map(|base| point(base, encoding))
        .collect()
}

/// Space and time of one base under an encoding.
pub fn point(base: Base, encoding: Encoding) -> DesignPoint {
    let (space, time) = match encoding {
        Encoding::Range => (range_space(&base), time_range_paper(&base)),
        Encoding::Equality => {
            let space = (1..=base.n_components())
                .map(|i| u64::from(Encoding::Equality.stored_bitmaps(base.component(i))))
                .sum();
            (space, time_equality_paper(&base))
        }
        Encoding::Interval => {
            let spec = crate::encoding::IndexSpec::new(base.clone(), Encoding::Interval);
            (spec.stored_bitmaps(), time_paper(&spec))
        }
    };
    DesignPoint { base, space, time }
}

/// The optimal-index set `S`: points not dominated in both space and time,
/// sorted by increasing space (hence strictly decreasing time). Among
/// equal-space points only the fastest is kept.
pub fn pareto(mut points: Vec<DesignPoint>) -> Vec<DesignPoint> {
    points.sort_by(|a, b| {
        a.space
            .cmp(&b.space)
            .then(a.time.partial_cmp(&b.time).expect("finite times"))
    });
    let mut out: Vec<DesignPoint> = Vec::new();
    for p in points {
        if let Some(last) = out.last() {
            if last.space == p.space || p.time >= last.time - 1e-12 {
                continue; // dominated (or tied) by the previous point
            }
        }
        out.push(p);
    }
    out
}

/// The knee by the gradient definition, over a Pareto frontier sorted by
/// increasing space. Returns `None` for frontiers with fewer than 3 points
/// (no interior point exists).
pub fn knee_by_definition(frontier: &[DesignPoint]) -> Option<&DesignPoint> {
    let p = frontier.len();
    if p < 3 {
        return None;
    }
    let f = frontier[p - 1].space as f64 / frontier[0].time;
    let mut best: Option<(f64, usize)> = None;
    for j in 1..p - 1 {
        let lg = (frontier[j - 1].time - frontier[j].time)
            / (frontier[j].space - frontier[j - 1].space) as f64
            * f;
        let rg = (frontier[j].time - frontier[j + 1].time)
            / (frontier[j + 1].space - frontier[j].space) as f64
            * f;
        if lg > 1.0 && rg < 1.0 {
            let ratio = lg / rg;
            if best.is_none_or(|(b, _)| ratio > b) {
                best = Some((ratio, j));
            }
        }
    }
    best.map(|(_, j)| &frontier[j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::knee::knee;

    #[test]
    fn pareto_is_strictly_improving() {
        let pts = all_points(100, Encoding::Range, usize::MAX);
        let front = pareto(pts);
        assert!(front.len() >= 3);
        for w in front.windows(2) {
            assert!(w[0].space < w[1].space);
            assert!(w[0].time > w[1].time);
        }
    }

    #[test]
    fn frontier_endpoints_are_the_optima() {
        let front = pareto(all_points(1000, Encoding::Range, usize::MAX));
        // Space end: all-2 index (10 bitmaps). Time end: <1000>.
        assert_eq!(front.first().unwrap().space, 10);
        assert_eq!(front.last().unwrap().base.to_msb_vec(), vec![1000]);
        assert_eq!(front.last().unwrap().space, 999);
    }

    #[test]
    fn gradient_knee_matches_theorem71() {
        // The paper: "both knee indexes match exactly for all the cases
        // that we compared."
        for c in [100u32, 500, 1000, 2406] {
            let front = pareto(all_points(c, Encoding::Range, usize::MAX));
            let by_def = knee_by_definition(&front).expect("interior point");
            let closed = knee(c).unwrap();
            assert_eq!(
                by_def.base.to_msb_vec(),
                closed.to_msb_vec(),
                "C={c}: definition {} vs closed form {}",
                by_def.base,
                closed
            );
        }
    }

    #[test]
    fn degenerate_frontier_has_no_knee() {
        let front = pareto(all_points(4, Encoding::Range, usize::MAX));
        // C=4: tight bases {4}, {2,2} -> 2 points -> no interior knee.
        assert!(knee_by_definition(&front).is_none());
    }
}
