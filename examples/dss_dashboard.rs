//! A decision-support scenario in the spirit of the paper's introduction:
//! complex ad-hoc queries with conjunctive selection predicates over a
//! TPC-D-like fact table, answered purely by ANDing bitmap foundsets
//! (plan P3), with the byte-cost comparison against RID-list indexes.
//!
//! ```sh
//! cargo run --release -p bindex --example dss_dashboard
//! ```

use bindex::core::design::knee::knee;
use bindex::core::eval::{evaluate, Algorithm};
use bindex::relation::{gen, tpcd};
use bindex::{BitmapIndex, Encoding, IndexSpec, Op, SelectionQuery};

struct IndexedAttribute {
    name: &'static str,
    index: BitmapIndex,
}

impl IndexedAttribute {
    fn build(name: &'static str, column: &bindex::Column) -> Self {
        // Knee index per attribute: good time at modest space.
        let spec = IndexSpec::new(knee(column.cardinality()).unwrap(), Encoding::Range);
        let index = BitmapIndex::build(column, spec).unwrap();
        println!(
            "  indexed {name}: C = {}, base {} ({} bitmaps)",
            column.cardinality(),
            index.spec().base,
            index.stored_bitmaps()
        );
        Self { name, index }
    }

    fn select(&self, op: Op, v: u32) -> (bindex::BitVec, usize) {
        let (found, stats) = evaluate(
            &mut self.index.source(),
            SelectionQuery::new(op, v),
            Algorithm::Auto,
        )
        .unwrap();
        (found, stats.scans)
    }
}

fn main() {
    // A 150k-row "orders" fact table with three indexed dimensions.
    let scale = 0.02;
    let quantity = tpcd::lineitem_quantity(scale, 1); // C = 50
    let n = quantity.len();
    let order_day = gen::uniform(n, tpcd::ORDERDATE_CARDINALITY, 2); // C = 2406
    let priority = gen::zipf(n, 5, 0.8, 3); // skewed, C = 5

    println!("fact table: {n} rows");
    let attrs = [
        IndexedAttribute::build("quantity", &quantity),
        IndexedAttribute::build("order_day", &order_day),
        IndexedAttribute::build("priority", &priority),
    ];
    let [qty, day, prio] = attrs;

    // Dashboard query: "orders of priority <= 1 with quantity > 40 placed
    // in the last ~20% of the date range" — three predicates, one AND per
    // pair of foundsets.
    println!("\nQ1: priority <= 1 AND quantity > 40 AND order_day >= 1925");
    let (p, s1) = prio.select(Op::Le, 1);
    let (q, s2) = qty.select(Op::Gt, 40);
    let (d, s3) = day.select(Op::Ge, 1925);
    let found = p.clone() & &q & &d;
    let hits = found.count_ones();
    println!(
        "  {hits} rows qualify ({:.2}%), {} bitmap scans total",
        100.0 * hits as f64 / n as f64,
        s1 + s2 + s3
    );

    // Plan comparison from the paper's introduction, in bytes read:
    // bitmaps scanned vs 4-byte-RID lists merged.
    let bitmap_bytes = (s1 + s2 + s3) * n.div_ceil(8);
    let rid_bytes: usize = [&p, &q, &d].iter().map(|f| 4 * f.count_ones()).sum();
    println!(
        "  plan P3 bytes: bitmaps {} KB vs RID-lists {} KB -> {}",
        bitmap_bytes / 1024,
        rid_bytes / 1024,
        if bitmap_bytes < rid_bytes {
            "bitmaps win"
        } else {
            "RID-lists win"
        }
    );

    // A highly selective point query — the regime where RID-lists win.
    println!("\nQ2: quantity = 7 AND priority = 4 (high selectivity factor)");
    let (q2, t1) = qty.select(Op::Eq, 7);
    let (p2, t2) = prio.select(Op::Eq, 4);
    let found2 = q2.clone() & &p2;
    let bitmap_bytes2 = (t1 + t2) * n.div_ceil(8);
    let rid_bytes2 = 4 * (q2.count_ones() + p2.count_ones());
    println!(
        "  {} rows; bitmaps {} KB vs RID-lists {} KB -> {}",
        found2.count_ones(),
        bitmap_bytes2 / 1024,
        rid_bytes2 / 1024,
        if bitmap_bytes2 < rid_bytes2 {
            "bitmaps win"
        } else {
            "RID-lists win"
        }
    );

    // Group-by style breakdown using the equality-encoded Value-List
    // index on the low-cardinality attribute.
    println!("\nQ3: count(*) group by priority, via the priority index");
    for v in 0..5 {
        let (f, _) = prio.select(Op::Eq, v);
        println!("  priority {v}: {} orders", f.count_ones());
    }
    let _ = (qty.name, day.name, prio.name);
}
