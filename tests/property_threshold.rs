//! Property tests for threshold (k-of-N) queries: over seeded random
//! bases, columns, and predicate sets, every layout configuration of
//! {v3, v4} × {pruning on/off} × {mmap on/off} must produce foundsets
//! bit-identical to the per-row reference (`ThresholdQuery::matches`
//! over the column values) — and identical `EvalStats`, including the
//! `threshold_combines` charge, once the counters pruning is *allowed*
//! to move are set aside — for every recovery policy. The CSA kernel
//! tiers must agree bit for bit with each other and with the per-row
//! popcount definition; a delta overlay must make a threshold exactly
//! the symmetric function of its predicates' overlaid foundsets; a
//! corrupted store may fail a threshold but never answer it wrongly;
//! and malformed thresholds are typed errors on every storage path.
//!
//! `BINDEX_CHAOS_SEED` pins one seed (the chaos-smoke CI knob); unset, a
//! default matrix runs. CI's kernel matrix additionally runs this binary
//! under both `BINDEX_KERNEL` tiers, exercising default dispatch; the
//! in-process tier comparisons below pin tiers through the `*_with`
//! entry points and never touch the process-global dispatch.

use std::sync::Arc;

use bindex::bitvec::kernels;
use bindex::compress::CodecKind;
use bindex::core::eval::{
    evaluate_in, evaluate_threshold_in, evaluate_threshold_segmented_in, Algorithm,
};
use bindex::core::{Error, EvalStats, ExecContext};
use bindex::relation::query::{Op, SelectionQuery, ThresholdQuery};
use bindex::relation::{Column, Rng};
use bindex::storage::{ByteStore, MappedStore, MemStore, StoredIndex};
use bindex::stored::{persist_index_v3, persist_index_v4, StorageSource};
use bindex::{
    Base, BitVec, BitmapIndex, Encoding, IndexSpec, IngestIndex, IngestOptions, KernelDispatch,
    RecoveryPolicy,
};

const SCALAR: KernelDispatch = KernelDispatch::Scalar;
const UNROLLED: KernelDispatch = KernelDispatch::Unrolled;

fn seeds() -> Vec<u64> {
    match std::env::var("BINDEX_CHAOS_SEED") {
        Ok(raw) => vec![raw.parse().expect("BINDEX_CHAOS_SEED must be an integer")],
        Err(_) => vec![1, 2, 3],
    }
}

/// 1..=3 components with digits in `2..8` and product at most 24 — small
/// enough that the query × config matrix stays cheap.
fn rand_base(rng: &mut Rng) -> Base {
    loop {
        let k = rng.range_usize(1, 4);
        let digits: Vec<u32> = (0..k).map(|_| 2 + rng.below_u32(6)).collect();
        if digits.iter().map(|&b| u64::from(b)).product::<u64>() <= 24 {
            return Base::new(digits).unwrap();
        }
    }
}

/// Clustered columns over the lower half of the domain (sorted runs plus
/// fully-dead slots — the shapes the early-exit bound exists for) mixed
/// with uniform full-domain ones.
fn rand_column(rng: &mut Rng, base: &Base, rows: usize, clustered: bool) -> Column {
    let card = base.product() as u32;
    if clustered {
        let live = (card / 2).max(1) as usize;
        Column::new((0..rows).map(|i| (i * live / rows) as u32).collect(), card)
    } else {
        Column::from_values((0..rows).map(|_| rng.below_u32(card)).collect())
    }
}

/// Random predicate sets with interior, edge, and duplicate-predicate
/// thresholds: `k = 1` (the OR plan), a middle k (the CSA network), and
/// `k = N` (the AND plan) for each fan-in.
fn rand_thresholds(rng: &mut Rng, card: u32) -> Vec<ThresholdQuery> {
    const OPS: [Op; 6] = [Op::Lt, Op::Le, Op::Gt, Op::Ge, Op::Eq, Op::Ne];
    let pred =
        |rng: &mut Rng| SelectionQuery::new(OPS[rng.below_usize(OPS.len())], rng.below_u32(card));
    let mut out = Vec::new();
    for n in [2usize, 3, 5] {
        let mut preds: Vec<SelectionQuery> = (0..n).map(|_| pred(rng)).collect();
        if n == 5 {
            // A duplicate predicate must count twice toward k.
            preds[4] = preds[0];
        }
        let mut ks = vec![1u32, n as u32 / 2 + 1, n as u32];
        ks.dedup();
        for k in ks {
            out.push(ThresholdQuery::new(k, preds.clone()));
        }
    }
    out
}

/// Per-row reference: the symmetric function applied value by value.
fn reference(col: &Column, q: &ThresholdQuery) -> BitVec {
    BitVec::from_fn(col.len(), |r| q.matches(col.values()[r]))
}

/// The counters that must not move across any layout configuration —
/// everything the paper's cost model charges, including the threshold
/// combine tally. Pruning may change `segments_pruned` /
/// `segments_skipped` and may only *reduce* `materializations`.
fn invariant_counters(s: &EvalStats) -> [usize; 10] {
    [
        s.scans,
        s.ands,
        s.ors,
        s.xors,
        s.nots,
        s.threshold_combines,
        s.buffer_hits,
        s.degraded_fetches,
        s.reconstructed_bitmaps,
        s.segments_evaluated,
    ]
}

type EvalOutcome = Result<(BitVec, EvalStats), String>;

struct Config {
    name: &'static str,
    v4: bool,
    prune: bool,
    mmap: bool,
}

const CONFIGS: &[Config] = &[
    Config {
        name: "v3",
        v4: false,
        prune: false,
        mmap: false,
    },
    Config {
        name: "v3+prune", // no summary block: pruning must be inert
        v4: false,
        prune: true,
        mmap: false,
    },
    Config {
        name: "v4",
        v4: true,
        prune: false,
        mmap: false,
    },
    Config {
        name: "v4+prune",
        v4: true,
        prune: true,
        mmap: false,
    },
    Config {
        name: "v4+mmap",
        v4: true,
        prune: false,
        mmap: true,
    },
    Config {
        name: "v4+prune+mmap",
        v4: true,
        prune: true,
        mmap: true,
    },
];

#[allow(clippy::too_many_arguments)]
fn run_config(
    stored: &mut StoredIndex<MemStore>,
    spec: &IndexSpec,
    mmap: Option<&MappedStore>,
    prune: bool,
    q: &ThresholdQuery,
    policy: &RecoveryPolicy,
    segment_bits: usize,
) -> EvalOutcome {
    let mut src = StorageSource::try_new(stored, spec.clone()).unwrap();
    if let Some(m) = mmap {
        src = src.with_mmap(m);
    }
    let mut ctx = ExecContext::new(&mut src)
        .with_recovery(policy.clone())
        .with_pruning(prune);
    match evaluate_threshold_segmented_in(&mut ctx, q, Algorithm::Auto, segment_bits) {
        Ok(found) => Ok((found, ctx.take_stats())),
        Err(e) => Err(e.to_string()),
    }
}

/// The full configuration matrix on clean stores: every config answers
/// the per-row reference bit for bit with identical invariant counters,
/// and pruning is inert without a summary block.
#[test]
fn threshold_layout_matrix_is_bit_identical() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(0x7B10 + seed);
        let base = rand_base(&mut rng);
        let rows = rng.range_usize(65, 400);
        let col = rand_column(&mut rng, &base, rows, seed.is_multiple_of(2));
        let column = Arc::new(col.clone());
        let queries = rand_thresholds(&mut rng, base.product() as u32);
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let spec = IndexSpec::new(base.clone(), encoding);
            let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
            let mut v3 = persist_index_v3(&idx, MemStore::new(), CodecKind::None).unwrap();
            let mut v4 = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
            let mapped = MappedStore::new();
            let policies = [
                RecoveryPolicy::Fail,
                RecoveryPolicy::Reconstruct,
                RecoveryPolicy::ReconstructOrScan(Arc::clone(&column)),
            ];
            for q in &queries {
                let want = reference(&col, q);
                for policy in &policies {
                    // Policies other than `Fail` are inert on a clean
                    // store but a different code path; one size each.
                    let sweep: &[usize] = if matches!(policy, RecoveryPolicy::Fail) {
                        &[64, 512]
                    } else {
                        &[64]
                    };
                    for &segment_bits in sweep {
                        let mut outcomes: Vec<(&str, EvalOutcome)> = Vec::new();
                        for cfg in CONFIGS {
                            let stored = if cfg.v4 { &mut v4 } else { &mut v3 };
                            let mmap = cfg.mmap.then_some(&mapped);
                            let out =
                                run_config(stored, &spec, mmap, cfg.prune, q, policy, segment_bits);
                            outcomes.push((cfg.name, out));
                        }
                        let label =
                            format!("seed {seed} {encoding:?} {policy:?} seg={segment_bits} {q}");
                        let (base_name, baseline) = &outcomes[0];
                        let (b_found, b_stats) = baseline
                            .as_ref()
                            .unwrap_or_else(|e| panic!("{label}: baseline {base_name}: {e}"));
                        assert_eq!(b_found, &want, "{label}: baseline vs per-row reference");
                        for (name, out) in &outcomes[1..] {
                            let (found, stats) = out
                                .as_ref()
                                .unwrap_or_else(|e| panic!("{label}: {name} failed: {e}"));
                            assert_eq!(found, &want, "{label}: {name} result");
                            assert_eq!(
                                invariant_counters(stats),
                                invariant_counters(b_stats),
                                "{label}: {name} stats"
                            );
                            assert!(
                                stats.materializations <= b_stats.materializations,
                                "{label}: {name} pruning may only reduce materializations"
                            );
                            if !name.contains("v4+prune") {
                                assert_eq!(
                                    stats.segments_pruned, 0,
                                    "{label}: {name} must not prune"
                                );
                            }
                            assert!(
                                stats.segments_pruned + stats.segments_skipped
                                    <= stats.segments_evaluated,
                                "{label}: {name} disjoint segment counters"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// CSA kernel tiers agree bit for bit with each other and with the
/// per-row popcount definition — interior k, total degenerate k (0 and
/// n + 1), fused counts, exact-k, and majority — over ragged operand
/// lengths and `SegmentView` operands.
#[test]
fn kernel_tiers_agree_on_symmetric_functions() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(0x7B20 + seed);
        let random_bitvec =
            |rng: &mut Rng, len: usize| BitVec::from_fn(len, |_| rng.below_u32(2) == 1);
        for len in [1usize, 63, 64, 65, 127, 1024, 4096 + 17] {
            for n in [2usize, 3, 5, 8, 16] {
                let owned: Vec<BitVec> = (0..n).map(|_| random_bitvec(&mut rng, len)).collect();
                let ops: Vec<&BitVec> = owned.iter().collect();
                let row_count = |r: usize| owned.iter().filter(|b| b.get(r)).count();
                for k in [0usize, 1, n / 2, n / 2 + 1, n - 1, n, n + 1] {
                    let label = format!("seed {seed} len {len} n {n} k {k}");
                    let want = BitVec::from_fn(len, |r| row_count(r) >= k);
                    let scalar = kernels::threshold_k_with(SCALAR, &ops, k);
                    let unrolled = kernels::threshold_k_with(UNROLLED, &ops, k);
                    assert_eq!(scalar, want, "{label}: scalar vs per-row");
                    assert_eq!(unrolled, want, "{label}: unrolled vs per-row");
                    assert_eq!(
                        kernels::threshold_k(&ops, k),
                        want,
                        "{label}: default dispatch"
                    );
                    assert_eq!(
                        kernels::count_threshold_k_with(SCALAR, &ops, k),
                        want.count_ones(),
                        "{label}: scalar count"
                    );
                    assert_eq!(
                        kernels::count_threshold_k_with(UNROLLED, &ops, k),
                        want.count_ones(),
                        "{label}: unrolled count"
                    );
                    let exact_want = BitVec::from_fn(len, |r| row_count(r) == k);
                    assert_eq!(
                        kernels::exact_k_with(SCALAR, &ops, k),
                        exact_want,
                        "{label}: scalar exact"
                    );
                    assert_eq!(
                        kernels::exact_k_with(UNROLLED, &ops, k),
                        exact_want,
                        "{label}: unrolled exact"
                    );
                }
                let maj = BitVec::from_fn(len, |r| row_count(r) > n / 2);
                assert_eq!(
                    kernels::majority_with(SCALAR, &ops),
                    maj,
                    "seed {seed} len {len} n {n}: scalar majority"
                );
                assert_eq!(
                    kernels::majority_with(UNROLLED, &ops),
                    maj,
                    "seed {seed} len {len} n {n}: unrolled majority"
                );
            }
        }
        // Word-aligned segment views (including a ragged final window)
        // agree across tiers and with their materialized copies.
        let len = 8 * 1024 + 37;
        let owned: Vec<BitVec> = (0..7).map(|_| random_bitvec(&mut rng, len)).collect();
        for (lo, hi) in [(0usize, 4096), (4096, len)] {
            let views: Vec<_> = owned.iter().map(|b| b.view_range(lo, hi)).collect();
            let mats: Vec<BitVec> = views.iter().map(|v| v.to_bitvec()).collect();
            let mat_refs: Vec<&BitVec> = mats.iter().collect();
            for k in [2usize, 4, 7] {
                assert_eq!(
                    kernels::threshold_k_with(SCALAR, &views, k),
                    kernels::threshold_k_with(UNROLLED, &views, k),
                    "view {lo}..{hi} k {k}: tiers"
                );
                assert_eq!(
                    kernels::threshold_k_with(UNROLLED, &views, k),
                    kernels::threshold_k_with(UNROLLED, &mat_refs, k),
                    "view {lo}..{hi} k {k}: view vs materialized"
                );
            }
        }
    }
}

/// Threshold over a live delta overlay (appended rows plus deletes) is
/// exactly the per-row symmetric function of its predicates' overlaid
/// foundsets, whole-bitmap and segmented alike.
#[test]
fn threshold_over_delta_overlay_matches_selection_foundsets() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(0x7B30 + seed);
        let card = 12u32;
        let base_rows = rng.range_usize(100, 300);
        let col = Column::new((0..base_rows).map(|_| rng.below_u32(card)).collect(), card);
        let spec = IndexSpec::new(Base::from_msb(&[3, 4]).unwrap(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();

        let overlay = {
            let mut ingest =
                IngestIndex::open(&mut stored, spec.clone(), card, IngestOptions::new()).unwrap();
            let appends: Vec<Option<u32>> = (0..40).map(|_| Some(rng.below_u32(card))).collect();
            ingest.append(&appends).unwrap();
            let deletes: Vec<u64> = (0..5).map(|_| rng.below_usize(base_rows) as u64).collect();
            ingest.delete(&deletes).unwrap();
            ingest.overlay().unwrap()
        };

        let preds = vec![
            SelectionQuery::new(Op::Le, 4),
            SelectionQuery::new(Op::Ge, 3),
            SelectionQuery::new(Op::Ne, 7),
            SelectionQuery::new(Op::Eq, 2),
        ];
        // Overlaid per-predicate foundsets are the ground truth the
        // symmetric function is defined over (they already encode the
        // append and delete semantics).
        let founds: Vec<BitVec> = preds
            .iter()
            .map(|&p| {
                let mut src = StorageSource::try_new(&mut stored, spec.clone()).unwrap();
                let mut ctx = ExecContext::new(&mut src).with_overlay(Some(Arc::clone(&overlay)));
                evaluate_in(&mut ctx, p, Algorithm::Auto).unwrap()
            })
            .collect();
        let n_rows = founds[0].len();
        assert_eq!(n_rows, base_rows + 40, "overlay extends the row space");

        for k in 1..=preds.len() as u32 {
            let q = ThresholdQuery::new(k, preds.clone());
            let want = BitVec::from_fn(n_rows, |r| {
                founds.iter().filter(|f| f.get(r)).count() >= k as usize
            });
            let mut src = StorageSource::try_new(&mut stored, spec.clone()).unwrap();
            let mut ctx = ExecContext::new(&mut src).with_overlay(Some(Arc::clone(&overlay)));
            let whole = evaluate_threshold_in(&mut ctx, &q, Algorithm::Auto).unwrap();
            assert_eq!(whole, want, "seed {seed} whole {q}");
            let seg = evaluate_threshold_segmented_in(&mut ctx, &q, Algorithm::Auto, 64).unwrap();
            assert_eq!(seg, want, "seed {seed} segmented {q}");
        }
    }
}

/// Corrupted data files under every recovery policy: a threshold may
/// fail (typed, on `Fail`) and pruning may turn a failure into a success
/// on a provably-dead window, but no path ever yields a wrong answer.
#[test]
fn corrupted_stores_never_yield_wrong_threshold_answers() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(0x7B40 + seed);
        let base = rand_base(&mut rng);
        let rows = rng.range_usize(65, 400);
        let col = rand_column(&mut rng, &base, rows, true);
        let column = Arc::new(col.clone());
        let queries = rand_thresholds(&mut rng, base.product() as u32);
        let spec = IndexSpec::new(base.clone(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
        let mut store = stored.into_store();
        let mut names: Vec<String> = store
            .file_names()
            .unwrap()
            .into_iter()
            .filter(|n| n.contains(".bmp"))
            .collect();
        names.sort();
        let victim = names.remove(rng.below_usize(names.len()));
        let mut data = store.read_file(&victim).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x08;
        store.write_file(&victim, &data).unwrap();
        let mut stored = StoredIndex::open(store).unwrap();

        let policies = [
            RecoveryPolicy::Fail,
            RecoveryPolicy::Reconstruct,
            RecoveryPolicy::ReconstructOrScan(Arc::clone(&column)),
        ];
        for q in &queries {
            let want = reference(&col, q);
            for policy in &policies {
                let label = format!("seed {seed} {victim} {policy:?} {q}");
                let plain = run_config(&mut stored, &spec, None, false, q, policy, 64);
                let pruned = run_config(&mut stored, &spec, None, true, q, policy, 64);
                match (&plain, &pruned) {
                    (Ok((p_found, _)), Ok((r_found, _))) => {
                        assert_eq!(p_found, &want, "{label}: unpruned answer");
                        assert_eq!(r_found, &want, "{label}: pruned answer");
                    }
                    (Err(_), Ok((r_found, _))) => {
                        // Pruning skipped the corrupt fetch entirely —
                        // legal only because the answer is still exact.
                        assert_eq!(r_found, &want, "{label}: pruned-past-corruption");
                    }
                    (Err(_), Err(_)) => {}
                    (Ok(_), Err(e)) => {
                        panic!("{label}: pruning introduced a failure: {e}")
                    }
                }
            }
        }
    }
}

/// Malformed thresholds are `Error::InvalidQuery` on every storage path
/// (whole-bitmap and segmented, pruned and mmapped) — never a panic and
/// never an empty foundset. The raw kernels, by contrast, are total on
/// degenerate k; the typed boundary lives in the query layer.
#[test]
fn degenerate_thresholds_are_typed_errors_on_stored_indexes() {
    let col = Column::new((0..200u32).map(|i| i % 12).collect(), 12);
    let spec = IndexSpec::new(Base::from_msb(&[3, 4]).unwrap(), Encoding::Range);
    let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
    let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
    let mapped = MappedStore::new();
    let p = SelectionQuery::new(Op::Le, 4);
    for bad in [
        ThresholdQuery::new(0, vec![p]),
        ThresholdQuery::new(2, vec![p]),
        ThresholdQuery::new(1, Vec::new()),
    ] {
        assert!(bad.validate().is_err(), "{bad} must not validate");
        let mut src = StorageSource::try_new(&mut stored, spec.clone())
            .unwrap()
            .with_mmap(&mapped);
        let mut ctx = ExecContext::new(&mut src).with_pruning(true);
        let whole = evaluate_threshold_in(&mut ctx, &bad, Algorithm::Auto);
        assert!(
            matches!(whole, Err(Error::InvalidQuery(_))),
            "whole {bad}: {whole:?}"
        );
        let seg = evaluate_threshold_segmented_in(&mut ctx, &bad, Algorithm::Auto, 64);
        assert!(
            matches!(seg, Err(Error::InvalidQuery(_))),
            "segmented {bad}: {seg:?}"
        );
    }
    // The kernels stay total: degenerate k is all-ones / all-zeros.
    let a = BitVec::ones(100);
    let b = BitVec::zeros(100);
    assert_eq!(kernels::threshold_k(&[&a, &b], 0), BitVec::ones(100));
    assert_eq!(kernels::threshold_k(&[&a, &b], 3), BitVec::zeros(100));
}
