//! Space-optimal indexes (Theorem 6.1, results 1–2) — point (A) of
//! Figure 2.
//!
//! Theorem 6.1(1): the `n`-component space-optimal (range-encoded) index
//! stores `n(b − 2) + r` bitmaps, where `b = ⌈C^{1/n}⌉` and `r` is the
//! smallest positive integer with `b^r (b−1)^{n−r} ≥ C`; one such index has
//! base `<b−1, …, b−1, b, …, b>` (`r` copies of `b` at the least
//! significant positions — the time-better arrangement).
//!
//! The space-optimal index is generally not unique; following Section 7,
//! [`space_optimal_best_time`] finds the most time-efficient index among
//! all equally space-optimal ones with the same number of components
//! (these are the points plotted in Figures 10 and 11).

use crate::base::Base;
use crate::cost::time_range_paper;
use crate::error::{Error, Result};

use super::{ceil_nth_root, range_space};

/// The maximum useful number of components: `⌈log2 C⌉` (more cannot stay
/// well-defined while covering `C` minimally).
pub fn max_components(c: u32) -> usize {
    assert!(c >= 2, "cardinality must be at least 2");
    (32 - (c - 1).leading_zeros()) as usize
}

/// The `n`-component space-optimal index of Theorem 6.1(1).
pub fn space_optimal(c: u32, n: usize) -> Result<Base> {
    if n == 0 || n > max_components(c) {
        return Err(Error::Infeasible(format!(
            "no well-defined {n}-component index for C = {c} (max {})",
            max_components(c)
        )));
    }
    let b = ceil_nth_root(c, n);
    debug_assert!(b >= 2);
    let r = (1..=n)
        .find(|&r| {
            // b^r (b-1)^(n-r) >= C
            let mut acc: u128 = 1;
            for _ in 0..r {
                acc = acc.saturating_mul(u128::from(b));
            }
            for _ in 0..n - r {
                acc = acc.saturating_mul(u128::from(b - 1));
            }
            acc >= u128::from(c)
        })
        .expect("r = n always satisfies b^n >= C");
    // r copies of b at the least significant positions, b−1 above.
    let mut lsb = vec![b; r];
    lsb.extend(std::iter::repeat_n(b - 1, n - r));
    Base::new(lsb)
}

/// Number of bitmaps of the `n`-component space-optimal index:
/// `n(b − 2) + r` (Theorem 6.1(1)).
pub fn space_optimal_bitmaps(c: u32, n: usize) -> Result<u64> {
    let base = space_optimal(c, n)?;
    Ok(range_space(&base))
}

/// The most time-efficient index among all `n`-component indexes that are
/// space-optimal (minimum bitmap count) for cardinality `c` — the points
/// of the space-optimal tradeoff graph (Figures 10–11) and, for `n = 2`,
/// the knee index of Theorem 7.1.
pub fn space_optimal_best_time(c: u32, n: usize) -> Result<Base> {
    let min_space = space_optimal_bitmaps(c, n)?;
    // Σ b_i is fixed at min_space + n; enumerate descending multisets with
    // that sum whose product covers C, and pick the best time. The best
    // arrangement always puts the largest base at component 1.
    let sum = (min_space + n as u64) as u32;
    let mut best: Option<(f64, Base)> = None;
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    enumerate_fixed_sum(c, n, sum, c, &mut stack, &mut |multiset| {
        let base = Base::best_arrangement(multiset.to_vec()).expect("valid multiset");
        let t = time_range_paper(&base);
        match &best {
            Some((bt, _)) if *bt <= t => {}
            _ => best = Some((t, base)),
        }
    });
    best.map(|(_, b)| b).ok_or_else(|| {
        Error::Infeasible(format!("no {n}-component base with sum {sum} covers {c}"))
    })
}

/// Enumerates descending multisets of length `n`, entries in `[2, cap]`,
/// with exact element sum `sum` and product `≥ c`.
fn enumerate_fixed_sum(
    c: u32,
    n: usize,
    sum: u32,
    cap: u32,
    stack: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32]),
) {
    if n == 0 {
        if sum == 0 {
            let prod = stack
                .iter()
                .fold(1u128, |acc, &b| acc.saturating_mul(u128::from(b)));
            if prod >= u128::from(c) {
                f(stack);
            }
        }
        return;
    }
    // Each remaining entry is >= 2 and <= cap; entry b needs sum-b splittable.
    let remaining_min = 2 * (n as u32 - 1);
    if sum < 2 + remaining_min {
        return;
    }
    let hi = cap.min(sum - remaining_min);
    for b in (2..=hi).rev() {
        // Descending: later entries <= b, so they can sum to at most b*(n-1).
        if u64::from(sum - b) > u64::from(b) * (n as u64 - 1) {
            continue;
        }
        stack.push(b);
        enumerate_fixed_sum(c, n - 1, sum - b, b, stack, f);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_components_values() {
        assert_eq!(max_components(2), 1);
        assert_eq!(max_components(3), 2);
        assert_eq!(max_components(1000), 10);
        assert_eq!(max_components(1024), 10);
        assert_eq!(max_components(1025), 11);
    }

    #[test]
    fn theorem61_paper_example() {
        // C = 100: the base-<3,3,...> example from Section 6 — for C=100,
        // n=2: b = 10, r: 10*9 = 90 < 100, 10*10 >= 100 -> r = 2 -> <10,10>.
        let b = space_optimal(100, 2).unwrap();
        assert_eq!(b.to_msb_vec(), vec![10, 10]);
        assert_eq!(space_optimal_bitmaps(100, 2).unwrap(), 18);
    }

    #[test]
    fn nonunique_example_c100_n2_note() {
        // The paper notes for C = 100 that base-<10,10> and others can tie;
        // its example: C = 100, <3,3,...>? For C = 12, n = 2: b = 4,
        // r: 4*3 = 12 >= 12 -> r = 1 -> base <3,4>, 5 bitmaps.
        let b = space_optimal(12, 2).unwrap();
        assert_eq!(b.to_msb_vec(), vec![3, 4]);
        assert_eq!(space_optimal_bitmaps(12, 2).unwrap(), 5);
    }

    #[test]
    fn space_optimal_is_minimal_among_tight() {
        // Against brute force: no tight n-component base may use fewer bitmaps.
        for c in [10u32, 50, 100, 257] {
            for n in 1..=max_components(c) {
                let claimed = space_optimal_bitmaps(c, n).unwrap();
                let brute = crate::base::tight_bases(c, n)
                    .into_iter()
                    .filter(|b| b.n_components() == n)
                    .map(|b| range_space(&b))
                    .min();
                if let Some(brute) = brute {
                    assert_eq!(claimed, brute, "C={c} n={n}");
                }
            }
        }
    }

    #[test]
    fn space_nonincreasing_in_components() {
        // Theorem 6.1(2).
        for c in [50u32, 100, 1000] {
            let mut prev = u64::MAX;
            for n in 1..=max_components(c) {
                let s = space_optimal_bitmaps(c, n).unwrap();
                assert!(s <= prev, "C={c} n={n}: {s} > {prev}");
                prev = s;
            }
        }
    }

    #[test]
    fn max_component_index_is_all_twos() {
        let b = space_optimal(1000, 10).unwrap();
        assert_eq!(b.to_msb_vec(), vec![2; 10]);
        assert_eq!(space_optimal_bitmaps(1000, 10).unwrap(), 10);
    }

    #[test]
    fn best_time_matches_space_and_improves_time() {
        for c in [100u32, 1000] {
            for n in 2..=4 {
                let canonical = space_optimal(c, n).unwrap();
                let best = space_optimal_best_time(c, n).unwrap();
                assert_eq!(range_space(&best), range_space(&canonical), "C={c} n={n}");
                assert!(best.covers(c));
                assert!(
                    time_range_paper(&best) <= time_range_paper(&canonical) + 1e-12,
                    "C={c} n={n}"
                );
            }
        }
    }

    #[test]
    fn best_time_c1000_n2_is_theorem71_knee() {
        // Cross-check with Theorem 7.1's closed form: <28, 36>.
        let best = space_optimal_best_time(1000, 2).unwrap();
        assert_eq!(best.to_msb_vec(), vec![28, 36]);
    }

    #[test]
    fn infeasible_component_counts_rejected() {
        assert!(space_optimal(1000, 0).is_err());
        assert!(space_optimal(1000, 11).is_err());
        assert!(space_optimal(4, 2).is_ok());
    }
}
