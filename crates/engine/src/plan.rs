//! Conjunctive query plans P1 / P2 / P3 and their byte-cost model
//! (the paper's Section 1 analysis, made executable).
//!
//! The cost model prices plans in **bytes read**, the unit of the paper's
//! introduction:
//!
//! * a relation scan reads `rows × row_bytes`;
//! * a bitmap scan reads `⌈N/8⌉` bytes per scanned bitmap (the predicted
//!   scan count of the cost model — exact, since scan counts are
//!   digit-determined);
//! * fetching a qualifying row for residual filtering reads `row_bytes`.
//!
//! Selectivities come from exact column histograms, so the estimates for
//! P2/P3 are exact expectations rather than guesses; the point of the
//! exercise is the *comparison* between plans, which is what the paper's
//! `N/32` break-even describes.

use bindex_bitvec::{kernels, BitVec};
use bindex_core::cost::predicted_scans;
use bindex_core::error::{Error, Result};
use bindex_core::eval::{evaluate_in, naive, Algorithm};
use bindex_core::ExecContext;
use bindex_relation::query::SelectionQuery;

use crate::table::Table;

/// A conjunction of per-attribute selection predicates.
#[derive(Debug, Clone, Default)]
pub struct ConjunctiveQuery {
    predicates: Vec<(String, SelectionQuery)>,
}

impl ConjunctiveQuery {
    /// Starts an empty conjunction (matches every row).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `attr op v`.
    pub fn and(mut self, attr: &str, query: SelectionQuery) -> Self {
        self.predicates.push((attr.to_string(), query));
        self
    }

    /// The predicates in order.
    pub fn predicates(&self) -> &[(String, SelectionQuery)] {
        &self.predicates
    }

    /// Exact combined selectivity under attribute independence, from the
    /// table's histograms.
    pub fn estimated_selectivity(&self, table: &Table) -> Result<f64> {
        let mut sel = 1.0;
        for (attr, q) in &self.predicates {
            let hist = table.column(attr)?.histogram();
            sel *= q.selectivity(&hist);
        }
        Ok(sel)
    }
}

impl std::fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("TRUE");
        }
        for (i, (attr, q)) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{attr} {} {}", q.op, q.constant)?;
        }
        Ok(())
    }
}

/// A k-of-N threshold over per-attribute predicates: a row qualifies
/// when **at least `k`** of the predicates hold ("users matching ≥ 3 of
/// 7 predicates"). The symmetric-function extension of
/// [`ConjunctiveQuery`] — `k = N` is the conjunction, `k = 1` the
/// disjunction, anything between is expressible by neither plan family
/// above without an exponential OR-of-ANDs expansion.
#[derive(Debug, Clone)]
pub struct ThresholdQuery {
    k: u32,
    predicates: Vec<(String, SelectionQuery)>,
}

impl ThresholdQuery {
    /// Starts a threshold query requiring at least `k` matches.
    pub fn at_least(k: u32) -> Self {
        Self {
            k,
            predicates: Vec::new(),
        }
    }

    /// Adds `attr op v` to the predicate set.
    pub fn with(mut self, attr: &str, query: SelectionQuery) -> Self {
        self.predicates.push((attr.to_string(), query));
        self
    }

    /// The required match count `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The predicates in order.
    pub fn predicates(&self) -> &[(String, SelectionQuery)] {
        &self.predicates
    }

    /// Rejects malformed thresholds (`k = 0`, `k > N`, no predicates)
    /// with the typed [`Error::InvalidQuery`] instead of panicking or
    /// silently answering nothing.
    pub fn validate(&self) -> Result<()> {
        let n = self.predicates.len();
        if n == 0 {
            return Err(Error::InvalidQuery(
                "threshold query has no predicates".into(),
            ));
        }
        if self.k == 0 {
            return Err(Error::InvalidQuery(
                "threshold k = 0 matches every row; use k >= 1".into(),
            ));
        }
        if self.k as usize > n {
            return Err(Error::InvalidQuery(format!(
                "threshold k = {} exceeds the {} predicate(s); no row can qualify",
                self.k, n
            )));
        }
        Ok(())
    }

    /// Row-level truth against the table's columns.
    fn matches_row(&self, columns: &[&bindex_relation::Column], row: usize) -> bool {
        let mut hits = 0usize;
        for (i, (_, q)) in self.predicates.iter().enumerate() {
            if q.matches(columns[i].values()[row]) {
                hits += 1;
                if hits >= self.k as usize {
                    return true;
                }
            }
        }
        false
    }

    /// Expected fraction of qualifying rows under attribute
    /// independence: the Poisson-binomial tail `P(X ≥ k)` where each
    /// predicate holds independently with its histogram selectivity.
    pub fn estimated_selectivity(&self, table: &Table) -> Result<f64> {
        let mut dist = vec![1.0f64]; // P(j of the predicates seen so far hold)
        for (attr, q) in &self.predicates {
            let p = q.selectivity(&table.column(attr)?.histogram());
            let mut next = vec![0.0f64; dist.len() + 1];
            for (j, &dj) in dist.iter().enumerate() {
                next[j] += dj * (1.0 - p);
                next[j + 1] += dj * p;
            }
            dist = next;
        }
        Ok(dist.iter().skip(self.k as usize).sum())
    }
}

impl std::fmt::Display for ThresholdQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AT LEAST {} OF (", self.k)?;
        for (i, (attr, q)) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{attr} {} {}", q.op, q.constant)?;
        }
        f.write_str(")")
    }
}

/// The two plans for a threshold query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdPlan {
    /// One index scan per indexed predicate, foundsets combined in a
    /// single pass by the bit-sliced CSA threshold kernel; unindexed
    /// predicates evaluate per-row out of one shared relation scan and
    /// join the combine as ordinary operands.
    IndexCsa,
    /// Per-row popcount over all predicates from one relation scan.
    FullScan,
}

impl std::fmt::Display for ThresholdPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThresholdPlan::IndexCsa => f.write_str("T1 index + CSA combine"),
            ThresholdPlan::FullScan => f.write_str("T2 full scan popcount"),
        }
    }
}

/// Estimated cost of a threshold plan, in the same byte model as
/// [`estimate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdCost {
    /// The plan priced.
    pub plan: ThresholdPlan,
    /// Expected bytes read.
    pub bytes: f64,
}

/// Prices a threshold plan: [`ThresholdPlan::FullScan`] reads every row;
/// [`ThresholdPlan::IndexCsa`] reads the predicted bitmap scans of each
/// indexed predicate, plus one relation scan when any predicate is
/// unindexed (a threshold cannot post-filter like a conjunction — every
/// predicate's full foundset participates in the count).
pub fn estimate_threshold(
    table: &Table,
    query: &ThresholdQuery,
    plan: ThresholdPlan,
) -> Result<ThresholdCost> {
    query.validate()?;
    let n = table.n_rows() as f64;
    let row = table.row_bytes() as f64;
    let bytes = match plan {
        ThresholdPlan::FullScan => n * row,
        ThresholdPlan::IndexCsa => {
            let mut bytes = 0.0;
            let mut any_unindexed = false;
            for (attr, q) in query.predicates() {
                match index_scans(table, attr, *q)? {
                    Some(scans) => bytes += scans as f64 * bitmap_bytes(table.n_rows()) as f64,
                    None => any_unindexed = true,
                }
            }
            if any_unindexed {
                bytes += n * row;
            }
            bytes
        }
    };
    Ok(ThresholdCost { plan, bytes })
}

/// Picks the cheaper threshold plan.
pub fn choose_threshold(table: &Table, query: &ThresholdQuery) -> Result<ThresholdCost> {
    let candidates = [ThresholdPlan::IndexCsa, ThresholdPlan::FullScan];
    candidates
        .into_iter()
        .map(|p| estimate_threshold(table, query, p))
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .min_by(|a, b| a.bytes.partial_cmp(&b.bytes).expect("finite costs"))
        .ok_or_else(|| Error::Infeasible("no applicable plan".into()))
}

/// Executes a threshold plan, returning the foundset and what was read.
/// Degenerate `k` routes through the exact plan — `k = 1` combines with
/// the fused OR kernel and `k = N` with the fused AND kernel — and a
/// malformed query is the typed [`Error::InvalidQuery`].
pub fn execute_threshold(
    table: &Table,
    query: &ThresholdQuery,
    plan: ThresholdPlan,
) -> Result<(BitVec, ExecutionStats)> {
    query.validate()?;
    let n_rows = table.n_rows();
    let k = query.k as usize;
    let mut stats = ExecutionStats::default();
    let found = match plan {
        ThresholdPlan::FullScan => {
            stats.rows_fetched = n_rows;
            stats.bytes_read = (n_rows * table.row_bytes()) as u64;
            let columns: Vec<&bindex_relation::Column> = query
                .predicates()
                .iter()
                .map(|(attr, _)| table.column(attr))
                .collect::<Result<_>>()?;
            BitVec::from_fn(n_rows, |row| query.matches_row(&columns, row))
        }
        ThresholdPlan::IndexCsa => {
            let mut foundsets = Vec::with_capacity(query.predicates().len());
            let mut scanned_rows = false;
            for (attr, q) in query.predicates() {
                match table.index(attr)? {
                    Some(idx) => {
                        let mut src = idx.source();
                        let mut ctx = ExecContext::new(&mut src);
                        foundsets.push(evaluate_in(&mut ctx, *q, Algorithm::Auto)?);
                        let s = ctx.take_stats();
                        stats.bitmap_scans += s.scans;
                        stats.bytes_read += s.scans as u64 * bitmap_bytes(n_rows);
                        stats.degraded_fetches += s.degraded_fetches;
                    }
                    None => {
                        // One relation scan serves every unindexed
                        // predicate — the rows are in hand once fetched.
                        if !scanned_rows {
                            stats.rows_fetched += n_rows;
                            stats.bytes_read += (n_rows * table.row_bytes()) as u64;
                            scanned_rows = true;
                        }
                        foundsets.push(naive::evaluate(table.column(attr)?, *q));
                    }
                }
            }
            let operands: Vec<&BitVec> = foundsets.iter().collect();
            if k == 1 {
                kernels::or_all(&operands)
            } else if k == operands.len() {
                kernels::and_all(&operands)
            } else {
                kernels::threshold_k(&operands, k)
            }
        }
    };
    Ok((found, stats))
}

/// The three plans of the paper's introduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// P1: full relation scan.
    FullScan,
    /// P2: index scan on the named attribute's predicate, then fetch and
    /// filter the qualifying rows against the remaining predicates.
    IndexThenFilter(String),
    /// P3: index scan per indexed predicate, AND the foundsets; residual
    /// non-indexed predicates filter the merged foundset.
    IndexMerge,
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Plan::FullScan => f.write_str("P1 full scan"),
            Plan::IndexThenFilter(a) => write!(f, "P2 index({a}) + filter"),
            Plan::IndexMerge => f.write_str("P3 index merge"),
        }
    }
}

/// Estimated cost of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCost {
    /// The plan priced.
    pub plan: Plan,
    /// Expected bytes read.
    pub bytes: f64,
}

/// What an execution actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecutionStats {
    /// Bytes read (bitmaps at `⌈N/8⌉` each, rows at `row_bytes`).
    pub bytes_read: u64,
    /// Bitmap scans performed.
    pub bitmap_scans: usize,
    /// Rows fetched for residual filtering (or scanned, for P1).
    pub rows_fetched: usize,
    /// Bitmap fetches answered through the degraded path (reconstruction
    /// of an unreadable stored bitmap). Zero on a healthy store.
    pub degraded_fetches: usize,
}

fn bitmap_bytes(n_rows: usize) -> u64 {
    n_rows.div_ceil(8) as u64
}

/// Expected bitmap scans of one predicate on an attribute's index.
fn index_scans(table: &Table, attr: &str, q: SelectionQuery) -> Result<Option<usize>> {
    Ok(table.index(attr)?.map(|idx| {
        let algo = Algorithm::Auto.resolve(idx.spec().encoding);
        predicted_scans(&idx.spec().base, q, algo)
    }))
}

/// Prices one plan (see module docs for the byte model).
pub fn estimate(table: &Table, query: &ConjunctiveQuery, plan: &Plan) -> Result<PlanCost> {
    let n = table.n_rows() as f64;
    let row = table.row_bytes() as f64;
    let bytes = match plan {
        Plan::FullScan => n * row,
        Plan::IndexThenFilter(attr) => {
            let (_, q) = query
                .predicates()
                .iter()
                .find(|(a, _)| a == attr)
                .ok_or_else(|| Error::Infeasible(format!("no predicate on {attr}")))?;
            let scans = index_scans(table, attr, *q)?
                .ok_or_else(|| Error::Infeasible(format!("{attr} is not indexed")))?;
            let sel = q.selectivity(&table.column(attr)?.histogram());
            let residual = query.predicates().len() > 1;
            scans as f64 * bitmap_bytes(table.n_rows()) as f64
                + if residual { sel * n * row } else { 0.0 }
        }
        Plan::IndexMerge => {
            let mut bytes = 0.0;
            let mut indexed_sel = 1.0;
            let mut residual = false;
            for (attr, q) in query.predicates() {
                match index_scans(table, attr, *q)? {
                    Some(scans) => {
                        bytes += scans as f64 * bitmap_bytes(table.n_rows()) as f64;
                        indexed_sel *= q.selectivity(&table.column(attr)?.histogram());
                    }
                    None => residual = true,
                }
            }
            if residual {
                bytes += indexed_sel * n * row;
            }
            bytes
        }
    };
    Ok(PlanCost {
        plan: plan.clone(),
        bytes,
    })
}

/// All plans applicable to `query` on `table`.
pub fn candidate_plans(table: &Table, query: &ConjunctiveQuery) -> Result<Vec<Plan>> {
    let mut plans = vec![Plan::FullScan];
    let mut any_indexed = false;
    for (attr, _) in query.predicates() {
        if table.index(attr)?.is_some() {
            plans.push(Plan::IndexThenFilter(attr.clone()));
            any_indexed = true;
        }
    }
    if any_indexed {
        plans.push(Plan::IndexMerge);
    }
    Ok(plans)
}

/// Picks the cheapest applicable plan.
pub fn choose(table: &Table, query: &ConjunctiveQuery) -> Result<PlanCost> {
    candidate_plans(table, query)?
        .into_iter()
        .map(|p| estimate(table, query, &p))
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .min_by(|a, b| a.bytes.partial_cmp(&b.bytes).expect("finite costs"))
        .ok_or_else(|| Error::Infeasible("no applicable plan".into()))
}

/// Executes `plan`, returning the foundset and what was actually read.
pub fn execute(
    table: &Table,
    query: &ConjunctiveQuery,
    plan: &Plan,
) -> Result<(BitVec, ExecutionStats)> {
    let n_rows = table.n_rows();
    let mut stats = ExecutionStats::default();
    let found = match plan {
        Plan::FullScan => {
            stats.rows_fetched = n_rows;
            stats.bytes_read = (n_rows * table.row_bytes()) as u64;
            filter_rows(table, query, &BitVec::ones(n_rows))?
        }
        Plan::IndexThenFilter(attr) => {
            let (_, q) = query
                .predicates()
                .iter()
                .find(|(a, _)| a == attr)
                .ok_or_else(|| Error::Infeasible(format!("no predicate on {attr}")))?;
            let idx = table
                .index(attr)?
                .ok_or_else(|| Error::Infeasible(format!("{attr} is not indexed")))?;
            let mut src = idx.source();
            let mut ctx = ExecContext::new(&mut src);
            let base_found = evaluate_in(&mut ctx, *q, Algorithm::Auto)?;
            let s = ctx.take_stats();
            stats.bitmap_scans += s.scans;
            stats.bytes_read += s.scans as u64 * bitmap_bytes(n_rows);
            stats.degraded_fetches += s.degraded_fetches;
            if query.predicates().len() > 1 {
                let rest = residual_query(query, std::slice::from_ref(attr));
                let fetched = base_found.count_ones();
                stats.rows_fetched += fetched;
                stats.bytes_read += (fetched * table.row_bytes()) as u64;
                filter_rows(table, &rest, &base_found)?
            } else {
                base_found
            }
        }
        Plan::IndexMerge => {
            let mut foundsets = Vec::new();
            let mut residual_attrs = Vec::new();
            for (attr, q) in query.predicates() {
                match table.index(attr)? {
                    Some(idx) => {
                        let mut src = idx.source();
                        let mut ctx = ExecContext::new(&mut src);
                        foundsets.push(evaluate_in(&mut ctx, *q, Algorithm::Auto)?);
                        let s = ctx.take_stats();
                        stats.bitmap_scans += s.scans;
                        stats.bytes_read += s.scans as u64 * bitmap_bytes(n_rows);
                        stats.degraded_fetches += s.degraded_fetches;
                    }
                    None => residual_attrs.push(attr.clone()),
                }
            }
            // Merge all per-predicate foundsets in one fused pass.
            let merged = if foundsets.is_empty() {
                BitVec::ones(n_rows)
            } else {
                let operands: Vec<&BitVec> = foundsets.iter().collect();
                kernels::and_all(&operands)
            };
            if residual_attrs.is_empty() {
                merged
            } else {
                let keep: Vec<(String, SelectionQuery)> = query
                    .predicates()
                    .iter()
                    .filter(|(a, _)| residual_attrs.contains(a))
                    .cloned()
                    .collect();
                let rest = ConjunctiveQuery { predicates: keep };
                let fetched = merged.count_ones();
                stats.rows_fetched += fetched;
                stats.bytes_read += (fetched * table.row_bytes()) as u64;
                filter_rows(table, &rest, &merged)?
            }
        }
    };
    Ok((found, stats))
}

/// The query minus the predicates on `consumed` attributes.
fn residual_query(query: &ConjunctiveQuery, consumed: &[String]) -> ConjunctiveQuery {
    ConjunctiveQuery {
        predicates: query
            .predicates()
            .iter()
            .filter(|(a, _)| !consumed.contains(a))
            .cloned()
            .collect(),
    }
}

/// Filters `candidates` by evaluating every predicate against the columns,
/// intersecting everything in one fused k-ary pass.
fn filter_rows(table: &Table, query: &ConjunctiveQuery, candidates: &BitVec) -> Result<BitVec> {
    let per_predicate: Vec<BitVec> = query
        .predicates()
        .iter()
        .map(|(attr, q)| Ok(naive::evaluate(table.column(attr)?, *q)))
        .collect::<Result<_>>()?;
    let mut operands: Vec<&BitVec> = Vec::with_capacity(1 + per_predicate.len());
    operands.push(candidates);
    operands.extend(per_predicate.iter());
    Ok(kernels::and_all(&operands))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{IndexChoice, Table};
    use bindex_relation::gen;
    use bindex_relation::query::Op;

    fn table() -> Table {
        Table::builder()
            .column("qty", gen::uniform(4000, 50, 1), IndexChoice::Knee)
            .column(
                "day",
                gen::uniform(4000, 300, 2),
                IndexChoice::SpaceBudget(40),
            )
            .column("note", gen::uniform(4000, 7, 3), IndexChoice::None)
            .build()
            .unwrap()
    }

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery::new()
            .and("qty", SelectionQuery::new(Op::Gt, 40))
            .and("day", SelectionQuery::new(Op::Le, 100))
            .and("note", SelectionQuery::new(Op::Ne, 3))
    }

    fn oracle(t: &Table, q: &ConjunctiveQuery) -> BitVec {
        let mut out = BitVec::ones(t.n_rows());
        for (attr, sq) in q.predicates() {
            out.and_assign(&naive::evaluate(t.column(attr).unwrap(), *sq));
        }
        out
    }

    #[test]
    fn all_plans_agree_with_oracle() {
        let t = table();
        let q = query();
        let want = oracle(&t, &q);
        for plan in candidate_plans(&t, &q).unwrap() {
            let (got, stats) = execute(&t, &q, &plan).unwrap();
            assert_eq!(got, want, "{plan}");
            assert!(stats.bytes_read > 0);
        }
    }

    #[test]
    fn candidate_plans_reflect_indexes() {
        let t = table();
        let q = query();
        let plans = candidate_plans(&t, &q).unwrap();
        assert!(plans.contains(&Plan::FullScan));
        assert!(plans.contains(&Plan::IndexThenFilter("qty".into())));
        assert!(plans.contains(&Plan::IndexThenFilter("day".into())));
        assert!(!plans.contains(&Plan::IndexThenFilter("note".into())));
        assert!(plans.contains(&Plan::IndexMerge));
    }

    #[test]
    fn chosen_plan_is_cheapest_and_estimates_track_actuals() {
        let t = table();
        let q = query();
        let best = choose(&t, &q).unwrap();
        for plan in candidate_plans(&t, &q).unwrap() {
            let est = estimate(&t, &q, &plan).unwrap();
            assert!(best.bytes <= est.bytes + 1e-9, "{plan}");
            let (_, stats) = execute(&t, &q, &plan).unwrap();
            // Estimates are expectations; actuals must be within 2x.
            let ratio = stats.bytes_read as f64 / est.bytes.max(1.0);
            assert!(
                (0.4..2.5).contains(&ratio),
                "{plan}: est {} actual {}",
                est.bytes,
                stats.bytes_read
            );
        }
    }

    #[test]
    fn selective_point_query_prefers_index_plans() {
        let t = table();
        let q = ConjunctiveQuery::new()
            .and("qty", SelectionQuery::new(Op::Eq, 7))
            .and("day", SelectionQuery::new(Op::Eq, 17));
        let best = choose(&t, &q).unwrap();
        assert_ne!(best.plan, Plan::FullScan);
        let p1 = estimate(&t, &q, &Plan::FullScan).unwrap();
        assert!(best.bytes < p1.bytes / 10.0);
    }

    #[test]
    fn unindexed_only_query_full_scans() {
        let t = table();
        let q = ConjunctiveQuery::new().and("note", SelectionQuery::new(Op::Eq, 2));
        let plans = candidate_plans(&t, &q).unwrap();
        assert_eq!(plans, vec![Plan::FullScan]);
        let (got, _) = execute(&t, &q, &Plan::FullScan).unwrap();
        assert_eq!(got, oracle(&t, &q));
    }

    #[test]
    fn empty_query_matches_everything() {
        let t = table();
        let q = ConjunctiveQuery::new();
        let (got, _) = execute(&t, &q, &Plan::FullScan).unwrap();
        assert_eq!(got.count_ones(), t.n_rows());
        assert!((q.estimated_selectivity(&t).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn p2_on_missing_predicate_errors() {
        let t = table();
        let q = ConjunctiveQuery::new().and("qty", SelectionQuery::new(Op::Le, 10));
        assert!(execute(&t, &q, &Plan::IndexThenFilter("day".into())).is_err());
        assert!(estimate(&t, &q, &Plan::IndexThenFilter("note".into())).is_err());
    }

    fn threshold_query() -> ThresholdQuery {
        ThresholdQuery::at_least(2)
            .with("qty", SelectionQuery::new(Op::Le, 20))
            .with("day", SelectionQuery::new(Op::Gt, 150))
            .with("note", SelectionQuery::new(Op::Eq, 3))
    }

    fn threshold_oracle(t: &Table, q: &ThresholdQuery) -> BitVec {
        BitVec::from_fn(t.n_rows(), |row| {
            let hits = q
                .predicates()
                .iter()
                .filter(|(attr, sq)| sq.matches(t.column(attr).unwrap().values()[row]))
                .count();
            hits >= q.k() as usize
        })
    }

    #[test]
    fn threshold_plans_agree_with_oracle() {
        let t = table();
        for k in 1..=3u32 {
            let mut q = threshold_query();
            q.k = k;
            let want = threshold_oracle(&t, &q);
            for plan in [ThresholdPlan::IndexCsa, ThresholdPlan::FullScan] {
                let (got, stats) = execute_threshold(&t, &q, plan).unwrap();
                assert_eq!(got, want, "k={k} {plan}");
                assert!(stats.bytes_read > 0, "k={k} {plan}");
            }
        }
    }

    #[test]
    fn threshold_validation_is_typed() {
        let t = table();
        let no_preds = ThresholdQuery::at_least(1);
        let zero_k = ThresholdQuery::at_least(0).with("qty", SelectionQuery::new(Op::Le, 5));
        let big_k = ThresholdQuery::at_least(3).with("qty", SelectionQuery::new(Op::Le, 5));
        for bad in [no_preds, zero_k, big_k] {
            for plan in [ThresholdPlan::IndexCsa, ThresholdPlan::FullScan] {
                let err = execute_threshold(&t, &bad, plan).unwrap_err();
                assert!(matches!(err, Error::InvalidQuery(_)), "{bad}: {err:?}");
            }
            assert!(matches!(
                choose_threshold(&t, &bad),
                Err(Error::InvalidQuery(_))
            ));
        }
    }

    #[test]
    fn threshold_cost_model_prefers_indexes_when_all_indexed() {
        let t = table();
        // Both predicates indexed: the CSA plan reads a handful of
        // bitmaps, the scan reads every row.
        let q = ThresholdQuery::at_least(1)
            .with("qty", SelectionQuery::new(Op::Eq, 7))
            .with("day", SelectionQuery::new(Op::Eq, 17));
        let best = choose_threshold(&t, &q).unwrap();
        assert_eq!(best.plan, ThresholdPlan::IndexCsa);
        let scan = estimate_threshold(&t, &q, ThresholdPlan::FullScan).unwrap();
        assert!(best.bytes < scan.bytes);
        // An unindexed predicate drags a relation scan into the CSA
        // plan, so it can no longer beat the plain scan.
        let q = threshold_query();
        let csa = estimate_threshold(&t, &q, ThresholdPlan::IndexCsa).unwrap();
        assert!(csa.bytes > scan.bytes);
    }

    #[test]
    fn threshold_selectivity_is_poisson_binomial_tail() {
        let t = table();
        // k = 1 over one predicate: the tail is that predicate's
        // selectivity.
        let p = SelectionQuery::new(Op::Le, 24);
        let single = ThresholdQuery::at_least(1).with("qty", p);
        let want = p.selectivity(&t.column("qty").unwrap().histogram());
        assert!((single.estimated_selectivity(&t).unwrap() - want).abs() < 1e-12);
        // Monotone in k: requiring more matches can only shrink the tail.
        let mut prev = 1.0f64;
        for k in 1..=3u32 {
            let mut q = threshold_query();
            q.k = k;
            let sel = q.estimated_selectivity(&t).unwrap();
            assert!(sel <= prev + 1e-12, "k={k}");
            prev = sel;
        }
    }

    #[test]
    fn display_formats() {
        let q = query();
        assert_eq!(q.to_string(), "qty > 40 AND day <= 100 AND note != 3");
        assert_eq!(Plan::FullScan.to_string(), "P1 full scan");
        assert_eq!(
            Plan::IndexThenFilter("qty".into()).to_string(),
            "P2 index(qty) + filter"
        );
    }
}
