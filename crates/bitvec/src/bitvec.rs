//! The [`BitVec`] type: a length-aware, canonically masked dense bit vector.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

use crate::{words_for, WORD_BITS};

/// A dense vector of bits backed by `u64` words.
///
/// Invariant (*canonical form*): all bits at positions `>= len` in the last
/// word are zero. All constructors and mutators uphold this, which makes
/// [`BitVec::count_ones`], equality, and hashing exact without re-masking.
///
/// Binary operations require both operands to have the same `len`; this is a
/// logic error and panics, matching the paper's setting where every bitmap of
/// an index has exactly the relation cardinality `N` bits.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector of length zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates a bit vector of `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; words_for(len)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Wraps already-canonical words (crate-internal; used by the fused
    /// kernels, whose combinations of canonical operands are canonical).
    pub(crate) fn from_words_unmasked(words: Vec<u64>, len: usize) -> Self {
        debug_assert_eq!(words.len(), words_for(len));
        let v = Self { words, len };
        debug_assert!(
            len.is_multiple_of(WORD_BITS)
                || v.words.last().is_none_or(|w| w >> (len % WORD_BITS) == 0),
            "tail bits past len must be zero"
        );
        v
    }

    /// Creates a bit vector of `len` bits from packed words (bit `i` lives
    /// in word `i / 64` at position `i % 64`). Surplus words are dropped,
    /// missing words are zero-filled, and bits at positions `>= len` are
    /// cleared, so the result is always canonical — the word-level
    /// counterpart of [`BitVec::from_bytes`], used by decoders that
    /// assemble whole words (e.g. WAH decompression).
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(words_for(len), 0);
        let mut v = Self { words, len };
        v.mask_tail();
        v
    }

    /// Creates a bit vector of `len` bits with the given positions set.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut words = vec![0u64; words_for(len)];
        for &i in indices {
            assert!(i < len, "bit index {i} out of range (len {len})");
            words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        }
        Self { words, len }
    }

    /// Creates a bit vector from a boolean slice (`slice[i]` becomes bit `i`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut words = Vec::with_capacity(words_for(bits.len()));
        for chunk in bits.chunks(WORD_BITS) {
            let mut w = 0u64;
            for (bit, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << bit;
            }
            words.push(w);
        }
        Self {
            words,
            len: bits.len(),
        }
    }

    /// Collects the bits produced by `f(i)` for `i in 0..len`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = Vec::with_capacity(words_for(len));
        let mut w = 0u64;
        for i in 0..len {
            w |= (f(i) as u64) << (i % WORD_BITS);
            if (i + 1).is_multiple_of(WORD_BITS) {
                words.push(w);
                w = 0;
            }
        }
        if !len.is_multiple_of(WORD_BITS) {
            words.push(w);
        }
        Self { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only view of the backing words (canonically masked).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let w = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[w] |= mask;
        } else {
            self.words[w] &= !mask;
        }
    }

    /// Appends a bit at the end.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Appends every bit of `other` after the current bits — bitmap
    /// concatenation. This is the delta-merge primitive: a base-length
    /// bitmap grows by its delta-segment tail in one word-level splice
    /// (shifting each incoming word across the unaligned boundary)
    /// instead of `other.len()` single-bit pushes.
    pub fn extend_from(&mut self, other: &BitVec) {
        if other.len == 0 {
            return;
        }
        let rem = self.len % WORD_BITS;
        if rem == 0 {
            self.words.extend_from_slice(&other.words);
        } else {
            let shift = WORD_BITS - rem;
            self.words.reserve(other.words.len());
            for (splice, &w) in (self.words.len() - 1..).zip(other.words.iter()) {
                self.words[splice] |= w << rem;
                self.words.push(w >> shift);
            }
        }
        self.len += other.len;
        // Both inputs are canonical, so the spliced words carry no bits
        // past the new length; only the word count can overshoot by one.
        self.words.truncate(words_for(self.len));
    }

    /// Number of set bits (the foundset cardinality of a result bitmap).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// `true` if at least one bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `true` if no bit is set.
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// `true` if all `len` bits are set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Position of the first set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the positions of the set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over every bit as a `bool`.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// In-place AND with `rhs`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, rhs: &Self) {
        self.check_len(rhs);
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a &= *b;
        }
    }

    /// In-place OR with `rhs`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, rhs: &Self) {
        self.check_len(rhs);
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a |= *b;
        }
    }

    /// In-place XOR with `rhs`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, rhs: &Self) {
        self.check_len(rhs);
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a ^= *b;
        }
    }

    /// In-place AND with the complement of `rhs` (`self & !rhs`).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_not_assign(&mut self, rhs: &Self) {
        self.check_len(rhs);
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a &= !*b;
        }
    }

    /// In-place complement of all `len` bits.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Owned complement.
    #[must_use = "complement returns a new bitmap without modifying self"]
    pub fn complement(&self) -> Self {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Sets all bits to zero, keeping the length.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets all bits to one, keeping the length.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    /// Serializes to little-endian bytes, `ceil(len / 8)` of them.
    ///
    /// Tail bits in the final byte are zero (canonical form carries over).
    pub fn to_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(nbytes);
        'outer: for w in &self.words {
            for b in w.to_le_bytes() {
                if out.len() == nbytes {
                    break 'outer;
                }
                out.push(b);
            }
        }
        out.resize(nbytes, 0);
        out
    }

    /// Deserializes `len` bits from little-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes` holds fewer than `ceil(len / 8)` bytes.
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Self {
        let nbytes = len.div_ceil(8);
        assert!(
            bytes.len() >= nbytes,
            "need {nbytes} bytes for {len} bits, got {}",
            bytes.len()
        );
        let mut words = vec![0u64; words_for(len)];
        for (i, &b) in bytes[..nbytes].iter().enumerate() {
            words[i / 8] |= (b as u64) << ((i % 8) * 8);
        }
        let mut v = Self { words, len };
        v.mask_tail();
        v
    }

    /// A zero-copy view of the whole vector.
    #[inline]
    pub fn view(&self) -> SegmentView<'_> {
        SegmentView {
            words: &self.words,
            len: self.len,
        }
    }

    /// A zero-copy view of bits `start..end` — the unit of segment-at-a-time
    /// execution. The range must be word-aligned so the view can borrow the
    /// backing words directly: `start` on a word boundary, `end` on a word
    /// boundary or at `len`. Both allowed endings keep the view canonical
    /// (an interior segment fills its last word; a final segment inherits
    /// the parent's masked tail), so views feed the kernels unchecked.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or not word-aligned as above.
    pub fn view_range(&self, start: usize, end: usize) -> SegmentView<'_> {
        assert!(
            start <= end && end <= self.len,
            "segment {start}..{end} out of range (len {})",
            self.len
        );
        assert!(
            start.is_multiple_of(WORD_BITS),
            "segment start {start} must be word-aligned"
        );
        assert!(
            end.is_multiple_of(WORD_BITS) || end == self.len,
            "segment end {end} must be word-aligned or the vector end"
        );
        SegmentView {
            words: &self.words[start / WORD_BITS..words_for(end)],
            len: end - start,
        }
    }

    /// In-place AND with a segment view of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_assign_view(&mut self, rhs: SegmentView<'_>) {
        self.check_view_len(rhs);
        for (a, &b) in self.words.iter_mut().zip(rhs.words) {
            *a &= b;
        }
    }

    /// In-place OR with a segment view of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or_assign_view(&mut self, rhs: SegmentView<'_>) {
        self.check_view_len(rhs);
        for (a, &b) in self.words.iter_mut().zip(rhs.words) {
            *a |= b;
        }
    }

    /// In-place XOR with a segment view of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn xor_assign_view(&mut self, rhs: SegmentView<'_>) {
        self.check_view_len(rhs);
        for (a, &b) in self.words.iter_mut().zip(rhs.words) {
            *a ^= b;
        }
    }

    /// In-place AND-NOT with a segment view of the same length
    /// (`self & !rhs`).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_not_assign_view(&mut self, rhs: SegmentView<'_>) {
        self.check_view_len(rhs);
        for (a, &b) in self.words.iter_mut().zip(rhs.words) {
            *a &= !b;
        }
    }

    #[inline]
    fn check_view_len(&self, rhs: SegmentView<'_>) {
        assert_eq!(
            self.len, rhs.len,
            "bitmap length mismatch: {} vs {}",
            self.len, rhs.len
        );
    }

    /// Zeroes any bits at positions `>= len` in the last word.
    #[inline]
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    #[inline]
    fn check_len(&self, rhs: &Self) {
        assert_eq!(
            self.len, rhs.len,
            "bitmap length mismatch: {} vs {}",
            self.len, rhs.len
        );
    }
}

/// A zero-copy, word-aligned view of a contiguous bit range of a
/// [`BitVec`] — the operand type of segment-at-a-time execution.
///
/// A view upholds the same canonical-form invariant as `BitVec` (bits past
/// `len` in the last borrowed word are zero), guaranteed by the alignment
/// rules of [`BitVec::view_range`], so the fused kernels can combine views
/// without re-masking. Views are `Copy`: passing one costs two machine
/// words.
#[derive(Clone, Copy, Debug)]
pub struct SegmentView<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> SegmentView<'a> {
    /// Number of bits in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the view holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (canonically masked).
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Number of set bits in the viewed range.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit in the viewed range is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Copies the viewed range into an owned [`BitVec`].
    #[must_use]
    pub fn to_bitvec(&self) -> BitVec {
        BitVec::from_words_unmasked(self.words.to_vec(), self.len)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let shown = self.len.min(128);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if shown < self.len {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut v = BitVec::new();
        for b in iter {
            v.push(b);
        }
        v
    }
}

/// Iterator over positions of set bits, ascending. See [`BitVec::iter_ones`].
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

macro_rules! owned_binop {
    ($trait:ident, $method:ident, $assign:ident, $op:tt) => {
        impl $trait<&BitVec> for &BitVec {
            type Output = BitVec;
            /// Sizes the output once and writes each combined word
            /// directly — no clone-then-assign double pass.
            fn $method(self, rhs: &BitVec) -> BitVec {
                self.check_len(rhs);
                let words: Vec<u64> = self
                    .words
                    .iter()
                    .zip(&rhs.words)
                    .map(|(&a, &b)| a $op b)
                    .collect();
                BitVec::from_words_unmasked(words, self.len)
            }
        }
        impl $trait<&BitVec> for BitVec {
            type Output = BitVec;
            fn $method(mut self, rhs: &BitVec) -> BitVec {
                self.$assign(rhs);
                self
            }
        }
    };
}

owned_binop!(BitAnd, bitand, and_assign, &);
owned_binop!(BitOr, bitor, or_assign, |);
owned_binop!(BitXor, bitxor, xor_assign, ^);

impl BitAndAssign<&BitVec> for BitVec {
    fn bitand_assign(&mut self, rhs: &BitVec) {
        self.and_assign(rhs);
    }
}
impl BitOrAssign<&BitVec> for BitVec {
    fn bitor_assign(&mut self, rhs: &BitVec) {
        self.or_assign(rhs);
    }
}
impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}
impl Not for &BitVec {
    type Output = BitVec;
    fn not(self) -> BitVec {
        self.complement()
    }
}
impl Not for BitVec {
    type Output = BitVec;
    fn not(mut self) -> BitVec {
        self.not_assign();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.all());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(100);
        for i in (0..100).step_by(7) {
            v.set(i, true);
        }
        for i in 0..100 {
            assert_eq!(v.get(i), i % 7 == 0, "bit {i}");
        }
        v.set(0, false);
        assert!(!v.get(0));
    }

    #[test]
    fn push_grows() {
        let mut v = BitVec::new();
        for i in 0..200 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(v.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn complement_respects_len() {
        let v = BitVec::zeros(65);
        let c = v.complement();
        assert_eq!(c.count_ones(), 65);
        assert_eq!(c.words()[1], 1); // only bit 64 set in word 1
    }

    #[test]
    fn logical_ops() {
        let a = BitVec::from_indices(70, &[0, 1, 64, 69]);
        let b = BitVec::from_indices(70, &[1, 2, 64]);
        assert_eq!((&a & &b).iter_ones().collect::<Vec<_>>(), vec![1, 64]);
        assert_eq!(
            (&a | &b).iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 64, 69]
        );
        assert_eq!((&a ^ &b).iter_ones().collect::<Vec<_>>(), vec![0, 2, 69]);
        let mut anb = a.clone();
        anb.and_not_assign(&b);
        assert_eq!(anb.iter_ones().collect::<Vec<_>>(), vec![0, 69]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        a.and_assign(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn iter_ones_across_words() {
        let idx = [0usize, 63, 64, 127, 128, 200];
        let v = BitVec::from_indices(201, &idx);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idx);
        assert_eq!(v.first_one(), Some(0));
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BitVec::from_fn(77, |i| i % 5 == 2);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 10);
        assert_eq!(BitVec::from_bytes(77, &bytes), v);
    }

    #[test]
    fn from_bools_and_collect() {
        let bools: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let a = BitVec::from_bools(&bools);
        let b: BitVec = bools.iter().copied().collect();
        assert_eq!(a, b);
        assert_eq!(a.count_ones(), 25);
    }

    #[test]
    fn demorgan() {
        let a = BitVec::from_fn(90, |i| i % 3 == 0);
        let b = BitVec::from_fn(90, |i| i % 4 == 0);
        let lhs = (&a & &b).complement();
        let rhs = &a.complement() | &b.complement();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn set_all_clear_all() {
        let mut v = BitVec::zeros(67);
        v.set_all();
        assert!(v.all());
        v.clear_all();
        assert!(v.none());
    }

    #[test]
    fn extend_from_matches_push_loop() {
        // Every tail offset around the word boundary, including aligned.
        for a_len in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            for b_len in [0usize, 1, 64, 70, 130] {
                let a = BitVec::from_fn(a_len, |i| i % 3 == 0);
                let b = BitVec::from_fn(b_len, |i| i % 5 != 2);
                let mut got = a.clone();
                got.extend_from(&b);
                let mut want = a.clone();
                for i in 0..b_len {
                    want.push(b.get(i));
                }
                assert_eq!(got, want, "a_len={a_len} b_len={b_len}");
                assert_eq!(got.len(), a_len + b_len);
                assert_eq!(got.words().len(), words_for(a_len + b_len));
                // Canonical form survives: complement + count agree.
                assert_eq!(got.complement().count_ones(), got.count_zeros());
            }
        }
    }

    #[test]
    fn empty_vector_ops() {
        let a = BitVec::zeros(0);
        let b = BitVec::zeros(0);
        assert_eq!((&a & &b).len(), 0);
        assert_eq!(a.complement().count_ones(), 0);
        assert_eq!(a.iter_ones().count(), 0);
        assert_eq!(a.to_bytes().len(), 0);
    }
}
