//! Extension experiment: segment-at-a-time (morsel-driven) execution.
//!
//! Three measurements back the segmented executor and its default morsel
//! size (`DEFAULT_SEGMENT_BITS` = 32 KiB of bits):
//!
//! 1. **8-way AND/OR blocking sweep** — the pairwise folds the evaluators
//!    actually run (RangeEval's chains, equality's `or_range`), whole-
//!    bitmap vs segmented, across segment sizes. Whole-bitmap mode
//!    re-streams the full-length accumulator once per operand; blocking
//!    keeps it cache-resident, which is where the single-thread win
//!    lives once the working set outgrows L2.
//! 2. **Evaluator sweep** — full query spaces through `evaluate` vs
//!    `evaluate_segmented` for all four concrete algorithms, so the
//!    end-to-end overhead of windowed fetches and per-segment dispatch
//!    is on the record.
//! 3. **Density sweep** — equality-encoded indexes across cardinalities
//!    (per-slot density 1/C), checking the segmented path holds up from
//!    dense to sparse slots.
//!
//! Emits `BENCH_segmented_exec.json` at the workspace root and the usual
//! CSV under `results/`. `--quick` shrinks everything for CI smoke runs.

use std::time::Instant;

use bindex::bitvec::{kernels, SegmentView};
use bindex::core::eval::{evaluate, evaluate_segmented, Algorithm};
use bindex::core::DEFAULT_SEGMENT_BITS;
use bindex::relation::gen;
use bindex::relation::query::{full_space, Op, SelectionQuery};
use bindex::{Base, BitVec, BitmapIndex, Encoding, IndexSpec};
use bindex_bench::{f2, print_table, results_dir, Csv, RunProvenance};

struct Config {
    /// Bits per operand in the 8-way fold sweep.
    fold_bits: usize,
    fold_reps: usize,
    /// Rows in the end-to-end evaluator sweeps.
    rows: usize,
    cardinality: u32,
    workload_reps: usize,
}

const OPERANDS: usize = 8;

/// Segment sizes swept against the whole-bitmap baseline. The default
/// (32 KiB of bits) sits in the middle; the extremes bracket it so the
/// sweep shows why it was chosen.
const SEGMENT_SWEEP: [usize; 4] = [1 << 16, DEFAULT_SEGMENT_BITS, 1 << 20, 1 << 22];

/// One operand of the shared ~50%-dense generator
/// ([`bindex_bench::synthetic_bitmaps`]) — the same bits
/// `ext_batch_throughput`'s union and bandwidth sweeps fold, so the two
/// experiments measure the same workload. Density is irrelevant to the
/// dense kernels' cost — the density axis is swept end-to-end, where it
/// sets chain lengths.
fn random_bitmap(bits: usize, seed: u64) -> BitVec {
    bindex_bench::synthetic_bitmaps(bits, 1, seed)
        .pop()
        .expect("one bitmap")
}

/// Best-of-`reps` wall time of `f`, with a sink so the work is not
/// optimized away.
fn best_of(reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::MAX;
    let mut sink = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        sink ^= f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink < usize::MAX);
    best
}

/// The whole-bitmap pairwise fold: the accumulator is full row-count
/// width and is re-streamed once per operand.
fn fold_whole(operands: &[BitVec], and: bool) -> usize {
    let mut acc = operands[0].clone();
    for op in &operands[1..] {
        if and {
            acc.and_assign(op);
        } else {
            acc.or_assign(op);
        }
    }
    acc.count_ones()
}

/// The same fold blocked into `segment_bits`-sized morsels: the
/// accumulator segment stays cache-resident across all operands.
fn fold_segmented(operands: &[BitVec], and: bool, segment_bits: usize) -> usize {
    let bits = operands[0].len();
    let mut ones = 0usize;
    let mut lo = 0usize;
    while lo < bits {
        let hi = (lo + segment_bits).min(bits);
        let mut acc = operands[0].view_range(lo, hi).to_bitvec();
        for op in &operands[1..] {
            let view = op.view_range(lo, hi);
            if and {
                acc.and_assign_view(view);
            } else {
                acc.or_assign_view(view);
            }
        }
        ones += acc.count_ones();
        lo = hi;
    }
    ones
}

/// The 8-way count through the segmented executor's fused path: one pass
/// per segment through `kernels::count_*` over zero-copy views, no
/// intermediate materialization.
fn count_segmented(operands: &[BitVec], and: bool, segment_bits: usize) -> usize {
    let bits = operands[0].len();
    let mut ones = 0usize;
    let mut lo = 0usize;
    while lo < bits {
        let hi = (lo + segment_bits).min(bits);
        let views: Vec<SegmentView<'_>> = operands.iter().map(|op| op.view_range(lo, hi)).collect();
        ones += if and {
            kernels::count_and(&views)
        } else {
            kernels::count_or(&views)
        };
        lo = hi;
    }
    ones
}

struct FoldPoint {
    op: &'static str,
    variant: &'static str,
    /// `None` is a whole-bitmap variant.
    segment_bits: Option<usize>,
    seconds: f64,
    /// Relative to the whole-bitmap pairwise fold of the same operator —
    /// the code path the evaluators ran before segmented execution.
    speedup: f64,
}

fn fold_sweep(cfg: &Config) -> Vec<FoldPoint> {
    let operands: Vec<BitVec> = (0..OPERANDS as u64)
        .map(|s| random_bitmap(cfg.fold_bits, s + 1))
        .collect();
    let refs: Vec<&BitVec> = operands.iter().collect();
    let mut points = Vec::new();
    for (op, and) in [("and", true), ("or", false)] {
        let whole = best_of(cfg.fold_reps, || fold_whole(&operands, and));
        let expected = fold_whole(&operands, and);
        points.push(FoldPoint {
            op,
            variant: "pairwise",
            segment_bits: None,
            seconds: whole,
            speedup: 1.0,
        });
        for seg in SEGMENT_SWEEP {
            assert_eq!(fold_segmented(&operands, and, seg), expected);
            let s = best_of(cfg.fold_reps, || fold_segmented(&operands, and, seg));
            points.push(FoldPoint {
                op,
                variant: "pairwise",
                segment_bits: Some(seg),
                seconds: s,
                speedup: whole / s,
            });
        }
        // The count-query shape: the whole-bitmap path folds then
        // popcounts; the segmented executor runs the fused count kernel
        // per morsel and never materializes the conjunction.
        let fused_whole = best_of(cfg.fold_reps, || {
            if and {
                kernels::count_and(&refs)
            } else {
                kernels::count_or(&refs)
            }
        });
        points.push(FoldPoint {
            op,
            variant: "fused_count",
            segment_bits: None,
            seconds: fused_whole,
            speedup: whole / fused_whole,
        });
        for seg in SEGMENT_SWEEP {
            assert_eq!(count_segmented(&operands, and, seg), expected);
            let s = best_of(cfg.fold_reps, || count_segmented(&operands, and, seg));
            points.push(FoldPoint {
                op,
                variant: "fused_count",
                segment_bits: Some(seg),
                seconds: s,
                speedup: whole / s,
            });
        }
    }
    points
}

/// Best-of-`reps` seconds to answer the full query space against an
/// in-memory index, whole-bitmap or segmented.
fn workload_seconds(
    index: &BitmapIndex,
    cardinality: u32,
    algorithm: Algorithm,
    segment_bits: Option<usize>,
    reps: usize,
) -> f64 {
    let queries = full_space(cardinality);
    best_of(reps, || {
        let mut sink = 0usize;
        let mut src = index.source();
        for &q in &queries {
            let (found, _) = match segment_bits {
                None => evaluate(&mut src, q, algorithm).expect("evaluates"),
                Some(seg) => evaluate_segmented(&mut src, q, algorithm, seg).expect("evaluates"),
            };
            sink ^= found.count_ones();
        }
        sink
    })
}

struct EvalPoint {
    label: String,
    algorithm: &'static str,
    segment_bits: Option<usize>,
    seconds: f64,
    speedup: f64,
}

/// Whole-bitmap vs segmented (default morsel) for every concrete
/// algorithm, plus a segment-size sweep on RangeEval-Opt — the evaluator
/// whose n-AND seeding moves the most intermediate bytes.
fn evaluator_sweep(cfg: &Config) -> Vec<EvalPoint> {
    let col = gen::uniform(cfg.rows, cfg.cardinality, 7);
    // A two-component base: queries run per-component digit chains plus
    // cross-component combining, the multi-operand shape segment blocking
    // targets (single-fetch queries are bounded by result assembly, not
    // operator work, and are covered by the density sweep's low end).
    let digits = (f64::from(cfg.cardinality)).sqrt().ceil() as u32;
    let base = Base::from_msb(&[digits, digits]).expect("base");
    let combos: [(Encoding, Algorithm, &'static str); 4] = [
        (Encoding::Range, Algorithm::RangeEval, "RangeEval"),
        (Encoding::Range, Algorithm::RangeEvalOpt, "RangeEvalOpt"),
        (Encoding::Equality, Algorithm::EqualityEval, "EqualityEval"),
        (Encoding::Interval, Algorithm::IntervalEval, "IntervalEval"),
    ];
    let mut points = Vec::new();
    for (encoding, algorithm, name) in combos {
        let spec = IndexSpec::new(base.clone(), encoding);
        let index = BitmapIndex::build(&col, spec).expect("index builds");
        let whole = workload_seconds(&index, cfg.cardinality, algorithm, None, cfg.workload_reps);
        points.push(EvalPoint {
            label: format!("{name} whole"),
            algorithm: name,
            segment_bits: None,
            seconds: whole,
            speedup: 1.0,
        });
        let sweep: Vec<usize> = if matches!(algorithm, Algorithm::RangeEvalOpt) {
            // A segment at or above the row count degenerates to the
            // whole-bitmap pass plus pure assembly overhead; sweep only
            // sizes that actually block.
            SEGMENT_SWEEP
                .into_iter()
                .filter(|&s| s < cfg.rows)
                .collect()
        } else {
            vec![DEFAULT_SEGMENT_BITS]
        };
        for seg in sweep {
            let s = workload_seconds(
                &index,
                cfg.cardinality,
                algorithm,
                Some(seg),
                cfg.workload_reps,
            );
            points.push(EvalPoint {
                label: format!("{name} seg={seg}"),
                algorithm: name,
                segment_bits: Some(seg),
                seconds: s,
                speedup: whole / s,
            });
        }
    }
    points
}

struct DensityPoint {
    cardinality: u32,
    density: f64,
    whole_s: f64,
    seg_s: f64,
    speedup: f64,
}

/// Equality-encoded indexes across cardinalities: per-slot density is
/// 1/C, so this sweeps dense → sparse operands through the same
/// segmented path. Only range predicates are timed — `or_range`'s chain
/// length is what the density axis controls (an equality probe fetches a
/// single slot whatever the density, so it carries no signal here).
fn density_sweep(cfg: &Config, quick: bool) -> Vec<DensityPoint> {
    let mut points = Vec::new();
    for cardinality in [16u32, 64, 256] {
        let col = gen::uniform(cfg.rows, cardinality, 11);
        let spec = IndexSpec::new(Base::single(cardinality).expect("base"), Encoding::Equality);
        let index = BitmapIndex::build(&col, spec).expect("index builds");
        let queries: Vec<SelectionQuery> = (0..cardinality)
            .map(|v| SelectionQuery::new(Op::Le, v))
            .collect();
        // Low cardinalities finish in milliseconds; give best-of more
        // shots there so scheduler noise does not swamp the signal.
        let reps = if cardinality < 256 && !quick {
            cfg.workload_reps * 3
        } else {
            cfg.workload_reps
        };
        let run = |segment_bits: Option<usize>| {
            best_of(reps, || {
                let mut sink = 0usize;
                let mut src = index.source();
                for &q in &queries {
                    let (found, _) = match segment_bits {
                        None => evaluate(&mut src, q, Algorithm::EqualityEval).expect("evaluates"),
                        Some(seg) => evaluate_segmented(&mut src, q, Algorithm::EqualityEval, seg)
                            .expect("evaluates"),
                    };
                    sink ^= found.count_ones();
                }
                sink
            })
        };
        let whole_s = run(None);
        let seg_s = run(Some(DEFAULT_SEGMENT_BITS));
        points.push(DensityPoint {
            cardinality,
            density: 1.0 / f64::from(cardinality),
            whole_s,
            seg_s,
            speedup: whole_s / seg_s,
        });
    }
    points
}

fn seg_label(seg: Option<usize>) -> String {
    seg.map_or_else(|| "whole".into(), |s| s.to_string())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let provenance = RunProvenance::capture(1);
    let cfg = if quick {
        Config {
            fold_bits: 1 << 20,
            fold_reps: 5,
            rows: 1 << 15,
            cardinality: 20,
            workload_reps: 2,
        }
    } else {
        Config {
            // 32 MiB per operand: the 8-operand working set (256 MiB)
            // outruns the last-level cache, which is where whole-bitmap
            // accumulator re-streaming starts paying full price.
            fold_bits: 1 << 28,
            fold_reps: 10,
            rows: 1 << 21,
            cardinality: 50,
            workload_reps: 3,
        }
    };

    let folds = fold_sweep(&cfg);
    print_table(
        &format!("8-way AND/OR, {} bits/operand", cfg.fold_bits),
        &["op", "variant", "segment_bits", "seconds", "speedup"],
        &folds
            .iter()
            .map(|p| {
                vec![
                    p.op.to_string(),
                    p.variant.to_string(),
                    seg_label(p.segment_bits),
                    format!("{:.6}", p.seconds),
                    f2(p.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let evals = evaluator_sweep(&cfg);
    print_table(
        &format!(
            "full query space, {} rows, cardinality {}",
            cfg.rows, cfg.cardinality
        ),
        &["configuration", "seconds", "speedup"],
        &evals
            .iter()
            .map(|p| vec![p.label.clone(), format!("{:.6}", p.seconds), f2(p.speedup)])
            .collect::<Vec<_>>(),
    );

    let densities = density_sweep(&cfg, quick);
    print_table(
        "equality slots, dense → sparse (segmented at default)",
        &["cardinality", "slot_density", "whole_s", "seg_s", "speedup"],
        &densities
            .iter()
            .map(|p| {
                vec![
                    p.cardinality.to_string(),
                    format!("{:.4}", p.density),
                    format!("{:.6}", p.whole_s),
                    format!("{:.6}", p.seg_s),
                    f2(p.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut csv = Csv::create(
        "ext_segmented_exec",
        &["section", "label", "segment_bits", "seconds", "speedup"],
    )
    .expect("csv");
    for p in &folds {
        csv.row(&[
            &"fold_8way",
            &format!("{}_{}", p.op, p.variant),
            &seg_label(p.segment_bits),
            &format!("{:.6}", p.seconds),
            &f2(p.speedup),
        ])
        .expect("row");
    }
    for p in &evals {
        csv.row(&[
            &"evaluators",
            &p.algorithm,
            &seg_label(p.segment_bits),
            &format!("{:.6}", p.seconds),
            &f2(p.speedup),
        ])
        .expect("row");
    }
    for p in &densities {
        csv.row(&[
            &"density",
            &format!("card_{}", p.cardinality),
            &DEFAULT_SEGMENT_BITS,
            &format!("{:.6}", p.seg_s),
            &f2(p.speedup),
        ])
        .expect("row");
    }
    println!("\nCSV: {}", csv.path().display());

    // Hand-rolled JSON (no serde in the dependency set).
    let fold_json: Vec<String> = folds
        .iter()
        .map(|p| {
            format!(
                "    {{\"op\": \"{}\", \"variant\": \"{}\", \"segment_bits\": {}, \
                 \"seconds\": {:.6}, \"speedup\": {:.3}}}",
                p.op,
                p.variant,
                p.segment_bits
                    .map_or_else(|| "null".into(), |s| s.to_string()),
                p.seconds,
                p.speedup
            )
        })
        .collect();
    let eval_json: Vec<String> = evals
        .iter()
        .map(|p| {
            format!(
                "    {{\"algorithm\": \"{}\", \"segment_bits\": {}, \"seconds\": {:.6}, \
                 \"speedup\": {:.3}}}",
                p.algorithm,
                p.segment_bits
                    .map_or_else(|| "null".into(), |s| s.to_string()),
                p.seconds,
                p.speedup
            )
        })
        .collect();
    let density_json: Vec<String> = densities
        .iter()
        .map(|p| {
            format!(
                "    {{\"cardinality\": {}, \"slot_density\": {:.4}, \
                 \"whole_seconds\": {:.6}, \"segmented_seconds\": {:.6}, \"speedup\": {:.3}}}",
                p.cardinality, p.density, p.whole_s, p.seg_s, p.speedup
            )
        })
        .collect();
    // The headline numbers: the segmented executor (fused per-morsel
    // count at the default morsel size) against the whole-bitmap pairwise
    // path, for the 8-way conjunction and disjunction.
    let headline = |op: &str| {
        folds
            .iter()
            .find(|p| {
                p.op == op
                    && p.variant == "fused_count"
                    && p.segment_bits == Some(DEFAULT_SEGMENT_BITS)
            })
            .map_or(0.0, |p| p.speedup)
    };
    let json = format!(
        "{{\n  \"experiment\": \"segmented_exec\",\n  \"quick\": {quick},\n  {prov},\n  \
         \"default_segment_bits\": {default},\n  \"fold_bits\": {fold_bits},\n  \
         \"fold_operands\": {operands},\n  \"rows\": {rows},\n  \
         \"and_8way_speedup_at_default\": {and_sp:.3},\n  \
         \"or_8way_speedup_at_default\": {or_sp:.3},\n  \
         \"fold_8way\": [\n{folds}\n  ],\n  \"evaluators\": [\n{evals}\n  ],\n  \
         \"density\": [\n{densities}\n  ]\n}}\n",
        prov = provenance.json_fields(),
        default = DEFAULT_SEGMENT_BITS,
        fold_bits = cfg.fold_bits,
        operands = OPERANDS,
        rows = cfg.rows,
        and_sp = headline("and"),
        or_sp = headline("or"),
        folds = fold_json.join(",\n"),
        evals = eval_json.join(",\n"),
        densities = density_json.join(",\n"),
    );
    let json_path = results_dir()
        .parent()
        .map(|p| p.join("BENCH_segmented_exec.json"))
        .expect("results dir has a parent");
    std::fs::write(&json_path, json).expect("write json");
    println!("JSON: {}", json_path.display());
}
