//! Attribute value decomposition (Section 2, dimension 1 of the design
//! space).
//!
//! A [`Base`] is the mixed-radix base `<b_n, b_{n-1}, …, b_1>` of an index:
//! an attribute value `v` decomposes into `n` digits
//! `v = v_n · (b_{n-1} ⋯ b_1) + … + v_i · (b_{i-1} ⋯ b_1) + … + v_1`,
//! with digit `v_i ∈ [0, b_i)`. Component 1 is the **least significant**.
//!
//! Internally bases are stored least-significant first (`bases[0] = b_1`);
//! [`Base::display`]/`Display` prints the paper's `<b_n, …, b_1>` order.
//!
//! A base is *well-defined* when every `b_i ≥ 2`; it *covers* cardinality
//! `C` when `Π b_i ≥ C`; and it is *tight* for `C` when no single base
//! number can be decremented (removing a component whose base would drop
//! to 1) while still covering `C`. Every non-tight index is dominated in
//! both space and time by a tight one, so enumerations are over tight bases
//! (DESIGN.md §5).

use crate::error::{Error, Result};

/// The mixed-radix base of a decomposed index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Base {
    /// Base numbers, least significant (component 1) first.
    lsb_first: Vec<u32>,
}

impl Base {
    /// Creates a base from component base numbers, least significant first.
    ///
    /// Fails unless every `b_i ≥ 2` and the sequence is non-empty.
    pub fn new(lsb_first: Vec<u32>) -> Result<Self> {
        if lsb_first.is_empty() {
            return Err(Error::InvalidBase("empty base sequence".into()));
        }
        if let Some(&bad) = lsb_first.iter().find(|&&b| b < 2) {
            return Err(Error::InvalidBase(format!(
                "base number {bad} < 2 is not well-defined"
            )));
        }
        Ok(Self { lsb_first })
    }

    /// Creates a base written most-significant first, i.e. exactly as the
    /// paper writes `<b_n, …, b_1>`.
    pub fn from_msb(msb_first: &[u32]) -> Result<Self> {
        let mut v = msb_first.to_vec();
        v.reverse();
        Self::new(v)
    }

    /// A single-component base `<C>` (the paper's non-decomposed case).
    pub fn single(c: u32) -> Result<Self> {
        Self::new(vec![c])
    }

    /// A uniform base-`b` index with `n` components.
    pub fn uniform(b: u32, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidBase("zero components".into()));
        }
        Self::new(vec![b; n])
    }

    /// The smallest uniform base-`b` index covering cardinality `c`
    /// (`n = ⌈log_b c⌉` components) — e.g. the classical Bit-Sliced index
    /// for `b = 2`.
    pub fn uniform_for(b: u32, c: u32) -> Result<Self> {
        if b < 2 {
            return Err(Error::InvalidBase(format!("base number {b} < 2")));
        }
        if c < 2 {
            return Err(Error::InvalidBase(format!(
                "attribute cardinality {c} < 2 needs no index"
            )));
        }
        let mut n = 0usize;
        let mut prod: u128 = 1;
        while prod < u128::from(c) {
            prod *= u128::from(b);
            n += 1;
        }
        Self::uniform(b, n)
    }

    /// Number of components `n`.
    #[inline]
    pub fn n_components(&self) -> usize {
        self.lsb_first.len()
    }

    /// Base number of component `i` (**1-based**, as in the paper;
    /// component 1 is least significant).
    ///
    /// # Panics
    /// Panics if `i` is 0 or greater than `n`.
    #[inline]
    pub fn component(&self, i: usize) -> u32 {
        assert!(
            i >= 1 && i <= self.lsb_first.len(),
            "component {i} out of range"
        );
        self.lsb_first[i - 1]
    }

    /// Base numbers, least significant first.
    #[inline]
    pub fn as_lsb_slice(&self) -> &[u32] {
        &self.lsb_first
    }

    /// Base numbers, most significant first (paper order).
    pub fn to_msb_vec(&self) -> Vec<u32> {
        let mut v = self.lsb_first.clone();
        v.reverse();
        v
    }

    /// `Π b_i` — the number of representable values.
    pub fn product(&self) -> u128 {
        self.lsb_first
            .iter()
            .fold(1u128, |acc, &b| acc * u128::from(b))
    }

    /// `true` if the base represents every value in `0 .. c`.
    pub fn covers(&self, c: u32) -> bool {
        self.product() >= u128::from(c)
    }

    /// `true` if no single base number can be decremented (a component whose
    /// base would reach 1 is removed instead) while still covering `c`.
    pub fn is_tight_for(&self, c: u32) -> bool {
        if !self.covers(c) {
            return false;
        }
        let prod = self.product();
        self.lsb_first.iter().all(|&b| {
            let reduced = prod / u128::from(b) * u128::from(b - 1).max(1);
            reduced < u128::from(c)
        })
    }

    /// Decomposes `v` into digits, least significant first.
    ///
    /// Fails if `v` is not representable (`v ≥ Π b_i`).
    ///
    /// ```
    /// use bindex_core::Base;
    /// // v = 62 in base <10, 10, 10>: digits <0, 6, 2>.
    /// let base = Base::uniform(10, 3).unwrap();
    /// assert_eq!(base.decompose(62).unwrap(), vec![2, 6, 0]);
    /// assert_eq!(base.compose(&[2, 6, 0]).unwrap(), 62);
    /// ```
    pub fn decompose(&self, v: u32) -> Result<Vec<u32>> {
        if u128::from(v) >= self.product() {
            return Err(Error::ValueOutOfRange {
                value: v,
                cardinality: self.product().min(u128::from(u32::MAX)) as u32,
            });
        }
        let mut digits = Vec::with_capacity(self.lsb_first.len());
        let mut rest = v;
        for &b in &self.lsb_first {
            digits.push(rest % b);
            rest /= b;
        }
        Ok(digits)
    }

    /// Recomposes a value from digits (least significant first) — the
    /// inverse of [`Base::decompose`].
    ///
    /// Fails if the digit count is wrong or any digit is out of range.
    pub fn compose(&self, digits_lsb: &[u32]) -> Result<u32> {
        if digits_lsb.len() != self.lsb_first.len() {
            return Err(Error::InvalidBase(format!(
                "expected {} digits, got {}",
                self.lsb_first.len(),
                digits_lsb.len()
            )));
        }
        let mut v: u64 = 0;
        let mut weight: u64 = 1;
        for (&d, &b) in digits_lsb.iter().zip(&self.lsb_first) {
            if d >= b {
                return Err(Error::InvalidBase(format!("digit {d} >= base {b}")));
            }
            v += u64::from(d) * weight;
            weight *= u64::from(b);
        }
        Ok(v as u32)
    }

    /// Sum of the base numbers (useful in space accounting:
    /// range-encoded space is `Σ b_i − n`).
    pub fn sum(&self) -> u64 {
        self.lsb_first.iter().map(|&b| u64::from(b)).sum()
    }

    /// Arranges a multiset of base numbers in the most time-efficient order:
    /// the **largest** base becomes component 1 (its expected-scan weight is
    /// 4/3 instead of 2 — see `cost`), the rest follow in ascending order
    /// toward the most significant component.
    pub fn best_arrangement(mut multiset: Vec<u32>) -> Result<Self> {
        multiset.sort_unstable(); // ascending
        multiset.reverse(); // descending: largest first = component 1
        Self::new(multiset)
    }

    /// Paper-style rendering `<b_n, b_{n-1}, …, b_1>`.
    pub fn display(&self) -> String {
        format!("{self}")
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (k, b) in self.lsb_first.iter().rev().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ">")
    }
}

/// Enumerates all *tight* bases for cardinality `c` with at most
/// `max_components` components, as non-increasing multisets arranged
/// time-optimally (largest base = component 1).
///
/// `max_components = usize::MAX` means "up to `⌈log2 c⌉`", the natural
/// maximum (more components cannot stay well-defined and tight).
pub fn tight_bases(c: u32, max_components: usize) -> Vec<Base> {
    assert!(c >= 2, "cardinality must be at least 2");
    let nmax = max_components.min(c.next_power_of_two().trailing_zeros() as usize + 1);
    let mut out = Vec::new();
    let mut stack = Vec::new();
    // Enumerate non-increasing sequences (descending multisets).
    fn rec(c: u32, nmax: usize, cap: u32, prod: u128, stack: &mut Vec<u32>, out: &mut Vec<Base>) {
        if prod >= u128::from(c) {
            // candidate: check tightness and record
            let base = Base::new(stack.clone()).expect("all >= 2");
            if base.is_tight_for(c) {
                // Stack is descending => component 1 (index 0) holds the
                // largest base: already the best arrangement.
                out.push(base);
            }
            return; // extending a covering base can never be tight
        }
        if stack.len() == nmax {
            return;
        }
        // Next base number: between 2 and min(cap, what's needed alone).
        let needed = u128::from(c).div_ceil(prod).min(u128::from(c)) as u32;
        let hi = cap.min(needed);
        for b in 2..=hi {
            stack.push(b);
            rec(c, nmax, b, prod * u128::from(b), stack, out);
            stack.pop();
        }
    }
    rec(c, nmax, c, 1, &mut stack, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_bases() {
        assert!(Base::new(vec![]).is_err());
        assert!(Base::new(vec![3, 1]).is_err());
        assert!(Base::new(vec![0]).is_err());
        assert!(Base::new(vec![2]).is_ok());
    }

    #[test]
    fn msb_lsb_round() {
        let b = Base::from_msb(&[3, 4, 5]).unwrap();
        assert_eq!(b.as_lsb_slice(), &[5, 4, 3]);
        assert_eq!(b.to_msb_vec(), vec![3, 4, 5]);
        assert_eq!(b.component(1), 5);
        assert_eq!(b.component(3), 3);
        assert_eq!(b.display(), "<3, 4, 5>");
    }

    #[test]
    fn decompose_paper_example() {
        // Figure 3: base-<3, 3> over C = 9: value 7 = 2*3 + 1.
        let b = Base::from_msb(&[3, 3]).unwrap();
        assert_eq!(b.decompose(7).unwrap(), vec![1, 2]);
        assert_eq!(b.compose(&[1, 2]).unwrap(), 7);
        assert_eq!(b.decompose(0).unwrap(), vec![0, 0]);
        assert_eq!(b.decompose(8).unwrap(), vec![2, 2]);
        assert!(b.decompose(9).is_err());
    }

    #[test]
    fn decompose_compose_roundtrip_mixed_radix() {
        let b = Base::from_msb(&[2, 5, 3]).unwrap(); // product 30
        for v in 0..30 {
            let d = b.decompose(v).unwrap();
            assert_eq!(b.compose(&d).unwrap(), v);
            for (i, &digit) in d.iter().enumerate() {
                assert!(digit < b.as_lsb_slice()[i]);
            }
        }
    }

    #[test]
    fn compose_rejects_bad_digits() {
        let b = Base::from_msb(&[3, 3]).unwrap();
        assert!(b.compose(&[3, 0]).is_err());
        assert!(b.compose(&[0]).is_err());
    }

    #[test]
    fn digits_are_ordered_correctly() {
        // base <b2=4, b1=10>, v = 37 = 3*10 + 7
        let b = Base::from_msb(&[4, 10]).unwrap();
        assert_eq!(b.decompose(37).unwrap(), vec![7, 3]);
    }

    #[test]
    fn uniform_for_covers_minimally() {
        let b = Base::uniform_for(2, 1000).unwrap();
        assert_eq!(b.n_components(), 10);
        assert!(b.covers(1000));
        assert!(!Base::uniform(2, 9).unwrap().covers(1000));
        let b = Base::uniform_for(10, 1000).unwrap();
        assert_eq!(b.n_components(), 3);
    }

    #[test]
    fn tightness() {
        // 27*36 = 972 < 1000 and 28*35 = 980 < 1000 => tight.
        assert!(Base::from_msb(&[28, 36]).unwrap().is_tight_for(1000));
    }

    #[test]
    fn tightness_32_32() {
        // 32*32 = 1024 >= 1000; decrement either: 31*32 = 992 < 1000 => tight.
        assert!(Base::from_msb(&[32, 32]).unwrap().is_tight_for(1000));
        // 33*32 = 1056; decrement 33 -> 32*32 = 1024 >= 1000 => not tight.
        assert!(!Base::from_msb(&[33, 32]).unwrap().is_tight_for(1000));
        // all-2 base for C=1000: 2^10=1024, dropping one gives 512 < 1000 => tight.
        assert!(Base::uniform(2, 10).unwrap().is_tight_for(1000));
    }

    #[test]
    fn best_arrangement_puts_largest_first() {
        let b = Base::best_arrangement(vec![3, 17, 5]).unwrap();
        assert_eq!(b.component(1), 17);
        assert_eq!(b.to_msb_vec(), vec![3, 5, 17]);
    }

    #[test]
    fn tight_enumeration_small() {
        let bases = tight_bases(8, usize::MAX);
        // Expect multisets with product >= 8, tight: {8}, {2,4}, {3,3}, {2,2,2}
        let mut found: Vec<Vec<u32>> = bases.iter().map(|b| b.to_msb_vec()).collect();
        found.sort();
        assert!(found.contains(&vec![8]));
        assert!(found.contains(&vec![2, 4]));
        assert!(found.contains(&vec![3, 3]));
        assert!(found.contains(&vec![2, 2, 2]));
        // {2, 5}: 2*5=10 >= 8, decrement 5 -> 2*4 = 8 >= 8 => not tight.
        assert!(!found.contains(&vec![2, 5]));
        // {9}: 9 >= 8, decrement -> 8 >= 8 => not tight.
        assert!(!found.contains(&vec![9]));
        assert_eq!(found.len(), 4, "{found:?}");
    }

    #[test]
    fn tight_enumeration_all_covers_and_tight() {
        for c in [10u32, 37, 100] {
            for b in tight_bases(c, usize::MAX) {
                assert!(b.covers(c), "{b} does not cover {c}");
                assert!(b.is_tight_for(c), "{b} not tight for {c}");
                // arrangement: component 1 largest
                let msb = b.to_msb_vec();
                assert!(msb.windows(2).all(|w| w[0] <= w[1]), "{b} not arranged");
            }
        }
    }

    #[test]
    fn tight_enumeration_respects_max_components() {
        let bases = tight_bases(100, 2);
        assert!(bases.iter().all(|b| b.n_components() <= 2));
        assert!(bases.iter().any(|b| b.to_msb_vec() == vec![10, 10]));
    }

    #[test]
    fn sum_and_product() {
        let b = Base::from_msb(&[4, 5]).unwrap();
        assert_eq!(b.sum(), 9);
        assert_eq!(b.product(), 20);
    }
}
