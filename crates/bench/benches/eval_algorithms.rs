//! Microbench: wall-clock comparison of RangeEval vs RangeEval-Opt vs the
//! equality evaluator on a 100k-row relation — the paper's Section 3
//! improvement measured end-to-end rather than in scan counts.

use bindex::core::eval::{evaluate, Algorithm};
use bindex::relation::{gen, query};
use bindex::{Base, BitmapIndex, Encoding, IndexSpec};
use bindex_bench::microbench::Criterion;
use bindex_bench::{criterion_group, criterion_main};
use std::hint::black_box;

const N: usize = 100_000;
const C: u32 = 100;

fn bench(c: &mut Criterion) {
    let col = gen::uniform(N, C, 11);
    let range_idx = BitmapIndex::build(
        &col,
        IndexSpec::new(Base::uniform(10, 2).unwrap(), Encoding::Range),
    )
    .unwrap();
    let eq_idx = BitmapIndex::build(
        &col,
        IndexSpec::new(Base::uniform(10, 2).unwrap(), Encoding::Equality),
    )
    .unwrap();
    let queries = query::sample(C, 64, 3);

    let mut g = c.benchmark_group("eval_algorithms");
    g.bench_function("range_eval_base10x2", |b| {
        b.iter(|| {
            for &q in &queries {
                let (found, _) =
                    evaluate(&mut range_idx.source(), q, Algorithm::RangeEval).unwrap();
                black_box(found.count_ones());
            }
        })
    });
    g.bench_function("range_eval_opt_base10x2", |b| {
        b.iter(|| {
            for &q in &queries {
                let (found, _) =
                    evaluate(&mut range_idx.source(), q, Algorithm::RangeEvalOpt).unwrap();
                black_box(found.count_ones());
            }
        })
    });
    g.bench_function("equality_eval_base10x2", |b| {
        b.iter(|| {
            for &q in &queries {
                let (found, _) =
                    evaluate(&mut eq_idx.source(), q, Algorithm::EqualityEval).unwrap();
                black_box(found.count_ones());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
