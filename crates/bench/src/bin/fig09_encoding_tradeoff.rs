//! **Figure 9** — Space–time tradeoff of range-encoded vs equality-encoded
//! indexes, for C ∈ {10, 100, 1000} (pass custom cardinalities as
//! arguments).
//!
//! For every tight base the analytic `Space(I)` / `Time(I)` is computed
//! under both encodings, the Pareto frontiers are printed, and the
//! dominance relation between the two frontiers is summarized — the
//! paper's conclusion being that range encoding offers the better
//! tradeoff in most cases (the two coincide at the all-binary point,
//! where the encodings are identical).

use bindex::core::design::frontier::{all_points, pareto};
use bindex::Encoding;
use bindex_bench::{f3, print_table, Csv};

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let cards = if args.is_empty() {
        vec![10, 100, 1000]
    } else {
        args
    };

    for c in cards {
        let range = pareto(all_points(c, Encoding::Range, usize::MAX));
        let equality = pareto(all_points(c, Encoding::Equality, usize::MAX));

        let mut csv = Csv::create(
            &format!("fig09_encoding_tradeoff_c{c}"),
            &["encoding", "base", "space_bitmaps", "time_scans"],
        )
        .unwrap();
        let mut rows = Vec::new();
        for (enc, points) in [("range", &range), ("equality", &equality)] {
            for p in points {
                csv.row(&[&enc, &p.base, &p.space, &f3(p.time)]).unwrap();
                rows.push(vec![
                    enc.to_string(),
                    p.base.to_string(),
                    p.space.to_string(),
                    f3(p.time),
                ]);
            }
        }
        print_table(
            &format!("Figure 9: encoding tradeoff frontiers, C = {c}"),
            &["encoding", "base", "space (bitmaps)", "time (exp. scans)"],
            &rows,
        );

        // Dominance summary: for each equality frontier point, does some
        // range point use no more space and no more time?
        let dominated = equality
            .iter()
            .filter(|e| {
                range
                    .iter()
                    .any(|r| r.space <= e.space && r.time <= e.time + 1e-9)
            })
            .count();
        println!(
            "\nC = {c}: {dominated}/{} equality-frontier points are matched-or-beaten by a range-encoded index.",
            equality.len()
        );
        println!("CSV: {}", csv.path().display());
    }
}
