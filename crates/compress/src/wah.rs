//! Word-Aligned Hybrid (WAH) compressed bitmaps.
//!
//! WAH post-dates the paper (Wu, Otoo & Shoshani) and is included here as an
//! ablation for Section 9: a codec designed *for bitmaps* that supports
//! logical operations directly on the compressed representation, unlike the
//! general-purpose byte codecs the paper evaluates.
//!
//! Encoding: a sequence of 32-bit words over 31-bit *groups* of the input.
//! * literal word: MSB = 0, low 31 bits hold one group verbatim;
//! * fill word:    MSB = 1, next bit = fill value, low 30 bits = number of
//!   consecutive all-zero or all-one groups (≥ 1).
//!
//! The final group may be partial; the bitmap remembers its exact bit length
//! and keeps tail bits zero (same canonical-form rule as `BitVec`).

use bindex_bitvec::BitVec;

const GROUP_BITS: usize = 31;
const GROUP_MASK: u32 = (1 << GROUP_BITS) - 1;
const FILL_FLAG: u32 = 1 << 31;
const FILL_VALUE: u32 = 1 << 30;
const MAX_FILL: u32 = (1 << 30) - 1;

/// A WAH-compressed immutable bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WahBitmap {
    words: Vec<u32>,
    /// Exact number of bits represented.
    len: usize,
}

impl WahBitmap {
    /// Compresses a [`BitVec`].
    pub fn from_bitvec(bits: &BitVec) -> Self {
        let len = bits.len();
        let ngroups = len.div_ceil(GROUP_BITS);
        let mut words: Vec<u32> = Vec::new();
        for g in 0..ngroups {
            let group = extract_group(bits, g);
            push_group(&mut words, group);
        }
        Self { words, len }
    }

    /// Decompresses back to a [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        let mut g = 0usize; // group index
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let count = (w & MAX_FILL) as usize;
                if w & FILL_VALUE != 0 {
                    for gg in g..g + count {
                        write_group(&mut out, gg, GROUP_MASK);
                    }
                }
                g += count;
            } else {
                write_group(&mut out, g, w & GROUP_MASK);
                g += 1;
            }
        }
        out
    }

    /// Number of bits represented.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the compressed form in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Number of set bits, computed without decompressing.
    pub fn count_ones(&self) -> usize {
        let mut ones = 0usize;
        let mut g = 0usize;
        let ngroups = self.len.div_ceil(GROUP_BITS);
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let count = (w & MAX_FILL) as usize;
                if w & FILL_VALUE != 0 {
                    for gg in g..g + count {
                        ones += group_width(self.len, ngroups, gg);
                    }
                }
                g += count;
            } else {
                ones += (w & GROUP_MASK).count_ones() as usize;
                g += 1;
            }
        }
        ones
    }

    /// Bitwise AND on the compressed form.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and(&self, rhs: &Self) -> Self {
        self.binary_op(rhs, |a, b| a & b)
    }

    /// Bitwise OR on the compressed form.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or(&self, rhs: &Self) -> Self {
        self.binary_op(rhs, |a, b| a | b)
    }

    /// Bitwise XOR on the compressed form.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn xor(&self, rhs: &Self) -> Self {
        self.binary_op(rhs, |a, b| a ^ b)
    }

    /// Bitwise NOT on the compressed form (length-aware).
    pub fn not(&self) -> Self {
        let ngroups = self.len.div_ceil(GROUP_BITS);
        let mut words = Vec::with_capacity(self.words.len());
        let mut g = 0usize;
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let count = w & MAX_FILL;
                g += count as usize;
                words.push(w ^ FILL_VALUE);
            } else {
                push_group(&mut words, !w & GROUP_MASK);
                g += 1;
            }
        }
        let mut out = Self {
            words,
            len: self.len,
        };
        debug_assert_eq!(g, ngroups);
        out.mask_tail();
        out
    }

    fn binary_op(&self, rhs: &Self, op: impl Fn(u32, u32) -> u32) -> Self {
        assert_eq!(
            self.len, rhs.len,
            "WAH length mismatch: {} vs {}",
            self.len, rhs.len
        );
        let mut a = RunIter::new(&self.words);
        let mut b = RunIter::new(&rhs.words);
        let mut words = Vec::new();
        let mut ra = a.next();
        let mut rb = b.next();
        while let (Some(mut xa), Some(mut xb)) = (ra, rb) {
            let take = xa.count.min(xb.count);
            match (xa.kind, xb.kind) {
                (RunKind::Fill(fa), RunKind::Fill(fb)) => {
                    let v = op(fill_word(fa), fill_word(fb)) & GROUP_MASK;
                    push_fill_or_literals(&mut words, v, take);
                }
                (RunKind::Fill(fa), RunKind::Literal(lb)) => {
                    push_group(&mut words, op(fill_word(fa), lb) & GROUP_MASK);
                }
                (RunKind::Literal(la), RunKind::Fill(fb)) => {
                    push_group(&mut words, op(la, fill_word(fb)) & GROUP_MASK);
                }
                (RunKind::Literal(la), RunKind::Literal(lb)) => {
                    push_group(&mut words, op(la, lb) & GROUP_MASK);
                }
            }
            xa.count -= take;
            xb.count -= take;
            ra = if xa.count == 0 { a.next() } else { Some(xa) };
            rb = if xb.count == 0 { b.next() } else { Some(xb) };
        }
        assert!(ra.is_none() && rb.is_none(), "WAH group counts disagree");
        let mut out = Self {
            words,
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Re-normalizes the (possibly dirty) final group so tail bits are zero.
    fn mask_tail(&mut self) {
        let rem = self.len % GROUP_BITS;
        if rem == 0 || self.len == 0 {
            return;
        }
        let tail_mask = (1u32 << rem) - 1;
        // Pop trailing words until we isolate the final group, fix it, re-push.
        let Some(&last) = self.words.last() else {
            return;
        };
        if last & FILL_FLAG != 0 {
            let count = last & MAX_FILL;
            let fill = last & FILL_VALUE != 0;
            if !fill {
                return; // zero fill already canonical
            }
            self.words.pop();
            if count > 1 {
                self.words.push(FILL_FLAG | FILL_VALUE | (count - 1));
            }
            push_group(&mut self.words, GROUP_MASK & tail_mask);
        } else {
            let fixed = last & GROUP_MASK & tail_mask;
            self.words.pop();
            push_group(&mut self.words, fixed);
        }
    }
}

/// Width in bits of group `g` of a bitmap with `len` bits and `ngroups` groups.
fn group_width(len: usize, ngroups: usize, g: usize) -> usize {
    if g + 1 == ngroups {
        let rem = len % GROUP_BITS;
        if rem == 0 {
            GROUP_BITS
        } else {
            rem
        }
    } else {
        GROUP_BITS
    }
}

fn fill_word(fill: bool) -> u32 {
    if fill {
        GROUP_MASK
    } else {
        0
    }
}

/// Extracts 31-bit group `g` from a BitVec (tail group zero-padded).
fn extract_group(bits: &BitVec, g: usize) -> u32 {
    let start = g * GROUP_BITS;
    let end = (start + GROUP_BITS).min(bits.len());
    let mut v = 0u32;
    for (k, i) in (start..end).enumerate() {
        if bits.get(i) {
            v |= 1 << k;
        }
    }
    v
}

fn write_group(bits: &mut BitVec, g: usize, group: u32) {
    let start = g * GROUP_BITS;
    let end = (start + GROUP_BITS).min(bits.len());
    for (k, i) in (start..end).enumerate() {
        if group & (1 << k) != 0 {
            bits.set(i, true);
        }
    }
}

/// Appends one group, merging into a trailing fill when possible.
fn push_group(words: &mut Vec<u32>, group: u32) {
    let fill = if group == 0 {
        Some(false)
    } else if group == GROUP_MASK {
        Some(true)
    } else {
        None
    };
    match fill {
        None => words.push(group),
        Some(f) => {
            let fv = if f { FILL_VALUE } else { 0 };
            if let Some(last) = words.last_mut() {
                if *last & (FILL_FLAG | FILL_VALUE) == (FILL_FLAG | fv)
                    && *last & MAX_FILL < MAX_FILL
                {
                    *last += 1;
                    return;
                }
            }
            words.push(FILL_FLAG | fv | 1);
        }
    }
}

/// Appends `count` copies of a group value (specialized for fills).
fn push_fill_or_literals(words: &mut Vec<u32>, group: u32, count: u32) {
    if group == 0 || group == GROUP_MASK {
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(MAX_FILL);
            // Try merging into trailing fill first.
            let fv = if group == GROUP_MASK { FILL_VALUE } else { 0 };
            if let Some(last) = words.last_mut() {
                if *last & (FILL_FLAG | FILL_VALUE) == (FILL_FLAG | fv) {
                    let room = MAX_FILL - (*last & MAX_FILL);
                    let add = take.min(room);
                    *last += add;
                    remaining -= add;
                    if add > 0 {
                        continue;
                    }
                }
            }
            words.push(FILL_FLAG | fv | take);
            remaining -= take;
        }
    } else {
        for _ in 0..count {
            words.push(group);
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum RunKind {
    Fill(bool),
    Literal(u32),
}

#[derive(Clone, Copy, Debug)]
struct Run {
    kind: RunKind,
    count: u32,
}

struct RunIter<'a> {
    words: std::slice::Iter<'a, u32>,
}

impl<'a> RunIter<'a> {
    fn new(words: &'a [u32]) -> Self {
        Self {
            words: words.iter(),
        }
    }
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        let &w = self.words.next()?;
        Some(if w & FILL_FLAG != 0 {
            Run {
                kind: RunKind::Fill(w & FILL_VALUE != 0),
                count: w & MAX_FILL,
            }
        } else {
            Run {
                kind: RunKind::Literal(w & GROUP_MASK),
                count: 1,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(len: usize, step: usize) -> BitVec {
        BitVec::from_fn(len, |i| i % step == 0)
    }

    #[test]
    fn roundtrip_various_shapes() {
        for bits in [
            BitVec::zeros(0),
            BitVec::zeros(1),
            BitVec::ones(1),
            BitVec::zeros(31),
            BitVec::ones(31),
            BitVec::zeros(32),
            BitVec::ones(1000),
            sparse(10_000, 317),
            sparse(10_000, 2),
            BitVec::from_fn(500, |i| (i / 31) % 2 == 0),
        ] {
            let wah = WahBitmap::from_bitvec(&bits);
            assert_eq!(wah.to_bitvec(), bits);
            assert_eq!(wah.count_ones(), bits.count_ones());
        }
    }

    #[test]
    fn sparse_bitmap_compresses() {
        let bits = sparse(1_000_000, 10_000);
        let wah = WahBitmap::from_bitvec(&bits);
        assert!(
            wah.compressed_bytes() < 1_000_000 / 8 / 10,
            "WAH size {} bytes",
            wah.compressed_bytes()
        );
    }

    #[test]
    fn binary_ops_match_bitvec() {
        let a = sparse(5000, 7);
        let b = BitVec::from_fn(5000, |i| i % 11 == 3 || i < 200);
        let wa = WahBitmap::from_bitvec(&a);
        let wb = WahBitmap::from_bitvec(&b);
        assert_eq!(wa.and(&wb).to_bitvec(), &a & &b);
        assert_eq!(wa.or(&wb).to_bitvec(), &a | &b);
        assert_eq!(wa.xor(&wb).to_bitvec(), &a ^ &b);
    }

    #[test]
    fn not_respects_length() {
        for len in [1usize, 30, 31, 32, 62, 63, 1000] {
            let a = sparse(len, 3);
            let wa = WahBitmap::from_bitvec(&a);
            assert_eq!(wa.not().to_bitvec(), a.complement(), "len {len}");
            assert_eq!(wa.not().count_ones(), len - a.count_ones());
        }
    }

    #[test]
    fn double_not_is_identity() {
        let a = BitVec::from_fn(777, |i| i % 5 != 0);
        let wa = WahBitmap::from_bitvec(&a);
        assert_eq!(wa.not().not().to_bitvec(), a);
    }

    #[test]
    fn ops_on_fills() {
        let zeros = WahBitmap::from_bitvec(&BitVec::zeros(100_000));
        let ones = WahBitmap::from_bitvec(&BitVec::ones(100_000));
        assert_eq!(zeros.or(&ones).count_ones(), 100_000);
        assert_eq!(zeros.and(&ones).count_ones(), 0);
        assert_eq!(ones.xor(&ones).count_ones(), 0);
        // results stay compressed
        assert!(zeros.or(&ones).compressed_bytes() <= 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = WahBitmap::from_bitvec(&BitVec::zeros(10));
        let b = WahBitmap::from_bitvec(&BitVec::zeros(11));
        let _ = a.and(&b);
    }
}
