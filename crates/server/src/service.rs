//! The server proper: acceptor, connection handlers, bounded admission
//! queue, evaluation workers, and graceful drain.
//!
//! ```text
//!  TCP conns ──▶ conn threads ──try_push──▶ BoundedQueue ──pop──▶ workers
//!                    │   ▲                   (high-water:            │
//!                    │   └── typed reply ◀── shed Overloaded) ◀─────┘
//! ```
//!
//! Each accepted connection gets a thread that decodes frames and answers
//! control requests inline; queries are wrapped in a [`Job`] carrying a
//! per-request [`Deadline`] and a rendezvous channel, then offered to the
//! bounded queue — *offered*, never waited: a full queue is an immediate
//! typed `Overloaded` response, which is the load-shedding contract.
//! Workers pop jobs, drop the ones whose deadline already expired while
//! queued (the deadline also rides into the engine, which cancels
//! between morsels), and reply through the channel.
//!
//! Drain ([`Server::shutdown`]) is a strict sequence: stop admitting
//! (flag + queue close), wake the acceptor with a self-connection, join
//! workers (they finish everything already queued), then join connection
//! threads (their read loops poll the drain flag on a short timeout).
//! Nothing in flight is dropped; everything not yet admitted is refused
//! with `ShuttingDown`.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bindex::core::{Deadline, Error};
use bindex::engine::envcfg;
use bindex::relation::query::ThresholdQuery;

use crate::admission::{BoundedQueue, PushError};
use crate::protocol::{write_frame, ErrorCode, Request, Response, StatsSnapshot, MAX_FRAME};
use crate::registry::{Registry, ServedIndex, ServedQuery};

/// Environment variable overriding [`ServerConfig::queue_depth`].
pub const QUEUE_DEPTH_ENV: &str = "BINDEX_QUEUE_DEPTH";
/// Environment variable overriding [`ServerConfig::default_deadline`]
/// (milliseconds).
pub const DEADLINE_MS_ENV: &str = "BINDEX_DEADLINE_MS";

/// Tuning for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Evaluation worker threads.
    pub workers: usize,
    /// Admission-queue high-water mark; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Deadline applied to queries that do not carry their own.
    pub default_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            queue_depth: 64,
            default_deadline: Duration::from_millis(250),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `BINDEX_THREADS` (workers),
    /// `BINDEX_QUEUE_DEPTH`, and `BINDEX_DEADLINE_MS` — each validated
    /// through [`envcfg`], so a malformed value warns and falls back
    /// instead of silently misconfiguring the service.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(n) = envcfg::parse_env(
            bindex::engine::batch::THREADS_ENV,
            "a positive integer",
            envcfg::positive_usize,
        ) {
            config.workers = n;
        }
        if let Some(depth) = envcfg::parse_env(
            QUEUE_DEPTH_ENV,
            "a positive integer",
            envcfg::positive_usize,
        ) {
            config.queue_depth = depth;
        }
        if let Some(ms) = envcfg::parse_env(
            DEADLINE_MS_ENV,
            "a positive integer of milliseconds",
            envcfg::positive_u64,
        ) {
            config.default_deadline = Duration::from_millis(ms);
        }
        config
    }
}

#[derive(Default)]
struct Metrics {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    repairs: AtomicU64,
    ingests: AtomicU64,
}

/// One admitted query on its way to a worker.
struct Job {
    index: Arc<ServedIndex>,
    query: ServedQuery,
    want_bitmap: bool,
    deadline: Deadline,
    reply: SyncSender<Response>,
}

struct Shared {
    registry: Registry,
    config: ServerConfig,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
}

impl Shared {
    fn err(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot {
            admitted: self.metrics.admitted.load(Ordering::Relaxed),
            completed: self.metrics.completed.load(Ordering::Relaxed),
            shed_overload: self.metrics.shed_overload.load(Ordering::Relaxed),
            shed_deadline: self.metrics.shed_deadline.load(Ordering::Relaxed),
            degraded: self.metrics.degraded.load(Ordering::Relaxed),
            failed: self.metrics.failed.load(Ordering::Relaxed),
            repairs: self.metrics.repairs.load(Ordering::Relaxed),
            ingests: self.metrics.ingests.load(Ordering::Relaxed),
            ..StatsSnapshot::default()
        };
        for index in self.registry.all() {
            let (hits, misses, _) = index.cache_stats();
            s.cache_hits += hits;
            s.cache_misses += misses;
            s.breaker_trips += index.breaker().trips();
        }
        s
    }

    fn handle_request(&self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(self.snapshot()),
            Request::Shutdown => {
                self.shutdown_requested.store(true, Ordering::SeqCst);
                Response::ShutdownAck
            }
            Request::Repair { index } => match self.registry.get(&index) {
                None => Self::err(ErrorCode::UnknownIndex, format!("no index named {index:?}")),
                Some(served) => match served.repair() {
                    Ok(report) => {
                        self.metrics.repairs.fetch_add(1, Ordering::Relaxed);
                        Response::Repaired {
                            repaired: report.repaired.len() as u32,
                            unrepaired: report.unrepaired.len() as u32,
                        }
                    }
                    Err(e) => Self::err(ErrorCode::Internal, e.to_string()),
                },
            },
            Request::Ingest {
                index,
                appends,
                deletes,
            } => match self.registry.get(&index) {
                None => Self::err(ErrorCode::UnknownIndex, format!("no index named {index:?}")),
                Some(served) => match served.ingest(&appends, &deletes) {
                    Ok(summary) => {
                        self.metrics.ingests.fetch_add(1, Ordering::Relaxed);
                        Response::Ingested {
                            seq: summary.seq,
                            generation: summary.generation,
                            n_rows: summary.n_rows,
                        }
                    }
                    // An out-of-range value or row id is the client's
                    // mistake; anything else is a server-side failure.
                    Err(e @ Error::ValueOutOfRange { .. }) => {
                        Self::err(ErrorCode::BadRequest, e.to_string())
                    }
                    Err(e) => Self::err(ErrorCode::Internal, e.to_string()),
                },
            },
            Request::Query {
                index,
                query,
                want_bitmap,
                deadline_ms,
            } => self.handle_query(
                &index,
                ServedQuery::Selection(query),
                want_bitmap,
                deadline_ms,
            ),
            Request::Threshold {
                index,
                k,
                predicates,
                want_bitmap,
                deadline_ms,
            } => {
                let query = ThresholdQuery::new(k, predicates);
                // Reject degenerate thresholds before they consume a
                // queue slot: the request is wrong, not the server busy.
                if let Err(msg) = query.validate() {
                    return Self::err(ErrorCode::BadRequest, format!("invalid query: {msg}"));
                }
                self.handle_query(
                    &index,
                    ServedQuery::Threshold(query),
                    want_bitmap,
                    deadline_ms,
                )
            }
        }
    }

    fn handle_query(
        &self,
        index: &str,
        query: ServedQuery,
        want_bitmap: bool,
        deadline_ms: u64,
    ) -> Response {
        if self.draining.load(Ordering::SeqCst) {
            return Self::err(ErrorCode::ShuttingDown, "server is draining");
        }
        let Some(served) = self.registry.get(index) else {
            return Self::err(ErrorCode::UnknownIndex, format!("no index named {index:?}"));
        };
        let timeout = if deadline_ms == 0 {
            self.config.default_deadline
        } else {
            Duration::from_millis(deadline_ms)
        };
        let (reply, answer) = sync_channel(1);
        let job = Job {
            index: served,
            query,
            want_bitmap,
            deadline: Deadline::after(timeout),
            reply,
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.metrics.admitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(PushError::Full(_)) => {
                self.metrics.shed_overload.fetch_add(1, Ordering::Relaxed);
                return Self::err(
                    ErrorCode::Overloaded,
                    format!("admission queue full (depth {})", self.queue.capacity()),
                );
            }
            Err(PushError::Closed(_)) => {
                return Self::err(ErrorCode::ShuttingDown, "server is draining");
            }
        }
        // The deadline rides into the engine, which cancels between
        // morsels — but a single fetch inside one morsel is not
        // interruptible, so give the worker a grace window beyond the
        // deadline before declaring the reply lost.
        let grace = timeout + Duration::from_secs(2);
        match answer.recv_timeout(grace) {
            Ok(resp) => resp,
            Err(RecvTimeoutError::Timeout) => Self::err(
                ErrorCode::DeadlineExceeded,
                "no answer within the deadline grace window",
            ),
            Err(RecvTimeoutError::Disconnected) => {
                Self::err(ErrorCode::Internal, "worker dropped the reply channel")
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let resp = if job.deadline.expired() {
            // Shed without touching the index: the time budget was spent
            // waiting in the queue.
            shared.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
            Shared::err(ErrorCode::DeadlineExceeded, "deadline expired while queued")
        } else {
            match job.index.execute_any(job.query, Some(job.deadline)) {
                Ok(answer) => {
                    if answer.degraded {
                        shared.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    if job.want_bitmap {
                        Response::Bitmap {
                            cardinality: answer.cardinality,
                            degraded: answer.degraded,
                            cached: answer.cached,
                            n_bits: answer.bits.len() as u64,
                            words: answer.bits.words().to_vec(),
                        }
                    } else {
                        Response::Count {
                            cardinality: answer.cardinality,
                            degraded: answer.degraded,
                            cached: answer.cached,
                        }
                    }
                }
                Err(Error::DeadlineExceeded) => {
                    shared.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
                    Shared::err(
                        ErrorCode::DeadlineExceeded,
                        "deadline expired mid-evaluation; partial work discarded",
                    )
                }
                // Defense in depth: the connection layer validates before
                // admission, but a structurally bad query that slips
                // through is still the client's mistake, not a server
                // fault — typed rejection, no breaker or failure count.
                Err(e @ Error::InvalidQuery(_)) => {
                    Shared::err(ErrorCode::BadRequest, e.to_string())
                }
                Err(e) => {
                    shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    Shared::err(ErrorCode::QueryFailed, e.to_string())
                }
            }
        };
        shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
        // The connection may have given up (grace window elapsed) — a
        // dead receiver is fine.
        let _ = job.reply.send(resp);
    }
}

/// Incremental frame reader that survives read timeouts: partial header
/// or payload bytes are kept across [`poll`](FrameReader::poll) calls, so
/// the connection loop can check the drain flag a few times a second
/// without ever corrupting the stream framing.
struct FrameReader {
    header: [u8; 4],
    filled: usize,
    payload: Vec<u8>,
    payload_filled: usize,
    in_payload: bool,
}

impl FrameReader {
    fn new() -> Self {
        Self {
            header: [0; 4],
            filled: 0,
            payload: Vec::new(),
            payload_filled: 0,
            in_payload: false,
        }
    }

    /// `Ok(Some(payload))` when a full frame is buffered; `Ok(None)` on a
    /// read timeout (caller decides whether to keep waiting); `Err` on
    /// EOF, protocol violation, or hard I/O error.
    fn poll(&mut self, stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
        loop {
            if !self.in_payload {
                match stream.read(&mut self.header[self.filled..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed",
                        ))
                    }
                    Ok(n) => {
                        self.filled += n;
                        if self.filled == 4 {
                            let len = u32::from_le_bytes(self.header);
                            if len > MAX_FRAME {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("frame length {len} exceeds MAX_FRAME"),
                                ));
                            }
                            self.payload = vec![0u8; len as usize];
                            self.payload_filled = 0;
                            self.in_payload = true;
                            if len == 0 {
                                return Ok(Some(self.finish()));
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Ok(None)
                    }
                    Err(e) => return Err(e),
                }
            } else {
                match stream.read(&mut self.payload[self.payload_filled..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    }
                    Ok(n) => {
                        self.payload_filled += n;
                        if self.payload_filled == self.payload.len() {
                            return Ok(Some(self.finish()));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Ok(None)
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    fn finish(&mut self) -> Vec<u8> {
        self.filled = 0;
        self.in_payload = false;
        self.payload_filled = 0;
        std::mem::take(&mut self.payload)
    }
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    loop {
        let payload = match reader.poll(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let resp = match Request::decode(&payload) {
            Ok(req) => shared.handle_request(req),
            Err(e) => Shared::err(ErrorCode::BadRequest, e.to_string()),
        };
        let bytes = resp.encode().unwrap_or_else(|e| {
            Shared::err(
                ErrorCode::Internal,
                format!("response encoding failed: {e}"),
            )
            .encode()
            .expect("error responses always encode")
        });
        if write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

/// What the drain left behind; returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Jobs still queued when the drain began (all of them were finished
    /// by the workers before shutdown returned).
    pub queued_at_close: usize,
    /// Total queries answered over the server's lifetime.
    pub completed: u64,
    /// Queries shed with `Overloaded`.
    pub shed_overload: u64,
    /// Queries shed by their deadline (queued or mid-evaluation).
    pub shed_deadline: u64,
}

/// A running server: owns the acceptor, workers, and live connections.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `listen` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor and `config.workers` evaluation workers.
    pub fn start(registry: Registry, config: ServerConfig, listen: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            registry,
            queue: BoundedQueue::new(config.queue_depth),
            config,
            metrics: Metrics::default(),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
        });
        let worker_handles: Vec<_> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || handle_conn(&shared, stream));
                    conns.lock().unwrap().push(handle);
                }
            })
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            conns,
        })
    }

    /// The bound address (useful with an ephemeral listen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a client has sent [`Request::Shutdown`]; the owner is
    /// expected to call [`Server::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Aggregate counters (same numbers a `Stats` request returns).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Graceful drain: refuse new work, finish queued work, join every
    /// thread. Consumes the server; returns what was in flight.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        let queued_at_close = self.shared.queue.len();
        self.shared.queue.close();
        // Wake the acceptor out of `accept()` with a throwaway
        // connection; it sees the drain flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for conn in conns {
            let _ = conn.join();
        }
        DrainReport {
            queued_at_close,
            completed: self.shared.metrics.completed.load(Ordering::Relaxed),
            shed_overload: self.shared.metrics.shed_overload.load(Ordering::Relaxed),
            shed_deadline: self.shared.metrics.shed_deadline.load(Ordering::Relaxed),
        }
    }
}
