//! k-of-N threshold evaluation — the symmetric-function query class the
//! four single-predicate evaluators cannot express (Kaser & Lemire,
//! "Threshold and Symmetric Functions over Bitmaps").
//!
//! A [`ThresholdQuery`] asks for the rows whose value satisfies **at
//! least `k`** of `N` predicates. Each predicate's foundset is produced
//! by the ordinary encoding-appropriate evaluator, then the foundsets
//! are combined in a single pass by the bit-sliced carry-save adder
//! network ([`ExecContext::threshold_all`]) instead of the
//! exponentially-sized naive "OR of all k-subsets of ANDs".
//!
//! Degenerate thresholds map to exact plans rather than panicking:
//! `k = 0`, `k > N`, and an empty predicate set are rejected with
//! [`Error::InvalidQuery`]; a single-predicate threshold *is* that
//! predicate; `k = 1` runs the plain OR plan and `k = N` the plain AND
//! plan, charged as such.
//!
//! Segment-at-a-time execution adds an **early-exit bound** fed by the
//! summary block's two planes: while a segment's predicates evaluate one
//! by one, `live` counts foundsets with any bit set in the window and
//! `saturated` counts all-ones foundsets. Once
//! `live + remaining < k` the window's answer is provably all-zero, and
//! once `saturated ≥ k` it is provably all-ones — the remaining
//! predicates are not evaluated at all. Summary pruning feeds the bound
//! for free: a window the summary proves dead yields an all-zero
//! foundset without a storage read, dropping the upper bound, and a
//! window it proves saturated can yield an all-ones foundset, raising
//! the lower bound. The exit is taken only on non-charging segments
//! (segment 0 always runs every predicate), so every slot's first-touch
//! scan charge and the whole op tally stay bit-identical to whole-bitmap
//! evaluation — only [`EvalStats::segments_skipped`] observes the skip.

use bindex_bitvec::BitVec;
use bindex_relation::query::ThresholdQuery;

use crate::error::{Error, Result};
use crate::eval::{evaluate_in, Algorithm};
use crate::exec::{EvalStats, ExecContext};
use crate::index::BitmapSource;

/// Validates a threshold query, converting a malformed one into the
/// typed [`Error::InvalidQuery`].
pub fn validate(query: &ThresholdQuery) -> Result<()> {
    query.validate().map_err(Error::InvalidQuery)
}

/// Evaluates a threshold query whole-bitmap, returning the foundset and
/// the exact evaluation statistics.
pub fn evaluate_threshold<S: BitmapSource>(
    source: &mut S,
    query: &ThresholdQuery,
    algorithm: Algorithm,
) -> Result<(BitVec, EvalStats)> {
    let mut ctx = ExecContext::new(source);
    let found = evaluate_threshold_in(&mut ctx, query, algorithm)?;
    let stats = ctx.take_stats();
    Ok((found, stats))
}

/// Evaluates a threshold query within an existing context (stats
/// accumulate; call `ctx.take_stats()` between queries).
///
/// Each predicate foundset costs whatever the underlying evaluator
/// charges; the combine then costs `N − 1`
/// [`EvalStats::threshold_combines`] — except the exact-plan
/// degenerations: a single predicate is evaluated directly, `k = 1`
/// charges `N − 1` ORs, and `k = N` charges `N − 1` ANDs, exactly as if
/// the caller had asked for the disjunction or conjunction.
pub fn evaluate_threshold_in<S: BitmapSource>(
    ctx: &mut ExecContext<'_, S>,
    query: &ThresholdQuery,
    algorithm: Algorithm,
) -> Result<BitVec> {
    validate(query)?;
    evaluate_threshold_unchecked(ctx, query, algorithm, true)
}

/// The per-segment (or whole-bitmap) evaluation body. `charging` is
/// `true` when this run must execute the full data-independent op
/// sequence (whole mode, or segment 0); only non-charging runs may take
/// the early exits.
fn evaluate_threshold_unchecked<S: BitmapSource>(
    ctx: &mut ExecContext<'_, S>,
    query: &ThresholdQuery,
    algorithm: Algorithm,
    charging: bool,
) -> Result<BitVec> {
    let n = query.predicates.len();
    let k = query.k as usize;
    if n == 1 {
        // A single-predicate threshold (k must be 1 post-validation) is
        // exactly that predicate.
        return evaluate_in(ctx, query.predicates[0], algorithm);
    }
    let window = ctx.view_len();
    let mut found: Vec<BitVec> = Vec::with_capacity(n);
    // Early-exit bound over the operands evaluated so far: each live
    // (non-empty) foundset can contribute at most 1 to any row's count,
    // each saturated (all-ones) foundset contributes exactly 1 to every
    // row's count, and each not-yet-evaluated predicate could go either
    // way.
    let mut live = 0usize;
    let mut saturated = 0usize;
    for (i, &p) in query.predicates.iter().enumerate() {
        if !charging {
            if live + (n - i) < k {
                // Even if every remaining predicate matched every row,
                // no row in this window can reach k.
                ctx.mark_skip();
                return Ok(BitVec::zeros(window));
            }
            if saturated >= k {
                // Every row in this window already holds ≥ k matches.
                ctx.mark_skip();
                return Ok(BitVec::ones(window));
            }
        }
        let f = evaluate_in(ctx, p, algorithm)?;
        if !charging {
            let ones = f.count_ones();
            if ones > 0 {
                live += 1;
            }
            if ones == window {
                saturated += 1;
            }
        }
        found.push(f);
    }
    if !charging && live < k {
        // All predicates evaluated but fewer than k are live anywhere
        // in the window.
        ctx.mark_skip();
        return Ok(BitVec::zeros(window));
    }
    let refs: Vec<&BitVec> = found.iter().collect();
    // Exact-plan degenerations keep the cost model honest: k = 1 *is*
    // the OR plan and k = N *is* the AND plan.
    if k == 1 {
        Ok(ctx.or_all(&refs))
    } else if k == n {
        Ok(ctx.and_all(&refs))
    } else {
        Ok(ctx.threshold_all(&refs, k))
    }
}

/// Segment-at-a-time threshold evaluation; see
/// [`evaluate_threshold_segmented_in`].
pub fn evaluate_threshold_segmented<S: BitmapSource>(
    source: &mut S,
    query: &ThresholdQuery,
    algorithm: Algorithm,
    segment_bits: usize,
) -> Result<(BitVec, EvalStats)> {
    let mut ctx = ExecContext::new(source);
    let found = evaluate_threshold_segmented_in(&mut ctx, query, algorithm, segment_bits)?;
    let stats = ctx.take_stats();
    Ok((found, stats))
}

/// Evaluates a threshold query segment-at-a-time within an existing
/// context. Bit-identical to [`evaluate_threshold_in`] with identical
/// scan/op charges (segment 0 runs the full op sequence; later segments
/// may take the early-exit bound, recorded in
/// [`EvalStats::segments_skipped`] only).
///
/// # Panics
/// Panics if `segment_bits` is zero or not a multiple of 64.
pub fn evaluate_threshold_segmented_in<S: BitmapSource>(
    ctx: &mut ExecContext<'_, S>,
    query: &ThresholdQuery,
    algorithm: Algorithm,
    segment_bits: usize,
) -> Result<BitVec> {
    validate(query)?;
    let n_rows = ctx.n_rows();
    let mut out = vec![0u64; bindex_bitvec::words_for(n_rows)];
    let res = evaluate_threshold_segment_range_in(
        ctx,
        query,
        algorithm,
        segment_bits,
        0,
        n_rows,
        &mut out,
    );
    ctx.exit_segments();
    res?;
    Ok(BitVec::from_words(out, n_rows))
}

/// Threshold counterpart of
/// [`evaluate_segment_range_in`](crate::eval::evaluate_segment_range_in):
/// evaluates the segments covering rows `[row_lo, row_hi)` into `out`,
/// the engine's morsel primitive. Op-charge parity holds per chunk —
/// only the chunk containing segment 0 accumulates op counts. The query
/// must already be validated (the public entry points do this).
///
/// # Panics
/// Panics if `segment_bits` is zero or not a multiple of 64, or the row
/// range is not segment-aligned.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_threshold_segment_range_in<S: BitmapSource>(
    ctx: &mut ExecContext<'_, S>,
    query: &ThresholdQuery,
    algorithm: Algorithm,
    segment_bits: usize,
    row_lo: usize,
    row_hi: usize,
    out: &mut [u64],
) -> Result<()> {
    assert!(
        segment_bits > 0 && segment_bits.is_multiple_of(64),
        "segment size must be a positive multiple of 64 bits"
    );
    let n_rows = ctx.n_rows();
    assert!(
        row_lo.is_multiple_of(segment_bits)
            && (row_hi.is_multiple_of(segment_bits) || row_hi == n_rows),
        "chunk bounds must be segment-aligned"
    );
    assert!(row_lo <= row_hi && row_hi <= n_rows, "chunk out of range");
    if n_rows == 0 {
        ctx.begin_segment(0, 0, 0);
        let r = evaluate_threshold_unchecked(ctx, query, algorithm, true);
        ctx.end_segment();
        r?;
        return Ok(());
    }
    let mut lo = row_lo;
    while lo < row_hi {
        if lo > row_lo && ctx.deadline_expired() {
            return Err(Error::DeadlineExceeded);
        }
        let hi = (lo + segment_bits).min(n_rows);
        let index = lo / segment_bits;
        ctx.begin_segment(lo, hi, index);
        let part = evaluate_threshold_unchecked(ctx, query, algorithm, index == 0)?;
        debug_assert_eq!(
            part.len(),
            hi - lo,
            "threshold evaluator returned a non-window result"
        );
        ctx.end_segment();
        let w0 = (lo - row_lo) / 64;
        out[w0..w0 + part.words().len()].copy_from_slice(part.words());
        lo = hi;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use crate::encoding::{Encoding, IndexSpec};
    use crate::index::BitmapIndex;
    use bindex_relation::query::{Op, SelectionQuery};
    use bindex_relation::Column;

    fn column(n: usize, cardinality: u32) -> Column {
        let values: Vec<u32> = (0..n as u32)
            .map(|i| (i * 37 + i / 5) % cardinality)
            .collect();
        Column::new(values, cardinality)
    }

    fn spec_for(encoding: Encoding) -> IndexSpec {
        IndexSpec::new(Base::from_msb(&[3, 4]).unwrap(), encoding)
    }

    fn reference(col: &Column, q: &ThresholdQuery) -> BitVec {
        BitVec::from_fn(col.len(), |r| q.matches(col.values()[r]))
    }

    fn test_queries() -> Vec<ThresholdQuery> {
        let preds = [
            SelectionQuery::new(Op::Le, 4),
            SelectionQuery::new(Op::Ge, 3),
            SelectionQuery::new(Op::Ne, 7),
            SelectionQuery::new(Op::Eq, 2),
            SelectionQuery::new(Op::Lt, 10),
            SelectionQuery::new(Op::Gt, 1),
            SelectionQuery::new(Op::Le, 8),
        ];
        let mut out = Vec::new();
        for n in [1usize, 2, 3, 7] {
            for k in 1..=n {
                out.push(ThresholdQuery::new(k as u32, preds[..n].to_vec()));
            }
        }
        out
    }

    /// Whole-bitmap and segmented threshold evaluation match the per-row
    /// reference bit for bit, for every encoding, and the segmented
    /// paper-model stats match whole-bitmap exactly.
    #[test]
    fn threshold_matches_reference_whole_and_segmented() {
        let col = column(777, 12);
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let idx = BitmapIndex::build(&col, spec_for(encoding)).unwrap();
            for q in test_queries() {
                let want = reference(&col, &q);
                let (whole, ws) =
                    evaluate_threshold(&mut idx.source(), &q, Algorithm::Auto).unwrap();
                assert_eq!(whole, want, "{encoding:?} {q}");
                for seg_bits in [64usize, 256, 1 << 20] {
                    let (got, ss) = evaluate_threshold_segmented(
                        &mut idx.source(),
                        &q,
                        Algorithm::Auto,
                        seg_bits,
                    )
                    .unwrap();
                    assert_eq!(got, want, "{encoding:?} {q} seg={seg_bits}");
                    let core = |s: &EvalStats| {
                        (
                            s.scans,
                            s.ands,
                            s.ors,
                            s.xors,
                            s.nots,
                            s.threshold_combines,
                            s.buffer_hits,
                        )
                    };
                    assert_eq!(
                        core(&ss),
                        core(&ws),
                        "stats parity {encoding:?} {q} seg={seg_bits}"
                    );
                    assert_eq!(ss.segments_evaluated, 777usize.div_ceil(seg_bits));
                }
            }
        }
    }

    /// The combine charge shape: N − 1 threshold combines for interior
    /// k, N − 1 ORs for k = 1, N − 1 ANDs for k = N (on top of the
    /// per-predicate evaluator charges).
    #[test]
    fn threshold_charge_shape() {
        let col = column(500, 12);
        let idx = BitmapIndex::build(&col, spec_for(Encoding::Equality)).unwrap();
        let preds = vec![
            SelectionQuery::new(Op::Le, 4),
            SelectionQuery::new(Op::Ge, 3),
            SelectionQuery::new(Op::Ne, 7),
            SelectionQuery::new(Op::Eq, 2),
        ];
        let per_pred = {
            let mut sum = EvalStats::default();
            for &p in &preds {
                let (_, s) = crate::eval::evaluate(&mut idx.source(), p, Algorithm::Auto).unwrap();
                sum.add(&s);
            }
            sum
        };
        let (_, s2) = evaluate_threshold(
            &mut idx.source(),
            &ThresholdQuery::new(2, preds.clone()),
            Algorithm::Auto,
        )
        .unwrap();
        assert_eq!(s2.threshold_combines, 3);
        assert_eq!(s2.ands, per_pred.ands);
        assert_eq!(s2.ors, per_pred.ors);
        let (_, s1) = evaluate_threshold(
            &mut idx.source(),
            &ThresholdQuery::new(1, preds.clone()),
            Algorithm::Auto,
        )
        .unwrap();
        assert_eq!(s1.threshold_combines, 0);
        assert_eq!(s1.ors, per_pred.ors + 3);
        let (_, s4) = evaluate_threshold(
            &mut idx.source(),
            &ThresholdQuery::new(4, preds),
            Algorithm::Auto,
        )
        .unwrap();
        assert_eq!(s4.threshold_combines, 0);
        assert_eq!(s4.ands, per_pred.ands + 3);
    }

    /// Malformed thresholds are a typed error, not a panic or an empty
    /// foundset.
    #[test]
    fn threshold_rejects_degenerate_queries() {
        let col = column(100, 12);
        let idx = BitmapIndex::build(&col, spec_for(Encoding::Range)).unwrap();
        let p = SelectionQuery::new(Op::Le, 4);
        for bad in [
            ThresholdQuery::new(0, vec![p]),
            ThresholdQuery::new(2, vec![p]),
            ThresholdQuery::new(1, Vec::new()),
        ] {
            let err = evaluate_threshold(&mut idx.source(), &bad, Algorithm::Auto).unwrap_err();
            assert!(
                matches!(err, Error::InvalidQuery(_)),
                "expected InvalidQuery, got {err:?}"
            );
            let err = evaluate_threshold_segmented(&mut idx.source(), &bad, Algorithm::Auto, 256)
                .unwrap_err();
            assert!(matches!(err, Error::InvalidQuery(_)));
        }
    }

    /// A clustered column makes whole windows dead or saturated for some
    /// predicates; the early exit must leave answers and paper-model
    /// stats untouched while recording skips.
    #[test]
    fn threshold_early_exit_preserves_answers_on_clustered_data() {
        // 0..2048 → value 0, 2048..4096 → value 5, tail mixed.
        let mut values = vec![0u32; 2048];
        values.extend(std::iter::repeat_n(5u32, 2048));
        values.extend((0..500u32).map(|i| i % 12));
        let col = Column::new(values, 12);
        let q = ThresholdQuery::new(
            2,
            vec![
                SelectionQuery::new(Op::Eq, 0),
                SelectionQuery::new(Op::Eq, 5),
                SelectionQuery::new(Op::Ge, 5),
            ],
        );
        let want = reference(&col, &q);
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let idx = BitmapIndex::build(&col, spec_for(encoding)).unwrap();
            let (whole, ws) = evaluate_threshold(&mut idx.source(), &q, Algorithm::Auto).unwrap();
            assert_eq!(whole, want);
            let (got, ss) =
                evaluate_threshold_segmented(&mut idx.source(), &q, Algorithm::Auto, 512).unwrap();
            assert_eq!(got, want, "{encoding:?}");
            assert_eq!(
                (ss.scans, ss.threshold_combines),
                (ws.scans, ws.threshold_combines),
                "{encoding:?}"
            );
        }
    }

    /// An all-ones early exit: k = 1 over predicates that saturate a
    /// window exits through the OR plan unchanged; an interior-k query
    /// whose first k foundsets saturate a window exits all-ones.
    #[test]
    fn threshold_saturated_early_exit() {
        let mut values = vec![3u32; 4096];
        values.extend((0..512u32).map(|i| i % 12));
        let col = Column::new(values, 12);
        // Value 3 satisfies both ≤5 and ≥1 ⇒ the first windows saturate
        // both foundsets, so k = 2 exits all-ones there.
        let q = ThresholdQuery::new(
            2,
            vec![
                SelectionQuery::new(Op::Le, 5),
                SelectionQuery::new(Op::Ge, 1),
                SelectionQuery::new(Op::Eq, 7),
            ],
        );
        let want = reference(&col, &q);
        let idx = BitmapIndex::build(&col, spec_for(Encoding::Equality)).unwrap();
        let (got, ss) =
            evaluate_threshold_segmented(&mut idx.source(), &q, Algorithm::Auto, 1024).unwrap();
        assert_eq!(got, want);
        assert!(
            ss.segments_skipped > 0,
            "saturated windows should early-exit: {ss:?}"
        );
    }

    /// An empty relation runs one empty segment, like the plain driver.
    #[test]
    fn threshold_handles_empty_relation() {
        let col = Column::new(Vec::new(), 12);
        let idx = BitmapIndex::build(&col, spec_for(Encoding::Range)).unwrap();
        let q = ThresholdQuery::new(
            2,
            vec![
                SelectionQuery::new(Op::Le, 4),
                SelectionQuery::new(Op::Ge, 3),
                SelectionQuery::new(Op::Ne, 7),
            ],
        );
        let (whole, ws) = evaluate_threshold(&mut idx.source(), &q, Algorithm::Auto).unwrap();
        let (got, ss) =
            evaluate_threshold_segmented(&mut idx.source(), &q, Algorithm::Auto, 4096).unwrap();
        assert_eq!(whole.len(), 0);
        assert_eq!(got, whole);
        assert_eq!(ss.scans, ws.scans);
        assert_eq!(ss.segments_evaluated, 1);
    }
}
