//! Microbench: the compression substrate — RLE and LZSS on bitmap bytes of
//! different densities, plus WAH compressed-form logical operations.

use bindex::bitvec::kernels;
use bindex::compress::wah::{self, WahBitmap};
use bindex::compress::{Codec, Deflate, Lzss, Rle};
use bindex::BitVec;
use bindex_bench::microbench::{Criterion, Throughput};
use bindex_bench::{criterion_group, criterion_main};
use std::hint::black_box;

const BITS: usize = 1 << 20;

fn bitmap(step: usize) -> BitVec {
    BitVec::from_fn(BITS, |i| i % step == 0)
}

fn bench(c: &mut Criterion) {
    let sparse = bitmap(1000).to_bytes(); // highly compressible
    let dense = bitmap(3).to_bytes(); // mixed-pattern bytes
    let mut g = c.benchmark_group("compress_codecs");
    g.throughput(Throughput::Bytes(sparse.len() as u64));

    for (name, data) in [("sparse", &sparse), ("dense", &dense)] {
        g.bench_function(format!("rle_compress_{name}"), |b| {
            b.iter(|| black_box(Rle.compress(data)))
        });
        g.bench_function(format!("lzss_compress_{name}"), |b| {
            b.iter(|| black_box(Lzss::default().compress(data)))
        });
        let lz = Lzss::default().compress(data);
        g.bench_function(format!("lzss_decompress_{name}"), |b| {
            b.iter(|| black_box(Lzss::default().decompress(&lz, data.len()).unwrap()))
        });
        g.bench_function(format!("deflate_compress_{name}"), |b| {
            b.iter(|| black_box(Deflate::default().compress(data)))
        });
        let df = Deflate::default().compress(data);
        g.bench_function(format!("deflate_decompress_{name}"), |b| {
            b.iter(|| black_box(Deflate::default().decompress(&df, data.len()).unwrap()))
        });
    }

    let wa = WahBitmap::from_bitvec(&bitmap(1000));
    let wb = WahBitmap::from_bitvec(&bitmap(777));
    g.bench_function("wah_and_compressed_form", |b| {
        b.iter(|| black_box(wa.and(&wb).count_ones()))
    });
    g.bench_function("wah_encode_1m", |b| {
        let bits = bitmap(1000);
        b.iter(|| black_box(WahBitmap::from_bitvec(&bits).compressed_bytes()))
    });

    // Compressed-domain 4-way ops vs decompress-then-operate (the
    // executor's real alternative: a fetched slot arrives compressed, so
    // the dense kernels pay decompression first). Clustered bitmaps —
    // 32-bit runs, one in `m` set — as bitmap-index slots over a sorted
    // column would be; density = 1/m.
    for (label, m) in [
        ("d0.001", 1000usize),
        ("d0.010", 100),
        ("d0.050", 20),
        ("d0.200", 5),
        ("d0.500", 2),
    ] {
        let dense_ops: Vec<BitVec> = (0..4)
            .map(|s| BitVec::from_fn(BITS, move |i| ((i >> 5) + s * 7) % m == 0))
            .collect();
        let wahs: Vec<WahBitmap> = dense_ops.iter().map(WahBitmap::from_bitvec).collect();
        let wrefs: Vec<&WahBitmap> = wahs.iter().collect();
        g.bench_function(format!("wah_and4_{label}"), |b| {
            b.iter(|| black_box(wah::count_and(&wrefs)))
        });
        g.bench_function(format!("wah_or4_{label}"), |b| {
            b.iter(|| black_box(wah::count_or(&wrefs)))
        });
        g.bench_function(format!("decomp_and4_{label}"), |b| {
            b.iter(|| {
                let dense: Vec<BitVec> = wahs.iter().map(WahBitmap::to_bitvec).collect();
                let refs: Vec<&BitVec> = dense.iter().collect();
                black_box(kernels::count_and(&refs))
            })
        });
        g.bench_function(format!("decomp_or4_{label}"), |b| {
            b.iter(|| {
                let dense: Vec<BitVec> = wahs.iter().map(WahBitmap::to_bitvec).collect();
                let refs: Vec<&BitVec> = dense.iter().collect();
                black_box(kernels::count_or(&refs))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
