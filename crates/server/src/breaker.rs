//! A circuit breaker guarding each served index's storage path.
//!
//! States and transitions:
//!
//! ```text
//!            N consecutive faults
//!   Closed ───────────────────────▶ Open
//!     ▲                              │ repair notification,
//!     │ K consecutive                │ or cooldown elapsed
//!     │ clean probes                 ▼
//!     └────────────────────────── HalfOpen
//!          (any fault while probing reopens)
//! ```
//!
//! *Closed* serves **strict**: storage faults propagate as typed query
//! failures, so corruption is loud. After `trip_threshold` consecutive
//! faults the breaker *opens* and the index switches to **degraded**
//! serving — every query runs with bitmap reconstruction enabled, trading
//! extra reads for availability. An open breaker moves to *HalfOpen* when
//! the index is repaired (the repair epoch advances) or a cooldown
//! elapses; `probe_successes` consecutive clean answers close it again,
//! while any faulted probe reopens it. Fault accounting is whole-query:
//! one query that reconstructs three bitmaps is one fault.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The three serving states. See the module docs for the transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: strict serving, faults propagate.
    Closed,
    /// Tripped: degraded serving (reconstruction enabled).
    Open,
    /// Probing: still degraded serving, but clean answers count toward
    /// closing.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_faults: usize,
    probe_successes: usize,
    opened_at: Option<Instant>,
    trips: u64,
}

/// A mutex-guarded breaker; every operation is a short critical section.
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<Inner>,
    trip_threshold: usize,
    close_threshold: usize,
    cooldown: Duration,
}

impl CircuitBreaker {
    /// `trip_threshold` consecutive faults open the breaker;
    /// `close_threshold` consecutive clean probes close it; an open
    /// breaker starts probing on its own after `cooldown` even without a
    /// repair notification.
    pub fn new(trip_threshold: usize, close_threshold: usize, cooldown: Duration) -> Self {
        assert!(trip_threshold >= 1 && close_threshold >= 1);
        Self {
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_faults: 0,
                probe_successes: 0,
                opened_at: None,
                trips: 0,
            }),
            trip_threshold,
            close_threshold,
            cooldown,
        }
    }

    /// Current state, applying the lazy Open → HalfOpen cooldown
    /// transition.
    pub fn state(&self) -> BreakerState {
        let mut inner = self.inner.lock().unwrap();
        if inner.state == BreakerState::Open {
            if let Some(at) = inner.opened_at {
                if at.elapsed() >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_successes = 0;
                }
            }
        }
        inner.state
    }

    /// `true` when queries should run with reconstruction enabled.
    pub fn degraded_serving(&self) -> bool {
        self.state() != BreakerState::Closed
    }

    /// Records a query that completed without touching recovery.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => inner.consecutive_faults = 0,
            BreakerState::HalfOpen => {
                inner.probe_successes += 1;
                if inner.probe_successes >= self.close_threshold {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_faults = 0;
                    inner.opened_at = None;
                }
            }
            // Success under Open (e.g. a cache hit) says nothing about
            // the store; only HalfOpen probes count.
            BreakerState::Open => {}
        }
    }

    /// Records a query that hit a storage fault (strict failure or a
    /// degraded answer that needed reconstruction).
    pub fn record_fault(&self) {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_faults += 1;
                if inner.consecutive_faults >= self.trip_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    inner.probe_successes = 0;
                    inner.trips += 1;
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.probe_successes = 0;
            }
            BreakerState::Open => {}
        }
    }

    /// Notification that the underlying index was repaired (its repair
    /// epoch advanced): an open breaker starts probing immediately
    /// instead of waiting out the cooldown.
    pub fn on_repair(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.state == BreakerState::Open {
            inner.state = BreakerState::HalfOpen;
            inner.probe_successes = 0;
        }
        // A repair under Closed just resets the fault streak: the store
        // was rewritten, old faults are stale evidence.
        inner.consecutive_faults = 0;
    }

    /// Closed → Open transitions so far.
    pub fn trips(&self) -> u64 {
        self.inner.lock().unwrap().trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        // Long cooldown so tests exercise the repair path, not the timer.
        CircuitBreaker::new(3, 2, Duration::from_secs(3600))
    }

    #[test]
    fn trips_after_consecutive_faults_only() {
        let b = breaker();
        b.record_fault();
        b.record_fault();
        b.record_success(); // streak broken
        b.record_fault();
        b.record_fault();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_fault();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(b.degraded_serving());
    }

    #[test]
    fn repair_starts_probing_and_probes_close() {
        let b = breaker();
        for _ in 0..3 {
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Open);
        b.on_repair();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.degraded_serving());
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.degraded_serving());
    }

    #[test]
    fn faulted_probe_reopens() {
        let b = breaker();
        for _ in 0..3 {
            b.record_fault();
        }
        b.on_repair();
        b.record_success();
        b.record_fault();
        assert_eq!(b.state(), BreakerState::Open);
        // And the probe streak restarts from zero after the next repair.
        b.on_repair();
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_moves_open_to_probing() {
        let b = CircuitBreaker::new(1, 1, Duration::from_millis(1));
        b.record_fault();
        assert!(b.degraded_serving());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
