//! Glue between the logical index ([`bindex_core`]) and physical storage
//! ([`bindex_storage`]): a [`BitmapSource`] that reads bitmaps from a
//! [`StoredIndex`], optionally through a [`BufferPool`].
//!
//! This is what the Section 9 experiments evaluate queries through: the
//! same evaluation algorithms, but every `fetch` is a real file read (and
//! decompression, for the `c*`-schemes), with byte-level I/O accounting.
//! Storage failures surface as typed [`Error`](bindex_core::Error)s on the
//! query path — checksum mismatches as [`Error::ChecksumMismatch`], other
//! store failures as [`Error::Storage`] — never as panics.

use std::collections::HashMap;
use std::sync::Arc;

use bindex_bitvec::{BitVec, IndexSummaries};
use bindex_compress::Repr;
use bindex_core::{
    rebuild_slot, BitmapIndex, BitmapSource, Encoding, Error, IndexSpec, RowPermutation,
};
use bindex_relation::Column;
use bindex_storage::{
    format, BufferPool, ByteStore, IoStats, MappedStore, RepairReport, SharedIndexReader,
    StorageError, StorageScheme, StoredIndex,
};

/// File holding the row permutation of a reordered index, framed like
/// every other stored file. The name is deliberately outside the
/// generation-classified data layout: the permutation describes the
/// *logical* row order and survives compaction generation swaps.
pub const PERMUTATION_FILE: &str = "perm.bix";

/// Maps a storage-layer error onto the core error type, preserving the
/// transient/permanent distinction the evaluators care about.
pub(crate) fn storage_error(e: StorageError) -> Error {
    match e {
        StorageError::ChecksumMismatch { .. } => Error::ChecksumMismatch(e.to_string()),
        other => Error::Storage(other.to_string()),
    }
}

/// A [`BitmapSource`] backed by a [`StoredIndex`].
pub struct StorageSource<'a, S: ByteStore> {
    stored: &'a mut StoredIndex<S>,
    spec: IndexSpec,
    pool: Option<&'a BufferPool>,
    mmap: Option<&'a MappedStore>,
    nn: Option<BitVec>,
}

impl<'a, S: ByteStore> StorageSource<'a, S> {
    /// Wraps a stored index. `spec` must describe the layout the index was
    /// written with; a mismatch against the stored metadata is reported as
    /// [`Error::CorruptIndex`].
    pub fn try_new(stored: &'a mut StoredIndex<S>, spec: IndexSpec) -> Result<Self, Error> {
        let expect: Vec<u32> = (1..=spec.n_components())
            .map(|i| spec.stored_in_component(i))
            .collect();
        if stored.meta().bitmaps_per_component != expect {
            return Err(Error::CorruptIndex(format!(
                "stored layout does not match the index spec: store holds {:?} bitmaps per \
                 component, spec expects {:?}",
                stored.meta().bitmaps_per_component,
                expect
            )));
        }
        Ok(Self {
            stored,
            spec,
            pool: None,
            mmap: None,
            nn: None,
        })
    }

    /// Routes fetches through a buffer pool (bitmaps resident in the pool
    /// cost no file read).
    pub fn with_pool(mut self, pool: &'a BufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Routes execution-representation fetches through a pinned region
    /// cache ([`MappedStore`]): after a slot's first checksummed load,
    /// reads are `Arc` clones with no pool admission and no byte copy.
    /// Takes precedence over the buffer pool for `try_fetch_repr`.
    pub fn with_mmap(mut self, mmap: &'a MappedStore) -> Self {
        self.mmap = Some(mmap);
        self
    }

    /// Attaches a non-null bitmap (kept in memory; columns with nulls).
    pub fn with_nn(mut self, nn: BitVec) -> Self {
        self.nn = Some(nn);
        self
    }

    /// Cumulative I/O statistics of the underlying store.
    pub fn io_stats(&self) -> &IoStats {
        self.stored.stats()
    }
}

impl<S: ByteStore> BitmapSource for StorageSource<'_, S> {
    fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    fn n_rows(&self) -> usize {
        self.stored.meta().n_rows
    }

    fn try_fetch(&mut self, comp: usize, slot: usize) -> Result<BitVec, Error> {
        let stored = &mut *self.stored;
        match self.pool {
            Some(pool) => pool.get_or_load::<Error>((comp, slot), || {
                stored.read_bitmap(comp, slot).map_err(storage_error)
            }),
            None => stored.read_bitmap(comp, slot).map_err(storage_error),
        }
    }

    fn try_fetch_nn(&mut self) -> Result<Option<BitVec>, Error> {
        Ok(self.nn.clone())
    }

    fn try_fetch_repr(&mut self, comp: usize, slot: usize) -> Result<Repr, Error> {
        let stored = &mut *self.stored;
        if let Some(mmap) = self.mmap {
            return mmap
                .get_or_map((comp, slot), || stored.read_repr(comp, slot))
                .map_err(storage_error);
        }
        match self.pool {
            Some(pool) => pool.get_or_load_repr::<Error>((comp, slot), || {
                stored.read_repr(comp, slot).map_err(storage_error)
            }),
            None => stored.read_repr(comp, slot).map_err(storage_error),
        }
    }

    fn try_fetch_summary(&mut self) -> Option<Arc<IndexSummaries>> {
        self.stored.read_summaries()
    }
}

/// A `Send + Sync` [`BitmapSource`] over a [`SharedIndexReader`]: the
/// storage-backed read path of the parallel batch engine. Each worker
/// thread builds one `SharedSource` borrowing the same reader; bitmap
/// reads go through the reader's sharded cache (when attached) and its
/// atomic I/O counters, so no worker needs `&mut` access to the store.
pub struct SharedSource<'a, S: ByteStore> {
    reader: &'a SharedIndexReader<S>,
    spec: IndexSpec,
    nn: Option<BitVec>,
}

impl<'a, S: ByteStore> SharedSource<'a, S> {
    /// Wraps a shared reader. `spec` must describe the layout the index
    /// was written with; a mismatch against the stored metadata is
    /// reported as [`Error::CorruptIndex`].
    pub fn try_new(reader: &'a SharedIndexReader<S>, spec: IndexSpec) -> Result<Self, Error> {
        let expect: Vec<u32> = (1..=spec.n_components())
            .map(|i| spec.stored_in_component(i))
            .collect();
        if reader.meta().bitmaps_per_component != expect {
            return Err(Error::CorruptIndex(format!(
                "stored layout does not match the index spec: store holds {:?} bitmaps per \
                 component, spec expects {:?}",
                reader.meta().bitmaps_per_component,
                expect
            )));
        }
        Ok(Self {
            reader,
            spec,
            nn: None,
        })
    }

    /// Attaches a non-null bitmap (kept in memory; columns with nulls).
    pub fn with_nn(mut self, nn: BitVec) -> Self {
        self.nn = Some(nn);
        self
    }

    /// The shared reader behind this source.
    pub fn reader(&self) -> &SharedIndexReader<S> {
        self.reader
    }
}

impl<S: ByteStore> BitmapSource for SharedSource<'_, S> {
    fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    fn n_rows(&self) -> usize {
        self.reader.meta().n_rows
    }

    fn try_fetch(&mut self, comp: usize, slot: usize) -> Result<BitVec, Error> {
        self.reader.read_bitmap(comp, slot).map_err(storage_error)
    }

    fn try_fetch_nn(&mut self) -> Result<Option<BitVec>, Error> {
        Ok(self.nn.clone())
    }

    fn try_fetch_repr(&mut self, comp: usize, slot: usize) -> Result<Repr, Error> {
        self.reader.read_repr(comp, slot).map_err(storage_error)
    }

    fn try_fetch_summary(&mut self) -> Option<Arc<IndexSummaries>> {
        self.reader.read_summaries()
    }
}

/// Writes an in-memory [`BitmapIndex`] into `store` under `scheme`,
/// compressed with `codec`; returns the stored index ready for
/// [`StorageSource`].
pub fn persist_index<S: ByteStore>(
    index: &BitmapIndex,
    store: S,
    scheme: StorageScheme,
    codec: bindex_compress::CodecKind,
) -> Result<StoredIndex<S>, StorageError> {
    StoredIndex::create(store, index.components(), scheme, codec)
}

/// Writes an in-memory [`BitmapIndex`] into `store` as a **version-3**
/// per-slot-coded store (bitmap-level layout): sparse slots are kept
/// WAH-compressed and served to the executor without decompression, dense
/// slots fall back to `codec`-compressed bytes. The returned index feeds
/// [`StorageSource`]/[`SharedSource`] like any other; the evaluators see
/// compressed slots through `try_fetch_repr` automatically.
pub fn persist_index_v3<S: ByteStore>(
    index: &BitmapIndex,
    store: S,
    codec: bindex_compress::CodecKind,
) -> Result<StoredIndex<S>, StorageError> {
    StoredIndex::create_v3(store, index.components(), codec)
}

/// Writes an in-memory [`BitmapIndex`] into `store` as a **version-4**
/// store: the v3 per-slot coding plus a checksummed hierarchical summary
/// block (one any-bit per [`SUMMARY_WINDOW_BITS`] window per slot).
/// Segmented execution consults the summaries *before* fetching a slot
/// and serves provably-dead windows as exact zeros, so cold queries over
/// sparse or clustered data skip the file read, the pool admission, and
/// the WAH decode entirely.
///
/// [`SUMMARY_WINDOW_BITS`]: bindex_bitvec::SUMMARY_WINDOW_BITS
pub fn persist_index_v4<S: ByteStore>(
    index: &BitmapIndex,
    store: S,
    codec: bindex_compress::CodecKind,
) -> Result<StoredIndex<S>, StorageError> {
    StoredIndex::create_v4(store, index.components(), codec)
}

/// Persists the row permutation of a reordered index next to its data
/// files (framed, checksum-verified on load). Call once after
/// [`persist_index_v4`] when the index was built through
/// [`build_reordered`](bindex_core::build_reordered) with a non-natural
/// order; without the sidecar, answers come back in internal row order.
pub fn persist_permutation<S: ByteStore>(
    stored: &mut StoredIndex<S>,
    perm: &RowPermutation,
) -> Result<(), StorageError> {
    let framed = format::frame(&perm.to_bytes());
    stored
        .store_mut()
        .write_file(PERMUTATION_FILE, &framed)
        .map_err(StorageError::Io)
}

/// Loads the row permutation persisted by [`persist_permutation`].
/// `Ok(None)` when the index was stored in natural order (no sidecar
/// file); corrupt frames and non-bijective payloads surface as typed
/// errors rather than silently scrambled row ids.
pub fn load_permutation<S: ByteStore>(
    stored: &StoredIndex<S>,
) -> Result<Option<RowPermutation>, Error> {
    let bytes = match stored.store().read_file(PERMUTATION_FILE) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(storage_error(StorageError::Io(e))),
    };
    let payload = format::unframe(PERMUTATION_FILE, &bytes).map_err(storage_error)?;
    RowPermutation::from_bytes(&payload).map(Some)
}

/// Online repair of a damaged stored index: scrubs the store, rebuilds
/// every bitmap a corrupt file held — from surviving equality siblings
/// where the identity applies, else by a digit-level scan of `column` —
/// and drives [`StoredIndex::scrub_and_repair`] to rewrite the files and
/// journal the repairs in the manifest.
///
/// `spec` must be the layout the index was written with; `null_mask`
/// flags null rows exactly as
/// [`BitmapIndex::build_with_nulls`] took it. With a `column` every slot
/// of every scheme is recoverable; without one only equality-encoded BS
/// slots with readable siblings are.
pub fn scrub_and_repair_index<S: ByteStore>(
    stored: &mut StoredIndex<S>,
    spec: &IndexSpec,
    column: Option<&Column>,
    null_mask: Option<&BitVec>,
) -> Result<RepairReport, Error> {
    let pre = stored.scrub().map_err(storage_error)?;
    // Reconstruct before repairing: sibling reads must happen while the
    // store is still readable slot-by-slot.
    let mut fixes: HashMap<(usize, usize), BitVec> = HashMap::new();
    for failure in &pre.failures {
        for (comp, slot) in stored.file_slots(&failure.file) {
            if fixes.contains_key(&(comp, slot)) {
                continue;
            }
            if let Some(bm) = reconstruct_slot(stored, spec, column, null_mask, comp, slot) {
                fixes.insert((comp, slot), bm);
            }
        }
    }
    stored
        .scrub_and_repair(|comp, slot| fixes.get(&(comp, slot)).cloned())
        .map_err(storage_error)
}

/// Best-effort reconstruction of one stored bitmap, outside any query:
/// the equality sibling identity first (only reachable under BS — under
/// CS/IS the corrupt file took the siblings with it), then the relation
/// scan. `None` when neither path applies.
fn reconstruct_slot<S: ByteStore>(
    stored: &StoredIndex<S>,
    spec: &IndexSpec,
    column: Option<&Column>,
    null_mask: Option<&BitVec>,
    comp: usize,
    slot: usize,
) -> Option<BitVec> {
    let b = spec.base.component(comp) as usize;
    if spec.encoding == Encoding::Equality && b > 2 {
        let mut acc: Option<BitVec> = None;
        let mut all_readable = true;
        for s in (0..b).filter(|&s| s != slot) {
            match stored.read_bitmap_shared(comp, s) {
                Ok((bm, _)) => match acc.as_mut() {
                    Some(a) => a.or_assign(&bm),
                    None => acc = Some(bm),
                },
                Err(_) => {
                    all_readable = false;
                    break;
                }
            }
        }
        if all_readable {
            if let Some(mut bm) = acc {
                bm.not_assign();
                if let Some(mask) = null_mask {
                    bm.and_not_assign(mask);
                }
                return Some(bm);
            }
        }
    }
    rebuild_slot(column?, null_mask, spec, comp, slot).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bindex_compress::CodecKind;
    use bindex_core::eval::{evaluate, Algorithm};
    use bindex_core::{Base, Encoding};
    use bindex_relation::query::full_space;
    use bindex_relation::{gen, Column};
    use bindex_storage::MemStore;

    fn column() -> Column {
        gen::uniform(500, 20, 42)
    }

    fn check(scheme: StorageScheme, codec: CodecKind, encoding: Encoding) {
        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), encoding);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let mut stored = persist_index(&idx, MemStore::new(), scheme, codec).unwrap();
        let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
        for q in full_space(20) {
            let (got, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
            let want = bindex_core::eval::naive::evaluate(&col, q);
            assert_eq!(got, want, "{scheme:?}/{codec:?}/{encoding:?} {q}");
        }
    }

    #[test]
    fn evaluation_through_all_layouts() {
        for scheme in [
            StorageScheme::BitmapLevel,
            StorageScheme::ComponentLevel,
            StorageScheme::IndexLevel,
        ] {
            for codec in [CodecKind::None, CodecKind::Deflate] {
                check(scheme, codec, Encoding::Range);
                check(scheme, codec, Encoding::Equality);
            }
        }
    }

    #[test]
    fn v3_evaluation_matches_naive_for_all_encodings_and_codecs() {
        let col = column();
        for codec in [CodecKind::None, CodecKind::Rle, CodecKind::Deflate] {
            for encoding in [Encoding::Equality, Encoding::Range, Encoding::Interval] {
                let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), encoding);
                let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
                let mut stored = persist_index_v3(&idx, MemStore::new(), codec).unwrap();
                assert_eq!(stored.format_version(), 3);
                let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
                for q in full_space(20) {
                    let (got, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
                    let want = bindex_core::eval::naive::evaluate(&col, q);
                    assert_eq!(got, want, "v3/{codec:?}/{encoding:?} {q}");
                }
            }
        }
    }

    #[test]
    fn v3_repair_keeps_answers_identical() {
        let col = column();
        let spec = IndexSpec::new(Base::single(20).unwrap(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let stored = persist_index_v3(&idx, MemStore::new(), CodecKind::None).unwrap();
        let (mut stored, victim) = corrupt_first_data_file(stored, ".bmp");

        let report = scrub_and_repair_index(&mut stored, &spec, None, None).unwrap();
        assert!(report.fully_repaired(), "{report:?}");
        assert!(report.repaired.contains(&victim), "{report:?}");
        assert!(stored.scrub().unwrap().is_clean());
        let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
        for q in full_space(20) {
            let (got, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
            assert_eq!(got, bindex_core::eval::naive::evaluate(&col, q), "{q}");
        }
    }

    #[test]
    fn v3_pooled_source_serves_compressed_reprs() {
        // A clustered equality index (sorted column → run-shaped slots):
        // every slot passes the 4× storage heuristic, is stored WAH, and
        // stays compressed through the pooled repr path.
        let values: Vec<u32> = (0..8192).map(|i| (i * 64 / 8192) as u32).collect();
        let col = Column::new(values, 64);
        let spec = IndexSpec::new(Base::single(64).unwrap(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let mut stored = persist_index_v3(&idx, MemStore::new(), CodecKind::None).unwrap();
        let pool = BufferPool::with_byte_budget(1 << 20);
        let mut src = StorageSource::try_new(&mut stored, spec)
            .unwrap()
            .with_pool(&pool);
        let repr = bindex_core::BitmapSource::try_fetch_repr(&mut src, 1, 3).unwrap();
        assert!(repr.is_compressed(), "sparse v3 slot must arrive as WAH");
        // Second fetch is a pool hit and preserves the representation.
        let again = bindex_core::BitmapSource::try_fetch_repr(&mut src, 1, 3).unwrap();
        assert!(again.is_compressed());
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(*repr.to_bitvec(), idx.components()[0][3]);
    }

    #[test]
    fn pooled_fetches_hit_after_first_read() {
        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let mut stored = persist_index(
            &idx,
            MemStore::new(),
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let pool = BufferPool::new(16);
        let mut src = StorageSource::try_new(&mut stored, spec)
            .unwrap()
            .with_pool(&pool);
        let q = bindex_relation::query::SelectionQuery::new(bindex_relation::query::Op::Le, 7);
        let _ = evaluate(&mut src, q, Algorithm::Auto).unwrap();
        let _ = evaluate(&mut src, q, Algorithm::Auto).unwrap();
        let stats = pool.stats();
        assert!(stats.hits >= stats.misses, "{stats:?}");
        // second pass reads nothing from storage
        assert_eq!(src.io_stats().reads as usize, stats.misses as usize);
    }

    #[test]
    fn shared_source_evaluates_concurrently() {
        use bindex_engine::batch::{evaluate_selection_workload, BatchOptions};
        use bindex_storage::ShardedPool;

        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let stored = persist_index(
            &idx,
            MemStore::new(),
            StorageScheme::BitmapLevel,
            CodecKind::Deflate,
        )
        .unwrap();
        let reader = SharedIndexReader::with_pool(stored, ShardedPool::new(32, 4));
        let queries = full_space(20);
        let results = evaluate_selection_workload(
            || SharedSource::try_new(&reader, spec.clone()).expect("spec matches"),
            &queries,
            Algorithm::Auto,
            &BatchOptions::with_threads(4),
        )
        .into_results()
        .unwrap();
        for (q, (found, _)) in queries.iter().zip(&results) {
            let want = bindex_core::eval::naive::evaluate(&col, *q);
            assert_eq!(found, &want, "{q}");
        }
        // The cache means each distinct bitmap is read from storage once.
        let io = reader.stats();
        assert!(io.reads <= reader.meta().total_bitmaps());
        let pool = reader.pool_stats().unwrap();
        assert!(pool.hits > 0, "repeated fetches must hit the cache");
    }

    #[test]
    fn shared_source_spec_mismatch_is_a_typed_error() {
        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        let stored = persist_index(
            &idx,
            MemStore::new(),
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let reader = SharedIndexReader::new(stored);
        let wrong = IndexSpec::new(Base::from_msb(&[5, 4]).unwrap(), Encoding::Range);
        assert!(matches!(
            SharedSource::try_new(&reader, wrong),
            Err(Error::CorruptIndex(_))
        ));
    }

    #[test]
    fn v4_store_serves_summaries_and_identical_answers() {
        let col = column();
        for encoding in [Encoding::Equality, Encoding::Range, Encoding::Interval] {
            let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), encoding);
            let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
            let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
            assert_eq!(stored.format_version(), 4);
            let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
            let summaries =
                bindex_core::BitmapSource::try_fetch_summary(&mut src).expect("v4 has summaries");
            assert_eq!(summaries.n_rows(), col.len());
            for q in full_space(20) {
                let (got, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
                let want = bindex_core::eval::naive::evaluate(&col, q);
                assert_eq!(got, want, "v4/{encoding:?} {q}");
            }
        }
    }

    #[test]
    fn v3_store_has_no_summaries() {
        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let mut stored = persist_index_v3(&idx, MemStore::new(), CodecKind::None).unwrap();
        let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
        assert!(bindex_core::BitmapSource::try_fetch_summary(&mut src).is_none());
    }

    #[test]
    fn mmap_source_pins_reprs_and_preserves_answers() {
        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
        let mmap = MappedStore::new();
        let mut src = StorageSource::try_new(&mut stored, spec)
            .unwrap()
            .with_mmap(&mmap);
        let a = bindex_core::BitmapSource::try_fetch_repr(&mut src, 1, 0).unwrap();
        let reads_after_first = src.io_stats().reads;
        let b = bindex_core::BitmapSource::try_fetch_repr(&mut src, 1, 0).unwrap();
        assert_eq!(a.to_bitvec(), b.to_bitvec());
        assert_eq!(
            src.io_stats().reads,
            reads_after_first,
            "mapped re-read must not touch storage"
        );
        let stats = mmap.stats();
        assert_eq!((stats.maps, stats.hits), (1, 1));
        for q in full_space(20) {
            let (got, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
            assert_eq!(got, bindex_core::eval::naive::evaluate(&col, q), "{q}");
        }
    }

    #[test]
    fn permutation_roundtrips_through_the_store() {
        use bindex_core::{build_reordered, BuildOptions, RowOrder};

        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let (idx, perm) = build_reordered(
            &col,
            None,
            spec.clone(),
            BuildOptions {
                row_order: RowOrder::FrequencySort,
            },
        )
        .unwrap();
        let perm = perm.expect("non-natural order produces a permutation");
        let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
        assert!(
            load_permutation(&stored).unwrap().is_none(),
            "no sidecar yet"
        );
        persist_permutation(&mut stored, &perm).unwrap();
        let loaded = load_permutation(&stored)
            .unwrap()
            .expect("sidecar must load");
        // Externalized answers through the store match the natural-order
        // ground truth.
        let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
        for q in full_space(20) {
            let (internal, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
            let got = loaded.externalize(&internal);
            assert_eq!(got, bindex_core::eval::naive::evaluate(&col, q), "{q}");
        }
        // A flipped payload byte is a typed error, not a scrambled answer.
        drop(src);
        let mut bytes = stored.store().read_file(PERMUTATION_FILE).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        stored
            .store_mut()
            .write_file(PERMUTATION_FILE, &bytes)
            .unwrap();
        assert!(load_permutation(&stored).is_err());
    }

    #[test]
    fn permutation_survives_scavenging_generations() {
        // `perm.bix` is outside the generation-classified layout, so a
        // reopen (which scavenges stale-generation files) keeps it.
        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let (idx, perm) = bindex_core::build_reordered(
            &col,
            None,
            spec,
            bindex_core::BuildOptions {
                row_order: bindex_core::RowOrder::GrayCode,
            },
        )
        .unwrap();
        let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
        persist_permutation(&mut stored, &perm.unwrap()).unwrap();
        let reopened = StoredIndex::open(stored.into_store()).unwrap();
        assert!(load_permutation(&reopened).unwrap().is_some());
    }

    /// Flips one payload byte of the first data file matching `pattern`
    /// behind the index's back, then reopens the store.
    fn corrupt_first_data_file(
        stored: StoredIndex<MemStore>,
        pattern: &str,
    ) -> (StoredIndex<MemStore>, String) {
        let mut store = stored.into_store();
        let mut names = store.file_names().unwrap();
        names.sort();
        let victim = names
            .iter()
            .find(|n| n.contains(pattern))
            .expect("a data file to corrupt")
            .clone();
        let mut bytes = store.read_file(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        store.write_file(&victim, &bytes).unwrap();
        (StoredIndex::open(store).unwrap(), victim)
    }

    #[test]
    fn repair_from_siblings_needs_no_column() {
        let col = column();
        let spec = IndexSpec::new(Base::single(20).unwrap(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let stored = persist_index(
            &idx,
            MemStore::new(),
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let (mut stored, victim) = corrupt_first_data_file(stored, ".bmp");

        let report = scrub_and_repair_index(&mut stored, &spec, None, None).unwrap();
        assert!(report.fully_repaired(), "{report:?}");
        assert!(report.repaired.contains(&victim), "{report:?}");
        assert!(stored.scrub().unwrap().is_clean());
        let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
        for q in full_space(20) {
            let (got, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
            assert_eq!(got, bindex_core::eval::naive::evaluate(&col, q), "{q}");
        }
    }

    #[test]
    fn repair_from_column_covers_every_scheme_and_encoding() {
        for scheme in [
            StorageScheme::BitmapLevel,
            StorageScheme::ComponentLevel,
            StorageScheme::IndexLevel,
        ] {
            for encoding in [Encoding::Equality, Encoding::Range, Encoding::Interval] {
                let col = column();
                let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), encoding);
                let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
                let stored = persist_index(&idx, MemStore::new(), scheme, CodecKind::None).unwrap();
                let pattern = match scheme {
                    StorageScheme::BitmapLevel => ".bmp",
                    StorageScheme::ComponentLevel => ".cmp",
                    StorageScheme::IndexLevel => "index.bix",
                };
                let (mut stored, _) = corrupt_first_data_file(stored, pattern);

                let report = scrub_and_repair_index(&mut stored, &spec, Some(&col), None).unwrap();
                assert!(
                    report.fully_repaired(),
                    "{scheme:?}/{encoding:?} {report:?}"
                );
                assert!(
                    stored.scrub().unwrap().is_clean(),
                    "{scheme:?}/{encoding:?}"
                );
                let mut src = StorageSource::try_new(&mut stored, spec).unwrap();
                for q in full_space(20) {
                    let (got, _) = evaluate(&mut src, q, Algorithm::Auto).unwrap();
                    let want = bindex_core::eval::naive::evaluate(&col, q);
                    assert_eq!(got, want, "{scheme:?}/{encoding:?} {q}");
                }
            }
        }
    }

    #[test]
    fn repair_without_any_source_reports_unrepaired() {
        let col = column();
        // Components are stored lsb-first, so component 2 has base 2: a
        // single stored slot, no sibling identity — and no column given.
        let spec = IndexSpec::new(Base::from_msb(&[2, 2, 5]).unwrap(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let stored = persist_index(
            &idx,
            MemStore::new(),
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let (mut stored, victim) = corrupt_first_data_file(stored, "c2_b0.bmp");

        let report = scrub_and_repair_index(&mut stored, &spec, None, None).unwrap();
        assert!(!report.fully_repaired());
        assert_eq!(report.unrepaired.len(), 1, "{report:?}");
        assert_eq!(report.unrepaired[0].file, victim);
    }

    #[test]
    fn spec_mismatch_is_a_typed_error() {
        let col = column();
        let spec = IndexSpec::new(Base::from_msb(&[4, 5]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        let mut stored = persist_index(
            &idx,
            MemStore::new(),
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let wrong = IndexSpec::new(Base::from_msb(&[5, 4]).unwrap(), Encoding::Range);
        match StorageSource::try_new(&mut stored, wrong) {
            Err(Error::CorruptIndex(msg)) => assert!(msg.contains("does not match"), "{msg}"),
            other => panic!("expected CorruptIndex, got {:?}", other.err()),
        }
    }
}
