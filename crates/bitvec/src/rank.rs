//! Rank/select acceleration for [`BitVec`].
//!
//! A [`RankIndex`] is a sampled prefix-popcount directory over an immutable
//! bitmap. It answers `rank1(i)` (number of set bits strictly before `i`) in
//! O(1) plus one word popcount, and `select1(k)` (position of the k-th set
//! bit, 0-based) with a binary search over the directory.
//!
//! The index layer uses this to report foundset cardinalities of query
//! results and to materialize the i-th qualifying RID without a full scan —
//! an extension beyond the paper used by the example applications.

use crate::{BitVec, WORD_BITS};

/// Sampling period of the directory, in words (512 bits per superblock).
const WORDS_PER_BLOCK: usize = 8;

/// Prefix-popcount directory over a borrowed [`BitVec`].
///
/// The directory stores, for every superblock of 8 words, the number of set
/// bits before the superblock. Construction is O(n / 64); queries do not
/// rescan the bitmap.
pub struct RankIndex<'a> {
    bits: &'a BitVec,
    /// `block_ranks[b]` = number of ones before word `b * WORDS_PER_BLOCK`.
    block_ranks: Vec<usize>,
    total_ones: usize,
}

impl<'a> RankIndex<'a> {
    /// Builds the directory for `bits`.
    pub fn new(bits: &'a BitVec) -> Self {
        let words = bits.words();
        let nblocks = words.len().div_ceil(WORDS_PER_BLOCK);
        let mut block_ranks = Vec::with_capacity(nblocks + 1);
        let mut acc = 0usize;
        for (wi, w) in words.iter().enumerate() {
            if wi % WORDS_PER_BLOCK == 0 {
                block_ranks.push(acc);
            }
            acc += w.count_ones() as usize;
        }
        block_ranks.push(acc);
        Self {
            bits,
            block_ranks,
            total_ones: acc,
        }
    }

    /// Total number of set bits.
    #[inline]
    pub fn total_ones(&self) -> usize {
        self.total_ones
    }

    /// Number of set bits at positions `< i`.
    ///
    /// # Panics
    /// Panics if `i > len`.
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.bits.len(), "rank position {i} out of range");
        let word = i / WORD_BITS;
        let block = word / WORDS_PER_BLOCK;
        let mut r = self.block_ranks[block.min(self.block_ranks.len() - 1)];
        let words = self.bits.words();
        for w in &words[block * WORDS_PER_BLOCK..word] {
            r += w.count_ones() as usize;
        }
        let rem = i % WORD_BITS;
        if rem != 0 && word < words.len() {
            r += (words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of clear bits at positions `< i`.
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th set bit (0-based), or `None` if `k >= ones`.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.total_ones {
            return None;
        }
        // Binary search for the superblock containing the k-th one.
        let mut lo = 0usize;
        let mut hi = self.block_ranks.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.block_ranks[mid] <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut remaining = k - self.block_ranks[lo];
        let words = self.bits.words();
        for (off, &w) in words[lo * WORDS_PER_BLOCK..].iter().enumerate() {
            let pc = w.count_ones() as usize;
            if remaining < pc {
                let pos = select_in_word(w, remaining);
                return Some((lo * WORDS_PER_BLOCK + off) * WORD_BITS + pos);
            }
            remaining -= pc;
        }
        unreachable!("select1: directory and words disagree");
    }
}

/// Position of the `k`-th set bit inside a word (`k < popcount(w)`).
fn select_in_word(mut w: u64, mut k: usize) -> usize {
    debug_assert!(k < w.count_ones() as usize);
    loop {
        let tz = w.trailing_zeros() as usize;
        if k == 0 {
            return tz;
        }
        w &= w - 1;
        k -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitVec {
        BitVec::from_fn(1000, |i| i % 7 == 0 || i % 13 == 0)
    }

    #[test]
    fn rank_matches_naive() {
        let v = sample();
        let r = RankIndex::new(&v);
        let mut naive = 0;
        for i in 0..=v.len() {
            assert_eq!(r.rank1(i), naive, "rank1({i})");
            assert_eq!(r.rank0(i), i - naive);
            if i < v.len() && v.get(i) {
                naive += 1;
            }
        }
    }

    #[test]
    fn select_matches_iter_ones() {
        let v = sample();
        let r = RankIndex::new(&v);
        for (k, pos) in v.iter_ones().enumerate() {
            assert_eq!(r.select1(k), Some(pos), "select1({k})");
        }
        assert_eq!(r.select1(r.total_ones()), None);
    }

    #[test]
    fn rank_select_inverse() {
        let v = sample();
        let r = RankIndex::new(&v);
        for k in 0..r.total_ones() {
            let pos = r.select1(k).unwrap();
            assert_eq!(r.rank1(pos), k);
            assert!(v.get(pos));
        }
    }

    #[test]
    fn empty_and_full() {
        let e = BitVec::zeros(100);
        let re = RankIndex::new(&e);
        assert_eq!(re.total_ones(), 0);
        assert_eq!(re.select1(0), None);
        assert_eq!(re.rank1(100), 0);

        let f = BitVec::ones(100);
        let rf = RankIndex::new(&f);
        assert_eq!(rf.total_ones(), 100);
        assert_eq!(rf.select1(99), Some(99));
        assert_eq!(rf.rank1(57), 57);
    }

    #[test]
    fn zero_length() {
        let v = BitVec::zeros(0);
        let r = RankIndex::new(&v);
        assert_eq!(r.rank1(0), 0);
        assert_eq!(r.select1(0), None);
    }
}
