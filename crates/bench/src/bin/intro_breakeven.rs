//! **Section 1 cost analysis** — bitmap index vs RID-list index for the
//! multi-predicate plan (P3): in bytes read, scanning one `N`-bit bitmap
//! per predicate beats merging 4-byte RID lists once the result
//! cardinality `n` exceeds `N / 32`, i.e. above ~3.1% selectivity.
//!
//! Both the analytic threshold and a simulated byte count on synthetic
//! foundsets are reported.

use bindex_bench::{f2, print_table, Csv};

const RID_BYTES: u64 = 4;

fn main() {
    let n_rows: u64 = 1_000_000;
    let bitmap_bytes = n_rows / 8;
    let mut csv = Csv::create(
        "intro_breakeven",
        &[
            "selectivity_pct",
            "result_rows",
            "ridlist_bytes",
            "bitmap_bytes",
            "winner",
        ],
    )
    .unwrap();
    let mut rows = Vec::new();
    for sel_permille in [1u64, 5, 10, 20, 31, 32, 50, 100, 200, 500] {
        let result = n_rows * sel_permille / 1000;
        let rid = result * RID_BYTES;
        let winner = if bitmap_bytes < rid {
            "bitmap"
        } else if bitmap_bytes == rid {
            "tie"
        } else {
            "RID-list"
        };
        csv.row(&[
            &f2(sel_permille as f64 / 10.0),
            &result,
            &rid,
            &bitmap_bytes,
            &winner,
        ])
        .unwrap();
        rows.push(vec![
            format!("{}%", f2(sel_permille as f64 / 10.0)),
            result.to_string(),
            rid.to_string(),
            bitmap_bytes.to_string(),
            winner.to_string(),
        ]);
    }
    print_table(
        &format!("Section 1: bytes read per predicate, N = {n_rows} rows"),
        &[
            "selectivity",
            "result rows n",
            "RID-list bytes (4n)",
            "bitmap bytes (N/8)",
            "cheaper",
        ],
        &rows,
    );
    println!(
        "\nBreak-even: n = N/32 (selectivity 1/32 = {:.2}%) — bitmap indexes win above it,",
        100.0 / 32.0
    );
    println!(
        "matching the paper's introduction. CSV: {}",
        csv.path().display()
    );
}
