//! Deterministic fault injection for storage robustness tests.
//!
//! [`FaultStore`] wraps any [`ByteStore`] and perturbs its operations
//! according to a seeded [`FaultPlan`]: transient read errors (retryable),
//! silent bit flips, truncated reads, and torn (partial) writes. Faults
//! are a pure function of the plan's seed, the file name, and the
//! operation sequence number, so a failing test case replays exactly.
//! Injected faults are tallied in [`FaultCounters`].

use std::io;
use std::sync::Mutex;

use crate::store::ByteStore;

/// SplitMix64, private to the fault layer so the storage crate stays
/// dependency-free (the relation crate's `Rng` would invert the layering).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, enough to give distinct files distinct fault positions.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// What a matching rule does to the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// The read fails with [`io::ErrorKind::Interrupted`] (transient).
    TransientError,
    /// One deterministically-chosen bit of the returned data is flipped.
    BitFlip,
    /// Only the first `keep` bytes of the file are returned.
    Truncate(usize),
    /// Only a deterministically-chosen prefix of the data is persisted.
    TornWrite,
}

#[derive(Debug, Clone)]
struct Rule {
    /// Substring match against the file name; empty matches every file.
    pattern: String,
    kind: FaultKind,
    /// Fire on every `nth` matching operation (1 = every one).
    every_nth: u64,
    /// Remaining firings; `None` = unlimited.
    budget: Option<u64>,
    /// Matching operations seen so far.
    seen: u64,
}

impl Rule {
    fn fire(&mut self) -> bool {
        self.seen += 1;
        if !self.seen.is_multiple_of(self.every_nth) {
            return false;
        }
        match &mut self.budget {
            Some(0) => false,
            Some(n) => {
                *n -= 1;
                true
            }
            None => true,
        }
    }
}

/// A seeded, ordered list of fault rules. Build with the `with_*`
/// methods, then hand to [`FaultStore::new`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    fn push(mut self, pattern: &str, kind: FaultKind, every_nth: u64, budget: Option<u64>) -> Self {
        assert!(every_nth >= 1, "every_nth must be at least 1");
        self.rules.push(Rule {
            pattern: pattern.to_string(),
            kind,
            every_nth,
            budget,
            seen: 0,
        });
        self
    }

    /// The first `count` reads of files whose name contains `pattern`
    /// fail with a transient [`io::ErrorKind::Interrupted`] error.
    pub fn with_transient_reads(self, pattern: &str, count: u64) -> Self {
        self.push(pattern, FaultKind::TransientError, 1, Some(count))
    }

    /// Every `nth` read (of any file) fails with a transient error.
    pub fn with_transient_every_nth_read(self, nth: u64) -> Self {
        self.push("", FaultKind::TransientError, nth, None)
    }

    /// Every read of files whose name contains `pattern` returns data
    /// with one seeded bit flipped (silent corruption).
    pub fn with_bit_flip(self, pattern: &str) -> Self {
        self.push(pattern, FaultKind::BitFlip, 1, None)
    }

    /// The first `count` reads of files whose name contains `pattern`
    /// return data with one seeded bit flipped; after the budget is spent
    /// reads are clean again. This models a corrupted-then-repaired store:
    /// chaos stages use it so that a later scrub-and-repair pass (which
    /// rewrites the files) leaves the store genuinely healthy.
    pub fn with_bit_flips(self, pattern: &str, count: u64) -> Self {
        self.push(pattern, FaultKind::BitFlip, 1, Some(count))
    }

    /// Every read of files whose name contains `pattern` returns only the
    /// first `keep` bytes.
    pub fn with_truncated_reads(self, pattern: &str, keep: usize) -> Self {
        self.push(pattern, FaultKind::Truncate(keep), 1, None)
    }

    /// The first `count` writes to files whose name contains `pattern`
    /// persist only a seeded prefix of the data (a torn write).
    pub fn with_torn_writes(self, pattern: &str, count: u64) -> Self {
        self.push(pattern, FaultKind::TornWrite, 1, Some(count))
    }
}

/// Tallies of the faults actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Reads failed with a transient error.
    pub transient_errors: u64,
    /// Reads returned with a flipped bit.
    pub bit_flips: u64,
    /// Reads returned truncated.
    pub truncated_reads: u64,
    /// Writes persisted partially.
    pub torn_writes: u64,
}

impl FaultCounters {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.transient_errors + self.bit_flips + self.truncated_reads + self.torn_writes
    }
}

#[derive(Debug)]
struct FaultState {
    rules: Vec<Rule>,
    counters: FaultCounters,
}

/// A [`ByteStore`] wrapper that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultStore<S: ByteStore> {
    inner: S,
    seed: u64,
    state: Mutex<FaultState>,
}

impl<S: ByteStore> FaultStore<S> {
    /// Wraps `inner` with the fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            seed: plan.seed,
            state: Mutex::new(FaultState {
                rules: plan.rules,
                counters: FaultCounters::default(),
            }),
        }
    }

    /// Counters of the faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.lock().counters
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding the fault plan.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deterministic value in `0..bound` for this (file, occurrence).
    fn roll(&self, name: &str, salt: u64, bound: u64) -> u64 {
        let mut s = self.seed ^ hash_name(name) ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D);
        if bound == 0 {
            return 0;
        }
        splitmix64(&mut s) % bound
    }
}

impl<S: ByteStore> ByteStore for FaultStore<S> {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut torn = None;
        {
            let mut st = self.lock();
            for rule in st.rules.iter_mut() {
                if rule.kind == FaultKind::TornWrite && name.contains(&rule.pattern) && rule.fire()
                {
                    torn = Some(rule.seen);
                    break;
                }
            }
            if torn.is_some() {
                st.counters.torn_writes += 1;
            }
        }
        match torn {
            Some(occurrence) => {
                // Persist a strict prefix: the write started but did not finish.
                let keep = self.roll(name, occurrence, data.len().max(1) as u64) as usize;
                self.inner.write_file(name, &data[..keep])
            }
            None => self.inner.write_file(name, data),
        }
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut fault = None;
        {
            let mut st = self.lock();
            for rule in st.rules.iter_mut() {
                if rule.kind != FaultKind::TornWrite && name.contains(&rule.pattern) && rule.fire()
                {
                    fault = Some((rule.kind, rule.seen));
                    break;
                }
            }
            match fault {
                Some((FaultKind::TransientError, _)) => st.counters.transient_errors += 1,
                Some((FaultKind::BitFlip, _)) => st.counters.bit_flips += 1,
                Some((FaultKind::Truncate(_), _)) => st.counters.truncated_reads += 1,
                _ => {}
            }
        }
        match fault {
            Some((FaultKind::TransientError, _)) => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault reading {name}"),
            )),
            Some((FaultKind::BitFlip, occurrence)) => {
                let mut data = self.inner.read_file(name)?;
                if !data.is_empty() {
                    let bit = self.roll(name, occurrence, data.len() as u64 * 8);
                    data[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Ok(data)
            }
            Some((FaultKind::Truncate(keep), _)) => {
                let mut data = self.inner.read_file(name)?;
                data.truncate(keep);
                Ok(data)
            }
            _ => self.inner.read_file(name),
        }
    }

    fn file_size(&self, name: &str) -> io::Result<u64> {
        self.inner.file_size(name)
    }

    fn file_names(&self) -> io::Result<Vec<String>> {
        self.inner.file_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn seeded_store() -> MemStore {
        let mut m = MemStore::new();
        m.write_file("a.bmp", &[0xFF; 32]).unwrap();
        m.write_file("b.cmp", &[0x00; 32]).unwrap();
        m
    }

    #[test]
    fn clean_plan_is_transparent() {
        let fs = FaultStore::new(seeded_store(), FaultPlan::new(1));
        assert_eq!(fs.read_file("a.bmp").unwrap(), vec![0xFF; 32]);
        assert_eq!(fs.counters().total(), 0);
    }

    #[test]
    fn transient_reads_fail_then_recover() {
        let fs = FaultStore::new(
            seeded_store(),
            FaultPlan::new(1).with_transient_reads("a", 2),
        );
        for _ in 0..2 {
            let err = fs.read_file("a.bmp").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        assert_eq!(fs.read_file("a.bmp").unwrap(), vec![0xFF; 32]);
        assert_eq!(fs.read_file("b.cmp").unwrap(), vec![0x00; 32]); // unmatched
        assert_eq!(fs.counters().transient_errors, 2);
    }

    #[test]
    fn every_nth_read_fails() {
        let fs = FaultStore::new(
            seeded_store(),
            FaultPlan::new(1).with_transient_every_nth_read(3),
        );
        let mut failures = 0;
        for _ in 0..9 {
            if fs.read_file("a.bmp").is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(fs.counters().transient_errors, 3);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit_deterministically() {
        let fs = FaultStore::new(seeded_store(), FaultPlan::new(42).with_bit_flip("a.bmp"));
        let first = fs.read_file("a.bmp").unwrap();
        let diff: u32 = first
            .iter()
            .zip([0xFFu8; 32])
            .map(|(&g, w)| (g ^ w).count_ones())
            .sum();
        assert_eq!(diff, 1);
        // Same seed, same occurrence number on a fresh store: same flip.
        let fs2 = FaultStore::new(seeded_store(), FaultPlan::new(42).with_bit_flip("a.bmp"));
        assert_eq!(fs2.read_file("a.bmp").unwrap(), first);
        assert_eq!(fs.counters().bit_flips, 1);
    }

    #[test]
    fn truncated_reads_shorten() {
        let fs = FaultStore::new(
            seeded_store(),
            FaultPlan::new(1).with_truncated_reads("b.cmp", 5),
        );
        assert_eq!(fs.read_file("b.cmp").unwrap().len(), 5);
        assert_eq!(fs.read_file("a.bmp").unwrap().len(), 32);
        assert_eq!(fs.counters().truncated_reads, 1);
    }

    #[test]
    fn torn_write_persists_strict_prefix() {
        let mut fs = FaultStore::new(MemStore::new(), FaultPlan::new(7).with_torn_writes("x", 1));
        fs.write_file("x.bin", &[9u8; 100]).unwrap();
        let stored = fs.inner().read_file("x.bin").unwrap();
        assert!(stored.len() < 100, "got {} bytes", stored.len());
        assert!(stored.iter().all(|&b| b == 9));
        // Budget exhausted: second write lands whole.
        fs.write_file("x.bin", &[9u8; 100]).unwrap();
        assert_eq!(fs.inner().read_file("x.bin").unwrap().len(), 100);
        assert_eq!(fs.counters().torn_writes, 1);
    }
}
