//! Microbench: segment-size sensitivity of the morsel-driven executor's
//! inner loop — an 8-way pairwise AND over 8M-bit operands, whole-bitmap
//! vs cache-blocked at several morsel sizes, plus the segmented evaluator
//! end-to-end against the whole-bitmap path.

use bindex::core::eval::{evaluate, evaluate_segmented, Algorithm};
use bindex::core::DEFAULT_SEGMENT_BITS;
use bindex::relation::gen;
use bindex::{Base, BitVec, BitmapIndex, Encoding, IndexSpec};
use bindex_bench::microbench::{Criterion, Throughput};
use bindex_bench::{criterion_group, criterion_main};
use std::hint::black_box;

const BITS: usize = 1 << 23;
const OPERANDS: usize = 8;

fn mk(seed: usize) -> BitVec {
    BitVec::from_fn(BITS, |i| (i * 2654435761 + seed).is_multiple_of(7))
}

fn fold_whole(operands: &[BitVec]) -> usize {
    let mut acc = operands[0].clone();
    for op in &operands[1..] {
        acc.and_assign(op);
    }
    acc.count_ones()
}

fn fold_segmented(operands: &[BitVec], segment_bits: usize) -> usize {
    let mut ones = 0usize;
    let mut lo = 0usize;
    while lo < BITS {
        let hi = (lo + segment_bits).min(BITS);
        let mut acc = operands[0].view_range(lo, hi).to_bitvec();
        for op in &operands[1..] {
            acc.and_assign_view(op.view_range(lo, hi));
        }
        ones += acc.count_ones();
        lo = hi;
    }
    ones
}

fn bench(c: &mut Criterion) {
    let operands: Vec<BitVec> = (0..OPERANDS).map(mk).collect();
    let mut g = c.benchmark_group("segmented_exec");
    g.throughput(Throughput::Bytes((BITS / 8 * OPERANDS) as u64));

    g.bench_function("and_8way_whole_8m", |bench| {
        bench.iter(|| fold_whole(black_box(&operands)))
    });
    for seg in [1 << 16, DEFAULT_SEGMENT_BITS, 1 << 20] {
        g.bench_function(format!("and_8way_seg_{seg}"), |bench| {
            bench.iter(|| fold_segmented(black_box(&operands), seg))
        });
    }
    g.finish();

    let rows = 1 << 18;
    let cardinality = 25u32;
    let col = gen::uniform(rows, cardinality, 7);
    let spec = IndexSpec::new(Base::single(cardinality).unwrap(), Encoding::Range);
    let index = BitmapIndex::build(&col, spec).unwrap();
    let query = bindex::relation::query::SelectionQuery::new(bindex::relation::query::Op::Le, 12);

    let mut g = c.benchmark_group("segmented_eval");
    g.bench_function("range_opt_whole_256k", |bench| {
        bench.iter(|| {
            let mut src = index.source();
            evaluate(&mut src, black_box(query), Algorithm::RangeEvalOpt)
                .unwrap()
                .0
                .count_ones()
        })
    });
    g.bench_function("range_opt_seg_default_256k", |bench| {
        bench.iter(|| {
            let mut src = index.source();
            evaluate_segmented(
                &mut src,
                black_box(query),
                Algorithm::RangeEvalOpt,
                DEFAULT_SEGMENT_BITS,
            )
            .unwrap()
            .0
            .count_ones()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
