//! Write-ahead log for streaming ingest: CRC32-framed, append-only
//! records in front of the in-memory delta segment.
//!
//! ## On-disk layout
//!
//! ```text
//! header   := "BIXW" | version u32 LE                        (8 bytes)
//! record   := "WREC" | seq u64 LE | payload_len u32 LE
//!           | crc32(payload) u32 LE | payload                (20 + n bytes)
//! payload  := 0x01 | count u32 LE | count × value u32 LE     (append batch,
//!                                     u32::MAX = null row)
//!           | 0x02 | count u32 LE | count × row u64 LE       (delete batch)
//! ```
//!
//! Appends are **not** atomic — a crash can persist any prefix — so every
//! record is self-validating: magic, length, and checksum. Replay walks
//! the log from the header and stops at the first record that fails any
//! check (truncated frame, bad magic, checksum mismatch, malformed
//! payload, or a sequence number that does not increase), reporting the
//! valid prefix length so the caller can truncate the torn tail away.
//! Everything before the stop point is exactly what was durably written;
//! a batch is acknowledged only after its record is appended *and*
//! fsynced, so an acknowledged batch is always inside the valid prefix.

use crate::checksum::crc32;
use crate::error::StorageError;

/// The write-ahead log's file name inside a stored index.
pub const WAL_FILE: &str = "wal.bixl";

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 4] = b"BIXW";

/// WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Header length: magic + version.
pub const WAL_HEADER_LEN: usize = 8;

/// Per-record frame length ahead of the payload: magic + seq + len + crc.
pub const WAL_RECORD_HEADER_LEN: usize = 20;

const RECORD_MAGIC: &[u8; 4] = b"WREC";
const OP_APPEND: u8 = 0x01;
const OP_DELETE: u8 = 0x02;
/// Null sentinel in an append batch (a real value can never be
/// `u32::MAX`: column values are `< cardinality <= u32::MAX`).
const NULL_SENTINEL: u32 = u32::MAX;

/// One logged mutation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Rows appended at the end of the index; `None` is a null row.
    Append {
        /// The appended values in row order.
        values: Vec<Option<u32>>,
    },
    /// Rows deleted by absolute row id.
    Delete {
        /// The deleted row ids.
        rows: Vec<u64>,
    },
}

/// A decoded WAL record: a batch and its commit sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Strictly-increasing commit sequence number.
    pub seq: u64,
    /// The logged batch.
    pub op: WalOp,
}

/// Outcome of replaying a WAL byte image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Every record in the valid prefix, in commit order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + whole good records).
    /// Truncating the file to this length removes the torn tail.
    pub valid_bytes: u64,
    /// `true` when bytes past the valid prefix were dropped — a torn
    /// append, a crashed fsync, or at-rest tail corruption.
    pub truncated: bool,
}

/// A fresh WAL image: the 8-byte header, no records.
pub fn wal_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out
}

fn encode_payload(op: &WalOp) -> Vec<u8> {
    match op {
        WalOp::Append { values } => {
            let mut out = Vec::with_capacity(5 + values.len() * 4);
            out.push(OP_APPEND);
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                debug_assert!(*v != Some(NULL_SENTINEL), "u32::MAX is the null sentinel");
                out.extend_from_slice(&v.unwrap_or(NULL_SENTINEL).to_le_bytes());
            }
            out
        }
        WalOp::Delete { rows } => {
            let mut out = Vec::with_capacity(5 + rows.len() * 8);
            out.push(OP_DELETE);
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for r in rows {
                out.extend_from_slice(&r.to_le_bytes());
            }
            out
        }
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    let (&tag, rest) = payload.split_first()?;
    let count = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
    let body = &rest[4..];
    match tag {
        OP_APPEND => {
            if body.len() != count * 4 {
                return None;
            }
            let values = body
                .chunks_exact(4)
                .map(|c| {
                    let v = u32::from_le_bytes(c.try_into().unwrap());
                    (v != NULL_SENTINEL).then_some(v)
                })
                .collect();
            Some(WalOp::Append { values })
        }
        OP_DELETE => {
            if body.len() != count * 8 {
                return None;
            }
            let rows = body
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Some(WalOp::Delete { rows })
        }
        _ => None,
    }
}

/// Encodes one record ready to append to the log.
pub fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let payload = encode_payload(op);
    let mut out = Vec::with_capacity(WAL_RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(RECORD_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Replays a WAL byte image, returning the valid record prefix.
///
/// An empty image is a fresh log (no records, nothing truncated). A
/// structurally bad *header* is a hard [`StorageError::Corrupt`] — the
/// whole file is untrustworthy and acknowledged batches may be lost,
/// which must not be silent. A bad *record* merely ends the valid
/// prefix: everything after it is reported as truncated tail.
pub fn replay(bytes: &[u8]) -> Result<WalReplay, StorageError> {
    if bytes.is_empty() {
        return Ok(WalReplay {
            records: Vec::new(),
            valid_bytes: 0,
            truncated: false,
        });
    }
    if bytes.len() < WAL_HEADER_LEN && wal_header().starts_with(bytes) {
        // A strict prefix of the canonical header: the crash landed inside
        // the very first header write, before any record could exist —
        // a torn fresh log, not corruption of acknowledged data.
        return Ok(WalReplay {
            records: Vec::new(),
            valid_bytes: 0,
            truncated: true,
        });
    }
    if bytes.len() < WAL_HEADER_LEN || &bytes[..4] != WAL_MAGIC {
        return Err(StorageError::corrupt(WAL_FILE, "bad WAL header magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(StorageError::corrupt(
            WAL_FILE,
            format!("unsupported WAL version {version}"),
        ));
    }
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    let mut last_seq: Option<u64> = None;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            // Clean end of log.
            return Ok(WalReplay {
                records,
                valid_bytes: offset as u64,
                truncated: false,
            });
        }
        let Some(record_len) = validate_record(rest, last_seq) else {
            // Torn or corrupt tail: stop at the last good record.
            return Ok(WalReplay {
                records,
                valid_bytes: offset as u64,
                truncated: true,
            });
        };
        let seq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let payload = &rest[WAL_RECORD_HEADER_LEN..record_len];
        // validate_record decoded this payload already.
        let op = decode_payload(payload).expect("validated payload");
        records.push(WalRecord { seq, op });
        last_seq = Some(seq);
        offset += record_len;
    }
}

/// Checks one record at the head of `rest`; returns its total length
/// when every check passes (frame complete, magic, checksum, payload
/// decodes, sequence increases).
fn validate_record(rest: &[u8], last_seq: Option<u64>) -> Option<usize> {
    if rest.len() < WAL_RECORD_HEADER_LEN || &rest[..4] != RECORD_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    if last_seq.is_some_and(|last| seq <= last) {
        return None;
    }
    let payload_len = u32::from_le_bytes(rest[12..16].try_into().unwrap()) as usize;
    let expected_crc = u32::from_le_bytes(rest[16..20].try_into().unwrap());
    let total = WAL_RECORD_HEADER_LEN.checked_add(payload_len)?;
    if rest.len() < total {
        return None;
    }
    let payload = &rest[WAL_RECORD_HEADER_LEN..total];
    if crc32(payload) != expected_crc || decode_payload(payload).is_none() {
        return None;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Append {
                values: vec![Some(3), None, Some(0), Some(7)],
            },
            WalOp::Delete { rows: vec![1, 5] },
            WalOp::Append {
                values: vec![Some(2)],
            },
        ]
    }

    fn sample_log() -> Vec<u8> {
        let mut log = wal_header();
        for (i, op) in sample_ops().iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, op));
        }
        log
    }

    #[test]
    fn roundtrip_replays_all_records() {
        let log = sample_log();
        let out = replay(&log).unwrap();
        assert!(!out.truncated);
        assert_eq!(out.valid_bytes, log.len() as u64);
        assert_eq!(out.records.len(), 3);
        for (i, (record, op)) in out.records.iter().zip(sample_ops()).enumerate() {
            assert_eq!(record.seq, i as u64 + 1);
            assert_eq!(record.op, op);
        }
    }

    #[test]
    fn empty_image_is_a_fresh_log() {
        let out = replay(&[]).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.valid_bytes, 0);
        assert!(!out.truncated);
        // Header only: still fresh, but the header counts as valid bytes.
        let out = replay(&wal_header()).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.valid_bytes, WAL_HEADER_LEN as u64);
    }

    #[test]
    fn every_torn_tail_length_recovers_the_valid_prefix() {
        let log = sample_log();
        let full = replay(&log).unwrap();
        // Record boundaries: header + cumulative record lengths.
        let mut boundaries = vec![WAL_HEADER_LEN as u64];
        let mut at = WAL_HEADER_LEN;
        for op in sample_ops() {
            at += encode_record(1, &op).len();
            boundaries.push(at as u64);
        }
        for cut in WAL_HEADER_LEN..log.len() {
            let out = replay(&log[..cut]).unwrap();
            // The valid prefix is the largest boundary <= cut.
            let want_valid = *boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .max()
                .unwrap();
            assert_eq!(out.valid_bytes, want_valid, "cut={cut}");
            assert_eq!(out.truncated, (cut as u64) != want_valid, "cut={cut}");
            let want_records = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(out.records.len(), want_records, "cut={cut}");
            assert_eq!(out.records, full.records[..want_records], "cut={cut}");
        }
    }

    #[test]
    fn corrupt_tail_byte_truncates_not_errors() {
        let mut log = sample_log();
        let last = log.len() - 3;
        log[last] ^= 0x40; // flip a bit inside the final record's payload
        let out = replay(&log).unwrap();
        assert!(out.truncated);
        assert_eq!(out.records.len(), 2, "final record dropped");
        // Garbage appended after valid records is likewise dropped.
        let mut log = sample_log();
        log.extend_from_slice(b"garbage tail bytes");
        let out = replay(&log).unwrap();
        assert!(out.truncated);
        assert_eq!(out.records.len(), 3);
    }

    #[test]
    fn sequence_regression_ends_the_valid_prefix() {
        let mut log = wal_header();
        let op = WalOp::Delete { rows: vec![0] };
        log.extend_from_slice(&encode_record(5, &op));
        log.extend_from_slice(&encode_record(5, &op)); // duplicate seq
        let out = replay(&log).unwrap();
        assert_eq!(out.records.len(), 1);
        assert!(out.truncated);
    }

    #[test]
    fn bad_header_is_a_hard_error() {
        assert!(replay(b"NOTW\x01\x00\x00\x00").is_err());
        let mut versioned = wal_header();
        versioned[4] = 9; // unsupported version
        assert!(replay(&versioned).is_err());
        // Short but NOT a header prefix: untrustworthy.
        assert!(replay(b"BIY").is_err());
    }

    #[test]
    fn torn_header_creation_is_a_fresh_log() {
        // A crash inside the very first header write leaves a strict
        // prefix of the canonical header — a torn fresh log, recoverable,
        // with nothing acknowledged to lose.
        let header = wal_header();
        for cut in 1..header.len() {
            let out = replay(&header[..cut]).unwrap();
            assert!(out.records.is_empty(), "cut={cut}");
            assert_eq!(out.valid_bytes, 0, "cut={cut}");
            assert!(out.truncated, "cut={cut}");
        }
    }

    #[test]
    fn null_sentinel_roundtrips() {
        let op = WalOp::Append {
            values: vec![None, Some(u32::MAX - 1), None],
        };
        let mut log = wal_header();
        log.extend_from_slice(&encode_record(1, &op));
        let out = replay(&log).unwrap();
        assert_eq!(out.records[0].op, op);
    }
}
