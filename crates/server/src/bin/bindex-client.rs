//! The `bindex-client` binary: a command-line client for `bindex-server`.
//!
//! ```text
//! bindex-client [--addr HOST:PORT] ping
//! bindex-client [--addr HOST:PORT] stats
//! bindex-client [--addr HOST:PORT] query INDEX OP CONST [--bitmap] [--deadline-ms N]
//! bindex-client [--addr HOST:PORT] threshold INDEX K OP CONST [OP CONST ...]
//!                                  [--bitmap] [--deadline-ms N]
//! bindex-client [--addr HOST:PORT] ingest INDEX [--append V,null,...] [--delete R,...]
//! bindex-client [--addr HOST:PORT] repair INDEX
//! bindex-client [--addr HOST:PORT] shutdown
//! ```
//!
//! `OP` is one of `< <= > >= = !=`. `threshold` counts rows where at
//! least `K` of the listed predicates hold. `ingest` appends comma-separated
//! values (`null` for a null row) and/or deletes comma-separated row
//! ids; the batch is WAL-logged, compacted, and acknowledged with its
//! commit sequence and new generation. Typed server errors
//! (`Overloaded`, `DeadlineExceeded`, …) print to stderr and exit 1;
//! transport errors exit 2.

use std::process::ExitCode;
use std::time::Duration;

use bindex::relation::query::{Op, SelectionQuery};
use bindex_server::{Client, Response};

fn usage() -> ! {
    eprintln!(
        "usage: bindex-client [--addr HOST:PORT] \
         (ping | stats | shutdown | repair INDEX | \
         query INDEX OP CONST [--bitmap] [--deadline-ms N] | \
         threshold INDEX K OP CONST [OP CONST ...] [--bitmap] [--deadline-ms N] | \
         ingest INDEX [--append V,null,...] [--delete R,...])"
    );
    std::process::exit(2)
}

fn parse_op(s: &str) -> Option<Op> {
    Some(match s {
        "<" => Op::Lt,
        "<=" => Op::Le,
        ">" => Op::Gt,
        ">=" => Op::Ge,
        "=" | "==" => Op::Eq,
        "!=" | "<>" => Op::Ne,
        _ => return None,
    })
}

/// Prints a foundset answer (`query` or `threshold`) and picks the exit
/// code: 0 on an answer, 1 on a typed server error, 2 on transport or
/// protocol trouble.
fn report_answer(resp: std::io::Result<Response>) -> ExitCode {
    match resp {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
        Ok(Response::Count {
            cardinality,
            degraded,
            cached,
        }) => {
            println!(
                "count {cardinality}{}{}",
                if degraded { " (degraded)" } else { "" },
                if cached { " (cached)" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Ok(Response::Bitmap {
            cardinality,
            degraded,
            n_bits,
            words,
            ..
        }) => {
            println!(
                "count {cardinality} of {n_bits} rows ({} words){}",
                words.len(),
                if degraded { " (degraded)" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Ok(Response::Error { code, message }) => {
            eprintln!("error: {code:?}: {message}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("error: unexpected response {other:?}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7654".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--addr" {
            match args.next() {
                Some(a) => addr = a,
                None => usage(),
            }
        } else {
            rest.push(arg);
        }
    }
    if rest.is_empty() {
        usage();
    }

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connecting to {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let _ = client.set_timeout(Some(Duration::from_secs(30)));

    let outcome = match rest[0].as_str() {
        "ping" => client.ping().map(|()| println!("pong")),
        "stats" => client.stats().map(|s| {
            println!(
                "admitted {} completed {} shed_overload {} shed_deadline {} degraded {} \
                 failed {} cache_hits {} cache_misses {} repairs {} ingests {} \
                 breaker_trips {}",
                s.admitted,
                s.completed,
                s.shed_overload,
                s.shed_deadline,
                s.degraded,
                s.failed,
                s.cache_hits,
                s.cache_misses,
                s.repairs,
                s.ingests,
                s.breaker_trips
            )
        }),
        "shutdown" => client.shutdown().map(|()| println!("draining")),
        "repair" => {
            if rest.len() != 2 {
                usage();
            }
            client.repair(&rest[1]).map(|(repaired, unrepaired)| {
                println!("repaired {repaired} unrepaired {unrepaired}")
            })
        }
        "ingest" => {
            if rest.len() < 2 {
                usage();
            }
            let index = rest[1].clone();
            let mut appends: Vec<Option<u32>> = Vec::new();
            let mut deletes: Vec<u64> = Vec::new();
            let mut i = 2;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--append" => {
                        i += 1;
                        let Some(list) = rest.get(i) else { usage() };
                        for v in list.split(',').filter(|v| !v.is_empty()) {
                            if v == "null" {
                                appends.push(None);
                            } else {
                                match v.parse() {
                                    Ok(v) => appends.push(Some(v)),
                                    Err(_) => usage(),
                                }
                            }
                        }
                    }
                    "--delete" => {
                        i += 1;
                        let Some(list) = rest.get(i) else { usage() };
                        for r in list.split(',').filter(|r| !r.is_empty()) {
                            match r.parse() {
                                Ok(r) => deletes.push(r),
                                Err(_) => usage(),
                            }
                        }
                    }
                    _ => usage(),
                }
                i += 1;
            }
            if appends.is_empty() && deletes.is_empty() {
                usage();
            }
            client
                .ingest(&index, &appends, &deletes)
                .map(|(seq, generation, n_rows)| {
                    println!("ingested seq {seq} generation {generation} n_rows {n_rows}")
                })
        }
        "query" => {
            if rest.len() < 4 {
                usage();
            }
            let index = rest[1].clone();
            let Some(op) = parse_op(&rest[2]) else {
                usage()
            };
            let Ok(constant) = rest[3].parse::<u32>() else {
                usage()
            };
            let mut want_bitmap = false;
            let mut deadline_ms = 0u64;
            let mut i = 4;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--bitmap" => want_bitmap = true,
                    "--deadline-ms" => {
                        i += 1;
                        match rest.get(i).and_then(|v| v.parse().ok()) {
                            Some(ms) => deadline_ms = ms,
                            None => usage(),
                        }
                    }
                    _ => usage(),
                }
                i += 1;
            }
            let query = SelectionQuery::new(op, constant);
            return report_answer(client.query(&index, query, want_bitmap, deadline_ms));
        }
        "threshold" => {
            if rest.len() < 5 {
                usage();
            }
            let index = rest[1].clone();
            let Ok(k) = rest[2].parse::<u32>() else {
                usage()
            };
            let mut predicates = Vec::new();
            let mut want_bitmap = false;
            let mut deadline_ms = 0u64;
            let mut i = 3;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--bitmap" => want_bitmap = true,
                    "--deadline-ms" => {
                        i += 1;
                        match rest.get(i).and_then(|v| v.parse().ok()) {
                            Some(ms) => deadline_ms = ms,
                            None => usage(),
                        }
                    }
                    op => {
                        let Some(op) = parse_op(op) else { usage() };
                        i += 1;
                        let Some(constant) = rest.get(i).and_then(|v| v.parse().ok()) else {
                            usage()
                        };
                        predicates.push(SelectionQuery::new(op, constant));
                    }
                }
                i += 1;
            }
            return report_answer(client.threshold(
                &index,
                k,
                &predicates,
                want_bitmap,
                deadline_ms,
            ));
        }
        _ => usage(),
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
