//! Crash-point recovery matrix for streaming ingest.
//!
//! The contract under test: a WAL-backed [`IngestIndex`] may crash at
//! **any byte** of any mutation — WAL record boundaries, mid-record torn
//! appends, the fsync itself, every step of a compaction — and reopening
//! always lands on a consistent snapshot: query results bit-identical to
//! the state after some *prefix* of the committed batches (pre- or
//! post-batch atomicity), with **zero loss of fsync-acknowledged
//! batches**.
//!
//! The harness is deterministic: a traced clean run
//! ([`FaultPlan::with_write_trace`]) enumerates every mutation boundary,
//! then the scenario is replayed with
//! [`FaultPlan::with_crash_after_bytes`] at each boundary plus
//! mid-operation offsets, the surviving bytes are reopened, and all five
//! evaluation algorithms (RangeEval, RangeEval-Opt, EqualityEval,
//! IntervalEval, plus Auto dispatch) are checked against reference
//! snapshots. `BINDEX_CHAOS_SEED` pins one seed (the CI smoke knob);
//! unset, a small seed matrix runs.

use std::collections::BTreeSet;

use bindex::compress::CodecKind;
use bindex::core::eval::Algorithm;
use bindex::relation::query::{Op, SelectionQuery};
use bindex::relation::{gen, Column};
use bindex::storage::wal::WalOp;
use bindex::storage::{ByteStore, FaultPlan, FaultStore, MemStore, StoredIndex};
use bindex::stored::persist_index_v3;
use bindex::{Base, BitVec, BitmapIndex, Encoding, IndexSpec, IngestIndex, IngestOptions};

const CARDINALITY: u32 = 16;
const BASE_ROWS: usize = 240;

fn seeds() -> Vec<u64> {
    match std::env::var("BINDEX_CHAOS_SEED") {
        Ok(raw) => vec![raw.parse().expect("BINDEX_CHAOS_SEED must be an integer")],
        Err(_) => vec![5, 11],
    }
}

fn spec(encoding: Encoding) -> IndexSpec {
    IndexSpec::new(Base::from_msb(&[4, 4]).unwrap(), encoding)
}

fn algorithms(encoding: Encoding) -> &'static [Algorithm] {
    match encoding {
        Encoding::Range => &[
            Algorithm::RangeEval,
            Algorithm::RangeEvalOpt,
            Algorithm::Auto,
        ],
        Encoding::Equality => &[Algorithm::EqualityEval, Algorithm::Auto],
        Encoding::Interval => &[Algorithm::IntervalEval, Algorithm::Auto],
    }
}

fn queries() -> Vec<SelectionQuery> {
    let mut qs = Vec::new();
    for op in [Op::Lt, Op::Le, Op::Gt, Op::Ge, Op::Eq, Op::Ne] {
        for v in [0, 6, CARDINALITY - 1] {
            qs.push(SelectionQuery::new(op, v));
        }
    }
    qs
}

/// One step of the ingest scenario.
#[derive(Debug, Clone)]
enum Step {
    Batch(WalOp),
    Compact,
}

/// The deterministic mutation script: appends (with nulls), deletes
/// hitting base and delta rows, and an explicit mid-script compaction so
/// the crash matrix covers every compaction step.
fn script(seed: u64) -> Vec<Step> {
    let batch = |s: u64, n: usize| -> WalOp {
        let vals = gen::uniform(n, CARDINALITY, seed.wrapping_mul(31).wrapping_add(s));
        WalOp::Append {
            values: vals
                .values()
                .iter()
                .enumerate()
                .map(|(i, &v)| (i % 7 != 3).then_some(v))
                .collect(),
        }
    };
    vec![
        Step::Batch(batch(1, 40)),
        Step::Batch(WalOp::Delete {
            rows: vec![3, 77 + seed % 50, BASE_ROWS as u64 + 5],
        }),
        Step::Batch(batch(2, 30)),
        Step::Compact,
        Step::Batch(batch(3, 25)),
        Step::Batch(WalOp::Delete {
            rows: vec![1, BASE_ROWS as u64 + 70 + seed % 20],
        }),
    ]
}

/// The logical relation after a prefix of batches: merged values plus a
/// null mask that carries both real nulls and deleted rows.
#[derive(Clone)]
struct Snapshot {
    values: Vec<u32>,
    nulls: Vec<bool>,
}

impl Snapshot {
    fn apply(&mut self, op: &WalOp) {
        match op {
            WalOp::Append { values } => {
                for v in values {
                    self.values.push(v.unwrap_or(0));
                    self.nulls.push(v.is_none());
                }
            }
            WalOp::Delete { rows } => {
                for &r in rows {
                    self.nulls[r as usize] = true;
                }
            }
        }
    }

    /// Reference answers under this snapshot, one foundset per query.
    fn answers(&self, encoding: Encoding) -> Vec<BitVec> {
        let col = Column::new(self.values.clone(), CARDINALITY);
        let mut nulls = BitVec::zeros(self.values.len());
        for (i, &n) in self.nulls.iter().enumerate() {
            nulls.set(i, n);
        }
        let reference = BitmapIndex::build_with_nulls(&col, &nulls, spec(encoding)).unwrap();
        queries()
            .into_iter()
            .map(|q| {
                bindex::core::eval::evaluate(&mut reference.source(), q, Algorithm::Auto)
                    .unwrap()
                    .0
            })
            .collect()
    }
}

/// Per-batch-prefix reference snapshots: `snapshots[j]` is the state after
/// the first `j` batches (compaction never changes logical content).
fn snapshots(base: &Column, seed: u64) -> Vec<Snapshot> {
    let mut state = Snapshot {
        values: base.values().to_vec(),
        nulls: vec![false; base.len()],
    };
    let mut out = vec![state.clone()];
    for step in script(seed) {
        if let Step::Batch(op) = step {
            state.apply(&op);
            out.push(state.clone());
        }
    }
    out
}

/// Drives the script against an ingest index until the first error.
/// Returns (acked batch count, attempted batch count); with default
/// options every `Ok` commit is fsynced, so acked == Ok commits.
fn drive<S: ByteStore>(ingest: &mut IngestIndex<'_, S>, seed: u64) -> (usize, usize) {
    let mut acked = 0;
    let mut attempted = 0;
    for step in script(seed) {
        match step {
            Step::Batch(op) => {
                attempted += 1;
                match ingest.commit(op) {
                    Ok(ack) => {
                        assert!(ack.durable, "default options fsync every commit");
                        acked += 1;
                    }
                    Err(_) => return (acked, attempted),
                }
            }
            Step::Compact => {
                if ingest.compact().is_err() {
                    return (acked, attempted);
                }
            }
        }
    }
    (acked, attempted)
}

fn open_stored<S: ByteStore>(store: S) -> StoredIndex<S> {
    StoredIndex::open(store).expect("manifest swaps are atomic; opening never tears")
}

/// Starts an ingest session over `stored` (replays the WAL).
fn session<S: ByteStore>(
    stored: &mut StoredIndex<S>,
    encoding: Encoding,
) -> Result<IngestIndex<'_, S>, bindex::core::Error> {
    IngestIndex::open(stored, spec(encoding), CARDINALITY, IngestOptions::new())
}

/// The crash-point coverage of one traced clean run: every mutation
/// boundary plus two interior offsets per mutation (first byte and
/// midpoint) — WAL record boundaries, mid-record torn appends, the fsync
/// points, and each compaction step all fall out of the trace.
fn crash_points(trace: &[(String, u64)]) -> Vec<u64> {
    let mut points = BTreeSet::new();
    let mut prev = 0u64;
    for &(_, cum) in trace {
        points.insert(cum); // boundary: this op completes, next op dies
        if cum > prev + 1 {
            points.insert(prev + 1); // first byte of the op
            points.insert(prev + (cum - prev) / 2); // torn mid-operation
        }
        prev = cum;
    }
    points.insert(0); // crash before the first mutation
    points.into_iter().collect()
}

/// The tentpole matrix: for every crash point of the traced scenario,
/// replay with an injected crash, reopen the surviving bytes, and assert
/// (a) zero acknowledged-batch loss and (b) results bit-identical to a
/// batch-prefix snapshot under every evaluation algorithm.
#[test]
fn crash_point_matrix_recovers_a_batch_prefix_under_every_evaluator() {
    for seed in seeds() {
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let base = gen::uniform(BASE_ROWS, CARDINALITY, seed);
            let built = BitmapIndex::build(&base, spec(encoding)).unwrap();
            let initial = persist_index_v3(&built, MemStore::new(), CodecKind::None)
                .unwrap()
                .into_store();
            let snaps = snapshots(&base, seed);
            let answers: Vec<Vec<BitVec>> = snaps.iter().map(|s| s.answers(encoding)).collect();

            // Traced clean run enumerates the mutation boundaries.
            let mut traced = open_stored(FaultStore::new(
                initial.clone(),
                FaultPlan::new(seed).with_write_trace(),
            ));
            let mut ingest = session(&mut traced, encoding).unwrap();
            let (acked, attempted) = drive(&mut ingest, seed);
            assert_eq!(acked, attempted, "clean run acks everything");
            let trace = ingest.stored().store().write_trace();
            assert!(
                trace.iter().any(|(op, _)| op.starts_with("append:wal")),
                "trace must include WAL appends: {trace:?}"
            );
            assert!(
                trace.iter().any(|(op, _)| op == "write:manifest.bixm"),
                "trace must include the compaction manifest swap: {trace:?}"
            );
            let points = crash_points(&trace);
            assert!(
                points.len() > 3 * attempted,
                "matrix too sparse: {points:?}"
            );

            for &budget in &points {
                // Replay with the crash injected at `budget` bytes.
                let mut crashed_stored = open_stored(FaultStore::new(
                    initial.clone(),
                    FaultPlan::new(seed).with_crash_after_bytes(budget),
                ));
                let mut crashed = session(&mut crashed_stored, encoding).unwrap();
                let (acked, _) = drive(&mut crashed, seed);
                drop(crashed);

                // "Reboot": reopen whatever bytes survived the crash.
                let survivor = crashed_stored.into_store().into_inner();
                let mut reopened_stored = open_stored(survivor);
                let mut reopened = session(&mut reopened_stored, encoding)
                    .unwrap_or_else(|e| panic!("reopen at budget {budget}: {e}"));

                // Zero acknowledged-batch loss.
                assert!(
                    reopened.durable_seq() >= acked as u64,
                    "budget {budget}: acked {acked} batches but reopened \
                     durable_seq is {}",
                    reopened.durable_seq()
                );

                // Results must equal exactly one batch-prefix snapshot,
                // and that prefix must contain every acknowledged batch.
                let qs = queries();
                let first_algo = algorithms(encoding)[0];
                let got: Vec<BitVec> = qs
                    .iter()
                    .map(|&q| reopened.evaluate(q, first_algo).unwrap().0)
                    .collect();
                let j = (0..answers.len())
                    .find(|&j| answers[j] == got)
                    .unwrap_or_else(|| {
                        panic!(
                            "budget {budget} ({encoding:?}, seed {seed}): reopened \
                             results match no batch-prefix snapshot"
                        )
                    });
                assert!(
                    j >= acked,
                    "budget {budget}: snapshot prefix {j} loses acked batch \
                     (acked {acked})"
                );
                for &algo in &algorithms(encoding)[1..] {
                    for (qi, &q) in qs.iter().enumerate() {
                        let (bits, _) = reopened.evaluate(q, algo).unwrap();
                        assert_eq!(
                            bits, answers[j][qi],
                            "budget {budget} {algo:?} query {qi} diverges from \
                             snapshot {j}"
                        );
                    }
                }
            }
        }
    }
}

/// Torn fsync on the WAL append: the batch errors (never acknowledged),
/// the torn tail is repaired on the next commit, and both the live index
/// and a reopen settle on consistent prefix states.
#[test]
fn torn_fsync_append_is_unacknowledged_and_repaired() {
    for seed in seeds() {
        let base = gen::uniform(BASE_ROWS, CARDINALITY, seed);
        let built = BitmapIndex::build(&base, spec(Encoding::Equality)).unwrap();
        let store = persist_index_v3(&built, MemStore::new(), CodecKind::None)
            .unwrap()
            .into_store();
        let faulted = FaultStore::new(store, FaultPlan::new(seed).with_torn_writes("wal", 1));
        let mut stored = StoredIndex::open(faulted).unwrap();
        let mut ingest = session(&mut stored, Encoding::Equality).unwrap();

        // First commit: the header append or record append tears.
        let err = ingest.append(&[Some(1), None, Some(5)]).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert_eq!(ingest.durable_seq(), 0, "torn batch must not be acked");

        // Next commit repairs the tail and lands cleanly.
        let ack = ingest.append(&[Some(2), Some(3)]).unwrap();
        assert!(ack.durable);
        assert_eq!(ingest.stored().store().counters().torn_writes, 1);

        // Reopen: exactly the repaired batch is present.
        drop(ingest);
        let survivor = stored.into_store().into_inner();
        let mut reopened_stored = open_stored(survivor);
        let mut reopened = session(&mut reopened_stored, Encoding::Equality).unwrap();
        assert_eq!(reopened.n_rows(), BASE_ROWS + 2);
        assert_eq!(reopened.durable_seq(), ack.seq);
        let q = SelectionQuery::new(Op::Eq, 2);
        let (bits, _) = reopened.evaluate(q, Algorithm::EqualityEval).unwrap();
        assert!(bits.get(BASE_ROWS), "appended row 0 holds value 2");
    }
}

/// At-rest corruption of the WAL tail truncates back to the valid prefix
/// instead of erroring; a corrupted header is a hard, typed error (silent
/// loss of acknowledged batches is never acceptable).
#[test]
fn wal_tail_corruption_truncates_to_valid_prefix() {
    let base = gen::uniform(BASE_ROWS, CARDINALITY, 9);
    let built = BitmapIndex::build(&base, spec(Encoding::Range)).unwrap();
    let store = persist_index_v3(&built, MemStore::new(), CodecKind::None)
        .unwrap()
        .into_store();
    let mut stored = open_stored(store);
    let mut ingest = session(&mut stored, Encoding::Range).unwrap();
    ingest.append(&[Some(1), Some(2)]).unwrap();
    ingest.append(&[Some(3)]).unwrap();
    drop(ingest);
    let mut bytes_store = stored.into_store();

    // Flip a byte near the end of the WAL: inside the final record.
    let mut wal = bytes_store.read_file("wal.bixl").unwrap();
    let at = wal.len() - 2;
    wal[at] ^= 0x20;
    bytes_store.write_file("wal.bixl", &wal).unwrap();
    let mut reopened_stored = open_stored(bytes_store);
    let mut reopened = session(&mut reopened_stored, Encoding::Range).unwrap();
    assert_eq!(
        reopened.n_rows(),
        BASE_ROWS + 2,
        "second batch dropped, first intact"
    );
    let (bits, _) = reopened
        .evaluate(SelectionQuery::new(Op::Eq, 2), Algorithm::Auto)
        .unwrap();
    assert!(bits.get(BASE_ROWS + 1));

    // Header corruption is a hard error, not silent truncation.
    drop(reopened);
    let mut survivor = reopened_stored.into_store();
    let mut wal = survivor.read_file("wal.bixl").unwrap();
    wal[0] = b'X';
    survivor.write_file("wal.bixl", &wal).unwrap();
    let mut corrupt = open_stored(survivor);
    assert!(session(&mut corrupt, Encoding::Range).is_err());
}

/// Group commit (`with_fsync_interval`): commits inside the window are
/// unacknowledged until `flush`, and a crash that eats the unsynced tail
/// loses only unacknowledged batches.
#[test]
fn group_commit_defers_acknowledgement_until_flush() {
    let base = gen::uniform(64, CARDINALITY, 3);
    let built = BitmapIndex::build(&base, spec(Encoding::Equality)).unwrap();
    let store = persist_index_v3(&built, MemStore::new(), CodecKind::None)
        .unwrap()
        .into_store();
    let mut stored = StoredIndex::open(store).unwrap();
    let mut ingest = IngestIndex::open(
        &mut stored,
        spec(Encoding::Equality),
        CARDINALITY,
        IngestOptions::new().with_fsync_interval(Some(std::time::Duration::from_secs(3600))),
    )
    .unwrap();
    // The first commit syncs (opens the window); the second defers.
    let a1 = ingest.append(&[Some(1)]).unwrap();
    assert!(a1.durable);
    let a2 = ingest.append(&[Some(2)]).unwrap();
    assert!(!a2.durable, "inside the group-commit window");
    assert_eq!(ingest.durable_seq(), a1.seq);
    // Flush forces the sync and acknowledges the tail.
    assert_eq!(ingest.flush().unwrap(), a2.seq);
    assert_eq!(ingest.durable_seq(), a2.seq);
}

/// Automatic compaction via the delta row cap: the triggering commit
/// reports the new generation, the delta drains, and queries keep
/// answering the merged state.
#[test]
fn delta_cap_triggers_automatic_compaction() {
    let base = gen::uniform(100, CARDINALITY, 4);
    let built = BitmapIndex::build(&base, spec(Encoding::Range)).unwrap();
    let store = persist_index_v3(&built, MemStore::new(), CodecKind::None)
        .unwrap()
        .into_store();
    let mut stored = StoredIndex::open(store).unwrap();
    let mut ingest = IngestIndex::open(
        &mut stored,
        spec(Encoding::Range),
        CARDINALITY,
        IngestOptions::new().with_delta_max_rows(Some(16)),
    )
    .unwrap();
    let a1 = ingest.append(&[Some(7); 10]).unwrap();
    assert_eq!(a1.compacted, None);
    assert_eq!(ingest.delta_rows(), 10);
    let a2 = ingest.append(&[Some(9); 10]).unwrap();
    assert_eq!(a2.compacted, Some(1), "cap of 16 tripped at 20 delta rows");
    assert_eq!(ingest.delta_rows(), 0, "delta drained into generation 1");
    assert_eq!(ingest.n_rows(), 120);
    let (bits, _) = ingest
        .evaluate(SelectionQuery::new(Op::Eq, 9), Algorithm::Auto)
        .unwrap();
    assert!((100..110).all(|r| !bits.get(r) || base.values()[r - 100] == 9 || r >= 110));
    assert!((110..120).all(|r| bits.get(r)));
}
