//! Microbench: throughput of the bit-vector substrate's logical operations
//! and popcount on 1M-bit bitmaps — the inner loop of every query.

use bindex::bitvec::kernels;
use bindex::bitvec::rank::RankIndex;
use bindex::BitVec;
use bindex_bench::microbench::{BatchSize, Criterion, Throughput};
use bindex_bench::{criterion_group, criterion_main};
use std::hint::black_box;

const BITS: usize = 1 << 20;

fn mk(seed: usize) -> BitVec {
    BitVec::from_fn(BITS, |i| (i * 2654435761 + seed).is_multiple_of(7))
}

fn bench(c: &mut Criterion) {
    let a = mk(1);
    let b = mk(2);
    let mut g = c.benchmark_group("bitvec_ops");
    g.throughput(Throughput::Bytes((BITS / 8) as u64));

    g.bench_function("and_assign_1m", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.and_assign(&b);
                black_box(x)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("or_assign_1m", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.or_assign(&b);
                black_box(x)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("not_assign_1m", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.not_assign();
                black_box(x)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("count_ones_1m", |bench| {
        bench.iter(|| black_box(&a).count_ones())
    });
    g.bench_function("iter_ones_1m", |bench| {
        bench.iter(|| black_box(&a).iter_ones().sum::<usize>())
    });
    g.bench_function("rank_index_build_1m", |bench| {
        bench.iter(|| RankIndex::new(black_box(&a)).total_ones())
    });
    g.finish();

    // Fused k-ary kernels vs the pairwise fold they replace: a 16-way
    // union is the shape of a wide equality-encoded `≤` predicate.
    let operands: Vec<BitVec> = (0..16).map(mk).collect();
    let refs: Vec<&BitVec> = operands.iter().collect();
    let mut k = c.benchmark_group("kary_kernels");
    k.throughput(Throughput::Bytes((16 * BITS / 8) as u64));
    k.bench_function("or_16way_pairwise", |bench| {
        bench.iter(|| {
            let mut acc = operands[0].clone();
            for op in &operands[1..] {
                acc.or_assign(black_box(op));
            }
            black_box(acc)
        })
    });
    k.bench_function("or_16way_fused", |bench| {
        bench.iter(|| black_box(kernels::or_all(black_box(&refs))))
    });
    k.bench_function("count_or_16way_materialized", |bench| {
        bench.iter(|| black_box(kernels::or_all(black_box(&refs)).count_ones()))
    });
    k.bench_function("count_or_16way_fused", |bench| {
        bench.iter(|| black_box(kernels::count_or(black_box(&refs))))
    });
    k.finish();

    // Scalar vs unrolled dispatch tiers on the same 16-way operands: the
    // explicit `[u64; LANES]` tier against the autovectorized reference.
    let mut d = c.benchmark_group("kernel_dispatch");
    d.throughput(Throughput::Bytes((16 * BITS / 8) as u64));
    for dispatch in [
        bindex::KernelDispatch::Scalar,
        bindex::KernelDispatch::Unrolled,
    ] {
        d.bench_function(format!("and_16way_{}", dispatch.name()), |bench| {
            bench.iter(|| black_box(kernels::and_all_with(dispatch, black_box(&refs))))
        });
        d.bench_function(format!("or_16way_{}", dispatch.name()), |bench| {
            bench.iter(|| black_box(kernels::or_all_with(dispatch, black_box(&refs))))
        });
        d.bench_function(format!("count_or_16way_{}", dispatch.name()), |bench| {
            bench.iter(|| black_box(kernels::count_or_with(dispatch, black_box(&refs))))
        });
        d.bench_function(format!("count_and_16way_{}", dispatch.name()), |bench| {
            bench.iter(|| black_box(kernels::count_and_with(dispatch, black_box(&refs))))
        });
    }
    d.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
