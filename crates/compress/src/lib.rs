//! # bindex-compress
//!
//! Compression substrate for bitmap storage (Section 9 of the paper).
//!
//! The paper compresses bitmap files with zlib's *deflation* (an LZ77
//! variant). zlib is not available in this build, so this crate provides
//! from-scratch codecs that exploit the same redundancy:
//!
//! * [`Rle`] — a byte-level run-length codec, the simplest baseline;
//! * [`Lzss`] — an LZ77/LZSS codec with a hash-chain match finder and greedy
//!   parsing (deflate without the entropy-coding stage);
//! * [`Deflate`] — LZ77 plus two length-limited canonical Huffman
//!   alphabets, the designated **zlib substitution** for the Section 9
//!   experiments;
//! * [`wah::WahBitmap`] — a Word-Aligned Hybrid compressed bitmap supporting
//!   logical operations directly on the compressed form. WAH post-dates the
//!   paper and is included as an ablation of its Section 9 conclusions.
//!
//! All byte codecs implement the [`Codec`] trait and are exercised by
//! round-trip property tests in `tests/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitio;
mod deflate;
pub mod huffman;
pub mod lz77;
mod lzss;
mod repr;
mod rle;
pub mod varint;
pub mod wah;

pub use deflate::Deflate;
pub use lzss::Lzss;
pub use repr::Repr;
pub use rle::Rle;

/// Error raised when decoding malformed compressed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// A lossless byte-stream codec.
pub trait Codec {
    /// Short stable name used in experiment output (e.g. `"lzss"`).
    fn name(&self) -> &'static str;

    /// Compresses `input` into a fresh buffer.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompresses `input`; the caller supplies the exact original length
    /// as an integrity check (the storage layer always knows it).
    fn decompress(&self, input: &[u8], original_len: usize) -> Result<Vec<u8>, DecodeError>;

    /// Convenience: `compressed_size / original_size` in percent, as reported
    /// by Table 4 of the paper.
    fn ratio_pct(&self, input: &[u8]) -> f64 {
        if input.is_empty() {
            return 100.0;
        }
        100.0 * self.compress(input).len() as f64 / input.len() as f64
    }
}

/// The codecs available to the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// No compression; bytes stored verbatim.
    None,
    /// Byte run-length encoding.
    Rle,
    /// LZ77/LZSS without entropy coding.
    Lzss,
    /// LZ77 + canonical Huffman — the zlib substitution used for the
    /// paper's experiments.
    Deflate,
}

impl CodecKind {
    /// Compresses with the selected codec (`None` copies).
    pub fn compress(self, input: &[u8]) -> Vec<u8> {
        match self {
            CodecKind::None => input.to_vec(),
            CodecKind::Rle => Rle.compress(input),
            CodecKind::Lzss => Lzss::default().compress(input),
            CodecKind::Deflate => Deflate::default().compress(input),
        }
    }

    /// Decompresses with the selected codec.
    pub fn decompress(self, input: &[u8], original_len: usize) -> Result<Vec<u8>, DecodeError> {
        match self {
            CodecKind::None => {
                if input.len() != original_len {
                    return Err(DecodeError(format!(
                        "stored {} bytes, expected {original_len}",
                        input.len()
                    )));
                }
                Ok(input.to_vec())
            }
            CodecKind::Rle => Rle.decompress(input, original_len),
            CodecKind::Lzss => Lzss::default().decompress(input, original_len),
            CodecKind::Deflate => Deflate::default().decompress(input, original_len),
        }
    }

    /// Stable name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::None => "none",
            CodecKind::Rle => "rle",
            CodecKind::Lzss => "lzss",
            CodecKind::Deflate => "deflate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_all() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 7) as u8 * 36).collect();
        for kind in [
            CodecKind::None,
            CodecKind::Rle,
            CodecKind::Lzss,
            CodecKind::Deflate,
        ] {
            let c = kind.compress(&data);
            let d = kind.decompress(&c, data.len()).unwrap();
            assert_eq!(d, data, "codec {}", kind.name());
        }
    }

    #[test]
    fn none_checks_length() {
        assert!(CodecKind::None.decompress(&[1, 2, 3], 4).is_err());
    }
}
