//! **Figure 14** — Size of the candidate index set `I` searched by the
//! exact `TimeOptAlg` as a function of the space constraint `M`, for
//! C = 1000 (pass a different C as the first argument).
//!
//! `|I|` counts every k-component multiset base with `Π b_i ≥ C` and
//! `Σ (b_i − 1) ≤ M` for `n0 ≤ k < n'`, plus the `n'`-component
//! time-optimal index; it collapses to 1 whenever the fast path applies.
//! The large mid-range values motivate the heuristic of Section 8.2.

use bindex::core::design::constrained::candidate_set_size;
use bindex::core::design::space_opt::max_components;
use bindex_bench::{print_table, Csv};

fn main() {
    let c: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);

    let m_min = max_components(c) as u64;
    let m_max = c as u64 - 1;
    let mut csv = Csv::create(
        &format!("fig14_candidate_set_c{c}"),
        &["m_bitmaps", "candidate_set_size"],
    )
    .unwrap();

    // Collect the M sample points (dense at the interesting low end),
    // then count candidate sets in parallel — each count is an
    // independent CPU-bound enumeration.
    let mut ms = Vec::new();
    let mut m = m_min;
    while m <= m_max {
        ms.push(m);
        m += if m < 2 * m_min {
            1
        } else if m < 200 {
            5
        } else {
            25
        };
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let sizes: Vec<usize> = {
        let mut out = vec![0usize; ms.len()];
        std::thread::scope(|scope| {
            for (t, chunk) in out.chunks_mut(ms.len().div_ceil(threads)).enumerate() {
                let ms = &ms;
                scope.spawn(move || {
                    let offset = t * ms.len().div_ceil(threads);
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = candidate_set_size(c, ms[offset + k]);
                    }
                });
            }
        });
        out
    };

    let mut rows = Vec::new();
    let mut peak = (0u64, 0usize);
    for (&m, &size) in ms.iter().zip(&sizes) {
        csv.row(&[&m, &size]).unwrap();
        if size > peak.1 {
            peak = (m, size);
        }
        if rows.len() < 40 {
            rows.push(vec![m.to_string(), size.to_string()]);
        }
    }
    print_table(
        &format!("Figure 14: |I| vs space constraint M, C = {c} (low-M region)"),
        &["M (bitmaps)", "|I|"],
        &rows,
    );
    println!(
        "\nPeak candidate-set size: |I| = {} at M = {}.",
        peak.1, peak.0
    );
    println!("CSV: {}", csv.path().display());
}
