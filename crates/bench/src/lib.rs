//! # bindex-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation. One binary per experiment (see `src/bin/`); each prints the
//! paper's rows/series to stdout and writes a CSV under `results/`. Run
//! them all with `cargo run --release -p bindex-bench --bin all_experiments`.
//!
//! The micro-benchmarks live in `benches/`, driven by the in-repo
//! [`microbench`] harness (the build environment has no crates-registry
//! access, so external harnesses are not available).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod microbench;

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use bindex::core::eval::{evaluate_in, Algorithm};
use bindex::core::{BitmapSource, ExecContext};
use bindex::relation::query::SelectionQuery;
use bindex::BitVec;

/// Deterministic ~50%-dense pseudo-random operand bitmaps, generated a
/// word at a time (xorshift64). The one operand generator shared by
/// `ext_segmented_exec`, `ext_batch_throughput`, and the kernel-bandwidth
/// sweep — so "the same workload" really is the same bits everywhere,
/// instead of each experiment seeding its own density. Dense-kernel cost
/// is density-independent (every word is touched either way); ~50% keeps
/// popcounts and early-exit checks honest by defeating both all-zero and
/// all-one shortcuts.
pub fn synthetic_bitmaps(bits: usize, count: usize, seed: u64) -> Vec<BitVec> {
    (0..count as u64)
        .map(|k| {
            let mut state = seed
                .wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .max(1);
            let words: Vec<u64> = (0..bindex::bitvec::words_for(bits))
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            BitVec::from_words(words, bits)
        })
        .collect()
}

/// Directory experiment CSVs are written to (`results/` at the workspace
/// root, overridable with `BINDEX_RESULTS`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BINDEX_RESULTS") {
        return PathBuf::from(dir);
    }
    // crates/bench -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// A minimal CSV writer for experiment output (no quoting needed for our
/// numeric/label payloads).
pub struct Csv {
    path: PathBuf,
    file: fs::File,
}

impl Csv {
    /// Creates `results/<name>.csv` with the given header row.
    pub fn create(name: &str, header: &[&str]) -> std::io::Result<Self> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = fs::File::create(&path)?;
        writeln!(file, "{}", header.join(","))?;
        Ok(Self { path, file })
    }

    /// Appends one row.
    pub fn row(&mut self, fields: &[&dyn Display]) -> std::io::Result<()> {
        let line: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        writeln!(self.file, "{}", line.join(","))
    }

    /// Where the CSV was written.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Average (scans, operations) per query of `algorithm` over `queries`.
pub fn average_costs<S: BitmapSource>(
    source: &mut S,
    queries: &[SelectionQuery],
    algorithm: Algorithm,
) -> (f64, f64) {
    let mut ctx = ExecContext::new(source);
    let mut scans = 0usize;
    let mut ops = 0usize;
    for &q in queries {
        evaluate_in(&mut ctx, q, algorithm).expect("algorithm matches encoding");
        let s = ctx.take_stats();
        scans += s.scans;
        ops += s.total_ops();
    }
    let n = queries.len().max(1) as f64;
    (scans as f64 / n, ops as f64 / n)
}

/// Wall-clock average seconds per query (the Section 9 time metric:
/// read + decompress + bitmap operations).
pub fn average_wall_time<S: BitmapSource>(
    source: &mut S,
    queries: &[SelectionQuery],
    algorithm: Algorithm,
) -> f64 {
    let mut ctx = ExecContext::new(source);
    let start = Instant::now();
    for &q in queries {
        evaluate_in(&mut ctx, q, algorithm).expect("algorithm matches encoding");
        ctx.take_stats();
    }
    start.elapsed().as_secs_f64() / queries.len().max(1) as f64
}

/// Execution-environment provenance recorded by every `ext_*` BENCH
/// JSON. Results measured with more requested threads than the machine
/// has hardware threads are flagged (`oversubscribed`) and warned about,
/// so JSON consumers cannot mistake time-sliced rows for real parallel
/// speedups.
#[derive(Debug, Clone, Copy)]
pub struct RunProvenance {
    /// Hardware threads the machine exposes.
    pub hardware_threads: usize,
    /// The most threads any row of the experiment asked for.
    pub requested_threads: usize,
    /// `requested_threads > hardware_threads`.
    pub oversubscribed: bool,
}

impl RunProvenance {
    /// Captures provenance for an experiment whose widest row requests
    /// `requested_threads`, warning when the box cannot actually run
    /// them in parallel.
    pub fn capture(requested_threads: usize) -> Self {
        let hardware_threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let provenance = Self {
            hardware_threads,
            requested_threads,
            oversubscribed: requested_threads > hardware_threads,
        };
        if provenance.oversubscribed {
            println!(
                "warning: {requested_threads} threads requested on a \
                 {hardware_threads}-thread box; multi-thread rows are \
                 time-sliced, not parallel"
            );
        }
        if !provenance.scaling_valid() {
            println!(
                "warning: single-core box — every multi-thread measurement \
                 in this run is time-sliced; scaling_valid is false in the \
                 emitted JSON"
            );
        }
        provenance
    }

    /// `false` on a single-core box, where no measurement in the run can
    /// demonstrate parallel scaling no matter what the rows say.
    pub fn scaling_valid(&self) -> bool {
        self.hardware_threads >= 2
    }

    /// The provenance fields as a JSON fragment (no surrounding braces),
    /// ready to splice into a hand-rolled BENCH JSON object. Includes the
    /// top-level `scaling_valid` flag so a 1-core CI run can never
    /// masquerade as a scaling result.
    pub fn json_fields(&self) -> String {
        format!(
            "\"hardware_threads\": {}, \"requested_threads\": {}, \
             \"oversubscribed\": {}, \"scaling_valid\": {}",
            self.hardware_threads,
            self.requested_threads,
            self.oversubscribed,
            self.scaling_valid()
        )
    }
}

/// Nearest-rank percentile (`q` in `[0, 1]`) of an ascending-sorted
/// slice; `0.0` for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Formats a float with 3 decimal places (paper-style table cells).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bindex::relation::{gen, query};
    use bindex::{Base, BitmapIndex, Encoding, IndexSpec};

    #[test]
    fn average_costs_runs() {
        let col = gen::uniform(100, 10, 1);
        let spec = IndexSpec::new(Base::single(10).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        let queries = query::full_space(10);
        let mut src = idx.source();
        let (scans, ops) = average_costs(&mut src, &queries, Algorithm::RangeEvalOpt);
        assert!(scans > 0.0 && scans < 3.0);
        assert!(ops < 3.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 0.99), 10.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[42.0], 0.999), 42.0);
    }

    #[test]
    fn provenance_flags_oversubscription() {
        let sane = RunProvenance::capture(1);
        assert!(!sane.oversubscribed);
        assert!(sane.hardware_threads >= 1);
        let wild = RunProvenance::capture(usize::MAX);
        assert!(wild.oversubscribed);
        let fields = wild.json_fields();
        assert!(fields.contains("\"hardware_threads\""));
        assert!(fields.contains("\"requested_threads\""));
        assert!(fields.contains("\"oversubscribed\": true"));
        assert!(fields.contains("\"scaling_valid\""));
        assert_eq!(wild.scaling_valid(), wild.hardware_threads >= 2);
    }

    #[test]
    fn synthetic_bitmaps_are_deterministic_and_half_dense() {
        let a = synthetic_bitmaps(100_000, 4, 42);
        let b = synthetic_bitmaps(100_000, 4, 42);
        assert_eq!(a, b);
        for (i, bm) in a.iter().enumerate() {
            assert_eq!(bm.len(), 100_000);
            let density = bm.count_ones() as f64 / 100_000.0;
            assert!((0.45..0.55).contains(&density), "operand {i}: {density}");
        }
        // Distinct operands and distinct seeds differ.
        assert_ne!(a[0], a[1]);
        assert_ne!(a[0], synthetic_bitmaps(100_000, 1, 43)[0]);
        // Ragged lengths stay canonical.
        let odd = synthetic_bitmaps(1001, 1, 7);
        assert_eq!(odd[0].len(), 1001);
    }

    #[test]
    fn table_and_formatters() {
        print_table("demo", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(97.25), "97.2%");
    }
}
