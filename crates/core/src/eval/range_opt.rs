//! **RangeEval-Opt** — the paper's improved evaluation algorithm for
//! range-encoded indexes (Section 3, Figure 6 right).
//!
//! Every range operator is reduced to a single `≤` evaluation via
//! `A < v ≡ A ≤ v−1`, `A > v ≡ ¬(A ≤ v)`, `A ≥ v ≡ ¬(A ≤ v−1)`, so only
//! one intermediate bitmap `B` is ever maintained (RangeEval needs two).
//! The `≤` chain follows the recurrence
//!
//! ```text
//! R_1 = B_1^{v_1}
//! R_i = (B_i^{v_i} ∧ R_{i−1}) ∨ B_i^{v_i − 1}        (i = 2 … n)
//! ```
//!
//! with the AND skipped when `v_i = b_i − 1` (`B_i^{v_i}` is all ones) and
//! the OR skipped when `v_i = 0` (`B_i^{v_i−1}` is all zeros). Equality
//! predicates use the per-digit identity
//! `(d_i = v_i) = B_i^{v_i} ⊕ B_i^{v_i−1}` with the endpoint special cases
//! of the listing.
//!
//! Worst case (all digits interior): `2n − 1` scans and `2(n−1)` operations
//! for `A ≤ c` — half the operations and one fewer scan than RangeEval,
//! which is Table 1's headline.

use bindex_bitvec::BitVec;
use bindex_relation::query::{Op, SelectionQuery};

use crate::error::Result;
use crate::exec::ExecContext;
use crate::index::BitmapSource;

use super::digits_of;

/// Evaluates `query` with RangeEval-Opt. The index must be range-encoded
/// (enforced by the dispatcher in [`super::evaluate`]). Storage failures
/// from the underlying source propagate as errors.
pub fn evaluate<S: BitmapSource>(
    ctx: &mut ExecContext<'_, S>,
    query: SelectionQuery,
) -> Result<BitVec> {
    // Width of the current evaluation window: the full relation in whole
    // mode, one segment under segmented execution.
    let n_rows = ctx.view_len();
    let v = query.constant;

    // Reduce to a `≤` evaluation plus an optional final complement.
    let (le_value, complement) = match query.op {
        Op::Le => (Some(v), false),
        Op::Gt => (Some(v), true),
        Op::Lt => {
            if v == 0 {
                // A < 0 is empty: no scan, no operation.
                return Ok(BitVec::zeros(n_rows));
            }
            (Some(v - 1), false)
        }
        Op::Ge => {
            if v == 0 {
                // A >= 0 is every non-null row.
                let mut all = BitVec::ones(n_rows);
                if let Some(nn) = ctx.fetch_nn()? {
                    ctx.and(&mut all, &nn);
                }
                return Ok(all);
            }
            (Some(v - 1), true)
        }
        Op::Eq => (None, false),
        Op::Ne => (None, true),
    };

    let mut b = match le_value {
        Some(le) => le_chain(ctx, le)?,
        None => eq_chain(ctx, v)?,
    };

    if complement {
        ctx.not(&mut b);
    }
    if let Some(nn) = ctx.fetch_nn()? {
        ctx.and(&mut b, &nn);
    }
    Ok(b)
}

/// The `A ≤ le` chain (lines 4–8 of the listing).
fn le_chain<S: BitmapSource>(ctx: &mut ExecContext<'_, S>, le: u32) -> Result<BitVec> {
    let digits = digits_of(ctx, le);
    let n = ctx.spec().n_components();
    let n_rows = ctx.view_len();

    let b1 = ctx.spec().base.component(1);
    let mut b = if digits[0] < b1 - 1 {
        let bm = ctx.fetch(1, digits[0] as usize)?;
        ctx.to_window(&bm)
    } else {
        // v_1 = b_1 − 1: B_1^{v_1} is the unstored all-ones bitmap.
        BitVec::ones(n_rows)
    };

    for i in 2..=n {
        let bi = ctx.spec().base.component(i);
        let vi = digits[i - 1];
        if vi != bi - 1 {
            let bm = ctx.fetch(i, vi as usize)?;
            ctx.and(&mut b, &bm);
        }
        if vi != 0 {
            let bm = ctx.fetch(i, vi as usize - 1)?;
            ctx.or(&mut b, &bm);
        }
    }
    Ok(b)
}

/// The `A = v` chain (lines 10–13 of the listing). `B` starts as the
/// all-ones `B_1` and is ANDed with every per-digit equality bitmap; the
/// final AND chain runs through the fused k-ary kernel with the all-ones
/// seed as first operand, so exactly `n` ANDs are charged — identical to
/// the pairwise listing (the NOT/XOR charges for deriving interior and
/// top-digit bitmaps are likewise unchanged).
fn eq_chain<S: BitmapSource>(ctx: &mut ExecContext<'_, S>, v: u32) -> Result<BitVec> {
    let digits = digits_of(ctx, v);
    let n = ctx.spec().n_components();
    let ones = BitVec::ones(ctx.view_len());

    // Per-digit equality bitmaps: stored `B_i^0` directly (shared via the
    // fetch cache), derived `¬B` / `B ⊕ B` as counted fresh bitmaps.
    let mut shared = Vec::new();
    let mut derived = Vec::new();
    for i in 1..=n {
        let bi = ctx.spec().base.component(i);
        let vi = digits[i - 1];
        if vi == 0 {
            shared.push(ctx.fetch(i, 0)?);
        } else if vi == bi - 1 {
            let bm = ctx.fetch(i, bi as usize - 2)?;
            derived.push(ctx.not_of(&bm));
        } else {
            let hi = ctx.fetch(i, vi as usize)?;
            let lo = ctx.fetch(i, vi as usize - 1)?;
            derived.push(ctx.xor(&hi, &lo));
        }
    }

    let mut operands: Vec<&BitVec> = Vec::with_capacity(1 + n);
    operands.push(&ones);
    operands.extend(shared.iter().map(|a| a.as_ref()));
    operands.extend(derived.iter());
    Ok(ctx.and_all(&operands))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use crate::encoding::{Encoding, IndexSpec};
    use crate::eval::naive;
    use crate::index::BitmapIndex;
    use bindex_relation::{query, Column};

    fn check_all_queries(column: &Column, base: Base) {
        let spec = IndexSpec::new(base, Encoding::Range);
        let idx = BitmapIndex::build(column, spec).unwrap();
        let mut src = idx.source();
        let mut ctx = ExecContext::new(&mut src);
        for q in query::full_space(column.cardinality()) {
            let got = evaluate(&mut ctx, q).unwrap();
            ctx.take_stats();
            let want = naive::evaluate(column, q);
            assert_eq!(got, want, "query {q} base {}", idx.spec().base);
        }
    }

    #[test]
    fn correct_on_single_component() {
        let col = Column::new(vec![3, 2, 1, 2, 8, 2, 2, 0, 7, 5, 6, 4], 9);
        check_all_queries(&col, Base::single(9).unwrap());
    }

    #[test]
    fn correct_on_multi_component() {
        let col = Column::new(vec![3, 2, 1, 2, 8, 2, 2, 0, 7, 5, 6, 4], 9);
        check_all_queries(&col, Base::from_msb(&[3, 3]).unwrap());
        check_all_queries(&col, Base::from_msb(&[2, 5]).unwrap());
        check_all_queries(&col, Base::from_msb(&[2, 2, 3]).unwrap());
    }

    #[test]
    fn figure7_example_cost() {
        // Figure 7: A <= 62 on a 3-component base-<10,10,10> index costs
        // 5 scans and 4 operations with RangeEval-Opt
        // (62 = <0, 6, 2>: comp1 interior -> 1 scan; comps 2,3: 2 each... )
        // digits lsb: v1=2, v2=6, v3=0.
        let col = Column::new((0..1000u32).collect(), 1000);
        let spec = IndexSpec::new(Base::uniform(10, 3).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        let mut src = idx.source();
        let mut ctx = ExecContext::new(&mut src);
        let q = query::SelectionQuery::new(query::Op::Le, 62);
        let got = evaluate(&mut ctx, q).unwrap();
        let stats = ctx.take_stats();
        assert_eq!(got, naive::evaluate(&col, q));
        // v1=2 interior: 1 scan. v2=6 interior: 2 scans (AND + OR).
        // v3=0: AND only: 1 scan. Total 4 scans, 3 ops.
        assert_eq!(stats.scans, 4);
        assert_eq!(stats.total_ops(), 3);
    }

    #[test]
    fn worst_case_scans_and_ops() {
        // All-interior digits: 2n-1 scans, 2(n-1) ops for A <= c.
        let col = Column::new((0..27u32).collect(), 27);
        let spec = IndexSpec::new(Base::uniform(3, 3).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        let mut src = idx.source();
        let mut ctx = ExecContext::new(&mut src);
        // v = 13 = <1,1,1> all interior.
        let q = query::SelectionQuery::new(query::Op::Le, 13);
        evaluate(&mut ctx, q).unwrap();
        let stats = ctx.take_stats();
        assert_eq!(stats.scans, 5);
        assert_eq!(stats.total_ops(), 4);
        assert_eq!(stats.nots, 0);
    }

    #[test]
    fn trivial_edges_cost_nothing() {
        let col = Column::new(vec![0, 1, 2], 3);
        let spec = IndexSpec::new(Base::single(3).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        let mut src = idx.source();
        let mut ctx = ExecContext::new(&mut src);
        let lt0 = evaluate(&mut ctx, query::SelectionQuery::new(query::Op::Lt, 0)).unwrap();
        assert_eq!(ctx.take_stats().scans, 0);
        assert!(lt0.none());
        let ge0 = evaluate(&mut ctx, query::SelectionQuery::new(query::Op::Ge, 0)).unwrap();
        assert_eq!(ctx.take_stats().scans, 0);
        assert!(ge0.all());
    }

    #[test]
    fn respects_nulls() {
        let col = Column::new(vec![3, 2, 1, 2, 8, 2], 9);
        let nulls = BitVec::from_indices(6, &[0, 4]);
        let spec = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build_with_nulls(&col, &nulls, spec).unwrap();
        let mut src = idx.source();
        let mut ctx = ExecContext::new(&mut src);
        for q in query::full_space(9) {
            let got = evaluate(&mut ctx, q).unwrap();
            ctx.take_stats();
            assert_eq!(got, naive::evaluate_with_nulls(&col, &nulls, q), "{q}");
        }
    }
}
