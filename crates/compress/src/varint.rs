//! LEB128 variable-length integers used by the token streams of the codecs.

use crate::DecodeError;

/// Appends `value` as LEB128 to `out`.
pub fn write(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 integer from `input[*pos..]`, advancing `pos`.
pub fn read(input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = input
            .get(*pos)
            .ok_or_else(|| DecodeError("varint: unexpected end of input".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError("varint: overflow".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write(&mut buf, 300);
        assert!(read(&buf[..1], &mut 0).is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(read(&[], &mut 0).is_err());
    }
}
