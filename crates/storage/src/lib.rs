//! # bindex-storage
//!
//! Physical bitmap storage for Section 9 of the paper: the three storage
//! schemes (**BS** bitmap-level, **CS** component-level, **IS**
//! index-level), optional per-file compression, byte-level I/O accounting,
//! and a bitmap buffer pool.
//!
//! An index whose component `i` holds `n_i` bitmaps over an `N`-row
//! relation is an `N × n` bit matrix (`n = Σ n_i`). The schemes differ in
//! file granularity and orientation:
//!
//! * **BS** — one file per bitmap (column-major): a query reads only the
//!   bitmaps it needs;
//! * **CS** — one file per component, stored **row-major**: any read of a
//!   component's bitmap scans and transposes the whole component file;
//! * **IS** — one row-major file for the whole index (a projection index
//!   when every component has base 2).
//!
//! Files live in a [`ByteStore`] — [`MemStore`] for tests, [`DiskStore`]
//! (plus [`TempDir`]) for the wall-clock experiments — and are optionally
//! compressed with a [`CodecKind`](bindex_compress::CodecKind); `cBS`,
//! `cCS`, `cIS` in the paper's notation.
//!
//! Every stored file — bitmap payloads and the manifest — is wrapped in a
//! checksummed frame ([`format`], [`checksum`]) verified on every read, so
//! corruption surfaces as a typed [`StorageError`] rather than a silently
//! wrong bitmap. Transient I/O failures are retried per [`RetryPolicy`];
//! [`FaultStore`] injects deterministic faults for robustness testing; and
//! [`StoredIndex::scrub`] audits a whole store file-by-file.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod buffer_pool;
pub mod checksum;
mod error;
mod fault;
pub mod format;
mod layout;
pub mod mmap;
pub mod shared;
mod store;
pub mod wal;

pub use buffer_pool::{BufferPool, PoolStats, ShardedPool};
pub use error::{RepairReport, RetryPolicy, ScrubFailure, ScrubReport, StorageError};
pub use fault::{FaultCounters, FaultPlan, FaultStore};
pub use layout::{StorageScheme, StoredIndex, StoredIndexMeta};
pub use mmap::{mmap_enabled, MappedStore, MmapStats, MMAP_ENV};
pub use shared::SharedIndexReader;
pub use store::{ByteStore, DiskStore, IoStats, MemStore, TempDir};
