//! **Figure 8** — RangeEval vs RangeEval-Opt on uniform-base range-encoded
//! indexes: average number of bitmap scans (a) and bitmap operations (b)
//! as a function of the base number `b`, for attribute cardinality
//! `C = 100` (pass a different C as the first argument; the paper also ran
//! 10 and 1000).
//!
//! For each base number `b ∈ [2, C]` the whole query space of `6·C`
//! selection queries is evaluated with both algorithms. Scan and operation
//! counts are data-independent, so a small synthetic relation suffices.

use bindex::core::eval::Algorithm;
use bindex::relation::{gen, query};
use bindex::{Base, BitmapIndex, Encoding, IndexSpec};
use bindex_bench::{average_costs, f3, print_table, Csv};

fn main() {
    let c: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let column = gen::uniform(256, c, 8);
    let queries = query::full_space(c);

    let mut csv = Csv::create(
        &format!("fig08_eval_algorithms_c{c}"),
        &[
            "base",
            "components",
            "scans_rangeeval",
            "scans_opt",
            "ops_rangeeval",
            "ops_opt",
        ],
    )
    .unwrap();

    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for b in 2..=c {
        let base = Base::uniform_for(b, c).unwrap();
        let n = base.n_components();
        let spec = IndexSpec::new(base, Encoding::Range);
        let idx = BitmapIndex::build(&column, spec).unwrap();
        let (s_re, o_re) = average_costs(&mut idx.source(), &queries, Algorithm::RangeEval);
        let (s_opt, o_opt) = average_costs(&mut idx.source(), &queries, Algorithm::RangeEvalOpt);
        csv.row(&[&b, &n, &f3(s_re), &f3(s_opt), &f3(o_re), &f3(o_opt)])
            .unwrap();
        if b <= 12 || b % 10 == 0 || b == c {
            rows.push(vec![
                b.to_string(),
                n.to_string(),
                f3(s_re),
                f3(s_opt),
                f3(o_re),
                f3(o_opt),
            ]);
        }
        improvements.push((1.0 - o_opt / o_re, s_re - s_opt));
    }

    print_table(
        &format!("Figure 8: RangeEval vs RangeEval-Opt, uniform base, C = {c} (selected rows)"),
        &[
            "base b",
            "n",
            "avg scans RangeEval",
            "avg scans Opt",
            "avg ops RangeEval",
            "avg ops Opt",
        ],
        &rows,
    );

    let avg_op_saving = improvements.iter().map(|x| x.0).sum::<f64>() / improvements.len() as f64;
    let avg_scan_saving = improvements.iter().map(|x| x.1).sum::<f64>() / improvements.len() as f64;
    println!(
        "\nAverage over all bases: RangeEval-Opt saves {:.1}% of bitmap operations and {:.2} scans/query.",
        100.0 * avg_op_saving,
        avg_scan_saving
    );
    println!("(Paper: ~50% fewer operations, one less scan per range predicate.)");
    println!("CSV: {}", csv.path().display());
}
