//! Time-optimal index under a disk-space constraint (Section 8) — point
//! (B) of Figure 2.
//!
//! Given at most `M` bitmaps, [`time_opt_alg`] finds the exact optimum and
//! [`time_opt_heur`] the near-optimal heuristic of the paper
//! ([`find_smallest_n`] for the seed + [`refine_index`] for the base
//! adjustment of Theorem 8.1). The heuristic runs in
//! `O(log C · log log C)`; the exact algorithm enumerates the candidate
//! set `I` of step 4 (whose size, plotted in Figure 14, is exposed as
//! [`candidate_set_size`]).
//!
//! Theorem 8.1 (base refinement): moving `δ` from a small base `b_p` to a
//! larger base `b_q` (`b_p ≤ b_q`, keeping `Π ≥ C` and `b_p − δ ≥ 2`)
//! never increases `Time` — `1/(b_p−δ) + 1/(b_q+δ) ≥ 1/b_p + 1/b_q` by
//! convexity — and never changes `Space`. `RefineIndex` applies the
//! largest legal `δ` repeatedly, smallest bases first.

use crate::base::Base;
use crate::cost::time_range_paper;
use crate::error::{Error, Result};

use super::space_opt::{max_components, space_optimal_bitmaps};
use super::time_opt::time_optimal;
use super::{isqrt_u64, range_space};

/// `FindSmallestN`: the least `n` for which an `n`-component index with
/// exactly `M` bitmaps covers `C`, together with the (balanced) seed index
/// of that size. `None` when even the all-binary index exceeds `M`
/// (`M < ⌈log2 C⌉`).
pub fn find_smallest_n(c: u32, m: u64) -> Option<(usize, Base)> {
    if c < 2 {
        return None;
    }
    for n in 1..=(m.min(max_components(c) as u64 * 64) as usize) {
        // b = floor((M+n)/n), r = (M+n) mod n: space is exactly M.
        let b = ((m + n as u64) / n as u64) as u32;
        if b < 2 {
            return None; // larger n only shrinks b further
        }
        let r = ((m + n as u64) % n as u64) as usize;
        // Max product for this (n, M): (b+1)^r * b^(n-r).
        let mut prod: u128 = 1;
        for _ in 0..r {
            prod = prod.saturating_mul(u128::from(b) + 1);
        }
        for _ in 0..n - r {
            prod = prod.saturating_mul(u128::from(b));
        }
        if prod >= u128::from(c) {
            // r components of base b+1 at the least significant positions.
            let mut lsb = vec![b + 1; r];
            lsb.extend(std::iter::repeat_n(b, n - r));
            return Some((n, Base::new(lsb).expect("b >= 2")));
        }
    }
    None
}

/// `RefineIndex` (Theorem 8.1): improves the time-efficiency of an index
/// without increasing its space, by repeatedly transferring the largest
/// legal `δ` from the smallest base to the next smallest. Finally the
/// least-significant base is shrunk to `max(2, ⌈C / Π_{i≥2} b_i⌉)`.
pub fn refine_index(index: &Base, c: u32) -> Base {
    let n = index.n_components();
    if n == 1 {
        return Base::single(c.max(2)).expect("C >= 2");
    }
    // Ascending multiset of base numbers.
    let mut seq: Vec<u32> = index.as_lsb_slice().to_vec();
    seq.sort_unstable();
    let mut prod: u128 = index.product();
    // Positions n down to 2 (lsb-first indices n-1 down to 1).
    let mut out = vec![0u32; n];
    for i in (1..n).rev() {
        let mut b_p = seq.remove(0); // smallest
        if b_p > 2 && !seq.is_empty() {
            let b_q = seq[0]; // next smallest
                              // Largest delta with (b_p - δ)(b_q + δ) · rest >= C.
            let k = (u128::from(c) * u128::from(b_p) * u128::from(b_q)).div_ceil(prod);
            let s = u128::from(b_p) + u128::from(b_q);
            if s * s >= 4 * k {
                let disc = (s * s - 4 * k) as u64;
                let num = i64::from(b_p) - i64::from(b_q) + isqrt_u64(disc) as i64;
                if num > 0 {
                    let delta = ((num / 2) as u32).min(b_p - 2);
                    if delta > 0 {
                        prod = prod / u128::from(b_p) / u128::from(b_q)
                            * u128::from(b_p - delta)
                            * u128::from(b_q + delta);
                        b_p -= delta;
                        seq[0] = b_q + delta;
                        // keep `seq` ascending after growing its head
                        seq.sort_unstable();
                    }
                }
            }
        }
        out[i] = b_p;
    }
    // Component 1: just large enough given the rest.
    let rest: u128 = out[1..]
        .iter()
        .fold(1u128, |acc, &b| acc.saturating_mul(u128::from(b)));
    let b1 = u128::from(c).div_ceil(rest).max(2);
    out[0] = b1.min(u128::from(c)) as u32;
    Base::new(out).expect("all bases >= 2")
}

/// `TimeOptHeur`: the paper's near-optimal heuristic for point (B).
///
/// ```
/// use bindex_core::design::constrained::time_opt_heur;
/// use bindex_core::design::range_space;
/// // Best index for C = 1000 within a 100-bitmap budget: <11, 91>.
/// let base = time_opt_heur(1000, 100).unwrap();
/// assert!(range_space(&base) <= 100);
/// assert!(base.covers(1000));
/// ```
pub fn time_opt_heur(c: u32, m: u64) -> Result<Base> {
    let (n, seed) = find_smallest_n(c, m).ok_or_else(|| infeasible(c, m))?;
    if let Ok(opt) = time_optimal(c, n) {
        if range_space(&opt) <= m {
            return Ok(opt);
        }
    }
    Ok(refine_index(&seed, c))
}

/// `TimeOptAlg`: the exact time-optimal index with at most `M` bitmaps.
///
/// Follows the paper's component-count bounds, then searches the candidate
/// set restricted to *tight* bases (every non-tight candidate is dominated
/// by a tight one in both space and time, so the restriction preserves
/// exactness while keeping the search fast).
pub fn time_opt_alg(c: u32, m: u64) -> Result<Base> {
    let (n0, n_prime) = component_bounds(c, m).ok_or_else(|| infeasible(c, m))?;
    let n_opt = time_optimal(c, n0).expect("n0 <= max_components");
    if range_space(&n_opt) <= m {
        return Ok(n_opt);
    }
    let mut best = time_optimal(c, n_prime).expect("n' <= max_components");
    debug_assert!(range_space(&best) <= m);
    let mut best_time = time_range_paper(&best);
    for k in n0..n_prime {
        enumerate_multisets(c, m, k, true, &mut |multiset| {
            let base = Base::best_arrangement(multiset.to_vec()).expect("valid");
            let t = time_range_paper(&base);
            if t < best_time - 1e-15 {
                best_time = t;
                best = base;
            }
        });
    }
    Ok(best)
}

/// The component-count bounds `(n0, n')` of TimeOptAlg steps 1–3:
/// `n0` = least components whose space-optimal index fits in `M`;
/// `n'` = least `n ≥ n0` whose *time-optimal* index fits in `M`.
pub fn component_bounds(c: u32, m: u64) -> Option<(usize, usize)> {
    let nmax = max_components(c);
    let n0 = (1..=nmax).find(|&n| space_optimal_bitmaps(c, n).is_ok_and(|s| s <= m))?;
    let n_prime = (n0..=nmax)
        .find(|&n| time_optimal(c, n).is_ok_and(|b| range_space(&b) <= m))
        .expect("the all-binary index fits whenever n0 exists");
    Some((n0, n_prime))
}

/// Size of the candidate set `I` of TimeOptAlg step 4 (Figure 14): all
/// `k`-component multiset bases with `Π b_i ≥ C` and `Σ (b_i − 1) ≤ M`
/// for `n0 ≤ k < n'`, plus the `n'`-component time-optimal index.
/// Zero when the fast path (step 2) applies, one for the `n'` index alone.
pub fn candidate_set_size(c: u32, m: u64) -> usize {
    let Some((n0, n_prime)) = component_bounds(c, m) else {
        return 0;
    };
    let n_opt = time_optimal(c, n0).expect("n0 <= max_components");
    if range_space(&n_opt) <= m {
        return 1; // fast path: the n0-component time-optimal index
    }
    let mut count = 1usize; // the n'-component time-optimal index
    for k in n0..n_prime {
        enumerate_multisets(c, m, k, false, &mut |_| count += 1);
    }
    count
}

/// Enumerates descending multisets of exactly `k` base numbers `≥ 2` with
/// `Π ≥ C` and `Σ(b−1) ≤ M`. With `tight_only`, prunes multisets where
/// some base could be decremented while preserving coverage (safe for the
/// optimum search; the full set defines Figure 14's `|I|`).
fn enumerate_multisets(c: u32, m: u64, k: usize, tight_only: bool, f: &mut impl FnMut(&[u32])) {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        c: u32,
        k: usize,
        space_left: u64,
        cap: u32,
        prod: u128,
        tight_only: bool,
        stack: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]),
    ) {
        if k == 0 {
            if prod >= u128::from(c) {
                if tight_only {
                    let tight = stack
                        .iter()
                        .all(|&b| prod / u128::from(b) * u128::from(b - 1) < u128::from(c));
                    if !tight {
                        return;
                    }
                }
                f(stack);
            }
            return;
        }
        if space_left < k as u64 {
            return; // every remaining base needs >= 1 bitmap
        }
        // Descending: next base between 2 and min(cap, space budget).
        let hi = cap.min((space_left - (k as u64 - 1)).min(u64::from(u32::MAX) - 1) as u32 + 1);
        for b in 2..=hi {
            // Remaining k-1 entries are <= b: max achievable product check.
            let mut max_prod = prod * u128::from(b);
            for _ in 0..k - 1 {
                max_prod = max_prod.saturating_mul(u128::from(b));
            }
            if max_prod < u128::from(c) {
                continue;
            }
            stack.push(b);
            rec(
                c,
                k - 1,
                space_left - u64::from(b - 1),
                b,
                prod * u128::from(b),
                tight_only,
                stack,
                f,
            );
            stack.pop();
        }
    }
    let mut stack = Vec::with_capacity(k);
    rec(c, k, m, c, 1, tight_only, &mut stack, f);
}

/// Batch solver for repeated point-(B) queries at the same cardinality:
/// precomputes the tight-base catalogue once, so each `M` query is a
/// filtered scan instead of a fresh enumeration. Produces exactly the same
/// answers as [`time_opt_alg`] (validated in tests); used by the Table 2
/// and Figure 14 experiment sweeps.
pub struct TimeOptSolver {
    c: u32,
    /// (space, time, base) for every tight base, arranged time-optimally.
    catalogue: Vec<(u64, f64, Base)>,
}

impl TimeOptSolver {
    /// Builds the catalogue for cardinality `c`.
    pub fn new(c: u32) -> Self {
        let catalogue = crate::base::tight_bases(c, usize::MAX)
            .into_iter()
            .map(|b| (range_space(&b), time_range_paper(&b), b))
            .collect();
        Self { c, catalogue }
    }

    /// The exact time-optimal index with at most `m` bitmaps.
    pub fn solve(&self, m: u64) -> Result<Base> {
        let best = self
            .catalogue
            .iter()
            .filter(|(space, _, _)| *space <= m)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        best.map(|(_, _, base)| base.clone())
            .ok_or_else(|| infeasible(self.c, m))
    }
}

fn infeasible(c: u32, m: u64) -> Error {
    Error::Infeasible(format!(
        "no index for C = {c} fits in {m} bitmaps (minimum is {})",
        max_components(c)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_smallest_n_space_is_exactly_m() {
        for (c, m) in [
            (1000u32, 62u64),
            (1000, 100),
            (100, 18),
            (50, 11),
            (1000, 10),
        ] {
            let (n, base) = find_smallest_n(c, m).unwrap();
            assert_eq!(range_space(&base), m, "C={c} M={m}");
            assert!(base.covers(c));
            assert_eq!(base.n_components(), n);
            // n is minimal: the space-optimal (n-1)-index must exceed M.
            if n > 1 {
                assert!(space_optimal_bitmaps(c, n - 1).unwrap() > m);
            }
        }
    }

    #[test]
    fn find_smallest_n_infeasible() {
        assert!(find_smallest_n(1000, 9).is_none()); // needs >= 10 bitmaps
        assert!(find_smallest_n(1000, 10).is_some());
    }

    #[test]
    fn refine_never_hurts() {
        for (c, bases) in [
            (
                1000u32,
                vec![vec![10u32, 10, 10], vec![12, 11, 10], vec![32, 32]],
            ),
            (100, vec![vec![10, 10], vec![5, 5, 4]]),
        ] {
            for msb in bases {
                let before = Base::from_msb(&msb).unwrap();
                let after = refine_index(&before, c);
                assert!(after.covers(c), "C={c} {before} -> {after}");
                assert!(
                    range_space(&after) <= range_space(&before),
                    "C={c} {before} -> {after}: space grew"
                );
                assert!(
                    time_range_paper(&after) <= time_range_paper(&before) + 1e-12,
                    "C={c} {before} -> {after}: time grew"
                );
            }
        }
    }

    #[test]
    fn heuristic_is_feasible_and_near_optimal() {
        let c = 100u32;
        for m in max_components(c) as u64..=(c as u64 - 1) {
            let heur = time_opt_heur(c, m).unwrap();
            assert!(heur.covers(c), "M={m}");
            assert!(range_space(&heur) <= m, "M={m}: {heur}");
            let opt = time_opt_alg(c, m).unwrap();
            assert!(range_space(&opt) <= m);
            let (th, to) = (time_range_paper(&heur), time_range_paper(&opt));
            assert!(
                th + 1e-12 >= to,
                "M={m}: heuristic {heur} ({th}) beats 'optimal' {opt} ({to})"
            );
            // The paper reports <= ~0.5 scan gap in the worst case.
            assert!(th - to < 1.0, "M={m}: gap {} too large", th - to);
        }
    }

    #[test]
    fn exact_matches_bruteforce_over_tight_bases() {
        let c = 60u32;
        for m in [6u64, 10, 20, 40, 59] {
            let opt = time_opt_alg(c, m).unwrap();
            let brute = crate::base::tight_bases(c, usize::MAX)
                .into_iter()
                .filter(|b| range_space(b) <= m)
                .map(|b| time_range_paper(&b))
                .fold(f64::INFINITY, f64::min);
            let t = time_range_paper(&opt);
            assert!(
                (t - brute).abs() < 1e-9,
                "C={c} M={m}: alg {opt} ({t}) vs brute {brute}"
            );
        }
    }

    #[test]
    fn fast_path_returns_time_optimal() {
        // M large enough for the 1-component index: return <C>.
        assert_eq!(time_opt_alg(100, 99).unwrap().to_msb_vec(), vec![100]);
        assert_eq!(time_opt_heur(100, 99).unwrap().to_msb_vec(), vec![100]);
        assert_eq!(candidate_set_size(100, 99), 1);
    }

    #[test]
    fn infeasible_m_rejected() {
        assert!(time_opt_alg(1000, 9).is_err());
        assert!(time_opt_heur(1000, 9).is_err());
        assert_eq!(candidate_set_size(1000, 9), 0);
    }

    #[test]
    fn candidate_set_counts_small_case() {
        // C = 8, M = 4: n0: space-opt per n: n=1 -> 7 > 4; n=2 -> b=3,
        // r: 3*2=6<8, 3*3=9>=8 -> r=2 -> space 4 <= 4 -> n0=2.
        // time-opt(2) = <2,4>: space 1+3 = 4 <= M -> fast path.
        assert_eq!(candidate_set_size(8, 4), 1);
        assert_eq!(time_opt_alg(8, 4).unwrap().to_msb_vec(), vec![2, 4]);
    }

    #[test]
    fn solver_matches_time_opt_alg() {
        for c in [60u32, 100] {
            let solver = TimeOptSolver::new(c);
            for m in max_components(c) as u64..c as u64 {
                let a = time_opt_alg(c, m).unwrap();
                let b = solver.solve(m).unwrap();
                assert!(
                    (time_range_paper(&a) - time_range_paper(&b)).abs() < 1e-9,
                    "C={c} M={m}: {a} vs {b}"
                );
            }
            assert!(solver.solve(max_components(c) as u64 - 1).is_err());
        }
    }

    #[test]
    fn bounds_are_ordered() {
        for m in 10u64..200 {
            if let Some((n0, np)) = component_bounds(1000, m) {
                assert!(n0 <= np);
                assert!(np <= max_components(1000));
            }
        }
    }
}
