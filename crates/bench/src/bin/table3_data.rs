//! **Table 3** — Characteristics of the TPC-D-derived experimental data
//! sets (regenerated synthetically per the TPC-D distributions; see
//! DESIGN.md §5 for the substitution).

use bindex::relation::tpcd;
use bindex_bench::{print_table, Csv};

fn main() {
    let scale = tpcd::scale_from_env();
    let info = tpcd::table3(scale);
    let mut csv = Csv::create(
        "table3_data",
        &["data_set", "relation", "attribute", "rows", "cardinality"],
    )
    .unwrap();
    let mut rows = Vec::new();
    for d in &info {
        csv.row(&[&d.id, &d.relation, &d.attribute, &d.rows, &d.cardinality])
            .unwrap();
        rows.push(vec![
            format!("Data Set {}", d.id),
            d.relation.to_string(),
            d.attribute.to_string(),
            d.rows.to_string(),
            d.cardinality.to_string(),
        ]);
    }
    print_table(
        &format!("Table 3: TPC-D benchmark data (scale {scale} of SF-1)"),
        &[
            "data set",
            "relation",
            "attribute",
            "relation cardinality",
            "attribute cardinality C",
        ],
        &rows,
    );
    println!(
        "\nPaper (SF-1): Lineitem/Quantity N=6,001,215 C=50; Order/Order-Date N=1,500,000 C=2406."
    );
    println!(
        "Set BINDEX_SCALE=1.0 for full SF-1 sizes. CSV: {}",
        csv.path().display()
    );
}
