//! End-to-end service tests: a real `Server` on an ephemeral port, real
//! TCP clients, and the full robustness surface — exactness over the
//! wire, overload shedding, per-request deadlines, chaos under load with
//! online repair, result-cache semantics, and graceful drain.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use bindex::compress::CodecKind;
use bindex::core::eval::Algorithm;
use bindex::relation::gen;
use bindex::relation::query::{Op, SelectionQuery, ThresholdQuery};
use bindex::storage::{ByteStore, MemStore, StorageScheme};
use bindex::stored::{persist_index, persist_index_v3};
use bindex::{Base, BitmapIndex, Column, Encoding, IndexSpec};
use bindex_server::{
    BreakerState, Client, ErrorCode, IndexTuning, Registry, Response, ServedIndex, Server,
    ServerConfig,
};

const N_ROWS: usize = 8192;
const CARDINALITY: u32 = 64;

fn spec() -> IndexSpec {
    IndexSpec::new(Base::from_msb(&[8, 8]).unwrap(), Encoding::Range)
}

fn build() -> (Column, BitmapIndex, MemStore) {
    let column = gen::uniform(N_ROWS, CARDINALITY, 11);
    let index = BitmapIndex::build(&column, spec()).unwrap();
    let store = persist_index(
        &index,
        MemStore::new(),
        StorageScheme::BitmapLevel,
        CodecKind::None,
    )
    .unwrap()
    .into_store();
    (column, index, store)
}

fn direct_count(index: &BitmapIndex, query: SelectionQuery) -> u64 {
    let (bits, _) =
        bindex::core::eval::evaluate(&mut index.source(), query, Algorithm::Auto).unwrap();
    bits.count_ones() as u64
}

/// A `ByteStore` whose reads sleep — a saturated disk for overload,
/// deadline, and drain tests.
struct SlowStore {
    inner: MemStore,
    delay: Duration,
}

impl ByteStore for SlowStore {
    fn write_file(&mut self, name: &str, data: &[u8]) -> std::io::Result<()> {
        self.inner.write_file(name, data)
    }

    fn read_file(&self, name: &str) -> std::io::Result<Vec<u8>> {
        std::thread::sleep(self.delay);
        self.inner.read_file(name)
    }

    fn file_size(&self, name: &str) -> std::io::Result<u64> {
        self.inner.file_size(name)
    }

    fn file_names(&self) -> std::io::Result<Vec<String>> {
        self.inner.file_names()
    }

    fn append_file(&mut self, name: &str, data: &[u8]) -> std::io::Result<()> {
        self.inner.append_file(name, data)
    }

    fn remove_file(&mut self, name: &str) -> std::io::Result<()> {
        self.inner.remove_file(name)
    }
}

/// Tuning shared by the tests that must observe every store access:
/// result cache and buffer pool off, segments small enough that the
/// deadline has boundaries to check.
fn uncached_tuning() -> IndexTuning {
    IndexTuning {
        segment_bits: 512,
        cache_capacity: 0,
        pool_capacity: 0,
        ..IndexTuning::default()
    }
}

fn start_server(registry: Registry, config: ServerConfig) -> Server {
    Server::start(registry, config, "127.0.0.1:0").expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    client
}

#[test]
fn end_to_end_answers_are_exact_over_the_wire() {
    let (_column, index, store) = build();
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new(
            "t",
            spec(),
            Box::new(store),
            None,
            None,
            IndexTuning::default(),
        )
        .unwrap(),
    );
    let config = ServerConfig {
        workers: 2,
        queue_depth: 16,
        default_deadline: Duration::from_secs(10),
    };
    let server = start_server(registry, config);
    let mut client = connect(&server);

    client.ping().expect("ping");
    let queries = [
        SelectionQuery::new(Op::Le, 40),
        SelectionQuery::new(Op::Gt, 50),
        SelectionQuery::new(Op::Eq, 3),
        SelectionQuery::new(Op::Ne, 3),
        SelectionQuery::new(Op::Ge, 0),
        SelectionQuery::new(Op::Lt, 64),
    ];
    for query in queries {
        match client.query("t", query, false, 0).expect("query") {
            Response::Count {
                cardinality,
                degraded,
                ..
            } => {
                assert_eq!(cardinality, direct_count(&index, query), "{query:?}");
                assert!(!degraded);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Bitmap round trip: the foundset words survive the wire intact.
    let query = SelectionQuery::new(Op::Le, 17);
    match client.query("t", query, true, 0).expect("bitmap query") {
        Response::Bitmap {
            cardinality,
            n_bits,
            words,
            ..
        } => {
            let (want, _) =
                bindex::core::eval::evaluate(&mut index.source(), query, Algorithm::Auto).unwrap();
            assert_eq!(n_bits as usize, want.len());
            assert_eq!(cardinality, want.count_ones() as u64);
            assert_eq!(words, want.words().to_vec());
        }
        other => panic!("unexpected response {other:?}"),
    }
    // Unknown index: a typed error, not a dropped connection.
    match client
        .query("nope", SelectionQuery::new(Op::Le, 1), false, 0)
        .expect("unknown-index query")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownIndex),
        other => panic!("unexpected response {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert!(stats.admitted >= 7, "stats: {stats:?}");
    assert_eq!(stats.failed, 0, "stats: {stats:?}");

    client.shutdown().expect("shutdown request");
    assert!(server.shutdown_requested());
    let report = server.shutdown();
    assert_eq!(report.shed_overload, 0);
}

fn direct_threshold(index: &BitmapIndex, k: u32, predicates: &[SelectionQuery]) -> bindex::BitVec {
    let query = ThresholdQuery::new(k, predicates.to_vec());
    let (bits, _) =
        bindex::core::eval::evaluate_threshold(&mut index.source(), &query, Algorithm::Auto)
            .unwrap();
    bits
}

/// The threshold acceptance scenario over the wire: exact "≥ k of N"
/// counts and bitmaps, result-cache hits across predicate permutations,
/// cache invalidation on the repair epoch bump, and typed rejection of
/// structurally invalid k — all through real TCP frames.
#[test]
fn threshold_queries_over_the_wire() {
    let (_column, index, store) = build();
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new(
            "t",
            spec(),
            Box::new(store),
            None,
            None,
            IndexTuning::default(),
        )
        .unwrap(),
    );
    let served = registry.get("t").unwrap();
    let config = ServerConfig {
        workers: 2,
        queue_depth: 16,
        default_deadline: Duration::from_secs(10),
    };
    let server = start_server(registry, config);
    let mut client = connect(&server);

    let predicates = [
        SelectionQuery::new(Op::Le, 40),
        SelectionQuery::new(Op::Gt, 7),
        SelectionQuery::new(Op::Ne, 13),
        SelectionQuery::new(Op::Eq, 22),
    ];
    // Exact counts for every k, including the AND (k = N) and OR (k = 1)
    // degenerations.
    for k in 1..=4u32 {
        let want = direct_threshold(&index, k, &predicates).count_ones() as u64;
        match client
            .threshold("t", k, &predicates, false, 0)
            .expect("threshold query")
        {
            Response::Count {
                cardinality,
                degraded,
                ..
            } => {
                assert_eq!(cardinality, want, "k = {k}");
                assert!(!degraded);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Bitmap round trip: the threshold foundset survives the wire intact.
    let want = direct_threshold(&index, 2, &predicates);
    match client
        .threshold("t", 2, &predicates, true, 0)
        .expect("threshold bitmap")
    {
        Response::Bitmap {
            cardinality,
            n_bits,
            words,
            ..
        } => {
            assert_eq!(n_bits as usize, want.len());
            assert_eq!(cardinality, want.count_ones() as u64);
            assert_eq!(words, want.words().to_vec());
        }
        other => panic!("unexpected response {other:?}"),
    }

    // The result cache is permutation-blind: the same predicate set in a
    // different order (and an aliased spelling) hits the cached entry.
    let permuted = [
        SelectionQuery::new(Op::Eq, 22),
        SelectionQuery::new(Op::Ne, 13),
        SelectionQuery::new(Op::Gt, 7),
        SelectionQuery::new(Op::Lt, 41), // alias of Le 40
    ];
    match client
        .threshold("t", 2, &permuted, false, 0)
        .expect("permuted threshold")
    {
        Response::Count {
            cardinality,
            cached,
            ..
        } => {
            assert_eq!(cardinality, want.count_ones() as u64);
            assert!(cached, "permuted predicate set must hit the cache");
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Repair bumps the epoch; pre-repair threshold answers must not be
    // served from cache afterwards.
    let epoch_before = served.repair_epoch();
    client.repair("t").expect("repair");
    assert_eq!(served.repair_epoch(), epoch_before + 1);
    match client
        .threshold("t", 2, &predicates, false, 0)
        .expect("post-repair threshold")
    {
        Response::Count {
            cardinality,
            cached,
            ..
        } => {
            assert_eq!(cardinality, want.count_ones() as u64);
            assert!(!cached, "repair must invalidate threshold cache entries");
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Structurally invalid thresholds are typed BadRequests, answered
    // without consuming a queue slot or counting as a server failure.
    for (k, preds) in [
        (0u32, &predicates[..]), // k = 0 matches every row; rejected
        (5, &predicates[..]),    // k above the predicate count
        (1, &predicates[..0]),   // no predicates at all
    ] {
        match client
            .threshold("t", k, preds, false, 0)
            .expect("invalid threshold transport")
        {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::BadRequest, "k = {k}: {message}");
                assert!(message.contains("invalid query"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.failed, 0, "stats: {stats:?}");
    assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    server.shutdown();
}

#[test]
fn overload_is_shed_with_typed_responses() {
    let (_column, index, store) = build();
    let slow = SlowStore {
        inner: store,
        delay: Duration::from_millis(100),
    };
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new("t", spec(), Box::new(slow), None, None, uncached_tuning()).unwrap(),
    );
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        default_deadline: Duration::from_secs(10),
    };
    let server = start_server(registry, config);

    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for i in 0..8u32 {
            let tx = tx.clone();
            let addr = server.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                let query = SelectionQuery::new(Op::Le, 8 * i % CARDINALITY);
                let resp = client.query("t", query, false, 0).expect("transport");
                tx.send((query, resp)).unwrap();
            });
        }
    });
    drop(tx);

    let (mut ok, mut overloaded) = (0, 0);
    for (query, resp) in rx {
        match resp {
            Response::Count { cardinality, .. } => {
                assert_eq!(cardinality, direct_count(&index, query));
                ok += 1;
            }
            Response::Error {
                code: ErrorCode::Overloaded,
                ..
            } => overloaded += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(ok >= 1, "ok {ok}, overloaded {overloaded}");
    assert!(overloaded >= 1, "ok {ok}, overloaded {overloaded}");
    assert_eq!(ok + overloaded, 8);
    let stats = server.stats();
    assert!(stats.shed_overload >= 1, "stats: {stats:?}");
    server.shutdown();
}

#[test]
fn per_request_deadline_sheds_mid_query() {
    let (_column, _index, store) = build();
    let slow = SlowStore {
        inner: store,
        delay: Duration::from_millis(150),
    };
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new("t", spec(), Box::new(slow), None, None, uncached_tuning()).unwrap(),
    );
    let config = ServerConfig {
        workers: 1,
        queue_depth: 4,
        default_deadline: Duration::from_secs(10),
    };
    let server = start_server(registry, config);
    let mut client = connect(&server);

    // One 150ms fetch outlasts the 50ms budget: the engine cancels at
    // the first segment boundary and the client gets a typed error.
    match client
        .query("t", SelectionQuery::new(Op::Le, 40), false, 50)
        .expect("transport")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
        other => panic!("unexpected response {other:?}"),
    }
    // The service is still healthy: control traffic and a patient query
    // both succeed afterwards.
    client.ping().expect("ping after shed");
    match client
        .query("t", SelectionQuery::new(Op::Le, 40), false, 30_000)
        .expect("transport")
    {
        Response::Count { .. } => {}
        other => panic!("unexpected response {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert!(stats.shed_deadline >= 1, "stats: {stats:?}");
    server.shutdown();
}

/// The acceptance scenario: storage corruption under concurrent load
/// yields typed failures, then the breaker flips to degraded serving
/// (exact answers via reconstruction), online repair heals the store,
/// and the index probes its way back to strict, healthy serving — zero
/// panics, zero dropped connections.
#[test]
fn chaos_under_load_degrades_then_repairs_to_healthy() {
    let (column, index, mut store) = build();
    // Durably corrupt every bitmap payload: every strict read fails its
    // checksum until repair rewrites the files.
    let mut corrupted = 0;
    for name in store.file_names().unwrap() {
        if !name.ends_with(".bmp") {
            continue;
        }
        let mut data = store.read_file(&name).unwrap();
        if let Some(byte) = data.last_mut() {
            *byte ^= 0x40;
            store.write_file(&name, &data).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "expected bitmap files to corrupt");

    let tuning = IndexTuning {
        breaker_trip: 2,
        breaker_close: 2,
        breaker_cooldown: Duration::from_secs(600),
        ..uncached_tuning()
    };
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new(
            "chaos",
            spec(),
            Box::new(store),
            Some(Arc::new(column)),
            None,
            tuning,
        )
        .unwrap(),
    );
    let served = registry.get("chaos").unwrap();
    let config = ServerConfig {
        workers: 2,
        queue_depth: 32,
        default_deadline: Duration::from_secs(30),
    };
    let server = start_server(registry, config);

    // Phase 1: concurrent load against the corrupted store. Early
    // queries fail strictly; once the breaker trips, answers keep
    // flowing through scan-based reconstruction — degraded but exact.
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for t in 0..3u32 {
            let tx = tx.clone();
            let addr = server.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                for q in 0..8u32 {
                    let query = SelectionQuery::new(Op::Le, (t * 19 + q * 7) % CARDINALITY);
                    let resp = client.query("chaos", query, false, 0).expect("transport");
                    tx.send((query, resp)).unwrap();
                }
            });
        }
    });
    drop(tx);

    let (mut failed, mut degraded, mut strict_ok) = (0, 0, 0);
    for (query, resp) in rx {
        match resp {
            Response::Error {
                code: ErrorCode::QueryFailed,
                ..
            } => failed += 1,
            Response::Count {
                cardinality,
                degraded: true,
                ..
            } => {
                assert_eq!(cardinality, direct_count(&index, query), "{query:?}");
                degraded += 1;
            }
            Response::Count {
                cardinality,
                degraded: false,
                ..
            } => {
                assert_eq!(cardinality, direct_count(&index, query), "{query:?}");
                strict_ok += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(failed + degraded + strict_ok, 24);
    assert!(failed >= 1, "failed {failed}, degraded {degraded}");
    assert!(degraded >= 1, "failed {failed}, degraded {degraded}");
    assert!(
        !served.healthy(),
        "breaker should be open, state {:?}",
        served.breaker().state()
    );

    // Phase 2: online repair rewrites the damaged files and moves the
    // breaker to probing.
    let mut client = connect(&server);
    let epoch_before = served.repair_epoch();
    let (repaired, unrepaired) = client.repair("chaos").expect("repair");
    assert!(repaired >= 1, "repaired {repaired}");
    assert_eq!(unrepaired, 0);
    assert_eq!(served.repair_epoch(), epoch_before + 1);
    assert_eq!(served.breaker().state(), BreakerState::HalfOpen);

    // Phase 3: clean probes close the breaker; serving is strict again.
    for q in 0..4u32 {
        let query = SelectionQuery::new(Op::Gt, (q * 13) % CARDINALITY);
        match client.query("chaos", query, false, 0).expect("transport") {
            Response::Count {
                cardinality,
                degraded,
                ..
            } => {
                assert_eq!(cardinality, direct_count(&index, query), "{query:?}");
                assert!(!degraded, "post-repair answers must be strict");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(served.healthy(), "state {:?}", served.breaker().state());
    let stats = client.stats().expect("stats");
    assert!(stats.failed >= 1, "stats: {stats:?}");
    assert!(stats.degraded >= 1, "stats: {stats:?}");
    assert!(stats.breaker_trips >= 1, "stats: {stats:?}");
    assert_eq!(stats.repairs, 1, "stats: {stats:?}");
    server.shutdown();
}

#[test]
fn result_cache_hits_normalized_predicates_and_repair_invalidates() {
    let (_column, index, store) = build();
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new(
            "t",
            spec(),
            Box::new(store),
            None,
            None,
            IndexTuning::default(),
        )
        .unwrap(),
    );
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        default_deadline: Duration::from_secs(10),
    };
    let server = start_server(registry, config);
    let mut client = connect(&server);

    let cached_of = |resp: Response, index: &BitmapIndex, query: SelectionQuery| -> bool {
        match resp {
            Response::Count {
                cardinality,
                cached,
                ..
            } => {
                assert_eq!(cardinality, direct_count(index, query));
                cached
            }
            other => panic!("unexpected response {other:?}"),
        }
    };

    let le40 = SelectionQuery::new(Op::Le, 40);
    let lt41 = SelectionQuery::new(Op::Lt, 41);
    let first = client.query("t", le40, false, 0).expect("transport");
    assert!(!cached_of(first, &index, le40), "cold query must miss");
    let second = client.query("t", le40, false, 0).expect("transport");
    assert!(cached_of(second, &index, le40), "repeat query must hit");
    // `x < 41` normalizes to `x <= 40`: same cache entry.
    let normalized = client.query("t", lt41, false, 0).expect("transport");
    assert!(
        cached_of(normalized, &index, lt41),
        "normalized form must hit"
    );

    // Repair bumps the epoch; the cache may not serve pre-repair answers.
    client.repair("t").expect("repair");
    let after = client.query("t", le40, false, 0).expect("transport");
    assert!(!cached_of(after, &index, le40), "repair must invalidate");
    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits >= 2, "stats: {stats:?}");
    server.shutdown();
}

/// The ingest ⊕ cache contract over the wire: an ingest batch compacts
/// into a fresh generation through the repair-epoch bump, so a count that
/// was cached before the batch is never served stale afterwards.
#[test]
fn ingest_batch_invalidates_cached_counts_over_the_wire() {
    let column = gen::uniform(N_ROWS, CARDINALITY, 23);
    let index = BitmapIndex::build(&column, spec()).unwrap();
    let store = persist_index_v3(&index, MemStore::new(), CodecKind::None)
        .unwrap()
        .into_store();
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new(
            "t",
            spec(),
            Box::new(store),
            Some(Arc::new(column.clone())),
            None,
            IndexTuning::default(),
        )
        .unwrap(),
    );
    let served = registry.get("t").unwrap();
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        default_deadline: Duration::from_secs(10),
    };
    let server = start_server(registry, config);
    let mut client = connect(&server);

    let count_of = |resp: Response| -> (u64, bool) {
        match resp {
            Response::Count {
                cardinality,
                cached,
                degraded,
            } => {
                assert!(!degraded);
                (cardinality, cached)
            }
            other => panic!("unexpected response {other:?}"),
        }
    };

    // Warm the cache on `A = 7` and `A != 7`.
    let eq7 = SelectionQuery::new(Op::Eq, 7);
    let ne7 = SelectionQuery::new(Op::Ne, 7);
    let eq_before = direct_count(&index, eq7);
    let ne_before = direct_count(&index, ne7);
    let (got, cached) = count_of(client.query("t", eq7, false, 0).expect("transport"));
    assert_eq!((got, cached), (eq_before, false), "cold query must miss");
    let (_, cached) = count_of(client.query("t", eq7, false, 0).expect("transport"));
    assert!(cached, "repeat query must hit");
    count_of(client.query("t", ne7, false, 0).expect("transport"));

    // Ingest: three value-7 rows plus a null, delete one pre-existing
    // value-7 row — net `A = 7` count rises by two, `A != 7` is
    // untouched (the null and the deleted row both fall outside it).
    let victim = column.values().iter().position(|&v| v == 7).unwrap() as u64;
    let epoch_before = served.repair_epoch();
    let (seq, generation, n_rows) = client
        .ingest("t", &[Some(7), None, Some(7), Some(7)], &[victim])
        .expect("ingest");
    assert_eq!(seq, 2, "append batch + delete batch");
    assert_eq!(generation, 1, "first compaction after the v3 seed");
    assert_eq!(n_rows, N_ROWS as u64 + 4);
    assert!(
        served.repair_epoch() > epoch_before,
        "ingest must bump the epoch"
    );
    assert_eq!(served.n_rows(), N_ROWS + 4);

    // The pre-ingest cached counts must not be served: fresh answers
    // over the rewritten generation.
    let (got, cached) = count_of(client.query("t", eq7, false, 0).expect("transport"));
    assert!(!cached, "stale cached count served after ingest");
    assert_eq!(got, eq_before + 2);
    let (got, cached) = count_of(client.query("t", ne7, false, 0).expect("transport"));
    assert!(!cached);
    assert_eq!(
        got, ne_before,
        "null append and masked delete stay outside A != 7"
    );

    // A deletes-only batch invalidates again; deleting an appended row
    // in the same generation works by absolute row id.
    let (seq, generation, _) = client
        .ingest("t", &[], &[N_ROWS as u64])
        .expect("deletes-only ingest");
    assert_eq!((seq, generation), (3, 2));
    let (got, cached) = count_of(client.query("t", eq7, false, 0).expect("transport"));
    assert!(!cached);
    assert_eq!(got, eq_before + 1, "appended value-7 row deleted again");

    // An out-of-range value is the client's mistake — typed BadRequest,
    // nothing applied.
    let err = client
        .ingest("t", &[Some(CARDINALITY)], &[])
        .expect_err("out-of-range append");
    assert!(err.to_string().contains("BadRequest"), "{err}");
    let (got, _) = count_of(client.query("t", eq7, false, 0).expect("transport"));
    assert_eq!(got, eq_before + 1, "failed ingest must not change answers");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.ingests, 2, "stats: {stats:?}");
    assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_admitted_work() {
    let (_column, index, store) = build();
    let slow = SlowStore {
        inner: store,
        delay: Duration::from_millis(100),
    };
    let mut registry = Registry::new();
    registry.insert(
        ServedIndex::new("t", spec(), Box::new(slow), None, None, uncached_tuning()).unwrap(),
    );
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        default_deadline: Duration::from_secs(30),
    };
    let server = start_server(registry, config);

    // Four queries pile onto one slow worker; shutdown begins while most
    // are still queued. Every admitted query must still be answered.
    let (tx, rx) = mpsc::channel();
    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let tx = tx.clone();
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                let query = SelectionQuery::new(Op::Le, (i * 11) % CARDINALITY);
                let resp = client.query("t", query, false, 0).expect("transport");
                tx.send((query, resp)).unwrap();
            })
        })
        .collect();
    drop(tx);
    std::thread::sleep(Duration::from_millis(150));
    let report = server.shutdown();

    let mut answered = 0;
    for (query, resp) in rx {
        match resp {
            Response::Count { cardinality, .. } => {
                assert_eq!(cardinality, direct_count(&index, query));
                answered += 1;
            }
            other => panic!("drain dropped a query: {other:?}"),
        }
    }
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert_eq!(answered, 4);
    assert_eq!(report.completed, 4, "report: {report:?}");
    assert_eq!(report.shed_overload, 0, "report: {report:?}");
}
