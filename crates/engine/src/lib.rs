//! # bindex-engine
//!
//! Multi-attribute tables and conjunctive selection queries over bitmap
//! indexes — the query-processing scenario the paper's introduction
//! motivates.
//!
//! For a query with selection predicates on several attributes, a
//! conventional optimizer picks one of three plans (Section 1 of the
//! paper):
//!
//! * **P1** — full relation scan;
//! * **P2** — index scan on the most selective predicate, then a partial
//!   relation scan over the qualifying rows to filter the rest;
//! * **P3** — one index scan per predicate, merging the foundsets
//!   (with bitmap indexes: cheap ANDs of bitmaps).
//!
//! [`Table`] holds the columns and their bitmap indexes (chosen per
//! attribute via [`IndexChoice`] — the paper's design points as a menu);
//! [`ConjunctiveQuery`] is the `AND` of per-attribute predicates;
//! [`plan::estimate`] prices each plan in bytes read with the paper's
//! cost model, [`plan::choose`] picks the cheapest, and
//! [`plan::execute`] runs any of them and reports what it actually read.
//!
//! The [`batch`] module fans workloads of queries across worker threads
//! with per-query fault isolation: failures, panics, deadline expiry, and
//! degraded (reconstructed-bitmap) evaluations each surface as that
//! query's own [`QueryOutcome`] in a [`WorkloadReport`], never as a
//! workload-wide abort.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod envcfg;
pub mod plan;
mod table;

pub use batch::{
    evaluate_selection_workload, execute_workload, parse_segment_bits, BatchHealth, BatchOptions,
    Deadline, QueryOutcome, WorkloadReport, MIN_SEGMENT_BITS, SEGMENT_BITS_ENV,
};
pub use plan::{ConjunctiveQuery, ExecutionStats, Plan, PlanCost};
pub use table::{IndexChoice, Table, TableBuilder};
