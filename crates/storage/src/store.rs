//! Byte stores: named flat files in memory or on disk, with I/O statistics.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative I/O statistics of a stored index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of file reads issued.
    pub reads: u64,
    /// Bytes read from the store (compressed size when compressed).
    pub bytes_read: u64,
    /// Bytes produced by decompression (0 for uncompressed files).
    pub bytes_decompressed: u64,
    /// Reads retried after a transient failure (fault tolerance layer).
    pub retries: u64,
}

impl IoStats {
    /// Accumulates another stats record.
    pub fn add(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.bytes_read += other.bytes_read;
        self.bytes_decompressed += other.bytes_decompressed;
        self.retries += other.retries;
    }
}

/// A flat namespace of byte files.
pub trait ByteStore {
    /// Writes (or replaces) a file.
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Reads a whole file.
    fn read_file(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Size of a file in bytes.
    fn file_size(&self, name: &str) -> io::Result<u64>;
    /// Names of all files, in unspecified order. Directory-read failures
    /// propagate rather than masquerading as an empty store.
    fn file_names(&self) -> io::Result<Vec<String>>;

    /// Appends bytes to the end of a file, creating it if absent — the
    /// write-ahead-log primitive. Unlike [`ByteStore::write_file`] an
    /// append is **not** atomic: a crash may persist any prefix, which is
    /// why WAL records carry their own framing and checksum. Durability
    /// requires a following [`ByteStore::sync_file`].
    fn append_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut bytes = match self.read_file(name) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        bytes.extend_from_slice(data);
        self.write_file(name, &bytes)
    }

    /// Durably flushes a file's content to the medium (fsync). A no-op
    /// for stores whose writes are immediately durable (memory).
    fn sync_file(&mut self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    /// Removes a file. Removing a missing file is an error.
    fn remove_file(&mut self, name: &str) -> io::Result<()>;

    /// Total bytes across all files.
    fn total_bytes(&self) -> io::Result<u64> {
        let mut sum = 0;
        for name in self.file_names()? {
            sum += self.file_size(&name)?;
        }
        Ok(sum)
    }
}

/// Boxed stores forward to the inner store, so code that must be
/// non-generic over storage (the query server holds disk-backed, faulty,
/// and in-memory indexes behind one type) can use
/// `Box<dyn ByteStore + Send + Sync>` wherever a `ByteStore` is expected.
impl ByteStore for Box<dyn ByteStore + Send + Sync> {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        (**self).write_file(name, data)
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        (**self).read_file(name)
    }

    fn file_size(&self, name: &str) -> io::Result<u64> {
        (**self).file_size(name)
    }

    fn file_names(&self) -> io::Result<Vec<String>> {
        (**self).file_names()
    }

    fn append_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        (**self).append_file(name, data)
    }

    fn sync_file(&mut self, name: &str) -> io::Result<()> {
        (**self).sync_file(name)
    }

    fn remove_file(&mut self, name: &str) -> io::Result<()> {
        (**self).remove_file(name)
    }

    fn total_bytes(&self) -> io::Result<u64> {
        (**self).total_bytes()
    }
}

/// In-memory store, for unit tests and scan-count experiments.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    files: HashMap<String, Vec<u8>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ByteStore for MemStore {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn file_size(&self, name: &str) -> io::Result<u64> {
        self.files
            .get(name)
            .map(|d| d.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn file_names(&self) -> io::Result<Vec<String>> {
        Ok(self.files.keys().cloned().collect())
    }

    fn append_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn remove_file(&mut self, name: &str) -> io::Result<()> {
        self.files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }
}

/// On-disk store rooted at a directory; used by the wall-clock experiments
/// of Section 9.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, name: &str) -> PathBuf {
        debug_assert!(
            !name.contains('/') && !name.contains('\\'),
            "flat namespace only"
        );
        self.dir.join(name)
    }

    /// Fsyncs the store directory so a just-renamed or just-removed entry
    /// is durable — without it a crash can roll back the rename itself
    /// even though the file data was synced.
    fn sync_dir(&self) -> io::Result<()> {
        fs::File::open(&self.dir)?.sync_all()
    }
}

impl ByteStore for DiskStore {
    /// Atomic replace: the data lands under a temporary name, is fsynced,
    /// and only then renamed into place — followed by a directory fsync so
    /// the rename is durable — so a crash mid-write leaves either the old
    /// file or the new one, never a torn mixture.
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let id = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self.path_of(&format!("{name}.tmp{id}"));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, self.path_of(name)).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })?;
        self.sync_dir()
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path_of(name))
    }

    fn file_size(&self, name: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.path_of(name))?.len())
    }

    fn file_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    /// Real positional append (`O_APPEND`), not read-concat-rewrite. Not
    /// atomic — see the trait docs; callers frame and checksum appended
    /// records. Durability still requires [`ByteStore::sync_file`].
    fn append_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path_of(name))?;
        f.write_all(data)
    }

    fn sync_file(&mut self, name: &str) -> io::Result<()> {
        fs::File::open(self.path_of(name))?.sync_all()
    }

    fn remove_file(&mut self, name: &str) -> io::Result<()> {
        fs::remove_file(self.path_of(name))?;
        self.sync_dir()
    }
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique temporary directory, removed on drop. (The `tempfile`
/// crate is outside the allowed dependency set.)
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new(tag: &str) -> io::Result<Self> {
        let id = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("bindex-{tag}-{}-{id}", std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn ByteStore) {
        store.write_file("a.bin", &[1, 2, 3]).unwrap();
        store.write_file("b.bin", &[9; 100]).unwrap();
        assert_eq!(store.read_file("a.bin").unwrap(), vec![1, 2, 3]);
        assert_eq!(store.file_size("b.bin").unwrap(), 100);
        assert!(store.read_file("missing").is_err());
        let mut names = store.file_names().unwrap();
        names.sort();
        assert_eq!(names, vec!["a.bin", "b.bin"]);
        assert_eq!(store.total_bytes().unwrap(), 103);
        // overwrite
        store.write_file("a.bin", &[7]).unwrap();
        assert_eq!(store.read_file("a.bin").unwrap(), vec![7]);
        // append: grows an existing file, creates a missing one
        store.append_file("a.bin", &[8, 9]).unwrap();
        assert_eq!(store.read_file("a.bin").unwrap(), vec![7, 8, 9]);
        store.append_file("log.bin", &[1]).unwrap();
        store.append_file("log.bin", &[2]).unwrap();
        assert_eq!(store.read_file("log.bin").unwrap(), vec![1, 2]);
        store.sync_file("log.bin").unwrap();
        // remove: gone afterwards, error when missing
        store.remove_file("log.bin").unwrap();
        assert!(store.read_file("log.bin").is_err());
        assert!(store.remove_file("log.bin").is_err());
    }

    #[test]
    fn mem_store_behaviour() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn disk_store_behaviour() {
        let tmp = TempDir::new("store-test").unwrap();
        let mut store = DiskStore::open(tmp.path()).unwrap();
        exercise(&mut store);
    }

    #[test]
    fn disk_write_replaces_atomically_and_leaves_no_temp_files() {
        let tmp = TempDir::new("atomic").unwrap();
        let mut store = DiskStore::open(tmp.path()).unwrap();
        store.write_file("f.bin", &[1; 64]).unwrap();
        store.write_file("f.bin", &[2; 32]).unwrap();
        assert_eq!(store.read_file("f.bin").unwrap(), vec![2; 32]);
        assert_eq!(store.file_names().unwrap(), vec!["f.bin"]);
    }

    #[test]
    fn temp_dir_cleans_up() {
        let path;
        {
            let tmp = TempDir::new("cleanup").unwrap();
            path = tmp.path().to_path_buf();
            fs::write(path.join("x"), b"y").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn io_stats_accumulate() {
        let mut a = IoStats {
            reads: 1,
            bytes_read: 10,
            bytes_decompressed: 20,
            retries: 1,
        };
        a.add(&IoStats {
            reads: 2,
            bytes_read: 5,
            bytes_decompressed: 0,
            retries: 2,
        });
        assert_eq!(a.reads, 3);
        assert_eq!(a.bytes_read, 15);
        assert_eq!(a.bytes_decompressed, 20);
        assert_eq!(a.retries, 3);
    }
}
