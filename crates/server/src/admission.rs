//! Admission control: a bounded MPMC queue between connection handlers
//! and evaluation workers.
//!
//! The queue is the server's only buffer, and it is *bounded*: once
//! `capacity` requests are waiting, further arrivals are rejected
//! immediately with [`PushError::Full`] and the connection handler turns
//! that into a typed `Overloaded` response. Rejecting at the door keeps
//! tail latency bounded — a request that would wait longer than its
//! deadline is refused in microseconds instead of timing out after
//! consuming queue space — and puts the backpressure where the client can
//! see it.
//!
//! [`close`](BoundedQueue::close) starts the drain: producers are refused
//! with [`PushError::Closed`], consumers keep popping until the queue is
//! empty, then [`pop`](BoundedQueue::pop) returns `None` and workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for a typed
    /// overload reply.
    Full(T),
    /// The queue is closed (server draining); the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking bounded queue: non-blocking producers (reject, never wait),
/// blocking consumers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-depth queue would shed every
    /// request and serve nothing.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The high-water mark.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item`, or refuses immediately — this method never blocks,
    /// which is the point: admission is a constant-time decision, not a
    /// second queue.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the oldest waiting item, blocking while the queue is empty
    /// and open. Returns `None` once the queue is closed *and* drained —
    /// the worker-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain what is already queued, then unblock.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_above_capacity_and_recovers() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(4).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_unblocks() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|g| g.is_none()).count(), 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::<usize>::new(8));
        let accepted = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                scope.spawn(move || {
                    for i in 0..100 {
                        if q.try_push(t * 100 + i).is_ok() {
                            accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                scope.spawn(move || {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            // Give producers time to finish, then drain.
            std::thread::sleep(std::time::Duration::from_millis(50));
            q.close();
        });
        assert_eq!(
            accepted.load(std::sync::atomic::Ordering::Relaxed),
            consumed.load(std::sync::atomic::Ordering::Relaxed)
        );
    }
}
