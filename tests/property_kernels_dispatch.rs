//! Property suite for the kernel dispatch tiers: the `Scalar` reference
//! implementation and the `Unrolled` `[u64; LANES]` + carry-save tier
//! must be **bit-identical** — same result bitmaps, same fused counts,
//! and same `EvalStats` op accounting — across random operand lengths
//! (including non-multiple-of-LANES word tails), empty and all-ones
//! operands, and `SegmentView` operands.
//!
//! CI runs this binary under both `BINDEX_KERNEL=scalar` and
//! `BINDEX_KERNEL=unrolled` (the `kernel-matrix` job), so the
//! default-dispatch path itself is exercised under each tier;
//! `active_tier_honors_env_and_force` additionally checks the env wiring
//! from inside the process. Everything else pins tiers explicitly through
//! the `*_with` entry points, which are safe against the process-global
//! dispatch being forced concurrently.

use bindex::bitvec::kernels;
use bindex::core::eval::{evaluate_in, evaluate_segmented_in, Algorithm};
use bindex::relation::query::full_space;
use bindex::relation::{gen, Rng};
use bindex::{Base, BitVec, BitmapIndex, Encoding, IndexSpec, KernelDispatch};

const SCALAR: KernelDispatch = KernelDispatch::Scalar;
const UNROLLED: KernelDispatch = KernelDispatch::Unrolled;

fn random_bitvec(rng: &mut Rng, len: usize) -> BitVec {
    BitVec::from_fn(len, |_| rng.below_u32(2) == 1)
}

/// Operand lengths chosen to make the unrolled tier's tail handling
/// sweat: word-exact, lane-exact (LANES·64 bits), one-off-lane, ragged
/// word tails, and sizes straddling the 1024-word block boundary.
fn lengths(rng: &mut Rng) -> Vec<usize> {
    let lane_bits = bindex::bitvec::LANES * 64;
    let mut out = vec![
        1,
        63,
        64,
        65,
        lane_bits - 64,
        lane_bits,
        lane_bits + 1,
        lane_bits + 63,
        3 * lane_bits + 17,
        1024 * 64,     // exactly one kernel block
        1024 * 64 + 9, // block + ragged tail
    ];
    for _ in 0..4 {
        out.push(rng.range_usize(1, 100_000));
    }
    out
}

#[test]
fn fold_kernels_bit_identical_across_tiers() {
    let mut rng = Rng::seed_from_u64(0xD15_9A7C);
    for len in lengths(&mut rng) {
        for fan_in in [1usize, 2, 3, 7, 16] {
            let owned: Vec<BitVec> = (0..fan_in).map(|_| random_bitvec(&mut rng, len)).collect();
            let ops: Vec<&BitVec> = owned.iter().collect();
            let label = format!("len {len} fan_in {fan_in}");
            assert_eq!(
                kernels::and_all_with(SCALAR, &ops),
                kernels::and_all_with(UNROLLED, &ops),
                "and {label}"
            );
            assert_eq!(
                kernels::or_all_with(SCALAR, &ops),
                kernels::or_all_with(UNROLLED, &ops),
                "or {label}"
            );
            assert_eq!(
                kernels::xor_all_with(SCALAR, &ops),
                kernels::xor_all_with(UNROLLED, &ops),
                "xor {label}"
            );
            assert_eq!(
                kernels::count_and_with(SCALAR, &ops),
                kernels::count_and_with(UNROLLED, &ops),
                "count_and {label}"
            );
            assert_eq!(
                kernels::count_or_with(SCALAR, &ops),
                kernels::count_or_with(UNROLLED, &ops),
                "count_or {label}"
            );
            assert_eq!(
                kernels::count_xor_with(SCALAR, &ops),
                kernels::count_xor_with(UNROLLED, &ops),
                "count_xor {label}"
            );
            // And both tiers agree with the definitional pairwise fold.
            let mut acc = owned[0].clone();
            for op in &owned[1..] {
                acc.or_assign(op);
            }
            assert_eq!(kernels::or_all_with(UNROLLED, &ops), acc, "{label}");
            assert_eq!(
                kernels::count_or_with(UNROLLED, &ops),
                acc.count_ones(),
                "{label}"
            );
        }
        let a = random_bitvec(&mut rng, len);
        let b = random_bitvec(&mut rng, len);
        assert_eq!(
            kernels::and_not_with(SCALAR, &a, &b),
            kernels::and_not_with(UNROLLED, &a, &b),
            "and_not len {len}"
        );
        assert_eq!(
            kernels::count_and_not_with(SCALAR, &a, &b),
            kernels::count_and_not_with(UNROLLED, &a, &b),
            "count_and_not len {len}"
        );
    }
}

#[test]
fn edge_operands_bit_identical_across_tiers() {
    // Empty (zero-length), all-zeros, and all-ones operands at tail
    // lengths where the canonical-form mask matters.
    for len in [0usize, 1, 64, 65, 512 + 7] {
        let zeros = BitVec::zeros(len);
        let ones = BitVec::ones(len);
        for ops in [
            vec![&zeros, &zeros],
            vec![&ones, &ones],
            vec![&zeros, &ones, &zeros],
            vec![&ones, &zeros, &ones, &ones],
        ] {
            assert_eq!(
                kernels::or_all_with(SCALAR, &ops),
                kernels::or_all_with(UNROLLED, &ops),
                "or len {len}"
            );
            assert_eq!(
                kernels::xor_all_with(SCALAR, &ops),
                kernels::xor_all_with(UNROLLED, &ops),
                "xor len {len}"
            );
            assert_eq!(
                kernels::count_and_with(SCALAR, &ops),
                kernels::count_and_with(UNROLLED, &ops),
                "count len {len}"
            );
        }
        // All-ones results must stay canonically masked under both tiers.
        if len > 0 {
            let o = kernels::or_all_with(UNROLLED, &[&ones, &ones]);
            assert_eq!(o.count_ones(), len);
            assert_eq!(o, ones);
        }
    }
}

#[test]
fn segment_views_bit_identical_across_tiers() {
    let mut rng = Rng::seed_from_u64(0x5E6);
    let len = 64 * 1024 + 37;
    let owned: Vec<BitVec> = (0..6).map(|_| random_bitvec(&mut rng, len)).collect();
    // Word-aligned windows including ragged final ones.
    for (lo, hi) in [(0usize, 4096), (4096, 8192 + 64), (63 * 1024, len)] {
        let views: Vec<_> = owned.iter().map(|b| b.view_range(lo, hi)).collect();
        assert_eq!(
            kernels::and_all_with(SCALAR, &views),
            kernels::and_all_with(UNROLLED, &views),
            "and view {lo}..{hi}"
        );
        assert_eq!(
            kernels::or_all_with(SCALAR, &views),
            kernels::or_all_with(UNROLLED, &views),
            "or view {lo}..{hi}"
        );
        assert_eq!(
            kernels::count_or_with(SCALAR, &views),
            kernels::count_or_with(UNROLLED, &views),
            "count view {lo}..{hi}"
        );
        assert_eq!(
            kernels::and_not_with(SCALAR, views[0], views[1]),
            kernels::and_not_with(UNROLLED, views[0], views[1]),
            "and_not view {lo}..{hi}"
        );
        // Views and their materialized copies agree under the unrolled
        // tier (the view word-slicing path is tier-independent).
        let mats: Vec<BitVec> = views.iter().map(|v| v.to_bitvec()).collect();
        let mat_refs: Vec<&BitVec> = mats.iter().collect();
        assert_eq!(
            kernels::or_all_with(UNROLLED, &views),
            kernels::or_all_with(UNROLLED, &mat_refs),
            "view vs materialized {lo}..{hi}"
        );
    }
}

/// Full-evaluator bit-identity: foundsets **and** `EvalStats` op counts
/// must not move with the dispatch tier, for whole-bitmap and segmented
/// execution alike. This is the one test that touches the process-global
/// dispatch ([`KernelDispatch::force`]); the env-wiring check lives here
/// too so the global is only mutated from a single test.
#[test]
fn eval_stats_and_foundsets_identical_across_tiers() {
    // The process-wide tier must honor BINDEX_KERNEL when it is set and
    // valid (the CI kernel-matrix runs this binary under both values).
    let initial = KernelDispatch::active();
    if let Ok(raw) = std::env::var(kernels::KERNEL_ENV) {
        if let Some(want) = KernelDispatch::parse(&raw) {
            assert_eq!(
                initial,
                want,
                "active tier must follow {}={raw}",
                kernels::KERNEL_ENV
            );
        }
    }

    let col = gen::uniform(3000, 36, 5);
    let mut per_tier = Vec::new();
    for dispatch in [SCALAR, UNROLLED] {
        dispatch.force();
        let mut runs = Vec::new();
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let idx = BitmapIndex::build(
                &col,
                IndexSpec::new(Base::from_msb(&[6, 6]).unwrap(), encoding),
            )
            .unwrap();
            for q in full_space(36) {
                let mut source = idx.source();
                let mut ctx = bindex::core::ExecContext::new(&mut source);
                let found = evaluate_in(&mut ctx, q, Algorithm::Auto).unwrap();
                let stats = ctx.take_stats();
                let seg_found = evaluate_segmented_in(&mut ctx, q, Algorithm::Auto, 512).unwrap();
                let seg_stats = ctx.take_stats();
                runs.push((q, found, stats, seg_found, seg_stats));
            }
        }
        per_tier.push(runs);
    }
    initial.force(); // restore whatever the environment chose

    let (scalar_runs, unrolled_runs) = (&per_tier[0], &per_tier[1]);
    assert_eq!(scalar_runs.len(), unrolled_runs.len());
    for (s, u) in scalar_runs.iter().zip(unrolled_runs) {
        assert_eq!(s.0, u.0);
        assert_eq!(s.1, u.1, "whole foundset {}", s.0);
        assert_eq!(s.2, u.2, "whole EvalStats {}", s.0);
        assert_eq!(s.3, u.3, "segmented foundset {}", s.0);
        assert_eq!(s.4, u.4, "segmented EvalStats {}", s.0);
    }
}
