//! Selection predicates and query workloads.
//!
//! The paper's time metric averages over the uniform query space
//! `Q = { A op v : op ∈ {<, ≤, >, ≥, =, ≠}, 0 ≤ v < C }` (Section 4);
//! Section 9's compression experiments use the restricted space
//! `{ A op v : op ∈ {≤, =} }`. Both are provided, plus seeded random
//! workload sampling for wall-clock benchmarks.

use crate::rng::Rng;

/// The six comparison operators of a selection predicate `A op v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `A < v`
    Lt,
    /// `A <= v`
    Le,
    /// `A > v`
    Gt,
    /// `A >= v`
    Ge,
    /// `A = v`
    Eq,
    /// `A != v`
    Ne,
}

impl Op {
    /// All six operators, in the paper's order.
    pub const ALL: [Op; 6] = [Op::Lt, Op::Le, Op::Gt, Op::Ge, Op::Eq, Op::Ne];

    /// The operators used by Section 9's compression study.
    pub const COMPRESSION_STUDY: [Op; 2] = [Op::Le, Op::Eq];

    /// `true` for `<, ≤, >, ≥` (a *range* predicate), `false` for `=, ≠`.
    pub fn is_range(self) -> bool {
        !matches!(self, Op::Eq | Op::Ne)
    }

    /// Applies the comparison to a concrete value.
    #[inline]
    pub fn matches(self, value: u32, constant: u32) -> bool {
        match self {
            Op::Lt => value < constant,
            Op::Le => value <= constant,
            Op::Gt => value > constant,
            Op::Ge => value >= constant,
            Op::Eq => value == constant,
            Op::Ne => value != constant,
        }
    }

    /// SQL-ish symbol, for experiment output.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Eq => "=",
            Op::Ne => "!=",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A selection predicate `A op constant` on the indexed attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SelectionQuery {
    /// Comparison operator.
    pub op: Op,
    /// Predicate constant `v`, in `0 .. C`.
    pub constant: u32,
}

impl SelectionQuery {
    /// Creates a query.
    pub fn new(op: Op, constant: u32) -> Self {
        Self { op, constant }
    }

    /// Row-level truth of the predicate.
    #[inline]
    pub fn matches(&self, value: u32) -> bool {
        self.op.matches(value, self.constant)
    }

    /// Selectivity factor against a value histogram (fraction of rows).
    pub fn selectivity(&self, histogram: &[usize]) -> f64 {
        let total: usize = histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let hit: usize = histogram
            .iter()
            .enumerate()
            .filter(|(v, _)| self.matches(*v as u32))
            .map(|(_, &c)| c)
            .sum();
        hit as f64 / total as f64
    }
}

impl std::fmt::Display for SelectionQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A {} {}", self.op, self.constant)
    }
}

/// The full uniform query space `Q`: all 6·C queries (Section 4).
pub fn full_space(cardinality: u32) -> Vec<SelectionQuery> {
    let mut out = Vec::with_capacity(6 * cardinality as usize);
    for op in Op::ALL {
        for v in 0..cardinality {
            out.push(SelectionQuery::new(op, v));
        }
    }
    out
}

/// Section 9's restricted space: `{≤, =} × [0, C)`, 2·C queries.
pub fn compression_study_space(cardinality: u32) -> Vec<SelectionQuery> {
    let mut out = Vec::with_capacity(2 * cardinality as usize);
    for op in Op::COMPRESSION_STUDY {
        for v in 0..cardinality {
            out.push(SelectionQuery::new(op, v));
        }
    }
    out
}

/// A seeded random sample of `n` queries from the full space.
pub fn sample(cardinality: u32, n: usize, seed: u64) -> Vec<SelectionQuery> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let op = Op::ALL[rng.below_usize(Op::ALL.len())];
            SelectionQuery::new(op, rng.below_u32(cardinality))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_semantics() {
        assert!(Op::Lt.matches(1, 2) && !Op::Lt.matches(2, 2));
        assert!(Op::Le.matches(2, 2) && !Op::Le.matches(3, 2));
        assert!(Op::Gt.matches(3, 2) && !Op::Gt.matches(2, 2));
        assert!(Op::Ge.matches(2, 2) && !Op::Ge.matches(1, 2));
        assert!(Op::Eq.matches(2, 2) && !Op::Eq.matches(1, 2));
        assert!(Op::Ne.matches(1, 2) && !Op::Ne.matches(2, 2));
    }

    #[test]
    fn range_classification() {
        assert!(Op::Lt.is_range() && Op::Ge.is_range());
        assert!(!Op::Eq.is_range() && !Op::Ne.is_range());
    }

    #[test]
    fn full_space_size_and_coverage() {
        let q = full_space(10);
        assert_eq!(q.len(), 60);
        assert!(q.iter().any(|s| s.op == Op::Ne && s.constant == 9));
    }

    #[test]
    fn compression_space() {
        let q = compression_study_space(50);
        assert_eq!(q.len(), 100);
        assert!(q.iter().all(|s| matches!(s.op, Op::Le | Op::Eq)));
    }

    #[test]
    fn selectivity_on_uniform_histogram() {
        let h = vec![10usize; 10]; // C=10, uniform
        let q = SelectionQuery::new(Op::Le, 4);
        assert!((q.selectivity(&h) - 0.5).abs() < 1e-12);
        let q = SelectionQuery::new(Op::Ne, 0);
        assert!((q.selectivity(&h) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn sample_is_seeded() {
        assert_eq!(sample(100, 50, 3), sample(100, 50, 3));
        assert_ne!(sample(100, 50, 3), sample(100, 50, 4));
        assert!(sample(100, 50, 3).iter().all(|q| q.constant < 100));
    }
}
