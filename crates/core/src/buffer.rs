//! Bitmap buffering (Section 10): optimal buffer allocation across index
//! components, and the time-optimal index under a buffer budget.
//!
//! A buffer assignment `<f_n, …, f_1>` keeps `f_i` bitmaps of component
//! `i` memory-resident (`0 ≤ f_i ≤ b_i − 1` for range encoding). Under the
//! uniform-reference model the expected scans become Eq. 5
//! ([`crate::cost::time_range_buffered_paper`]); each additional buffered
//! bitmap in component `i` reduces expected scans by a constant marginal
//! gain — `2/b_i` for `i ≥ 2` and `4/(3 b_1)` for component 1 — so the
//! greedy highest-gain-first policy is optimal. This is the content of the
//! paper's Theorem 10.1 (its priority classes `X` / `X̄` with the
//! `b_i` vs `(3/2) b_1` threshold are exactly the ordering by marginal
//! gain).
//!
//! Theorem 10.2: with `m > 0` buffered bitmaps, the time-optimal index is
//! the `m`-component `<2, …, 2, ⌈C/2^{m−1}⌉>` index — the binary
//! components' single bitmaps are all buffered and effectively free.

use crate::base::Base;
use crate::cost::time_range_buffered_paper;
use crate::error::Result;
use crate::exec::BufferSet;

use crate::design::space_opt::max_components;
use crate::design::time_opt::time_optimal;

/// Optimal buffer assignment of `m` bitmaps over a range-encoded index
/// (Theorem 10.1 restated as greedy-by-marginal-gain). Returns `f`
/// least-significant-component first; `m` beyond the total stored bitmaps
/// is left unused.
pub fn optimal_assignment(base: &Base, m: u64) -> Vec<u32> {
    let n = base.n_components();
    let mut f = vec![0u32; n];
    // Marginal gain of one more buffered bitmap per component (constant).
    let gain = |i: usize| -> f64 {
        let b = f64::from(base.component(i));
        if i == 1 {
            4.0 / (3.0 * b)
        } else {
            2.0 / b
        }
    };
    let mut order: Vec<usize> = (1..=n).collect();
    order.sort_by(|&a, &b| gain(b).partial_cmp(&gain(a)).expect("finite gains"));
    let mut remaining = m;
    for i in order {
        if remaining == 0 {
            break;
        }
        let capacity = u64::from(base.component(i) - 1); // stored bitmaps
        let take = capacity.min(remaining);
        f[i - 1] = take as u32;
        remaining -= take;
    }
    f
}

/// Materializes an assignment as a [`BufferSet`] holding the first `f_i`
/// stored slots of each component (which slots are resident does not
/// change the expectation — every stored slot of a component is referenced
/// with equal probability).
pub fn buffer_set(f: &[u32]) -> BufferSet {
    let mut set = BufferSet::empty();
    for (i, &fi) in f.iter().enumerate() {
        for slot in 0..fi {
            set.insert(i + 1, slot as usize);
        }
    }
    set
}

/// Expected scans of `base` with the *optimal* `m`-bitmap assignment.
pub fn buffered_time(base: &Base, m: u64) -> f64 {
    let f = optimal_assignment(base, m);
    time_range_buffered_paper(base, &f)
}

/// Theorem 10.2: the time-optimal index when `m` bitmaps can be buffered.
/// Returns the base together with its optimal assignment. `m = 0` reduces
/// to the unbuffered time optimum `<C>`.
pub fn time_optimal_buffered(c: u32, m: u64) -> Result<(Base, Vec<u32>)> {
    // Theorem 10.2's base is <2,…,2, ⌈C/2^{m−1}⌉> with m components,
    // clamped to the largest well-defined component count.
    let n = if m == 0 {
        1
    } else {
        (m as usize).min(max_components(c))
    };
    let base = time_optimal(c, n)?;
    let f = optimal_assignment(&base, m);
    Ok((base, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::expected_scans_buffered;
    use crate::design::range_space;

    fn b(msb: &[u32]) -> Base {
        Base::from_msb(msb).unwrap()
    }

    #[test]
    fn greedy_prefers_small_high_components() {
        // base <3, 4, 100>: gains: comp3 (b=3) 2/3, comp2 (b=4) 1/2,
        // comp1 (b=100) 4/300. m = 3: buffer comp3's 2 bitmaps + 1 of comp2.
        let base = b(&[3, 4, 100]);
        assert_eq!(optimal_assignment(&base, 3), vec![0, 1, 2]);
    }

    #[test]
    fn component1_priority_threshold() {
        // Theorem 10.1: a component i >= 2 outranks component 1 iff
        // b_i < (3/2) b_1. base <6, 4>: gain comp2 = 2/6 = 1/3 = gain
        // comp1 = 4/12; tie. base <5, 4>: comp2 gain 0.4 > comp1 1/3.
        let base = b(&[5, 4]);
        assert_eq!(optimal_assignment(&base, 1), vec![0, 1]);
        // base <7, 4>: comp2 gain 2/7 < comp1 gain 1/3: buffer comp1 first.
        let base = b(&[7, 4]);
        assert_eq!(optimal_assignment(&base, 1), vec![1, 0]);
    }

    #[test]
    fn greedy_beats_all_assignments_exhaustively() {
        let base = b(&[3, 4, 6]); // product 72
        let c = base.product() as u32;
        let caps: Vec<u32> = base.as_lsb_slice().iter().map(|&x| x - 1).collect();
        for m in 0..=u64::from(caps.iter().sum::<u32>()) {
            let greedy = optimal_assignment(&base, m);
            let greedy_time = expected_scans_buffered(&base, &greedy, c);
            // enumerate all assignments with sum m
            for f1 in 0..=caps[0] {
                for f2 in 0..=caps[1] {
                    for f3 in 0..=caps[2] {
                        if u64::from(f1 + f2 + f3) != m {
                            continue;
                        }
                        let t = expected_scans_buffered(&base, &[f1, f2, f3], c);
                        assert!(
                            greedy_time <= t + 1e-9,
                            "m={m}: greedy {greedy:?} ({greedy_time}) vs [{f1},{f2},{f3}] ({t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_10_2_shape() {
        let (base, f) = time_optimal_buffered(1000, 4).unwrap();
        assert_eq!(base.to_msb_vec(), vec![2, 2, 2, 125]);
        // three binary components fully buffered + 1 slot of component 1
        assert_eq!(f, vec![1, 1, 1, 1]);
        let (base0, _) = time_optimal_buffered(1000, 0).unwrap();
        assert_eq!(base0.to_msb_vec(), vec![1000]);
    }

    #[test]
    fn theorem_10_2_beats_alternatives() {
        let c = 1000u32;
        for m in 1u64..=8 {
            let (base, f) = time_optimal_buffered(c, m).unwrap();
            let t = time_range_buffered_paper(&base, &f);
            // Compare against every tight base with optimal buffering.
            for other in crate::base::tight_bases(c, usize::MAX) {
                let to = buffered_time(&other, m);
                assert!(t <= to + 1e-9, "m={m}: {base} ({t}) vs {other} ({to})");
            }
        }
    }

    #[test]
    fn buffering_all_bitmaps_is_free() {
        let base = b(&[3, 4]);
        let m = range_space(&base);
        assert!(buffered_time(&base, m).abs() < 1e-12);
        assert!(buffered_time(&base, m + 10).abs() < 1e-12); // surplus ignored
    }

    #[test]
    fn buffer_set_materialization() {
        let set = buffer_set(&[2, 0, 1]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(1, 0) && set.contains(1, 1) && set.contains(3, 0));
        assert!(!set.contains(2, 0));
    }
}
