//! A bitmap-granularity buffer pool (Section 10's unit of buffering),
//! with an LRU eviction policy and hit/miss accounting.
//!
//! The analytic side of Section 10 lives in `bindex-core::buffer`; this
//! pool is the runtime counterpart used by the storage-backed experiments:
//! it caches decompressed bitmaps keyed by `(component, slot)` so that a
//! buffered bitmap costs no file read.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

use bindex_bitvec::BitVec;

/// Buffer pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from the pool.
    pub hits: u64,
    /// Fetches that had to go to storage.
    pub misses: u64,
    /// Bitmaps evicted.
    pub evictions: u64,
}

struct Inner {
    /// (component, slot) -> (bitmap, last-use tick).
    entries: HashMap<(usize, usize), (BitVec, u64)>,
    tick: u64,
    stats: PoolStats,
}

/// LRU cache of up to `capacity` bitmaps. Thread-safe, matching the
/// shared buffer pool of a database server.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Locks the pool state, recovering from poisoning: the cache holds no
    /// invariants a panicking reader could break mid-update, so a poisoned
    /// pool keeps serving rather than cascading the panic.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a pool holding at most `capacity` bitmaps (`m` in the
    /// paper's notation). Zero capacity disables caching.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Maximum resident bitmaps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetches the bitmap for `key`, loading it with `load` on a miss.
    pub fn get_or_load<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<BitVec, E>,
    ) -> Result<BitVec, E> {
        if self.capacity == 0 {
            let mut inner = self.lock();
            inner.stats.misses += 1;
            drop(inner);
            return load();
        }
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((bm, last)) = inner.entries.get_mut(&key) {
                *last = tick;
                let out = bm.clone();
                inner.stats.hits += 1;
                return Ok(out);
            }
            inner.stats.misses += 1;
        }
        // Load outside the lock; racing loads are benign (last write wins).
        let bm = load()?;
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
            if let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, (_, last))| *last) {
                inner.entries.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.entries.insert(key, (bm.clone(), tick));
        Ok(bm)
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    /// Number of bitmaps currently resident.
    pub fn resident(&self) -> usize {
        self.lock().entries.len()
    }

    /// Empties the pool and resets statistics.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.stats = PoolStats::default();
    }
}

/// A sharded bitmap cache for the parallel read path: `n_shards`
/// independent [`BufferPool`]s, with each `(component, slot)` key pinned
/// to one shard, so concurrent readers contend only when they touch the
/// same shard rather than on one global lock.
pub struct ShardedPool {
    shards: Vec<BufferPool>,
}

impl ShardedPool {
    /// Creates a pool of `capacity` bitmaps total, spread over `n_shards`
    /// shards (each shard holds `⌈capacity / n_shards⌉` at most; zero
    /// capacity disables caching).
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(capacity: usize, n_shards: usize) -> Self {
        assert!(n_shards > 0, "ShardedPool needs at least one shard");
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(n_shards)
        };
        Self {
            shards: (0..n_shards).map(|_| BufferPool::new(per_shard)).collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(BufferPool::capacity).sum()
    }

    fn shard_of(&self, key: (usize, usize)) -> &BufferPool {
        // Fibonacci hash of the key: cheap and spreads the sequential
        // slot numbers of one component across shards.
        let h = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((key.1 as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Fetches the bitmap for `key` from its shard, loading on a miss.
    pub fn get_or_load<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<BitVec, E>,
    ) -> Result<BitVec, E> {
        self.shard_of(key).get_or_load(key, load)
    }

    /// Aggregated statistics across all shards.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            let p = s.stats();
            total.hits += p.hits;
            total.misses += p.misses;
            total.evictions += p.evictions;
        }
        total
    }

    /// Total resident bitmaps across all shards.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(BufferPool::resident).sum()
    }

    /// Empties every shard and resets statistics.
    pub fn clear(&self) {
        for s in &self.shards {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(tag: usize) -> BitVec {
        BitVec::from_fn(64, |i| (i + tag).is_multiple_of(3))
    }

    #[test]
    fn hit_after_load() {
        let pool = BufferPool::new(4);
        let a = pool.get_or_load::<()>((1, 0), || Ok(bm(1))).unwrap();
        let b = pool
            .get_or_load::<()>((1, 0), || panic!("must hit"))
            .unwrap();
        assert_eq!(a, b);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let pool = BufferPool::new(2);
        pool.get_or_load::<()>((1, 0), || Ok(bm(0))).unwrap();
        pool.get_or_load::<()>((1, 1), || Ok(bm(1))).unwrap();
        pool.get_or_load::<()>((1, 0), || panic!("hot")).unwrap(); // refresh (1,0)
        pool.get_or_load::<()>((1, 2), || Ok(bm(2))).unwrap(); // evicts (1,1)
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.stats().evictions, 1);
        // (1,1) must reload; (1,0) must still hit.
        pool.get_or_load::<()>((1, 0), || panic!("still hot"))
            .unwrap();
        let mut reloaded = false;
        pool.get_or_load::<()>((1, 1), || {
            reloaded = true;
            Ok(bm(1))
        })
        .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn zero_capacity_never_caches() {
        let pool = BufferPool::new(0);
        for _ in 0..3 {
            pool.get_or_load::<()>((1, 0), || Ok(bm(0))).unwrap();
        }
        assert_eq!(pool.stats().misses, 3);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn load_errors_propagate() {
        let pool = BufferPool::new(2);
        let r = pool.get_or_load::<&str>((9, 9), || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn clear_resets() {
        let pool = BufferPool::new(2);
        pool.get_or_load::<()>((1, 0), || Ok(bm(0))).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn sharded_pool_caches_and_aggregates() {
        let pool = ShardedPool::new(16, 4);
        assert_eq!(pool.n_shards(), 4);
        assert_eq!(pool.capacity(), 16);
        for slot in 0..8 {
            pool.get_or_load::<()>((1, slot), || Ok(bm(slot))).unwrap();
        }
        for slot in 0..8 {
            let got = pool
                .get_or_load::<()>((1, slot), || panic!("must hit"))
                .unwrap();
            assert_eq!(got, bm(slot));
        }
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (8, 8));
        assert_eq!(pool.resident(), 8);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn sharded_pool_zero_capacity_never_caches() {
        let pool = ShardedPool::new(0, 4);
        for _ in 0..3 {
            pool.get_or_load::<()>((2, 1), || Ok(bm(1))).unwrap();
        }
        assert_eq!(pool.stats().misses, 3);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn sharded_pool_is_shareable_across_threads() {
        let pool = ShardedPool::new(64, 8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    for slot in 0..16 {
                        pool.get_or_load::<()>((t, slot), || Ok(bm(slot))).unwrap();
                        pool.get_or_load::<()>((t, slot), || Ok(bm(slot))).unwrap();
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 128);
        assert!(s.hits >= 64, "second touch of each key must hit");
    }
}
