//! # bindex-core
//!
//! A full implementation of the bitmap-index design framework of
//! **"Bitmap Index Design and Evaluation"** (Chan & Ioannidis, SIGMOD 1998)
//! for selection queries `A op v`.
//!
//! The design space has two orthogonal dimensions:
//!
//! 1. **Attribute value decomposition** — [`Base`]: values are written in a
//!    mixed-radix number system `<b_n, …, b_1>`, one index *component* per
//!    digit.
//! 2. **Bitmap encoding** — [`Encoding`]: each component is either
//!    equality-encoded (Value-List style) or range-encoded (Bit-Sliced
//!    style).
//!
//! On top of the [`BitmapIndex`] built from a
//! [`Column`](bindex_relation::Column), the crate provides:
//!
//! * the evaluation algorithms of Section 3 ([`eval`]): RangeEval,
//!   **RangeEval-Opt** (the paper's improvement), and the equality-encoded
//!   evaluator, all with exact scan/operation accounting ([`EvalStats`]);
//! * the analytic cost model of Sections 4–5 ([`cost`]);
//! * the optimal-design algorithms of Sections 6–8 ([`design`]):
//!   space-optimal, time-optimal, the knee (Theorem 7.1), and the
//!   space-constrained optimum (`TimeOptAlg` / `TimeOptHeur`);
//! * the buffering analysis of Section 10 ([`buffer`]).
//!
//! ## Quick start
//!
//! ```
//! use bindex_core::{Base, BitmapIndex, Encoding, IndexSpec};
//! use bindex_core::eval::{evaluate, Algorithm};
//! use bindex_relation::query::{Op, SelectionQuery};
//! use bindex_relation::Column;
//!
//! // A 12-row attribute with cardinality 9, decomposed base-<3,3>,
//! // range encoded (4 bitmaps instead of the Value-List index's 9).
//! let column = Column::new(vec![3, 2, 1, 2, 8, 2, 2, 0, 7, 5, 6, 4], 9);
//! let spec = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), Encoding::Range);
//! let index = BitmapIndex::build(&column, spec).unwrap();
//!
//! let query = SelectionQuery::new(Op::Le, 4);
//! let (found, stats) = evaluate(&mut index.source(), query, Algorithm::Auto).unwrap();
//! assert_eq!(found.count_ones(), 8);
//! assert!(stats.scans <= 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod base;
pub mod buffer;
pub mod cost;
pub mod delta;
pub mod design;
pub mod encoding;
pub mod error;
pub mod eval;
pub mod exec;
pub mod index;
pub mod reorder;

pub use base::Base;
pub use bindex_compress::Repr;
pub use delta::DeltaOverlay;
pub use encoding::{Encoding, IndexSpec};
pub use error::{Error, Result};
pub use eval::Algorithm;
pub use exec::{
    BufferSet, Deadline, EvalStats, ExecContext, RecoveryPolicy, DEFAULT_SEGMENT_BITS,
    DEFAULT_WAH_CROSSOVER,
};
pub use index::{rebuild_slot, BitmapIndex, BitmapSource, MemorySource};
pub use reorder::{build_reordered, BuildOptions, RowOrder, RowPermutation};
