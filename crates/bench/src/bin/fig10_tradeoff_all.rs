//! **Figure 10** — Space–time tradeoff of three classes of range-encoded
//! indexes for C = 1000 (pass a different C as the first argument): the
//! class of **space-optimal** indexes, the class of **time-optimal**
//! indexes (one point per component count `n = 1 … ⌈log2 C⌉`), and the
//! entire class of (tight) indexes.
//!
//! The experiment verifies the paper's observation that the space-optimal
//! graph is a good approximation of the full graph: every space-optimal
//! point lies on the Pareto frontier of all indexes.

use bindex::core::cost::time_range_paper;
use bindex::core::design::frontier::{all_points, pareto};
use bindex::core::design::range_space;
use bindex::core::design::space_opt::{max_components, space_optimal_best_time};
use bindex::core::design::time_opt::time_optimal;
use bindex::Encoding;
use bindex_bench::{f3, print_table, Csv};

fn main() {
    let c: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);

    let everything = all_points(c, Encoding::Range, usize::MAX);
    let frontier = pareto(everything.clone());

    let mut csv = Csv::create(
        &format!("fig10_tradeoff_c{c}"),
        &[
            "series",
            "n_components",
            "base",
            "space_bitmaps",
            "time_scans",
        ],
    )
    .unwrap();
    for p in &everything {
        csv.row(&[
            &"all",
            &p.base.n_components(),
            &p.base,
            &p.space,
            &f3(p.time),
        ])
        .unwrap();
    }

    let mut rows = Vec::new();
    let mut on_frontier = 0usize;
    for n in 1..=max_components(c) {
        let so = space_optimal_best_time(c, n).unwrap();
        let to = time_optimal(c, n).unwrap();
        let (so_s, so_t) = (range_space(&so), time_range_paper(&so));
        let (to_s, to_t) = (range_space(&to), time_range_paper(&to));
        csv.row(&[&"space_optimal", &n, &so, &so_s, &f3(so_t)])
            .unwrap();
        csv.row(&[&"time_optimal", &n, &to, &to_s, &f3(to_t)])
            .unwrap();
        rows.push(vec![
            n.to_string(),
            so.to_string(),
            so_s.to_string(),
            f3(so_t),
            to.to_string(),
            to_s.to_string(),
            f3(to_t),
        ]);
        if frontier
            .iter()
            .any(|p| p.space == so_s && (p.time - so_t).abs() < 1e-9)
        {
            on_frontier += 1;
        }
    }

    print_table(
        &format!("Figure 10: space/time-optimal index classes, C = {c}"),
        &[
            "n",
            "space-opt base",
            "space",
            "time",
            "time-opt base",
            "space",
            "time",
        ],
        &rows,
    );
    println!(
        "\n{} tight indexes enumerated; Pareto frontier has {} points.",
        everything.len(),
        frontier.len()
    );
    println!(
        "{on_frontier}/{} space-optimal points lie on the all-index Pareto frontier \
         (the paper's 'good approximation' observation).",
        max_components(c)
    );
    println!("CSV: {}", csv.path().display());
}
