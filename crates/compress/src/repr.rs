//! The execution representation of a fetched bitmap: dense words or WAH.
//!
//! The storage layer's v3 format keeps each slot in whichever form is
//! smaller, and the evaluators operate on whichever form they were handed
//! — staying in the compressed domain while operands are sparse and
//! materializing once density crosses the measured threshold. [`Repr`] is
//! the currency both layers trade in: a cheaply clonable handle
//! (`Arc`-backed, like the executor's fetch cache) that knows its length,
//! density, and heap footprint in either form.

use std::sync::Arc;

use bindex_bitvec::BitVec;

use crate::wah::WahBitmap;

/// A bitmap in one of the two execution representations.
#[derive(Debug, Clone)]
pub enum Repr {
    /// Dense, uncompressed 64-bit words.
    Literal(Arc<BitVec>),
    /// WAH-compressed form, operable without decompression.
    Wah(Arc<WahBitmap>),
}

impl Repr {
    /// Wraps a dense bitmap.
    pub fn literal(bits: BitVec) -> Self {
        Repr::Literal(Arc::new(bits))
    }

    /// Wraps a WAH-compressed bitmap.
    pub fn wah(wah: WahBitmap) -> Self {
        Repr::Wah(Arc::new(wah))
    }

    /// Number of bits represented (identical in either form).
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Repr::Literal(b) => b.len(),
            Repr::Wah(w) => w.len(),
        }
    }

    /// `true` if the bitmap holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the bitmap is held in compressed form.
    #[inline]
    pub fn is_compressed(&self) -> bool {
        matches!(self, Repr::Wah(_))
    }

    /// Number of set bits, computed without changing representation.
    pub fn count_ones(&self) -> usize {
        match self {
            Repr::Literal(b) => b.count_ones(),
            Repr::Wah(w) => w.count_ones(),
        }
    }

    /// Fraction of set bits (0 for an empty bitmap).
    pub fn density(&self) -> f64 {
        let len = self.len();
        if len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / len as f64
        }
    }

    /// Bytes of heap this representation actually occupies — the quantity
    /// a byte-accounted buffer pool charges: dense words for a literal,
    /// compressed words for WAH.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Repr::Literal(b) => b.words().len() * 8,
            Repr::Wah(w) => w.compressed_bytes(),
        }
    }

    /// The dense form: a cheap handle clone for a literal, one
    /// decompression for WAH. The receiver is unchanged — callers that
    /// want to *stay* materialized should cache the result.
    pub fn to_bitvec(&self) -> Arc<BitVec> {
        match self {
            Repr::Literal(b) => Arc::clone(b),
            Repr::Wah(w) => Arc::new(w.to_bitvec()),
        }
    }
}

impl From<BitVec> for Repr {
    fn from(bits: BitVec) -> Self {
        Repr::literal(bits)
    }
}

impl From<WahBitmap> for Repr {
    fn from(wah: WahBitmap) -> Self {
        Repr::wah(wah)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, step: usize) -> BitVec {
        BitVec::from_fn(len, |i| i % step == 0)
    }

    #[test]
    fn both_forms_agree() {
        let bits = sample(10_000, 97);
        let lit = Repr::literal(bits.clone());
        let wah = Repr::wah(WahBitmap::from_bitvec(&bits));
        assert_eq!(lit.len(), wah.len());
        assert_eq!(lit.count_ones(), wah.count_ones());
        assert_eq!(*lit.to_bitvec(), bits);
        assert_eq!(*wah.to_bitvec(), bits);
        assert!(!lit.is_compressed());
        assert!(wah.is_compressed());
        assert!((lit.density() - wah.density()).abs() < 1e-12);
    }

    #[test]
    fn heap_bytes_reflect_representation() {
        let bits = sample(100_000, 5000); // very sparse
        let lit = Repr::literal(bits.clone());
        let wah = Repr::wah(WahBitmap::from_bitvec(&bits));
        assert_eq!(lit.heap_bytes(), bits.words().len() * 8);
        assert!(wah.heap_bytes() * 10 < lit.heap_bytes());
    }

    #[test]
    fn empty_bitmap_density_zero() {
        assert_eq!(Repr::literal(BitVec::zeros(0)).density(), 0.0);
        assert!(Repr::literal(BitVec::zeros(0)).is_empty());
    }
}
