//! **Figure 16** — Effect of bitmap compression on (a) time-efficiency,
//! (b) space-efficiency, and (c) the space–time tradeoff, for data set 1
//! (`lineitem.l_quantity`, C = 50) under the BS, cBS and cCS schemes.
//!
//! Each space-optimal index with 1–6 components is laid out on disk in a
//! temporary directory; the average predicate evaluation time over the
//! Section 9 query space `{≤, =} × [0, C)` — file reads + decompression +
//! bitmap operations — is measured with real I/O, alongside total stored
//! bytes and the model-level metrics (bytes read, bytes decompressed)
//! that determine the paper's ordering conclusions.

use bindex::compress::CodecKind;
use bindex::core::design::space_opt::space_optimal;
use bindex::core::eval::Algorithm;
use bindex::relation::{query, tpcd};
use bindex::storage::{DiskStore, StorageScheme, TempDir};
use bindex::stored::{persist_index, StorageSource};
use bindex::{BitmapIndex, Encoding, IndexSpec};
use bindex_bench::{average_wall_time, f2, print_table, Csv};

fn main() {
    let scale = tpcd::scale_from_env();
    let column = tpcd::lineitem_quantity(scale, 7);
    let c = column.cardinality();
    let queries = query::compression_study_space(c);
    let schemes: [(&str, StorageScheme, CodecKind); 3] = [
        ("BS", StorageScheme::BitmapLevel, CodecKind::None),
        ("cBS", StorageScheme::BitmapLevel, CodecKind::Deflate),
        ("cCS", StorageScheme::ComponentLevel, CodecKind::Deflate),
    ];

    let mut csv = Csv::create(
        "fig16_compression",
        &[
            "scheme",
            "n_components",
            "base",
            "space_mbytes",
            "avg_time_ms",
            "avg_bytes_read",
            "avg_bytes_decompressed",
        ],
    )
    .unwrap();

    let mut rows = Vec::new();
    for n in 1..=6usize {
        let base = space_optimal(c, n).unwrap();
        let spec = IndexSpec::new(base.clone(), Encoding::Range);
        let idx = BitmapIndex::build(&column, spec.clone()).unwrap();
        for (label, scheme, codec) in schemes {
            let tmp = TempDir::new("fig16").unwrap();
            let store = DiskStore::open(tmp.path()).unwrap();
            let mut stored = persist_index(&idx, store, scheme, codec).unwrap();
            let space_mb = stored.total_stored_bytes() as f64 / 1e6;
            let mut src = StorageSource::try_new(&mut stored, spec.clone()).unwrap();
            let secs = average_wall_time(&mut src, &queries, Algorithm::RangeEvalOpt);
            let io = stored.take_stats();
            let nq = queries.len() as u64;
            csv.row(&[
                &label,
                &n,
                &base,
                &f2(space_mb),
                &format!("{:.3}", secs * 1e3),
                &(io.bytes_read / nq),
                &(io.bytes_decompressed / nq),
            ])
            .unwrap();
            rows.push(vec![
                label.to_string(),
                n.to_string(),
                base.to_string(),
                f2(space_mb),
                format!("{:.3}", secs * 1e3),
                (io.bytes_read / nq).to_string(),
                (io.bytes_decompressed / nq).to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "Figure 16: BS / cBS / cCS on data set 1 (N = {}, C = {c})",
            column.len()
        ),
        &[
            "scheme",
            "n",
            "base",
            "space (MB)",
            "avg time (ms)",
            "bytes read/query",
            "bytes decompressed/query",
        ],
        &rows,
    );
    println!("\n(Paper: BS and cBS comparable in time and tradeoff, both far ahead of cCS,");
    println!(" whose time is dominated by decompressing every component file;");
    println!(" compression's space gain shrinks once an index is decomposed.)");
    println!("CSV: {}", csv.path().display());
}
