//! Extension experiment: compressed-domain query execution.
//!
//! Four measurements back the adaptive-materialization design:
//!
//! 1. **Kernel density sweep** — k-ary AND/OR on WAH-compressed operands
//!    vs decompress-then-operate (the cost the executor pays when it
//!    materializes), across densities 0.001–0.5.
//! 2. **Crossover calibration** — the same sweep also times the dense
//!    kernels on pre-materialized operands (the steady-state alternative),
//!    locating the density where staying compressed stops paying. That
//!    measured point justifies `DEFAULT_WAH_CROSSOVER`.
//! 3. **End-to-end** — full selection workloads through a version-3
//!    per-slot-coded store vs the all-literal layout, for a sparse
//!    (equality-encoded) and a dense (range-encoded) index.
//! 4. **Pool residency** — how many slots a byte-budgeted [`BufferPool`]
//!    keeps resident when the store serves WAH reprs instead of dense
//!    bitmaps.
//!
//! Emits `BENCH_compressed_exec.json` at the workspace root and the usual
//! CSV under `results/`. `--quick` shrinks everything for CI smoke runs.

use std::time::Instant;

use bindex::bitvec::kernels;
use bindex::compress::wah::{self, WahBitmap};
use bindex::compress::CodecKind;
use bindex::core::eval::{evaluate, Algorithm};
use bindex::core::DEFAULT_WAH_CROSSOVER;
use bindex::relation::query::full_space;
use bindex::relation::{gen, Column};
use bindex::storage::{BufferPool, MemStore, StorageScheme, StoredIndex};
use bindex::stored::{persist_index, persist_index_v3, StorageSource};
use bindex::{Base, BitVec, BitmapIndex, Encoding, IndexSpec};
use bindex_bench::{f2, print_table, results_dir, Csv, RunProvenance};

struct Config {
    bits: usize,
    densities: &'static [f64],
    kernel_reps: usize,
    rows: usize,
    cardinality: u32,
    workload_reps: usize,
}

const OPERANDS: usize = 4;

/// Bits per clustered run of ones. Bitmap-index slots inherit the value
/// clustering of the underlying column (sorted keys, time-correlated
/// attributes), which is the structure WAH's fill words exploit; uniform
/// single-bit sparsity is the adversarial case, exercised by the property
/// suite rather than timed here.
const CLUSTER_BITS: usize = 32;

/// Deterministic pseudo-random bitmap with roughly `density` ones, set in
/// runs of [`CLUSTER_BITS`].
fn random_bitmap(bits: usize, density: f64, seed: usize) -> BitVec {
    let threshold = (density * 1_000_000.0) as usize;
    BitVec::from_fn(bits, |i| {
        (i / CLUSTER_BITS)
            .wrapping_add(seed.wrapping_mul(0x9e37_79b9))
            .wrapping_mul(2_654_435_761)
            % 1_000_000
            < threshold
    })
}

/// Best-of-`reps` wall time of `f`, with a sink so the work is not
/// optimized away.
fn best_of(reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::MAX;
    let mut sink = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        sink ^= f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink < usize::MAX);
    best
}

struct SweepRow {
    density: f64,
    compressed_ratio: f64,
    wah_and: f64,
    decomp_and: f64,
    dense_and: f64,
    wah_or: f64,
    decomp_or: f64,
    dense_or: f64,
}

fn kernel_sweep(cfg: &Config) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &density in cfg.densities {
        let dense: Vec<BitVec> = (0..OPERANDS)
            .map(|s| random_bitmap(cfg.bits, density, s))
            .collect();
        let compressed: Vec<WahBitmap> = dense.iter().map(WahBitmap::from_bitvec).collect();
        let dense_refs: Vec<&BitVec> = dense.iter().collect();
        let wah_refs: Vec<&WahBitmap> = compressed.iter().collect();
        let literal_bytes = (cfg.bits.div_ceil(64) * 8 * OPERANDS) as f64;
        let wah_bytes: usize = compressed.iter().map(WahBitmap::compressed_bytes).sum();

        let wah_and = best_of(cfg.kernel_reps, || wah::and_all(&wah_refs).count_ones());
        let wah_or = best_of(cfg.kernel_reps, || wah::or_all(&wah_refs).count_ones());
        // What adaptive execution avoids: inflate every operand, then run
        // the dense kernel.
        let decomp_and = best_of(cfg.kernel_reps, || {
            let mats: Vec<BitVec> = compressed.iter().map(WahBitmap::to_bitvec).collect();
            let refs: Vec<&BitVec> = mats.iter().collect();
            kernels::and_all(&refs).count_ones()
        });
        let decomp_or = best_of(cfg.kernel_reps, || {
            let mats: Vec<BitVec> = compressed.iter().map(WahBitmap::to_bitvec).collect();
            let refs: Vec<&BitVec> = mats.iter().collect();
            kernels::or_all(&refs).count_ones()
        });
        // Steady state after materialization: operands already dense.
        let dense_and = best_of(cfg.kernel_reps, || {
            kernels::and_all(&dense_refs).count_ones()
        });
        let dense_or = best_of(cfg.kernel_reps, || {
            kernels::or_all(&dense_refs).count_ones()
        });

        rows.push(SweepRow {
            density,
            compressed_ratio: wah_bytes as f64 / literal_bytes,
            wah_and,
            decomp_and,
            dense_and,
            wah_or,
            decomp_or,
            dense_or,
        });
    }
    rows
}

/// First density where a compressed-domain kernel loses to
/// decompress-then-operate (`None` if it never loses). This is the
/// executor's actual alternative at fetch time — a fetched slot arrives
/// compressed, so the dense kernels cannot run without first paying the
/// decompression the `decomp_*` timings include. The `dense_*` columns
/// (operands already materialized) are reported for the steady-state
/// contrast but do not define the crossover.
fn measured_crossover(rows: &[SweepRow]) -> Option<f64> {
    rows.iter()
        .find(|r| r.wah_and > r.decomp_and || r.wah_or > r.decomp_or)
        .map(|r| r.density)
}

/// Best-of-`reps` seconds to answer the full query space against a stored
/// index (fresh source per rep; pool-less, so every rep pays storage I/O).
fn workload_seconds(
    stored: &mut StoredIndex<MemStore>,
    spec: &IndexSpec,
    cardinality: u32,
    reps: usize,
) -> f64 {
    let queries = full_space(cardinality);
    let mut best = f64::MAX;
    let mut sink = 0usize;
    for _ in 0..reps {
        let mut src = StorageSource::try_new(stored, spec.clone()).expect("spec matches");
        let start = Instant::now();
        for &q in &queries {
            let (found, _) = evaluate(&mut src, q, Algorithm::Auto).expect("evaluates");
            sink ^= found.count_ones();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(sink < usize::MAX);
    best
}

struct EndToEnd {
    label: &'static str,
    literal_s: f64,
    v3_s: f64,
}

impl EndToEnd {
    /// Positive = the v3 adaptive path is slower than all-literal.
    fn loss_pct(&self) -> f64 {
        (self.v3_s / self.literal_s - 1.0) * 100.0
    }
}

/// A sorted column: every equality slot is one contiguous run, the
/// best case for per-slot WAH coding (a clustered fact table).
fn clustered_column(rows: usize, cardinality: u32) -> Column {
    let values: Vec<u32> = (0..rows)
        .map(|i| (i as u64 * u64::from(cardinality) / rows as u64) as u32)
        .collect();
    Column::new(values, cardinality)
}

fn end_to_end(col: &Column, cfg: &Config, encoding: Encoding, label: &'static str) -> EndToEnd {
    let spec = IndexSpec::new(Base::single(cfg.cardinality).unwrap(), encoding);
    let idx = BitmapIndex::build(col, spec.clone()).unwrap();
    let mut literal = persist_index(
        &idx,
        MemStore::new(),
        StorageScheme::BitmapLevel,
        CodecKind::None,
    )
    .unwrap();
    let mut v3 = persist_index_v3(&idx, MemStore::new(), CodecKind::None).unwrap();
    let literal_s = workload_seconds(&mut literal, &spec, cfg.cardinality, cfg.workload_reps);
    let v3_s = workload_seconds(&mut v3, &spec, cfg.cardinality, cfg.workload_reps);
    EndToEnd {
        label,
        literal_s,
        v3_s,
    }
}

struct PoolResidency {
    byte_budget: usize,
    literal_resident: usize,
    v3_resident: usize,
}

/// Streams every slot of both stores through a byte-budgeted pool and
/// reports how many stayed resident.
fn pool_residency(col: &Column, cfg: &Config) -> PoolResidency {
    let spec = IndexSpec::new(Base::single(cfg.cardinality).unwrap(), Encoding::Equality);
    let idx = BitmapIndex::build(col, spec).unwrap();
    let mut literal = persist_index(
        &idx,
        MemStore::new(),
        StorageScheme::BitmapLevel,
        CodecKind::None,
    )
    .unwrap();
    let mut v3 = persist_index_v3(&idx, MemStore::new(), CodecKind::None).unwrap();
    // A budget of a quarter of the literal heap: the dense store must
    // evict, the compressed store should fit far more slots.
    let slot_bytes = cfg.rows.div_ceil(64) * 8;
    let byte_budget = slot_bytes * cfg.cardinality as usize / 4;

    let sweep = |stored: &mut StoredIndex<MemStore>| {
        let pool = BufferPool::with_byte_budget(byte_budget);
        let shape: Vec<usize> = stored
            .meta()
            .bitmaps_per_component
            .iter()
            .map(|&n| n as usize)
            .collect();
        for (c, &n_i) in shape.iter().enumerate() {
            for slot in 0..n_i {
                pool.get_or_load_repr((c + 1, slot), || stored.read_repr(c + 1, slot))
                    .expect("slot reads");
            }
        }
        pool.resident()
    };
    PoolResidency {
        byte_budget,
        literal_resident: sweep(&mut literal),
        v3_resident: sweep(&mut v3),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let provenance = RunProvenance::capture(1);
    let cfg = if quick {
        Config {
            bits: 1 << 18,
            densities: &[0.001, 0.01, 0.05, 0.5],
            kernel_reps: 10,
            rows: 20_000,
            cardinality: 20,
            workload_reps: 2,
        }
    } else {
        Config {
            bits: 1 << 21,
            densities: &[0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
            kernel_reps: 30,
            rows: 200_000,
            cardinality: 50,
            workload_reps: 3,
        }
    };

    // 1 + 2: kernels across densities, and the measured crossover.
    let sweep = kernel_sweep(&cfg);
    let mut table_rows = Vec::new();
    for r in &sweep {
        table_rows.push(vec![
            format!("{:.3}", r.density),
            format!("{:.3}", r.compressed_ratio),
            f2(r.decomp_and / r.wah_and),
            f2(r.decomp_or / r.wah_or),
            f2(r.dense_and / r.wah_and),
            f2(r.dense_or / r.wah_or),
        ]);
    }
    print_table(
        &format!("{OPERANDS}-way WAH kernels ({} bits)", cfg.bits),
        &[
            "density",
            "size ratio",
            "AND vs decomp",
            "OR vs decomp",
            "AND vs dense",
            "OR vs dense",
        ],
        &table_rows,
    );
    let crossover = measured_crossover(&sweep);
    println!(
        "  measured crossover: {} (executor default {DEFAULT_WAH_CROSSOVER})",
        crossover.map_or("beyond sweep".into(), |d| format!("{d:.3}")),
    );

    // 3: end-to-end stored-index workloads. The clustered column is the
    // win case (slots stored WAH, adaptive ops stay compressed); the
    // uniform column's slots fail the codec heuristic and stay literal,
    // pinning the no-regression bound; range encoding's dense prefix
    // slots are the high-density guard.
    let col = gen::uniform(cfg.rows, cfg.cardinality, 11);
    let clustered = clustered_column(cfg.rows, cfg.cardinality);
    let runs = [
        end_to_end(&clustered, &cfg, Encoding::Equality, "equality, clustered"),
        end_to_end(&col, &cfg, Encoding::Equality, "equality, uniform"),
        end_to_end(&col, &cfg, Encoding::Range, "range (dense slots)"),
    ];
    print_table(
        "end-to-end: v3 adaptive vs all-literal store",
        &["index", "literal s", "v3 s", "v3 loss %"],
        &runs
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    format!("{:.4}", r.literal_s),
                    format!("{:.4}", r.v3_s),
                    f2(r.loss_pct()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // 4: byte-budgeted pool residency (clustered column, where v3
    // actually stores slots compressed).
    let pool = pool_residency(&clustered, &cfg);
    print_table(
        "pool residency under one byte budget",
        &["store", "resident slots"],
        &[
            vec!["literal".into(), pool.literal_resident.to_string()],
            vec!["v3 compressed".into(), pool.v3_resident.to_string()],
        ],
    );
    println!("  (budget: {} bytes)", pool.byte_budget);

    // CSV: the kernel sweep.
    let mut csv = Csv::create(
        "ext_compressed_exec",
        &[
            "density",
            "compressed_ratio",
            "wah_and_s",
            "decomp_and_s",
            "dense_and_s",
            "wah_or_s",
            "decomp_or_s",
            "dense_or_s",
        ],
    )
    .expect("csv");
    for r in &sweep {
        csv.row(&[
            &format!("{:.3}", r.density) as &dyn std::fmt::Display,
            &format!("{:.4}", r.compressed_ratio),
            &format!("{:.6}", r.wah_and),
            &format!("{:.6}", r.decomp_and),
            &format!("{:.6}", r.dense_and),
            &format!("{:.6}", r.wah_or),
            &format!("{:.6}", r.decomp_or),
            &format!("{:.6}", r.dense_or),
        ])
        .expect("row");
    }
    println!("\nCSV: {}", csv.path().display());

    // Acceptance summary: sparse compressed ops must beat
    // decompress-then-operate comfortably; the adaptive path must never
    // lose meaningfully at high density.
    let sparse_ok = sweep
        .iter()
        .filter(|r| r.density <= 0.01)
        .all(|r| r.decomp_and / r.wah_and >= 1.5 && r.decomp_or / r.wah_or >= 1.5);
    let dense_loss = runs[1].loss_pct().max(runs[2].loss_pct());
    let adaptive_ok = dense_loss <= 5.0;
    println!("sparse (<=1%) compressed speedup >= 1.5x: {sparse_ok}");
    println!("adaptive loss at high density <= 5%: {adaptive_ok} ({dense_loss:.2}%)");

    // Hand-rolled JSON (no serde in the dependency set).
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|r| {
            format!(
                "    {{\"density\": {:.3}, \"compressed_ratio\": {:.4}, \
                 \"wah_and_seconds\": {:.6}, \"decompress_and_seconds\": {:.6}, \
                 \"dense_and_seconds\": {:.6}, \"and_speedup_vs_decompress\": {:.3}, \
                 \"wah_or_seconds\": {:.6}, \"decompress_or_seconds\": {:.6}, \
                 \"dense_or_seconds\": {:.6}, \"or_speedup_vs_decompress\": {:.3}}}",
                r.density,
                r.compressed_ratio,
                r.wah_and,
                r.decomp_and,
                r.dense_and,
                r.decomp_and / r.wah_and,
                r.wah_or,
                r.decomp_or,
                r.dense_or,
                r.decomp_or / r.wah_or,
            )
        })
        .collect();
    let end_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"index\": \"{}\", \"literal_seconds\": {:.6}, \
                 \"v3_seconds\": {:.6}, \"loss_pct\": {:.2}}}",
                r.label,
                r.literal_s,
                r.v3_s,
                r.loss_pct(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"compressed_exec\",\n  \"quick\": {quick},\n  {prov},\n  \
         \"bits\": {bits},\n  \"operands\": {OPERANDS},\n  \
         \"default_crossover\": {DEFAULT_WAH_CROSSOVER},\n  \
         \"measured_crossover\": {crossover},\n  \"kernel_sweep\": [\n{sweep}\n  ],\n  \
         \"sparse_speedup_at_most_1pct_ge_1_5x\": {sparse_ok},\n  \
         \"end_to_end\": [\n{end}\n  ],\n  \
         \"adaptive_high_density_loss_le_5pct\": {adaptive_ok},\n  \
         \"pool\": {{\"byte_budget\": {budget}, \"literal_resident_slots\": {lit_res}, \
         \"v3_resident_slots\": {v3_res}}}\n}}\n",
        prov = provenance.json_fields(),
        bits = cfg.bits,
        crossover = crossover.map_or("null".into(), |d| format!("{d:.3}")),
        sweep = sweep_json.join(",\n"),
        end = end_json.join(",\n"),
        budget = pool.byte_budget,
        lit_res = pool.literal_resident,
        v3_res = pool.v3_resident,
    );
    let json_path = results_dir()
        .parent()
        .map(|p| p.join("BENCH_compressed_exec.json"))
        .expect("results dir has a parent");
    std::fs::write(&json_path, json).expect("write json");
    println!("JSON: {}", json_path.display());
}
