//! # bindex
//!
//! Umbrella crate for the **bitmap index design and evaluation** library —
//! a from-scratch Rust implementation of Chan & Ioannidis, *"Bitmap Index
//! Design and Evaluation"* (SIGMOD 1998).
//!
//! The pieces, re-exported here:
//!
//! * [`bitvec`] — dense bit vectors with logical operations and
//!   rank/select ([`bindex_bitvec`]);
//! * [`relation`] — columns, synthetic and TPC-D-like data generators,
//!   selection-query workloads ([`bindex_relation`]);
//! * [`core`] — the paper's design space: mixed-radix value decomposition,
//!   equality/range encodings, the RangeEval / RangeEval-Opt / equality
//!   evaluators, the analytic cost model, optimal index design, buffering
//!   analysis ([`bindex_core`]);
//! * [`compress`] — RLE / LZSS byte codecs and WAH compressed bitmaps
//!   ([`bindex_compress`]);
//! * [`storage`] — BS/CS/IS physical layouts, disk and memory stores,
//!   buffer pool ([`bindex_storage`]);
//! * [`engine`] — multi-attribute tables and conjunctive queries with the
//!   paper's P1/P2/P3 plan cost model ([`bindex_engine`]);
//! * [`stored`] — glue: evaluate queries directly against an index laid
//!   out in a byte store, with real I/O accounting.
//!
//! See the repository's `examples/` for runnable walkthroughs
//! (`quickstart`, `dss_dashboard`, `index_advisor`,
//! `compression_explorer`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bindex_bitvec as bitvec;
pub use bindex_compress as compress;
pub use bindex_core as core;
pub use bindex_engine as engine;
pub use bindex_relation as relation;
pub use bindex_storage as storage;

pub mod ingest;
pub mod stored;

pub use bindex_bitvec::{BitVec, IndexSummaries, KernelDispatch, SUMMARY_WINDOW_BITS};
pub use bindex_core::{
    build_reordered, Algorithm, Base, BitmapIndex, BitmapSource, BufferSet, BuildOptions, Encoding,
    Error, EvalStats, IndexSpec, RecoveryPolicy, RowOrder, RowPermutation,
};
pub use bindex_relation::query::{Op, SelectionQuery};
pub use bindex_relation::Column;
pub use bindex_storage::{mmap_enabled, MappedStore, MmapStats, MMAP_ENV};
pub use ingest::{IngestAck, IngestIndex, IngestOptions};
pub use stored::{
    load_permutation, persist_index, persist_index_v3, persist_index_v4, persist_permutation,
    scrub_and_repair_index, SharedSource, StorageSource, PERMUTATION_FILE,
};
