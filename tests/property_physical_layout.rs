//! Property tests for the compression-aware physical layout (v4 stores):
//! over seeded random bases, columns, and row counts, every combination of
//! {v3, v4} × {pruning on/off} × {mmap on/off} must produce bit-identical
//! answers — and identical `EvalStats` once the counters that pruning is
//! *allowed* to move (`segments_pruned`, `segments_skipped`,
//! `materializations`) are set aside — for every evaluator and recovery
//! policy. A corrupted summary block degrades to fetch-and-check (never a
//! wrong answer), scrub repairs it, and window-granular pruning on
//! clustered data provably reads fewer bytes.
//!
//! `BINDEX_CHAOS_SEED` pins one seed (the chaos-smoke CI knob); unset, a
//! default matrix runs. Failures print the case seed.

use std::sync::Arc;

use bindex::compress::CodecKind;
use bindex::core::eval::{evaluate_segmented_in, Algorithm};
use bindex::core::{EvalStats, ExecContext};
use bindex::relation::query::{full_space, Op, SelectionQuery};
use bindex::relation::{Column, Rng};
use bindex::storage::{ByteStore, MappedStore, MemStore, StoredIndex};
use bindex::stored::{
    load_permutation, persist_index_v3, persist_index_v4, persist_permutation,
    scrub_and_repair_index, StorageSource,
};
use bindex::{
    build_reordered, Base, BitVec, BitmapIndex, BuildOptions, Encoding, IndexSpec, RecoveryPolicy,
    RowOrder, SUMMARY_WINDOW_BITS,
};

fn seeds() -> Vec<u64> {
    match std::env::var("BINDEX_CHAOS_SEED") {
        Ok(raw) => vec![raw.parse().expect("BINDEX_CHAOS_SEED must be an integer")],
        Err(_) => vec![1, 2, 3],
    }
}

/// 1..=3 components with digits in `2..8` and product at most 24 — small
/// enough that the full query space times the config matrix stays cheap.
fn rand_base(rng: &mut Rng) -> Base {
    loop {
        let k = rng.range_usize(1, 4);
        let digits: Vec<u32> = (0..k).map(|_| 2 + rng.below_u32(6)).collect();
        if digits.iter().map(|&b| u64::from(b)).product::<u64>() <= 24 {
            return Base::new(digits).unwrap();
        }
    }
}

/// Clustered columns over the lower half of the domain (sorted runs plus
/// fully-dead slots — the shapes pruning exists for) mixed with uniform
/// full-domain ones.
fn rand_column(rng: &mut Rng, base: &Base, rows: usize, clustered: bool) -> Column {
    let card = base.product() as u32;
    if clustered {
        let live = (card / 2).max(1) as usize;
        Column::new((0..rows).map(|i| (i * live / rows) as u32).collect(), card)
    } else {
        Column::from_values((0..rows).map(|_| rng.below_u32(card)).collect())
    }
}

fn algorithms(encoding: Encoding) -> &'static [Algorithm] {
    match encoding {
        Encoding::Range => &[
            Algorithm::RangeEval,
            Algorithm::RangeEvalOpt,
            Algorithm::Auto,
        ],
        Encoding::Equality => &[Algorithm::EqualityEval, Algorithm::Auto],
        Encoding::Interval => &[Algorithm::IntervalEval, Algorithm::Auto],
    }
}

/// The counters that must not move across any layout configuration.
/// Pruning is allowed to change `segments_pruned` / `segments_skipped`
/// (disjoint counting) and may only *reduce* `materializations` (a pruned
/// slot's WAH cursor is never created); everything the paper's cost model
/// charges — scans, ops, buffer hits — and the recovery counters must be
/// bit-identical.
fn invariant_counters(s: &EvalStats) -> [usize; 9] {
    [
        s.scans,
        s.ands,
        s.ors,
        s.xors,
        s.nots,
        s.buffer_hits,
        s.degraded_fetches,
        s.reconstructed_bitmaps,
        s.segments_evaluated,
    ]
}

type EvalOutcome = Result<(BitVec, EvalStats), String>;

/// One layout configuration of the matrix.
struct Config {
    name: &'static str,
    v4: bool,
    prune: bool,
    mmap: bool,
}

const CONFIGS: &[Config] = &[
    Config {
        name: "v3",
        v4: false,
        prune: false,
        mmap: false,
    },
    Config {
        name: "v3+prune", // no summary block: pruning must be inert
        v4: false,
        prune: true,
        mmap: false,
    },
    Config {
        name: "v4",
        v4: true,
        prune: false,
        mmap: false,
    },
    Config {
        name: "v4+prune",
        v4: true,
        prune: true,
        mmap: false,
    },
    Config {
        name: "v4+mmap",
        v4: true,
        prune: false,
        mmap: true,
    },
    Config {
        name: "v4+prune+mmap",
        v4: true,
        prune: true,
        mmap: true,
    },
];

#[allow(clippy::too_many_arguments)]
fn run_config(
    stored: &mut StoredIndex<MemStore>,
    spec: &IndexSpec,
    mmap: Option<&MappedStore>,
    prune: bool,
    q: SelectionQuery,
    algo: Algorithm,
    policy: &RecoveryPolicy,
    segment_bits: usize,
) -> EvalOutcome {
    let mut src = StorageSource::try_new(stored, spec.clone()).unwrap();
    if let Some(m) = mmap {
        src = src.with_mmap(m);
    }
    let mut ctx = ExecContext::new(&mut src)
        .with_recovery(policy.clone())
        .with_pruning(prune);
    match evaluate_segmented_in(&mut ctx, q, algo, segment_bits) {
        Ok(found) => Ok((found, ctx.take_stats())),
        Err(e) => Err(e.to_string()),
    }
}

/// The full configuration matrix on clean stores: identical answers,
/// identical invariant counters, pruning inert without a summary block.
#[test]
fn layout_matrix_is_bit_identical() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(0x14A0 + seed);
        let base = rand_base(&mut rng);
        let rows = rng.range_usize(65, 400);
        let col = rand_column(&mut rng, &base, rows, seed.is_multiple_of(2));
        let column = Arc::new(col.clone());
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let spec = IndexSpec::new(base.clone(), encoding);
            let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
            let mut v3 = persist_index_v3(&idx, MemStore::new(), CodecKind::None).unwrap();
            let mut v4 = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
            let mapped = MappedStore::new();
            let policies = [
                RecoveryPolicy::Fail,
                RecoveryPolicy::Reconstruct,
                RecoveryPolicy::ReconstructOrScan(Arc::clone(&column)),
            ];
            for q in full_space(base.product() as u32) {
                for &algo in algorithms(encoding) {
                    for policy in &policies {
                        // Policies other than `Fail` are inert on a clean
                        // store but a different code path; one size each.
                        let sweep: &[usize] = if matches!(policy, RecoveryPolicy::Fail) {
                            &[64, 512]
                        } else {
                            &[64]
                        };
                        for &segment_bits in sweep {
                            let mut outcomes: Vec<(&str, EvalOutcome)> = Vec::new();
                            for cfg in CONFIGS {
                                let stored = if cfg.v4 { &mut v4 } else { &mut v3 };
                                let mmap = cfg.mmap.then_some(&mapped);
                                let out = run_config(
                                    stored,
                                    &spec,
                                    mmap,
                                    cfg.prune,
                                    q,
                                    algo,
                                    policy,
                                    segment_bits,
                                );
                                outcomes.push((cfg.name, out));
                            }
                            let label = format!(
                                "seed {seed} {encoding:?} {algo:?} {policy:?} \
                                 seg={segment_bits} {q}"
                            );
                            let (base_name, baseline) = &outcomes[0];
                            let (b_found, b_stats) = baseline.as_ref().unwrap_or_else(|e| {
                                panic!("{label}: baseline {base_name} failed: {e}")
                            });
                            for (name, out) in &outcomes[1..] {
                                let (found, stats) = out
                                    .as_ref()
                                    .unwrap_or_else(|e| panic!("{label}: {name} failed: {e}"));
                                assert_eq!(found, b_found, "{label}: {name} result");
                                assert_eq!(
                                    invariant_counters(stats),
                                    invariant_counters(b_stats),
                                    "{label}: {name} stats"
                                );
                                assert!(
                                    stats.materializations <= b_stats.materializations,
                                    "{label}: {name} pruning may only reduce materializations"
                                );
                                if !name.contains("v4+prune") {
                                    assert_eq!(
                                        stats.segments_pruned, 0,
                                        "{label}: {name} must not prune"
                                    );
                                }
                                assert!(
                                    stats.segments_pruned + stats.segments_skipped
                                        <= stats.segments_evaluated,
                                    "{label}: {name} disjoint segment counters"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Corrupted *data* files under every recovery policy: pruning may turn a
/// failure into a success (a provably-dead slot is never fetched, and
/// zeros are its exact content) but must never produce a wrong answer,
/// and whenever the unpruned run succeeds the pruned run matches it
/// bit-for-bit.
#[test]
fn corrupted_data_files_never_yield_wrong_answers() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(0x14A1 + seed);
        let base = rand_base(&mut rng);
        let rows = rng.range_usize(65, 400);
        let col = rand_column(&mut rng, &base, rows, true);
        let column = Arc::new(col.clone());
        let spec = IndexSpec::new(base.clone(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
        let stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
        let mut store = stored.into_store();
        let mut names: Vec<String> = store
            .file_names()
            .unwrap()
            .into_iter()
            .filter(|n| n.contains(".bmp"))
            .collect();
        names.sort();
        let victim = names.remove(rng.below_usize(names.len()));
        let mut data = store.read_file(&victim).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x08;
        store.write_file(&victim, &data).unwrap();
        let mut stored = StoredIndex::open(store).unwrap();

        let policies = [
            RecoveryPolicy::Fail,
            RecoveryPolicy::Reconstruct,
            RecoveryPolicy::ReconstructOrScan(Arc::clone(&column)),
        ];
        for q in full_space(base.product() as u32) {
            for &algo in algorithms(Encoding::Equality) {
                for policy in &policies {
                    let label = format!("seed {seed} {victim} {algo:?} {policy:?} {q}");
                    let want = bindex::core::eval::naive::evaluate(&col, q);
                    let plain = run_config(&mut stored, &spec, None, false, q, algo, policy, 64);
                    let pruned = run_config(&mut stored, &spec, None, true, q, algo, policy, 64);
                    match (&plain, &pruned) {
                        (Ok((p_found, _)), Ok((r_found, _))) => {
                            assert_eq!(p_found, &want, "{label}: unpruned answer");
                            assert_eq!(r_found, &want, "{label}: pruned answer");
                        }
                        (Err(_), Ok((r_found, _))) => {
                            // Pruning skipped the corrupt fetch entirely —
                            // legal only because the answer is still exact.
                            assert_eq!(r_found, &want, "{label}: pruned-past-corruption");
                        }
                        (Err(_), Err(_)) => {}
                        (Ok(_), Err(e)) => {
                            panic!("{label}: pruning introduced a failure: {e}")
                        }
                    }
                }
            }
        }
    }
}

/// A corrupted summary block is detected on load, silently disables
/// pruning (fetch-and-check, bit-exact answers), and is rebuilt by
/// scrub-and-repair — after which pruning fires again.
#[test]
fn corrupted_summary_degrades_then_repairs() {
    // Half the domain never occurs: slots 4..8 are fully dead, so healthy
    // summaries prune their fetches outright.
    let rows = 2048;
    let card = 8u32;
    let col = Column::new((0..rows).map(|i| (i * 4 / rows) as u32).collect(), card);
    let spec = IndexSpec::new(Base::single(card).unwrap(), Encoding::Equality);
    let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
    let stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
    let mut store = stored.into_store();
    let victim = store
        .file_names()
        .unwrap()
        .into_iter()
        .find(|n| n.contains("summary"))
        .expect("v4 store has a summary block");
    let mut data = store.read_file(&victim).unwrap();
    let last = data.len() - 1;
    data[last] ^= 0x01;
    store.write_file(&victim, &data).unwrap();
    let mut stored = StoredIndex::open(store).unwrap();

    let mut pruned_total = 0usize;
    for q in full_space(card) {
        let want = bindex::core::eval::naive::evaluate(&col, q);
        let out = run_config(
            &mut stored,
            &spec,
            None,
            true,
            q,
            Algorithm::EqualityEval,
            &RecoveryPolicy::Fail,
            64,
        );
        let (found, stats) = out.expect("corrupt summaries must not fail queries");
        assert_eq!(found, want, "degraded {q}");
        pruned_total += stats.segments_pruned;
    }
    assert_eq!(pruned_total, 0, "a corrupt summary block must not prune");

    // Scrub-and-repair rebuilds the block from the (intact) slot files.
    let report = scrub_and_repair_index(&mut stored, &spec, Some(&col), None).unwrap();
    assert!(report.fully_repaired(), "{report:?}");
    for q in full_space(card) {
        let want = bindex::core::eval::naive::evaluate(&col, q);
        let out = run_config(
            &mut stored,
            &spec,
            None,
            true,
            q,
            Algorithm::EqualityEval,
            &RecoveryPolicy::Fail,
            64,
        );
        let (found, stats) = out.expect("repaired store");
        assert_eq!(found, want, "repaired {q}");
        pruned_total += stats.segments_pruned;
    }
    assert!(pruned_total > 0, "repaired summaries must prune again");
}

/// Window-granular pruning on rows wider than one summary window: the
/// pruned run answers identically and reads strictly fewer bytes from
/// storage than the unpruned run on the same fresh store.
#[test]
fn window_pruning_reads_strictly_fewer_bytes() {
    // Only even values occur, clustered: the odd slots are fully dead
    // (their queries fetch nothing under pruning) and each live slot is a
    // short run touching one or two of its three summary windows.
    let rows = 3 * SUMMARY_WINDOW_BITS; // three windows per slot
    let card = 8u32;
    let col = Column::new(
        (0..rows).map(|i| ((i * 4 / rows) * 2) as u32).collect(),
        card,
    );
    let spec = IndexSpec::new(Base::single(card).unwrap(), Encoding::Equality);
    let idx = BitmapIndex::build(&col, spec.clone()).unwrap();
    let queries: Vec<SelectionQuery> = (0..card).map(|v| SelectionQuery::new(Op::Eq, v)).collect();

    let run = |prune: bool| -> (Vec<BitVec>, usize, u64) {
        let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
        let mut founds = Vec::new();
        let mut pruned = 0usize;
        for &q in &queries {
            let out = run_config(
                &mut stored,
                &spec,
                None,
                prune,
                q,
                Algorithm::EqualityEval,
                &RecoveryPolicy::Fail,
                SUMMARY_WINDOW_BITS,
            );
            let (found, stats) = out.expect("clean store");
            founds.push(found);
            pruned += stats.segments_pruned;
        }
        let bytes = stored.stats().bytes_read;
        (founds, pruned, bytes)
    };
    let (plain_founds, plain_pruned, plain_bytes) = run(false);
    let (pruned_founds, pruned_pruned, pruned_bytes) = run(true);
    assert_eq!(plain_founds, pruned_founds, "answers must be bit-identical");
    assert_eq!(plain_pruned, 0);
    assert!(pruned_pruned > 0, "clustered windows must prune");
    assert!(
        pruned_bytes < plain_bytes,
        "pruning must fetch strictly fewer bytes ({pruned_bytes} vs {plain_bytes})"
    );
}

/// Row reordering end to end: a frequency-sorted or Gray-ordered index
/// persisted as v4 (with its permutation sidecar) answers every query of
/// the full space identically to natural order once externalized —
/// including under pruning and mmap.
#[test]
fn reordered_stores_answer_identically_after_externalization() {
    for seed in seeds() {
        let mut rng = Rng::seed_from_u64(0x14A2 + seed);
        let base = rand_base(&mut rng);
        let rows = rng.range_usize(65, 400);
        let col = rand_column(&mut rng, &base, rows, false);
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            for order in [RowOrder::FrequencySort, RowOrder::GrayCode] {
                let spec = IndexSpec::new(base.clone(), encoding);
                let (idx, perm) =
                    build_reordered(&col, None, spec.clone(), BuildOptions { row_order: order })
                        .unwrap();
                let perm = perm.expect("non-natural order");
                let mut stored = persist_index_v4(&idx, MemStore::new(), CodecKind::None).unwrap();
                persist_permutation(&mut stored, &perm).unwrap();
                let loaded = load_permutation(&stored).unwrap().expect("sidecar");
                let mapped = MappedStore::new();
                for q in full_space(base.product() as u32) {
                    let out = run_config(
                        &mut stored,
                        &spec,
                        Some(&mapped),
                        true,
                        q,
                        Algorithm::Auto,
                        &RecoveryPolicy::Fail,
                        64,
                    );
                    let (internal, _) = out.expect("clean reordered store");
                    let got = loaded.externalize(&internal);
                    let want = bindex::core::eval::naive::evaluate(&col, q);
                    assert_eq!(got, want, "seed {seed} {encoding:?} {order:?} {q}");
                }
            }
        }
    }
}
