//! **Extension** — Threshold ("≥ k of N") query kernels, measured three
//! ways on the same operands:
//!
//! * **`csa`** — the bit-sliced carry-save adder network: one pass over
//!   N operands, a per-bit counter held as ≤ ⌈log₂(N+1)⌉ bit-slice
//!   levels, "count ≥ k" decided by a borrow chain.
//! * **`naive`** — the textbook reduction: OR over all C(N, k) k-subset
//!   ANDs. Run only where C(N, k) ≤ [`MAX_NAIVE_TERMS`]; skipped points
//!   are reported loudly, never silently.
//! * **`scan`** — a per-row popcount scan: for every row, count the
//!   operands with the bit set and compare against k. The row-store
//!   mental model the bitmap index is supposed to beat.
//!
//! A fourth timing, **`wah`**, runs the WAH-native run-merge variant on
//! the same operands compressed, so the literal-vs-compressed trade is
//! visible at each density. Every variant's answer is asserted
//! bit-identical to the CSA kernel's before anything is timed, and the
//! counting kernel must agree with the materializing one.
//!
//! Sweeps N ∈ {4, 8, 16, 32} × k ∈ {2, N/2, N−1} × density ∈
//! {1%, 10%, 50%}. Emits `BENCH_threshold.json` at the workspace root
//! and the usual CSV under `results/`. `--smoke` (alias `--quick`)
//! shrinks the sweep for CI.

use std::time::Instant;

use bindex::bitvec::kernels;
use bindex::compress::wah::{self, WahBitmap};
use bindex::BitVec;
use bindex_bench::{f2, print_table, results_dir, Csv, RunProvenance};

/// Naive OR-of-ANDs is only attempted below this many subset terms; the
/// point is to show the blow-up, not to wait it out.
const MAX_NAIVE_TERMS: u128 = 512;

struct Config {
    rows: usize,
    fan_ins: &'static [usize],
    densities: &'static [f64],
    reps: usize,
}

/// Deterministic Bernoulli(density) bitmaps (xorshift64 per bit). The
/// density knob is what `synthetic_bitmaps`' fixed ~50% cannot give us:
/// WAH run-merge and the sparse fast paths only differentiate when fills
/// exist.
fn random_bitmaps(bits: usize, count: usize, density: f64, seed: u64) -> Vec<BitVec> {
    let cut = (density * (u64::MAX as f64)) as u64;
    (0..count as u64)
        .map(|j| {
            let mut state = seed
                .wrapping_add(j.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .max(1);
            BitVec::from_fn(bits, |_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state < cut
            })
        })
        .collect()
}

fn binomial(n: usize, k: usize) -> u128 {
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 0..k {
        c = c * (n - i) as u128 / (i + 1) as u128;
    }
    c
}

/// OR over all C(N, k) k-subset ANDs, subsets enumerated with Gosper's
/// hack. Each subset folds pairwise — the plan shape an engine without
/// k-ary kernels emits (every binary combine is still the same SIMD
/// kernel the CSA network uses, so the comparison is about plan shape,
/// not scalar-vs-vector). The caller guarantees the term count is sane.
fn naive_or_of_ands(operands: &[&BitVec], k: usize) -> BitVec {
    let n = operands.len();
    let mut acc = BitVec::zeros(operands[0].len());
    let mut mask: u64 = (1u64 << k) - 1;
    while mask < (1u64 << n) {
        let mut idx = (0..n).filter(|i| mask >> i & 1 == 1);
        let first = idx.next().expect("k >= 1");
        let mut term = operands[first].clone();
        for i in idx {
            term = kernels::and_all(&[&term, operands[i]]);
        }
        acc = kernels::or_all(&[&acc, &term]);
        let c = mask & mask.wrapping_neg();
        let r = mask + c;
        mask = (((r ^ mask) >> 2) / c) | r;
    }
    acc
}

/// Row-at-a-time reference: for each row, count the operands whose bit
/// is set and compare against k.
fn per_row_scan(operands: &[&BitVec], k: usize) -> BitVec {
    BitVec::from_fn(operands[0].len(), |r| {
        operands.iter().filter(|b| b.get(r)).count() >= k
    })
}

/// Best-of-`reps` wall seconds for `f`, with the result kept live.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(&out);
    }
    best
}

struct Point {
    n: usize,
    k: usize,
    density: f64,
    cardinality: usize,
    csa_s: f64,
    scan_s: f64,
    naive_s: Option<f64>,
    naive_terms: u128,
    wah_s: f64,
    wah_bytes: usize,
    literal_bytes: usize,
}

impl Point {
    fn speedup_vs_scan(&self) -> f64 {
        self.scan_s / self.csa_s
    }

    fn speedup_vs_naive(&self) -> Option<f64> {
        self.naive_s.map(|s| s / self.csa_s)
    }
}

fn k_values(n: usize) -> Vec<usize> {
    let mut ks = vec![2, n / 2, n - 1];
    ks.sort_unstable();
    ks.dedup();
    ks.retain(|&k| k >= 1 && k <= n);
    ks
}

fn sweep_point(cfg: &Config, n: usize, k: usize, density: f64, seed: u64) -> Point {
    let operands = random_bitmaps(cfg.rows, n, density, seed);
    let refs: Vec<&BitVec> = operands.iter().collect();
    let compressed: Vec<WahBitmap> = operands.iter().map(WahBitmap::from_bitvec).collect();
    let wah_refs: Vec<&WahBitmap> = compressed.iter().collect();

    // Correctness first, on every variant that will be timed: the CSA
    // answer is the one under test, the scan is the reference.
    let want = per_row_scan(&refs, k);
    let csa = kernels::threshold_k(&refs, k);
    assert_eq!(csa, want, "CSA answer diverges at n={n} k={k} d={density}");
    assert_eq!(
        kernels::count_threshold_k(&refs, k),
        want.count_ones(),
        "counting kernel diverges at n={n} k={k} d={density}"
    );
    let wah_answer = wah::threshold_k(&wah_refs, k).to_bitvec();
    assert_eq!(
        wah_answer, want,
        "WAH run-merge diverges at n={n} k={k} d={density}"
    );
    let naive_terms = binomial(n, k);
    let naive_ok = naive_terms <= MAX_NAIVE_TERMS;
    if naive_ok {
        let naive = naive_or_of_ands(&refs, k);
        assert_eq!(
            naive, want,
            "naive OR-of-ANDs diverges at n={n} k={k} d={density}"
        );
    }

    let csa_s = time_best(cfg.reps, || kernels::threshold_k(&refs, k));
    let wah_s = time_best(cfg.reps, || wah::count_threshold_k(&wah_refs, k));
    let scan_s = time_best(1, || per_row_scan(&refs, k));
    let naive_s = naive_ok.then(|| time_best(1, || naive_or_of_ands(&refs, k)));

    Point {
        n,
        k,
        density,
        cardinality: want.count_ones(),
        csa_s,
        scan_s,
        naive_s,
        naive_terms,
        wah_s,
        wah_bytes: compressed.iter().map(WahBitmap::compressed_bytes).sum(),
        literal_bytes: operands.iter().map(|b| b.words().len() * 8).sum(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    let provenance = RunProvenance::capture(1);
    let cfg = if smoke {
        Config {
            rows: 1 << 16,
            fan_ins: &[4, 8],
            densities: &[0.1],
            reps: 1,
        }
    } else {
        Config {
            rows: 1 << 20,
            fan_ins: &[4, 8, 16, 32],
            densities: &[0.01, 0.1, 0.5],
            reps: 5,
        }
    };

    let mut points: Vec<Point> = Vec::new();
    let mut seed = 0x7_1A5u64;
    for &n in cfg.fan_ins {
        for k in k_values(n) {
            for &density in cfg.densities {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let p = sweep_point(&cfg, n, k, density, seed);
                if p.naive_s.is_none() {
                    println!(
                        "note: naive OR-of-ANDs skipped at n={n} k={k} \
                         ({} subset terms > cap {MAX_NAIVE_TERMS})",
                        p.naive_terms
                    );
                }
                points.push(p);
            }
        }
    }

    print_table(
        &format!("threshold kernels, {} rows, best-of-{}", cfg.rows, cfg.reps),
        &[
            "n",
            "k",
            "density",
            "csa_s",
            "scan_s",
            "naive_s",
            "wah_s",
            "x_vs_scan",
            "x_vs_naive",
            "wah/literal bytes",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.n.to_string(),
                    p.k.to_string(),
                    format!("{:.2}", p.density),
                    format!("{:.6}", p.csa_s),
                    format!("{:.6}", p.scan_s),
                    p.naive_s.map_or("-".into(), |s| format!("{s:.6}")),
                    format!("{:.6}", p.wah_s),
                    f2(p.speedup_vs_scan()),
                    p.speedup_vs_naive().map_or("-".into(), f2),
                    format!("{:.3}", p.wah_bytes as f64 / p.literal_bytes as f64),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The acceptance gates: the CSA kernel beats the per-row scan at
    // every swept point, and beats the naive reduction ≥ 10× at the
    // majority-k points with fan-in ≥ 8 — where C(N, k) actually blows
    // up; at k ∈ {2, N−1} the subset count is linear-ish in N and naive
    // is legitimately competitive. Smoke keeps a ≥ 1× floor so a loaded
    // CI box cannot flake the job.
    let min_scan = points
        .iter()
        .map(Point::speedup_vs_scan)
        .fold(f64::MAX, f64::min);
    assert!(
        min_scan > 1.0,
        "CSA must beat the per-row scan everywhere (min {min_scan:.2}x)"
    );
    let min_naive_n8 = points
        .iter()
        .filter(|p| p.n >= 8 && p.k == p.n / 2)
        .filter_map(Point::speedup_vs_naive)
        .fold(f64::MAX, f64::min);
    assert!(
        min_naive_n8 < f64::MAX,
        "sweep must include an n >= 8 majority-k point where naive is feasible"
    );
    let naive_floor = if smoke { 1.0 } else { 10.0 };
    assert!(
        min_naive_n8 >= naive_floor,
        "CSA must beat naive OR-of-ANDs >= {naive_floor}x at majority k, n >= 8 \
         (min {min_naive_n8:.2}x)"
    );

    let mut csv = Csv::create(
        "ext_threshold",
        &[
            "n",
            "k",
            "density",
            "cardinality",
            "csa_seconds",
            "scan_seconds",
            "naive_seconds",
            "naive_terms",
            "wah_seconds",
            "wah_bytes",
            "literal_bytes",
        ],
    )
    .expect("csv");
    for p in &points {
        csv.row(&[
            &p.n,
            &p.k,
            &format!("{:.3}", p.density),
            &p.cardinality,
            &format!("{:.6}", p.csa_s),
            &format!("{:.6}", p.scan_s),
            &p.naive_s.map_or(String::new(), |s| format!("{s:.6}")),
            &p.naive_terms,
            &format!("{:.6}", p.wah_s),
            &p.wah_bytes,
            &p.literal_bytes,
        ])
        .expect("row");
    }
    println!("\nCSV: {}", csv.path().display());

    // Hand-rolled JSON (no serde in the dependency set).
    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"n\": {}, \"k\": {}, \"density\": {:.3}, \"cardinality\": {}, \
                 \"csa_seconds\": {:.6}, \"scan_seconds\": {:.6}, \"naive_seconds\": {}, \
                 \"naive_terms\": {}, \"wah_seconds\": {:.6}, \"speedup_vs_scan\": {:.3}, \
                 \"speedup_vs_naive\": {}, \"wah_bytes\": {}, \"literal_bytes\": {}}}",
                p.n,
                p.k,
                p.density,
                p.cardinality,
                p.csa_s,
                p.scan_s,
                p.naive_s.map_or("null".into(), |s| format!("{s:.6}")),
                p.naive_terms,
                p.wah_s,
                p.speedup_vs_scan(),
                p.speedup_vs_naive()
                    .map_or("null".into(), |s| format!("{s:.3}")),
                p.wah_bytes,
                p.literal_bytes,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"threshold\",\n  \"smoke\": {smoke},\n  {prov},\n  \
         \"rows\": {rows},\n  \"identical_answers\": true,\n  \
         \"min_speedup_vs_scan\": {min_scan:.3},\n  \
         \"min_speedup_vs_naive_majority_n8\": {min_naive_n8:.3},\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        prov = provenance.json_fields(),
        rows = cfg.rows,
        points = point_json.join(",\n"),
    );
    let json_path = results_dir()
        .parent()
        .map(|p| p.join("BENCH_threshold.json"))
        .expect("results dir has a parent");
    std::fs::write(&json_path, json).expect("write json");
    println!("JSON: {}", json_path.display());
}
