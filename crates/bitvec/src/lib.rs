//! # bindex-bitvec
//!
//! Dense bit-vector substrate for the bitmap-index library.
//!
//! Every bitmap manipulated by the index layer — the columns of a Value-List
//! index, the slices of a Bit-Sliced index, intermediate foundsets — is a
//! [`BitVec`]: a length-aware vector of bits packed into `u64` words.
//! The crate provides exactly the operations the paper's evaluation
//! algorithms need, implemented word-at-a-time:
//!
//! * logical AND / OR / XOR / AND-NOT / NOT (in-place and owned),
//! * fused k-ary combine and combine-and-count kernels ([`kernels`]) that
//!   fold any number of operands in one cache-blocked pass,
//! * zero-copy word-aligned [`SegmentView`]s so segment-at-a-time
//!   execution drives the same kernels over cache-sized slices,
//! * population count ([`BitVec::count_ones`]) for foundset cardinalities,
//! * iteration over set bits ([`BitVec::iter_ones`]) to materialize RID lists,
//! * O(1) rank and O(log n) select via a sampled [`rank::RankIndex`],
//! * byte-level (de)serialization for the storage layer.
//!
//! Bits beyond `len` inside the last word are kept zero at all times (the
//! *canonical form* invariant); every mutating operation restores it, so
//! `count_ones` and equality are always exact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitvec;
pub mod kernels;
pub mod rank;
pub mod summary;

pub use crate::bitvec::{BitVec, OnesIter, SegmentView};
pub use crate::kernels::{KernelDispatch, KERNEL_ENV, LANES};
pub use crate::summary::{IndexSummaries, SlotSummary, SUMMARY_WINDOW_BITS};

/// Number of bits in one storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `len` bits.
#[inline]
pub fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}
