//! **Extension** — Chaos-tested recovery: drives multi-threaded query
//! workloads through escalating fault plans (transient read errors,
//! at-rest bit flips, truncation, torn repair writes) on every storage
//! scheme, and checks that the self-healing stack holds the line:
//!
//! * transient faults are absorbed by retries — every query `Ok`;
//! * a corrupted bitmap degrades queries (sibling reconstruction under
//!   BS, digit-level relation scans under CS/IS) without changing a
//!   single answer bit;
//! * `scrub_and_repair_index` rewrites the damage and journals it, after
//!   which a fresh run reports zero degraded fetches;
//! * a torn write *during repair* leaves detectable (never silent)
//!   damage that the next repair pass completes;
//! * at-rest corruption of the **ingest WAL tail** truncates back to the
//!   valid record prefix on reopen — acknowledged batches before the
//!   damage survive, the corrupt suffix is dropped, never a hard error.
//!
//! Emits `BENCH_chaos_recovery.json` at the workspace root with the
//! recovery rate (must be 100%), repair counts, and the wall-clock
//! overhead of the degraded path. `--quick` shrinks the workload for CI;
//! `BINDEX_CHAOS_SEED` reseeds the fault plans and data.

use std::sync::Arc;
use std::time::Instant;

use bindex::compress::CodecKind;
use bindex::core::eval::{naive, Algorithm};
use bindex::engine::batch::{evaluate_selection_workload, BatchOptions};
use bindex::engine::WorkloadReport;
use bindex::relation::query::Op;
use bindex::relation::{gen, query};
use bindex::storage::{
    ByteStore, FaultPlan, FaultStore, MemStore, SharedIndexReader, StorageScheme, StoredIndex,
};
use bindex::stored::{persist_index, scrub_and_repair_index, SharedSource};
use bindex::{
    Base, BitVec, BitmapIndex, Column, Encoding, EvalStats, IndexSpec, IngestIndex, IngestOptions,
    RecoveryPolicy, SelectionQuery,
};
use bindex_bench::{f2, print_table, results_dir, Csv, RunProvenance};

const CARDINALITY: u32 = 30;

fn scheme_name(s: StorageScheme) -> &'static str {
    match s {
        StorageScheme::BitmapLevel => "bs",
        StorageScheme::ComponentLevel => "cs",
        StorageScheme::IndexLevel => "is",
    }
}

fn data_pattern(s: StorageScheme) -> &'static str {
    match s {
        StorageScheme::BitmapLevel => ".bmp",
        StorageScheme::ComponentLevel => ".cmp",
        StorageScheme::IndexLevel => "index.bix",
    }
}

#[derive(Clone, Copy)]
enum Damage {
    BitFlip,
    Truncate,
}

/// Corrupts the first (sorted) data file matching `pattern` behind the
/// store's back, returning its name.
fn corrupt_at_rest(store: &mut MemStore, pattern: &str, damage: Damage) -> String {
    let mut names = store.file_names().expect("file names");
    names.sort();
    let victim = names
        .iter()
        .find(|n| n.contains(pattern))
        .expect("a data file to corrupt")
        .clone();
    let mut bytes = store.read_file(&victim).expect("read victim");
    match damage {
        Damage::BitFlip => {
            let last = bytes.len() - 1;
            bytes[last] ^= 0x20;
        }
        Damage::Truncate => bytes.truncate(bytes.len() / 2),
    }
    store.write_file(&victim, &bytes).expect("write victim");
    victim
}

struct Run {
    report: WorkloadReport<(BitVec, EvalStats)>,
    seconds: f64,
}

impl Run {
    /// Queries whose answer (normal or degraded) is bit-identical to the
    /// fault-free oracle.
    fn exact(&self, expected: &[BitVec]) -> usize {
        self.report
            .outcomes
            .iter()
            .zip(expected)
            .filter(|(o, want)| o.result().is_some_and(|(found, _)| found == *want))
            .count()
    }

    fn stats_sum(&self) -> EvalStats {
        let mut total = EvalStats::default();
        for o in &self.report.outcomes {
            if let Some((_, s)) = o.result() {
                total.add(s);
            }
        }
        total
    }
}

fn run<S: ByteStore + Sync>(
    reader: &SharedIndexReader<S>,
    spec: &IndexSpec,
    queries: &[SelectionQuery],
    recovery: RecoveryPolicy,
    threads: usize,
) -> Run {
    let options = BatchOptions::with_threads(threads).with_recovery(recovery);
    let start = Instant::now();
    let report = evaluate_selection_workload(
        || SharedSource::try_new(reader, spec.clone()).expect("spec matches"),
        queries,
        Algorithm::Auto,
        &options,
    );
    Run {
        report,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// One corrupt-degrade-repair-verify cycle. Returns
/// `(degraded_queries, reconstructed, repaired_files, degraded_seconds)`.
#[allow(clippy::too_many_arguments)]
fn degrade_and_repair(
    store: MemStore,
    scheme: StorageScheme,
    spec: &IndexSpec,
    column: &Arc<Column>,
    queries: &[SelectionQuery],
    expected: &[BitVec],
    damage: Damage,
    threads: usize,
) -> (MemStore, usize, usize, usize, f64) {
    let mut store = store;
    let victim = corrupt_at_rest(&mut store, data_pattern(scheme), damage);
    let recovery = RecoveryPolicy::ReconstructOrScan(Arc::clone(column));

    let reader = SharedIndexReader::new(StoredIndex::open(store).expect("open"));
    let degraded_run = run(&reader, spec, queries, recovery.clone(), threads);
    assert_eq!(
        degraded_run.exact(expected),
        queries.len(),
        "{scheme:?}: every query must be answered bit-identically on the corrupt store \
         (health {:?})",
        degraded_run.report.health
    );
    let degraded_queries = degraded_run.report.health.degraded;
    assert!(
        degraded_queries > 0,
        "{scheme:?}: corrupting {victim} must degrade at least one query"
    );
    let stats = degraded_run.stats_sum();

    let mut stored = reader.into_index();
    let report = scrub_and_repair_index(&mut stored, spec, Some(column), None).expect("repair");
    assert!(report.fully_repaired(), "{scheme:?}: {report:?}");
    assert!(stored.scrub().expect("scrub").is_clean(), "{scheme:?}");

    // A fresh open must read clean: zero degraded fetches on the re-run.
    let reader = SharedIndexReader::new(StoredIndex::open(stored.into_store()).expect("reopen"));
    let rerun = run(&reader, spec, queries, recovery, threads);
    assert!(
        rerun.report.health.all_ok(),
        "{scheme:?}: repaired store must serve the workload cleanly (health {:?})",
        rerun.report.health
    );
    assert_eq!(rerun.exact(expected), queries.len(), "{scheme:?}");

    (
        reader.into_index().into_store(),
        degraded_queries,
        stats.reconstructed_bitmaps,
        report.repaired.len(),
        degraded_run.seconds,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = std::env::var("BINDEX_CHAOS_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(42);
    let rows = if quick { 8_000 } else { 60_000 };
    let threads = BatchOptions::from_env().threads().clamp(2, 8);
    let provenance = RunProvenance::capture(threads);

    let column = Arc::new(gen::uniform(rows, CARDINALITY, seed));
    let spec = IndexSpec::new(Base::from_msb(&[5, 6]).unwrap(), Encoding::Equality);
    let idx = BitmapIndex::build(&column, spec.clone()).unwrap();
    let queries = query::full_space(CARDINALITY);
    let expected: Vec<BitVec> = queries
        .iter()
        .map(|&q| naive::evaluate(&column, q))
        .collect();

    println!(
        "chaos harness: {} rows, {} queries, {} threads, seed {seed}\n",
        rows,
        queries.len(),
        threads
    );

    let mut table_rows = Vec::new();
    let mut scheme_json = Vec::new();
    let mut csv = Csv::create(
        "ext_chaos",
        &[
            "scheme",
            "transient_faults",
            "bitflip_degraded",
            "truncate_degraded",
            "reconstructed",
            "repaired_files",
            "recovery_rate",
            "clean_s",
            "degraded_s",
        ],
    )
    .expect("csv");

    for scheme in [
        StorageScheme::BitmapLevel,
        StorageScheme::ComponentLevel,
        StorageScheme::IndexLevel,
    ] {
        let store = persist_index(&idx, MemStore::new(), scheme, CodecKind::None)
            .expect("persist")
            .into_store();

        // -- Stage 0: fault-free baseline ---------------------------------
        let reader = SharedIndexReader::new(StoredIndex::open(store).expect("open"));
        let clean = run(&reader, &spec, &queries, RecoveryPolicy::Fail, threads);
        assert!(clean.report.health.all_ok(), "{:?}", clean.report.health);
        assert_eq!(clean.exact(&expected), queries.len());
        let store = reader.into_index().into_store();

        // -- Stage 1: transient read faults are absorbed by retries -------
        let faulty = FaultStore::new(store, FaultPlan::new(seed).with_transient_every_nth_read(7));
        let reader = SharedIndexReader::new(StoredIndex::open(faulty).expect("open"));
        let transient = run(&reader, &spec, &queries, RecoveryPolicy::Fail, threads);
        assert!(
            transient.report.health.all_ok(),
            "{scheme:?}: retries must absorb transient faults ({:?})",
            transient.report.health
        );
        assert_eq!(transient.exact(&expected), queries.len());
        let transient_faults = reader.index().store().counters().transient_errors;
        assert!(transient_faults > 0, "{scheme:?}: plan must actually fire");
        let store = reader.into_index().into_store().into_inner();

        // -- Stage 2: at-rest bit flip → degrade, repair, verify ----------
        let (store, flip_degraded, reconstructed, flip_repaired, degraded_seconds) =
            degrade_and_repair(
                store,
                scheme,
                &spec,
                &column,
                &queries,
                &expected,
                Damage::BitFlip,
                threads,
            );
        if scheme == StorageScheme::BitmapLevel {
            assert!(
                reconstructed > 0,
                "BS single-slot corruption must be reachable by the sibling identity"
            );
        }

        // -- Stage 3: truncation → degrade, repair, verify ----------------
        let (mut store, trunc_degraded, _, trunc_repaired, _) = degrade_and_repair(
            store,
            scheme,
            &spec,
            &column,
            &queries,
            &expected,
            Damage::Truncate,
            threads,
        );

        // -- Stage 4: a torn write during repair is caught, not silent ----
        corrupt_at_rest(&mut store, data_pattern(scheme), Damage::BitFlip);
        let faulty = FaultStore::new(
            store,
            FaultPlan::new(seed ^ 0xA5).with_torn_writes(data_pattern(scheme), 1),
        );
        let mut stored = StoredIndex::open(faulty).expect("open");
        let first =
            scrub_and_repair_index(&mut stored, &spec, Some(&column), None).expect("pass 1");
        assert!(!first.scrub.is_clean(), "{scheme:?}: damage was injected");
        let torn_passes = if stored.scrub().expect("scrub").is_clean() {
            1
        } else {
            // The torn repair write left a truncated frame; the checksum
            // layer sees it and the second pass completes the repair.
            let second =
                scrub_and_repair_index(&mut stored, &spec, Some(&column), None).expect("pass 2");
            assert!(second.fully_repaired(), "{scheme:?}: {second:?}");
            assert!(stored.scrub().expect("scrub").is_clean(), "{scheme:?}");
            2
        };
        assert_eq!(
            stored.store().counters().torn_writes,
            1,
            "{scheme:?}: the torn-write plan must fire during repair"
        );
        let reader = SharedIndexReader::new(stored);
        let final_run = run(&reader, &spec, &queries, RecoveryPolicy::Fail, threads);
        assert!(final_run.report.health.all_ok(), "{scheme:?}");
        assert_eq!(final_run.exact(&expected), queries.len(), "{scheme:?}");

        // -- Stage 5: WAL-tail corruption → graceful prefix truncation ----
        // Two acknowledged ingest batches, then a flipped byte inside the
        // final WAL record. Reopening must not error: the corrupt suffix
        // is dropped, the batch before it survives, and queries answer
        // over the surviving delta.
        let mut store = reader.into_index().into_store().into_inner();
        {
            let mut stored = StoredIndex::open(store).expect("open for ingest");
            let mut ingest =
                IngestIndex::open(&mut stored, spec.clone(), CARDINALITY, IngestOptions::new())
                    .expect("ingest session");
            let first = ingest.append(&[Some(1), Some(2), None]).expect("batch 1");
            assert!(first.durable);
            ingest.append(&[Some(3)]).expect("batch 2");
            drop(ingest);
            store = stored.into_store();
        }
        let mut wal = store.read_file("wal.bixl").expect("wal exists");
        let at = wal.len() - 2;
        wal[at] ^= 0x40;
        store.write_file("wal.bixl", &wal).expect("corrupt tail");
        let mut stored = StoredIndex::open(store).expect("reopen");
        let mut reopened =
            IngestIndex::open(&mut stored, spec.clone(), CARDINALITY, IngestOptions::new())
                .unwrap_or_else(|e| {
                    panic!("{scheme:?}: WAL tail corruption must recover gracefully: {e}")
                });
        assert_eq!(
            reopened.n_rows(),
            rows + 3,
            "{scheme:?}: batch after the damage dropped, batch before intact"
        );
        assert_eq!(reopened.durable_seq(), 1, "{scheme:?}");
        let (bits, _) = reopened
            .evaluate(SelectionQuery::new(Op::Eq, 2), Algorithm::Auto)
            .expect("query over surviving delta");
        assert!(
            bits.get(rows + 1),
            "{scheme:?}: surviving appended row must answer queries"
        );
        let wal_tail_dropped = 1u32;
        drop(reopened);

        // Recovery rate: answered bit-identically while corrupt, over all
        // queries run against damaged stores (asserted 100% above).
        let recovery_rate = 100.0;
        let overhead_pct = (degraded_seconds - clean.seconds) / clean.seconds * 100.0;

        table_rows.push(vec![
            scheme_name(scheme).to_string(),
            transient_faults.to_string(),
            flip_degraded.to_string(),
            trunc_degraded.to_string(),
            reconstructed.to_string(),
            (flip_repaired + trunc_repaired).to_string(),
            f2(recovery_rate),
            format!("{:.4}", clean.seconds),
            format!("{degraded_seconds:.4}"),
        ]);
        csv.row(&[
            &scheme_name(scheme),
            &transient_faults,
            &flip_degraded,
            &trunc_degraded,
            &reconstructed,
            &(flip_repaired + trunc_repaired),
            &f2(recovery_rate),
            &format!("{:.4}", clean.seconds),
            &format!("{degraded_seconds:.4}"),
        ])
        .expect("row");
        scheme_json.push(format!(
            "    {{\"scheme\": \"{}\", \"transient_faults\": {transient_faults}, \
             \"bitflip_degraded_queries\": {flip_degraded}, \
             \"truncate_degraded_queries\": {trunc_degraded}, \
             \"reconstructed_via_siblings\": {reconstructed}, \
             \"repaired_files\": {}, \"torn_repair_passes\": {torn_passes}, \
             \"wal_tail_graceful\": true, \
             \"wal_tail_dropped_batches\": {wal_tail_dropped}, \
             \"recovery_rate_pct\": {recovery_rate:.1}, \
             \"clean_seconds\": {:.6}, \"degraded_seconds\": {degraded_seconds:.6}, \
             \"degraded_overhead_pct\": {overhead_pct:.1}}}",
            scheme_name(scheme),
            flip_repaired + trunc_repaired,
            clean.seconds,
        ));
    }

    print_table(
        &format!("chaos recovery (N = {rows}, C = {CARDINALITY}, seed {seed})"),
        &[
            "scheme",
            "transient",
            "flip degr.",
            "trunc degr.",
            "via siblings",
            "repaired",
            "recovery %",
            "clean s",
            "degraded s",
        ],
        &table_rows,
    );
    println!("\nCSV: {}", csv.path().display());

    // Hand-rolled JSON (no serde in the dependency set).
    let json = format!(
        "{{\n  \"experiment\": \"chaos_recovery\",\n  \"quick\": {quick},\n  \
         \"rows\": {rows},\n  \"queries\": {nq},\n  \"threads\": {threads},\n  {prov},\n  \
         \"seed\": {seed},\n  \"recovery_rate_pct\": 100.0,\n  \"schemes\": [\n{schemes}\n  ]\n}}\n",
        nq = queries.len(),
        prov = provenance.json_fields(),
        schemes = scheme_json.join(",\n"),
    );
    let json_path = results_dir()
        .parent()
        .map(|p| p.join("BENCH_chaos_recovery.json"))
        .expect("results dir has a parent");
    std::fs::write(&json_path, json).expect("write json");
    println!("JSON: {}", json_path.display());
}
