//! Time-optimal indexes (Theorem 6.1, results 3–4) — point (D) of
//! Figure 2.
//!
//! The `n`-component time-optimal index has base
//! `<2, …, 2, ⌈C / 2^{n−1}⌉>` — `n−1` binary components above one large
//! least-significant component (Theorem 6.1(3)) — and time-efficiency
//! degrades as `n` grows (Theorem 6.1(4)), so the global time optimum is
//! the single-component index `<C>` with `Time = (4/3)(1 − 1/C)`.

use crate::base::Base;
use crate::error::{Error, Result};

use super::space_opt::max_components;

/// The `n`-component time-optimal index of Theorem 6.1(3).
pub fn time_optimal(c: u32, n: usize) -> Result<Base> {
    if n == 0 || n > max_components(c) {
        return Err(Error::Infeasible(format!(
            "no well-defined {n}-component index for C = {c} (max {})",
            max_components(c)
        )));
    }
    // b_1 = ceil(C / 2^{n-1}); guaranteed >= 2 because n <= ceil(log2 C).
    let denom: u64 = 1u64 << (n - 1);
    let b1 = u64::from(c).div_ceil(denom).max(2) as u32;
    let mut lsb = vec![b1];
    lsb.extend(std::iter::repeat_n(2, n - 1));
    Base::new(lsb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::tight_bases;
    use crate::cost::time_range_paper;

    #[test]
    fn shapes() {
        assert_eq!(time_optimal(1000, 1).unwrap().to_msb_vec(), vec![1000]);
        assert_eq!(time_optimal(1000, 2).unwrap().to_msb_vec(), vec![2, 500]);
        assert_eq!(time_optimal(1000, 3).unwrap().to_msb_vec(), vec![2, 2, 250]);
        assert_eq!(
            time_optimal(1000, 10).unwrap().to_msb_vec(),
            vec![2, 2, 2, 2, 2, 2, 2, 2, 2, 2]
        );
        // C = 1001 needs 11 binary components; with n = 10 the least
        // significant base rounds up to ceil(1001/512) = 2 -> still all 2s,
        // which no longer covers; max_components(1001) = 10, so the base is
        // <2,...,2, 2> with product 1024 >= 1001.
        assert_eq!(time_optimal(1001, 10).unwrap().to_msb_vec(), vec![2; 10]);
    }

    #[test]
    fn beats_every_tight_same_n_base() {
        // Exhaustive check of Theorem 6.1(3) against enumeration.
        for c in [30u32, 100, 250] {
            for n in 1..=3usize {
                let opt = time_optimal(c, n).unwrap();
                let t_opt = time_range_paper(&opt);
                for other in tight_bases(c, n)
                    .into_iter()
                    .filter(|b| b.n_components() == n)
                {
                    assert!(
                        t_opt <= time_range_paper(&other) + 1e-12,
                        "C={c} n={n}: {opt} ({t_opt}) vs {other} ({})",
                        time_range_paper(&other)
                    );
                }
            }
        }
    }

    #[test]
    fn time_nondecreasing_in_components() {
        // Theorem 6.1(4).
        for c in [50u32, 1000] {
            let mut prev = 0.0f64;
            for n in 1..=max_components(c) {
                let t = time_range_paper(&time_optimal(c, n).unwrap());
                assert!(t >= prev - 1e-12, "C={c} n={n}: {t} < {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn covers_cardinality() {
        for c in [17u32, 100, 999, 1000] {
            for n in 1..=max_components(c) {
                assert!(time_optimal(c, n).unwrap().covers(c), "C={c} n={n}");
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(time_optimal(1000, 0).is_err());
        assert!(time_optimal(1000, 11).is_err());
    }
}
