//! Fused k-ary bitmap kernels: horizontal combine and combine-and-count
//! operations over any number of operands in a single cache-blocked pass.
//!
//! The evaluation algorithms frequently fold a *wide* fan-in of bitmaps —
//! an equality-encoded `≤` predicate ORs up to half a component's slot
//! bitmaps, the engine's P3 plan ANDs one foundset per predicate. Folding
//! those pairwise costs `k − 1` full-size allocations and `k − 1` sweeps
//! over memory. The kernels here combine all `k` operands with **one**
//! output allocation, walking the operands in blocks small enough that the
//! accumulator stays L1-resident, so every operand word is read exactly
//! once (the "horizontal" algorithms of Kaser & Lemire, *Compressed bitmap
//! indexes: beyond unions and intersections*).
//!
//! The fused counting kernels (`count_and`, `count_or`, `count_xor`) go
//! one step further for callers that only need the cardinality of a
//! combination: they popcount the combined words on the fly, in a
//! fixed-size stack buffer, without materializing the result bitmap at all
//! (the "symmetric functions over bitmaps" shape).
//!
//! All loops are plain chunked `u64` iteration — no per-bit access — so
//! the compiler can autovectorize them.
//!
//! # Panics
//! Every kernel panics on an empty operand list or mismatched operand
//! lengths; bitmaps of one index always share the relation cardinality
//! `N`, so a mismatch is a logic error (matching [`BitVec`]'s own binary
//! operations).

use crate::bitvec::{BitVec, SegmentView};

/// Words per block: 8 KiB of accumulator, comfortably L1-resident even
/// with an operand stream being pulled through the cache alongside it.
const BLOCK_WORDS: usize = 1024;

/// Words per stack buffer used by the fused counting kernels (2 KiB).
const COUNT_BLOCK_WORDS: usize = 256;

/// Anything the kernels can fold: a whole [`BitVec`] or a word-aligned
/// [`SegmentView`] of one. Both are canonically masked, so the fold core
/// never needs to re-mask its output.
pub trait KernelOperand {
    /// Number of bits.
    fn len(&self) -> usize;
    /// The canonically masked backing words.
    fn words(&self) -> &[u64];
    /// `true` if the operand holds zero bits.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl KernelOperand for &BitVec {
    fn len(&self) -> usize {
        BitVec::len(self)
    }
    fn words(&self) -> &[u64] {
        BitVec::words(self)
    }
}

impl KernelOperand for SegmentView<'_> {
    fn len(&self) -> usize {
        SegmentView::len(self)
    }
    fn words(&self) -> &[u64] {
        SegmentView::words(self)
    }
}

fn check_operands<T: KernelOperand>(operands: &[T]) -> usize {
    let first = operands
        .first()
        .expect("k-ary kernel needs at least one operand");
    for op in &operands[1..] {
        assert_eq!(
            first.len(),
            op.len(),
            "bitmap length mismatch: {} vs {}",
            first.len(),
            op.len()
        );
    }
    first.len()
}

/// Folds `operands` into a fresh output vector with `combine`, one block
/// at a time so the output block stays in L1 while each operand streams
/// through exactly once.
fn fold_blocks<T: KernelOperand>(operands: &[T], combine: impl Fn(&mut u64, u64)) -> BitVec {
    let len = check_operands(operands);
    let mut words = operands[0].words().to_vec();
    let n_words = words.len();
    let mut start = 0;
    while start < n_words {
        let end = (start + BLOCK_WORDS).min(n_words);
        let dst = &mut words[start..end];
        for op in &operands[1..] {
            let src = &op.words()[start..end];
            for (a, &b) in dst.iter_mut().zip(src) {
                combine(a, b);
            }
        }
        start = end;
    }
    BitVec::from_words_unmasked(words, len)
}

/// Counts the set bits of the k-ary combination without materializing it:
/// each block of combined words lives only in a stack buffer that is
/// popcounted and discarded.
///
/// The last operand is never written into the buffer: its combine is fused
/// with the popcount, so a `k`-operand count makes `k − 1` passes over the
/// buffer where materialize-then-count makes `k` plus a cold final sweep —
/// fused counting is strictly less work, never a loss.
fn count_blocks<T: KernelOperand>(operands: &[T], combine: impl Fn(&mut u64, u64)) -> usize {
    check_operands(operands);
    let (last, rest) = operands.split_last().expect("checked non-empty");
    let popcount = |w: u64| w.count_ones() as usize;
    let Some((first, mids)) = rest.split_first() else {
        // Single operand: no combining at all, just a popcount sweep.
        return last.words().iter().copied().map(popcount).sum();
    };
    let n_words = first.words().len();
    let mut buf = [0u64; COUNT_BLOCK_WORDS];
    let mut ones = 0usize;
    let mut start = 0;
    while start < n_words {
        let end = (start + COUNT_BLOCK_WORDS).min(n_words);
        let width = end - start;
        buf[..width].copy_from_slice(&first.words()[start..end]);
        for op in mids {
            let src = &op.words()[start..end];
            for (a, &b) in buf[..width].iter_mut().zip(src) {
                combine(a, b);
            }
        }
        ones += buf[..width]
            .iter()
            .zip(&last.words()[start..end])
            .map(|(&a, &b)| {
                let mut w = a;
                combine(&mut w, b);
                popcount(w)
            })
            .sum::<usize>();
        start = end;
    }
    ones
}

/// AND of all operands in a single pass with one output allocation.
///
/// Equivalent to (but faster than) the pairwise fold
/// `operands[0] & operands[1] & …`. Operands are whole bitmaps
/// (`&BitVec`) or word-aligned [`SegmentView`]s — segment-at-a-time
/// execution drives exactly this kernel over cache-sized slices.
#[must_use]
pub fn and_all<T: KernelOperand>(operands: &[T]) -> BitVec {
    fold_blocks(operands, |a, b| *a &= b)
}

/// OR of all operands in a single pass with one output allocation.
#[must_use]
pub fn or_all<T: KernelOperand>(operands: &[T]) -> BitVec {
    fold_blocks(operands, |a, b| *a |= b)
}

/// XOR of all operands in a single pass with one output allocation.
#[must_use]
pub fn xor_all<T: KernelOperand>(operands: &[T]) -> BitVec {
    fold_blocks(operands, |a, b| *a ^= b)
}

/// `a ∧ ¬b` with the output sized once — the owned counterpart of
/// [`BitVec::and_not_assign`], without the clone-then-assign double pass.
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn and_not<T: KernelOperand + Copy>(a: T, b: T) -> BitVec {
    fold_blocks(&[a, b], |x, y| *x &= !y)
}

/// `|operands[0] ∧ operands[1] ∧ …|` without materializing the result.
#[must_use]
pub fn count_and<T: KernelOperand>(operands: &[T]) -> usize {
    count_blocks(operands, |a, b| *a &= b)
}

/// `|operands[0] ∨ operands[1] ∨ …|` without materializing the result.
#[must_use]
pub fn count_or<T: KernelOperand>(operands: &[T]) -> usize {
    count_blocks(operands, |a, b| *a |= b)
}

/// `|operands[0] ⊕ operands[1] ⊕ …|` without materializing the result.
#[must_use]
pub fn count_xor<T: KernelOperand>(operands: &[T]) -> usize {
    count_blocks(operands, |a, b| *a ^= b)
}

/// `|a ∧ ¬b|` without materializing the difference.
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn count_and_not<T: KernelOperand + Copy>(a: T, b: T) -> usize {
    count_blocks(&[a, b], |x, y| *x &= !y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u64) -> BitVec {
        // Deterministic pseudo-random words (splitmix64), canonically masked.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        BitVec::from_fn(len, |_| {
            state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
            state & 1 == 1
        })
    }

    fn pairwise(operands: &[&BitVec], f: impl Fn(&mut BitVec, &BitVec)) -> BitVec {
        let mut acc = operands[0].clone();
        for op in &operands[1..] {
            f(&mut acc, op);
        }
        acc
    }

    #[test]
    fn kary_matches_pairwise_fold() {
        // Lengths straddling block and word boundaries, including the
        // tail-word cases len % 64 ∈ {0, 1, 63}.
        for len in [1usize, 63, 64, 65, 127, 128, 8 * 1024, 64 * 1024 + 63] {
            let owned: Vec<BitVec> = (0..9).map(|k| sample(len, k as u64)).collect();
            let ops: Vec<&BitVec> = owned.iter().collect();
            assert_eq!(
                and_all(&ops),
                pairwise(&ops, |a, b| a.and_assign(b)),
                "and len {len}"
            );
            assert_eq!(
                or_all(&ops),
                pairwise(&ops, |a, b| a.or_assign(b)),
                "or len {len}"
            );
            assert_eq!(
                xor_all(&ops),
                pairwise(&ops, |a, b| a.xor_assign(b)),
                "xor len {len}"
            );
        }
    }

    #[test]
    fn single_operand_is_identity() {
        let v = sample(1000, 3);
        assert_eq!(and_all(&[&v]), v);
        assert_eq!(or_all(&[&v]), v);
        assert_eq!(xor_all(&[&v]), v);
        assert_eq!(count_and(&[&v]), v.count_ones());
    }

    #[test]
    fn fused_counts_match_materialized() {
        for len in [65usize, 4096, 16 * 1024 + 1] {
            let owned: Vec<BitVec> = (0..5).map(|k| sample(len, 17 + k as u64)).collect();
            let ops: Vec<&BitVec> = owned.iter().collect();
            assert_eq!(count_and(&ops), and_all(&ops).count_ones(), "len {len}");
            assert_eq!(count_or(&ops), or_all(&ops).count_ones(), "len {len}");
            assert_eq!(count_xor(&ops), xor_all(&ops).count_ones(), "len {len}");
        }
    }

    #[test]
    fn and_not_matches_assign() {
        let a = sample(777, 1);
        let b = sample(777, 2);
        let mut want = a.clone();
        want.and_not_assign(&b);
        assert_eq!(and_not(&a, &b), want);
        assert_eq!(count_and_not(&a, &b), want.count_ones());
    }

    #[test]
    fn canonical_tail_preserved() {
        // All-ones operands: results must stay masked past `len`.
        let a = BitVec::ones(65);
        let b = BitVec::ones(65);
        let o = or_all(&[&a, &b]);
        assert_eq!(o.count_ones(), 65);
        assert_eq!(o.words()[1], 1);
        let x = xor_all(&[&a, &b]);
        assert_eq!(x.count_ones(), 0);
    }

    #[test]
    fn empty_length_operands() {
        let a = BitVec::zeros(0);
        let b = BitVec::zeros(0);
        assert_eq!(or_all(&[&a, &b]).len(), 0);
        assert_eq!(count_or(&[&a, &b]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one operand")]
    fn empty_operand_list_panics() {
        let _ = and_all::<&BitVec>(&[]);
    }

    #[test]
    fn views_feed_the_same_kernels() {
        let owned: Vec<BitVec> = (0..4).map(|k| sample(64 * 1024 + 37, 90 + k)).collect();
        let full: Vec<&BitVec> = owned.iter().collect();
        let whole = and_all(&full);
        // Reassemble the whole-bitmap result segment by segment.
        let seg_bits = 4096;
        let mut got = Vec::new();
        let mut lo = 0;
        while lo < owned[0].len() {
            let hi = (lo + seg_bits).min(owned[0].len());
            let views: Vec<_> = owned.iter().map(|b| b.view_range(lo, hi)).collect();
            let part = and_all(&views);
            assert_eq!(part.count_ones(), count_and(&views), "{lo}..{hi}");
            got.extend_from_slice(part.words());
            lo = hi;
        }
        assert_eq!(BitVec::from_words(got, owned[0].len()), whole);
        // Pairwise view ops agree with their whole-bitmap counterparts.
        let (a, b) = (&owned[0], &owned[1]);
        assert_eq!(
            and_not(a.view_range(0, 4096), b.view_range(0, 4096)),
            and_not(
                &a.view_range(0, 4096).to_bitvec(),
                &b.view_range(0, 4096).to_bitvec()
            ),
        );
        let mut acc = a.view_range(64, 4096 + 64).to_bitvec();
        acc.or_assign_view(b.view_range(64, 4096 + 64));
        let mut want = a.view_range(64, 4096 + 64).to_bitvec();
        want.or_assign(&b.view_range(64, 4096 + 64).to_bitvec());
        assert_eq!(acc, want);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        let _ = or_all(&[&a, &b]);
    }
}
