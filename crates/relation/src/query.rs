//! Selection predicates and query workloads.
//!
//! The paper's time metric averages over the uniform query space
//! `Q = { A op v : op ∈ {<, ≤, >, ≥, =, ≠}, 0 ≤ v < C }` (Section 4);
//! Section 9's compression experiments use the restricted space
//! `{ A op v : op ∈ {≤, =} }`. Both are provided, plus seeded random
//! workload sampling for wall-clock benchmarks.

use crate::rng::Rng;

/// The six comparison operators of a selection predicate `A op v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `A < v`
    Lt,
    /// `A <= v`
    Le,
    /// `A > v`
    Gt,
    /// `A >= v`
    Ge,
    /// `A = v`
    Eq,
    /// `A != v`
    Ne,
}

impl Op {
    /// All six operators, in the paper's order.
    pub const ALL: [Op; 6] = [Op::Lt, Op::Le, Op::Gt, Op::Ge, Op::Eq, Op::Ne];

    /// The operators used by Section 9's compression study.
    pub const COMPRESSION_STUDY: [Op; 2] = [Op::Le, Op::Eq];

    /// `true` for `<, ≤, >, ≥` (a *range* predicate), `false` for `=, ≠`.
    pub fn is_range(self) -> bool {
        !matches!(self, Op::Eq | Op::Ne)
    }

    /// Applies the comparison to a concrete value.
    #[inline]
    pub fn matches(self, value: u32, constant: u32) -> bool {
        match self {
            Op::Lt => value < constant,
            Op::Le => value <= constant,
            Op::Gt => value > constant,
            Op::Ge => value >= constant,
            Op::Eq => value == constant,
            Op::Ne => value != constant,
        }
    }

    /// SQL-ish symbol, for experiment output.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Eq => "=",
            Op::Ne => "!=",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A selection predicate `A op constant` on the indexed attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SelectionQuery {
    /// Comparison operator.
    pub op: Op,
    /// Predicate constant `v`, in `0 .. C`.
    pub constant: u32,
}

impl SelectionQuery {
    /// Creates a query.
    pub fn new(op: Op, constant: u32) -> Self {
        Self { op, constant }
    }

    /// Row-level truth of the predicate.
    #[inline]
    pub fn matches(&self, value: u32) -> bool {
        self.op.matches(value, self.constant)
    }

    /// Selectivity factor against a value histogram (fraction of rows).
    pub fn selectivity(&self, histogram: &[usize]) -> f64 {
        let total: usize = histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let hit: usize = histogram
            .iter()
            .enumerate()
            .filter(|(v, _)| self.matches(*v as u32))
            .map(|(_, &c)| c)
            .sum();
        hit as f64 / total as f64
    }
}

impl std::fmt::Display for SelectionQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A {} {}", self.op, self.constant)
    }
}

/// A k-of-N threshold query over predicates on the indexed attribute:
/// a row qualifies when **at least `k`** of the `predicates` hold for
/// its value. The symmetric-function extension of the paper's
/// single-predicate query class (Kaser & Lemire, "Threshold and
/// Symmetric Functions over Bitmaps"): `k = 1` degenerates to the OR
/// of the predicates, `k = N` to their AND, `k = ⌊N/2⌋ + 1` is the
/// majority function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThresholdQuery {
    /// Minimum number of predicates that must hold, `1 ..= N` for a
    /// non-degenerate query. `validate` rejects 0 and `> N`.
    pub k: u32,
    /// The predicate set, each on the indexed attribute.
    pub predicates: Vec<SelectionQuery>,
}

impl ThresholdQuery {
    /// Creates a threshold query (unvalidated; see
    /// [`ThresholdQuery::validate`]).
    pub fn new(k: u32, predicates: Vec<SelectionQuery>) -> Self {
        Self { k, predicates }
    }

    /// Checks the query is well-formed: a non-empty predicate set and
    /// `1 ≤ k ≤ N`. Returns a human-readable reason when it is not —
    /// degenerate thresholds are a caller error, never a panic or a
    /// silent empty foundset.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.predicates.len();
        if n == 0 {
            return Err("threshold query has no predicates".into());
        }
        if self.k == 0 {
            return Err("threshold k = 0 matches every row; use k >= 1".into());
        }
        if self.k as usize > n {
            return Err(format!(
                "threshold k = {} exceeds the {} predicate(s); no row can qualify",
                self.k, n
            ));
        }
        Ok(())
    }

    /// Row-level truth: does `value` satisfy at least `k` predicates?
    /// (The per-row reference the bit-sliced kernels are tested against.)
    #[inline]
    pub fn matches(&self, value: u32) -> bool {
        let mut hits = 0usize;
        for p in &self.predicates {
            if p.matches(value) {
                hits += 1;
                if hits >= self.k as usize {
                    return true;
                }
            }
        }
        false
    }

    /// Canonical form for caching: predicates sorted. The threshold
    /// function is symmetric, so predicate order never changes the
    /// answer — two queries with equal normalized forms always have
    /// equal answers. Duplicate predicates are **kept**: a duplicated
    /// predicate counts twice toward `k` on every row it matches, so
    /// removing it would change the answer.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut predicates = self.predicates.clone();
        predicates.sort_by_key(|p| (p.constant, p.op.symbol()));
        Self {
            k: self.k,
            predicates,
        }
    }

    /// Selectivity factor against a value histogram (fraction of rows
    /// whose value satisfies ≥ k predicates).
    pub fn selectivity(&self, histogram: &[usize]) -> f64 {
        let total: usize = histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let hit: usize = histogram
            .iter()
            .enumerate()
            .filter(|(v, _)| self.matches(*v as u32))
            .map(|(_, &c)| c)
            .sum();
        hit as f64 / total as f64
    }
}

impl std::fmt::Display for ThresholdQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, ">={} of {{", self.k)?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("}")
    }
}

/// The full uniform query space `Q`: all 6·C queries (Section 4).
pub fn full_space(cardinality: u32) -> Vec<SelectionQuery> {
    let mut out = Vec::with_capacity(6 * cardinality as usize);
    for op in Op::ALL {
        for v in 0..cardinality {
            out.push(SelectionQuery::new(op, v));
        }
    }
    out
}

/// Section 9's restricted space: `{≤, =} × [0, C)`, 2·C queries.
pub fn compression_study_space(cardinality: u32) -> Vec<SelectionQuery> {
    let mut out = Vec::with_capacity(2 * cardinality as usize);
    for op in Op::COMPRESSION_STUDY {
        for v in 0..cardinality {
            out.push(SelectionQuery::new(op, v));
        }
    }
    out
}

/// A seeded random sample of `n` queries from the full space.
pub fn sample(cardinality: u32, n: usize, seed: u64) -> Vec<SelectionQuery> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let op = Op::ALL[rng.below_usize(Op::ALL.len())];
            SelectionQuery::new(op, rng.below_u32(cardinality))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_semantics() {
        assert!(Op::Lt.matches(1, 2) && !Op::Lt.matches(2, 2));
        assert!(Op::Le.matches(2, 2) && !Op::Le.matches(3, 2));
        assert!(Op::Gt.matches(3, 2) && !Op::Gt.matches(2, 2));
        assert!(Op::Ge.matches(2, 2) && !Op::Ge.matches(1, 2));
        assert!(Op::Eq.matches(2, 2) && !Op::Eq.matches(1, 2));
        assert!(Op::Ne.matches(1, 2) && !Op::Ne.matches(2, 2));
    }

    #[test]
    fn range_classification() {
        assert!(Op::Lt.is_range() && Op::Ge.is_range());
        assert!(!Op::Eq.is_range() && !Op::Ne.is_range());
    }

    #[test]
    fn full_space_size_and_coverage() {
        let q = full_space(10);
        assert_eq!(q.len(), 60);
        assert!(q.iter().any(|s| s.op == Op::Ne && s.constant == 9));
    }

    #[test]
    fn compression_space() {
        let q = compression_study_space(50);
        assert_eq!(q.len(), 100);
        assert!(q.iter().all(|s| matches!(s.op, Op::Le | Op::Eq)));
    }

    #[test]
    fn selectivity_on_uniform_histogram() {
        let h = vec![10usize; 10]; // C=10, uniform
        let q = SelectionQuery::new(Op::Le, 4);
        assert!((q.selectivity(&h) - 0.5).abs() < 1e-12);
        let q = SelectionQuery::new(Op::Ne, 0);
        assert!((q.selectivity(&h) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn threshold_row_semantics_and_validation() {
        let q = ThresholdQuery::new(
            2,
            vec![
                SelectionQuery::new(Op::Le, 4),
                SelectionQuery::new(Op::Ge, 2),
                SelectionQuery::new(Op::Eq, 7),
            ],
        );
        assert!(q.validate().is_ok());
        assert!(q.matches(3)); // ≤4 and ≥2
        assert!(!q.matches(9)); // only ≥2
        assert!(!q.matches(0)); // only ≤4
        assert!(q.matches(7)); // ≥2 and =7 (not ≤4)

        assert!(ThresholdQuery::new(0, vec![SelectionQuery::new(Op::Le, 1)])
            .validate()
            .is_err());
        assert!(ThresholdQuery::new(2, vec![SelectionQuery::new(Op::Le, 1)])
            .validate()
            .is_err());
        assert!(ThresholdQuery::new(1, Vec::new()).validate().is_err());
    }

    #[test]
    fn threshold_normalization_sorts_but_keeps_duplicates() {
        let a = ThresholdQuery::new(
            2,
            vec![
                SelectionQuery::new(Op::Ge, 5),
                SelectionQuery::new(Op::Le, 3),
                SelectionQuery::new(Op::Ge, 5),
            ],
        );
        let b = ThresholdQuery::new(
            2,
            vec![
                SelectionQuery::new(Op::Le, 3),
                SelectionQuery::new(Op::Ge, 5),
                SelectionQuery::new(Op::Ge, 5),
            ],
        );
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(a.normalized().predicates.len(), 3);
        // A duplicated predicate double-counts: value 6 satisfies ≥5
        // twice, reaching k = 2 without ≤3.
        assert!(a.matches(6));
    }

    #[test]
    fn threshold_selectivity_and_display() {
        let h = vec![10usize; 10];
        let q = ThresholdQuery::new(
            2,
            vec![
                SelectionQuery::new(Op::Le, 4),
                SelectionQuery::new(Op::Ge, 3),
                SelectionQuery::new(Op::Ne, 4),
            ],
        );
        // rows qualifying: every value except… check per value 0..10:
        // v∈{0,1,2}: ≤4, ≠4 → 2 hits. v=3: ≤4,≥3,≠4 → 3. v=4: ≤4,≥3 → 2.
        // v≥5: ≥3,≠4 → 2. All 10 values qualify.
        assert!((q.selectivity(&h) - 1.0).abs() < 1e-12);
        assert_eq!(q.to_string(), ">=2 of {A <= 4, A >= 3, A != 4}");
    }

    #[test]
    fn sample_is_seeded() {
        assert_eq!(sample(100, 50, 3), sample(100, 50, 3));
        assert_ne!(sample(100, 50, 3), sample(100, 50, 4));
        assert!(sample(100, 50, 3).iter().all(|q| q.constant < 100));
    }
}
