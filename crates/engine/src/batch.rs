//! Parallel batch query execution: evaluate a workload of queries across
//! worker threads with work-stealing-style dynamic dispatch, isolating
//! each query's failures from the rest of the workload.
//!
//! A decision-support session rarely asks one question; it asks hundreds
//! (the paper's Section 9 experiments average over 100-query workloads).
//! Queries of a workload are independent, so they parallelize trivially —
//! once everything on the read path is shareable. That is what the `Arc`
//! fetch cache in [`ExecContext`], the owned [`Table`], and the
//! `&self`-based `SharedIndexReader` of the storage crate buy: worker
//! threads borrow one table (or build one [`BitmapSource`] each from a
//! shared factory) and pull query indices off a shared atomic counter
//! until the workload drains.
//!
//! Independence cuts the other way too: one query hitting a corrupt
//! bitmap — or a bug that panics — is no reason to throw away the other
//! ninety-nine answers. Each query therefore runs under
//! [`catch_unwind`], its failure is recorded as its own
//! [`QueryOutcome`], and the workload keeps draining; a [`Deadline`]
//! and a failure cap bound how long and how hard a sick store is
//! hammered. The caller gets every per-query outcome plus a
//! [`BatchHealth`] summary instead of a first-error abort.
//!
//! Built on `std::thread::scope` — no runtime, no dependency, no unsafe.
//! `threads = 1` runs inline on the calling thread, so single-threaded
//! baselines measure the sequential path itself rather than a one-worker
//! thread pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bindex_bitvec::BitVec;
use bindex_core::error::{Error, Result};
use bindex_core::eval::{evaluate_in, Algorithm};
use bindex_core::{BitmapSource, EvalStats, ExecContext, RecoveryPolicy};
use bindex_relation::query::SelectionQuery;

use crate::plan::{self, ConjunctiveQuery, ExecutionStats};
use crate::table::Table;

/// Environment variable overriding the default worker count
/// (`all_experiments --threads N` forwards it to every experiment).
pub const THREADS_ENV: &str = "BINDEX_THREADS";

/// A wall-clock cut-off for a workload. Checked cooperatively between
/// queries: a query that is already running finishes, queries claimed
/// after expiry come back [`QueryOutcome::TimedOut`] without running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            at: Instant::now() + d,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Self { at }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// What happened to one query of a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome<T> {
    /// Evaluated normally.
    Ok(T),
    /// Evaluated to an exact answer, but through the degraded path: at
    /// least one stored bitmap was unreadable and had to be reconstructed
    /// (see [`RecoveryPolicy`]).
    Degraded(T),
    /// The query failed — including [`Error::WorkerPanic`] when its
    /// evaluation panicked. Other queries are unaffected.
    Failed(Error),
    /// The workload [`Deadline`] expired before this query started.
    TimedOut,
    /// The failure cap ([`BatchOptions::with_max_failures`]) was reached
    /// before this query started.
    Skipped,
}

impl<T> QueryOutcome<T> {
    /// The answer, if the query produced one (normally or degraded).
    pub fn result(&self) -> Option<&T> {
        match self {
            QueryOutcome::Ok(v) | QueryOutcome::Degraded(v) => Some(v),
            _ => None,
        }
    }

    /// Consumes the outcome into its answer, if any.
    pub fn into_result(self) -> Option<T> {
        match self {
            QueryOutcome::Ok(v) | QueryOutcome::Degraded(v) => Some(v),
            _ => None,
        }
    }

    /// `true` for [`QueryOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, QueryOutcome::Ok(_))
    }

    /// `true` for [`QueryOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryOutcome::Degraded(_))
    }

    /// `true` when the query was answered, normally or degraded.
    pub fn is_answered(&self) -> bool {
        self.result().is_some()
    }

    /// The error, for [`QueryOutcome::Failed`].
    pub fn error(&self) -> Option<&Error> {
        match self {
            QueryOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-workload outcome tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchHealth {
    /// Queries answered normally.
    pub ok: usize,
    /// Queries answered exactly but through the degraded path.
    pub degraded: usize,
    /// Queries that failed (including worker panics).
    pub failed: usize,
    /// Queries not started because the deadline expired.
    pub timed_out: usize,
    /// Queries not started because the failure cap was reached.
    pub skipped: usize,
    /// Of `failed`, how many were [`Error::WorkerPanic`]s.
    pub worker_panics: usize,
}

impl BatchHealth {
    fn tally<T>(outcomes: &[QueryOutcome<T>]) -> Self {
        let mut h = Self::default();
        for o in outcomes {
            match o {
                QueryOutcome::Ok(_) => h.ok += 1,
                QueryOutcome::Degraded(_) => h.degraded += 1,
                QueryOutcome::Failed(e) => {
                    h.failed += 1;
                    if matches!(e, Error::WorkerPanic(_)) {
                        h.worker_panics += 1;
                    }
                }
                QueryOutcome::TimedOut => h.timed_out += 1,
                QueryOutcome::Skipped => h.skipped += 1,
            }
        }
        h
    }

    /// Every query answered normally — no degradation, failure, timeout,
    /// or skip.
    pub fn all_ok(&self) -> bool {
        self.degraded == 0 && self.failed == 0 && self.timed_out == 0 && self.skipped == 0
    }

    /// Queries that produced an answer (ok + degraded).
    pub fn answered(&self) -> usize {
        self.ok + self.degraded
    }

    /// Total queries in the workload.
    pub fn total(&self) -> usize {
        self.ok + self.degraded + self.failed + self.timed_out + self.skipped
    }
}

/// Everything a workload run produced: one [`QueryOutcome`] per query in
/// workload order, plus the [`BatchHealth`] tallies.
#[derive(Debug, Clone)]
pub struct WorkloadReport<T> {
    /// Per-query outcomes, in workload order.
    pub outcomes: Vec<QueryOutcome<T>>,
    /// Outcome tallies.
    pub health: BatchHealth,
}

impl<T> WorkloadReport<T> {
    /// Strict view: every answer in workload order, or the first
    /// non-answer as an error — the pre-isolation calling convention, for
    /// callers that treat any incomplete workload as a failure.
    pub fn into_results(self) -> Result<Vec<T>> {
        self.outcomes
            .into_iter()
            .map(|o| match o {
                QueryOutcome::Ok(v) | QueryOutcome::Degraded(v) => Ok(v),
                QueryOutcome::Failed(e) => Err(e),
                QueryOutcome::TimedOut => Err(Error::Infeasible(
                    "query missed the workload deadline".into(),
                )),
                QueryOutcome::Skipped => Err(Error::Infeasible(
                    "query skipped after the workload failure cap".into(),
                )),
            })
            .collect()
    }
}

/// Worker configuration for a batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    requested_threads: usize,
    threads: usize,
    deadline: Option<Deadline>,
    max_failures: Option<usize>,
    recovery: RecoveryPolicy,
}

impl BatchOptions {
    /// Runs with `threads` workers. The request is clamped to at least 1
    /// and at most the machine's available parallelism — oversubscribing
    /// cores only adds scheduler churn for this CPU-bound workload. A
    /// clamp is logged to stderr; the original request stays visible via
    /// [`requested_threads`](Self::requested_threads).
    pub fn with_threads(threads: usize) -> Self {
        let requested = threads.max(1);
        let cap =
            std::thread::available_parallelism().map_or(requested, std::num::NonZeroUsize::get);
        let effective = requested.min(cap);
        if effective < requested {
            eprintln!(
                "warning: clamping worker count {requested} to available parallelism {effective}"
            );
        }
        Self {
            requested_threads: requested,
            threads: effective,
            deadline: None,
            max_failures: None,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Runs inline on the calling thread.
    pub fn single_threaded() -> Self {
        Self::with_threads(1)
    }

    /// Reads the worker count from the `BINDEX_THREADS` environment
    /// variable, falling back to the machine's available parallelism —
    /// with a warning to stderr when the variable is set to something
    /// unusable, rather than silently ignoring it.
    pub fn from_env() -> Self {
        let fallback =
            || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!(
                        "warning: ignoring {THREADS_ENV}={raw:?} (expected a positive \
                         integer); using available parallelism"
                    );
                    fallback()
                }
            },
            Err(_) => fallback(),
        };
        Self::with_threads(threads)
    }

    /// Sets a wall-clock deadline; queries claimed after it expires come
    /// back [`QueryOutcome::TimedOut`].
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops starting new queries once `max` have failed; the remainder
    /// come back [`QueryOutcome::Skipped`]. Unlimited by default.
    pub fn with_max_failures(mut self, max: usize) -> Self {
        self.max_failures = Some(max);
        self
    }

    /// Sets the degraded-mode [`RecoveryPolicy`] applied to every query's
    /// [`ExecContext`] (storage-backed selection workloads only).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Number of worker threads actually used (after the
    /// available-parallelism clamp).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Number of worker threads originally asked for, before clamping.
    pub fn requested_threads(&self) -> usize {
        self.requested_threads.max(1)
    }

    /// The workload deadline, if any.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// The failure cap, if any.
    pub fn max_failures(&self) -> Option<usize> {
        self.max_failures
    }

    /// The degraded-mode recovery policy.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.recovery
    }
}

/// Renders a panic payload for [`Error::WorkerPanic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// The resilient workload driver behind [`execute_workload`] and
/// [`evaluate_selection_workload`]. Runs `step(state, i)` for every
/// `i in 0..n` across the configured workers, keeping outcomes in input
/// order. Workers claim indices from a shared atomic counter, so long
/// queries don't stall the queue behind them.
///
/// Each worker owns one `init()`-built state (a table handle, a bitmap
/// source). Every step runs under [`catch_unwind`]: a panic becomes that
/// query's [`QueryOutcome::Failed`]\([`Error::WorkerPanic`]\) and the
/// worker rebuilds its state — which the panic may have left inconsistent
/// — before claiming the next query. `step` returns the answer plus a
/// flag marking it degraded. Deadline and failure-cap checks happen
/// between queries, never mid-query.
fn run_workload<St, T, I, W>(
    n: usize,
    options: &BatchOptions,
    init: I,
    step: W,
) -> WorkloadReport<T>
where
    T: Send,
    I: Fn() -> St + Sync,
    W: Fn(&mut St, usize) -> Result<(T, bool)> + Sync,
{
    let threads = options.threads().min(n.max(1));
    let next = AtomicUsize::new(0);
    let failures = AtomicUsize::new(0);
    let worker = |out: &mut Vec<(usize, QueryOutcome<T>)>| {
        let mut state = init();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            if options
                .max_failures()
                .is_some_and(|cap| failures.load(Ordering::Relaxed) >= cap)
            {
                out.push((i, QueryOutcome::Skipped));
                continue;
            }
            if options.deadline().is_some_and(|d| d.expired()) {
                out.push((i, QueryOutcome::TimedOut));
                continue;
            }
            // Unwind safety: on panic the worker state is discarded and
            // rebuilt from `init`, so no broken invariant is observed.
            let outcome = match catch_unwind(AssertUnwindSafe(|| step(&mut state, i))) {
                Ok(Ok((v, false))) => QueryOutcome::Ok(v),
                Ok(Ok((v, true))) => QueryOutcome::Degraded(v),
                Ok(Err(e)) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                    QueryOutcome::Failed(e)
                }
                Err(payload) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                    state = init();
                    QueryOutcome::Failed(Error::WorkerPanic(panic_message(payload.as_ref())))
                }
            };
            out.push((i, outcome));
        }
    };

    let mut collected: Vec<(usize, QueryOutcome<T>)> = Vec::new();
    if threads <= 1 {
        worker(&mut collected);
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        worker(&mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                // A worker can only die outside `catch_unwind` (its state
                // factory panicked). Its claimed-but-unreported queries
                // surface below as WorkerPanic outcomes.
                if let Ok(chunk) = h.join() {
                    collected.extend(chunk);
                }
            }
        });
    }

    let mut slots: Vec<Option<QueryOutcome<T>>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, o) in collected {
        slots[i] = Some(o);
    }
    let outcomes: Vec<QueryOutcome<T>> = slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                QueryOutcome::Failed(Error::WorkerPanic(
                    "worker thread died before reporting its results".into(),
                ))
            })
        })
        .collect();
    let health = BatchHealth::tally(&outcomes);
    WorkloadReport { outcomes, health }
}

/// Executes a workload of conjunctive queries against `table`, choosing
/// the cheapest plan per query and fanning the queries out across the
/// configured worker threads. Outcomes come back in workload order; a
/// failing (or panicking) query is recorded in its own slot and never
/// aborts the rest of the workload.
pub fn execute_workload(
    table: &Table,
    queries: &[ConjunctiveQuery],
    options: &BatchOptions,
) -> WorkloadReport<(BitVec, ExecutionStats)> {
    run_workload(
        queries.len(),
        options,
        || (),
        |_, i| {
            let q = &queries[i];
            let best = plan::choose(table, q)?;
            let (found, stats) = plan::execute(table, q, &best.plan)?;
            let degraded = stats.degraded_fetches > 0;
            Ok(((found, stats), degraded))
        },
    )
}

/// Evaluates a workload of single-attribute selection queries, one
/// [`BitmapSource`] per worker from `make_source` (e.g. a closure opening
/// a source backed by the storage crate's `SharedIndexReader`). Returns
/// per-query outcomes holding foundsets and [`EvalStats`], in workload
/// order. With a [`RecoveryPolicy`] in `options`, queries that had to
/// reconstruct an unreadable bitmap come back
/// [`QueryOutcome::Degraded`] — still bit-exact.
pub fn evaluate_selection_workload<S, F>(
    make_source: F,
    queries: &[SelectionQuery],
    algorithm: Algorithm,
    options: &BatchOptions,
) -> WorkloadReport<(BitVec, EvalStats)>
where
    S: BitmapSource,
    F: Fn() -> S + Sync,
{
    run_workload(queries.len(), options, &make_source, |source, i| {
        let mut ctx = ExecContext::new(source).with_recovery(options.recovery().clone());
        let found = evaluate_in(&mut ctx, queries[i], algorithm)?;
        let stats = ctx.take_stats();
        Ok(((found, stats), stats.degraded_fetches > 0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::IndexChoice;
    use bindex_core::eval::naive;
    use bindex_core::IndexSpec;
    use bindex_relation::gen;
    use bindex_relation::query::Op;

    fn table() -> Table {
        Table::builder()
            .column("qty", gen::uniform(2000, 50, 1), IndexChoice::Knee)
            .column(
                "day",
                gen::uniform(2000, 300, 2),
                IndexChoice::SpaceBudget(40),
            )
            .column("note", gen::uniform(2000, 7, 3), IndexChoice::None)
            .build()
            .unwrap()
    }

    fn workload() -> Vec<ConjunctiveQuery> {
        let mut out = Vec::new();
        for v in 0..24u32 {
            out.push(
                ConjunctiveQuery::new()
                    .and("qty", SelectionQuery::new(Op::Gt, v % 50))
                    .and("day", SelectionQuery::new(Op::Le, (v * 11) % 300))
                    .and("note", SelectionQuery::new(Op::Ne, v % 7)),
            );
        }
        out
    }

    #[test]
    fn parallel_matches_single_thread() {
        let t = table();
        let qs = workload();
        let single = execute_workload(&t, &qs, &BatchOptions::single_threaded());
        let multi = execute_workload(&t, &qs, &BatchOptions::with_threads(4));
        assert!(single.health.all_ok(), "{:?}", single.health);
        assert!(multi.health.all_ok(), "{:?}", multi.health);
        assert_eq!(single.outcomes.len(), multi.outcomes.len());
        for (i, (s, m)) in single.outcomes.iter().zip(&multi.outcomes).enumerate() {
            assert_eq!(s, m, "query {i}");
        }
    }

    #[test]
    fn selection_workload_matches_naive_in_parallel() {
        let col = gen::uniform(1500, 40, 7);
        let idx = bindex_core::BitmapIndex::build(
            &col,
            IndexSpec::new(
                bindex_core::Base::from_msb(&[5, 8]).unwrap(),
                bindex_core::Encoding::Range,
            ),
        )
        .unwrap();
        let queries: Vec<SelectionQuery> = (0..40)
            .map(|v| SelectionQuery::new(if v % 2 == 0 { Op::Le } else { Op::Eq }, v))
            .collect();
        let results = evaluate_selection_workload(
            || idx.source(),
            &queries,
            Algorithm::Auto,
            &BatchOptions::with_threads(4),
        )
        .into_results()
        .unwrap();
        assert_eq!(results.len(), queries.len());
        for (q, (found, stats)) in queries.iter().zip(&results) {
            assert_eq!(found, &naive::evaluate(&col, *q), "{q}");
            assert!(stats.scans > 0 || q.constant == 0, "{q}");
        }
        // Stats must be identical to the sequential run, per query.
        let sequential = evaluate_selection_workload(
            || idx.source(),
            &queries,
            Algorithm::Auto,
            &BatchOptions::single_threaded(),
        )
        .into_results()
        .unwrap();
        assert_eq!(results, sequential);
    }

    #[test]
    fn options_clamp_and_env_parse() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(BatchOptions::with_threads(0).threads(), 1);
        let eight = BatchOptions::with_threads(8);
        assert_eq!(eight.requested_threads(), 8);
        assert_eq!(eight.threads(), 8.min(cores));
        assert!(BatchOptions::with_threads(1).threads() == 1);
        assert!(BatchOptions::from_env().threads() >= 1);
        assert!(BatchOptions::from_env().threads() <= cores);
    }

    #[test]
    fn failing_query_is_isolated() {
        let t = table();
        let qs = vec![
            ConjunctiveQuery::new().and("qty", SelectionQuery::new(Op::Le, 10)),
            ConjunctiveQuery::new().and("missing", SelectionQuery::new(Op::Le, 1)),
            ConjunctiveQuery::new().and("day", SelectionQuery::new(Op::Le, 100)),
        ];
        for options in [
            BatchOptions::with_threads(2),
            BatchOptions::single_threaded(),
        ] {
            let report = execute_workload(&t, &qs, &options);
            assert_eq!(report.health.ok, 2, "{:?}", report.health);
            assert_eq!(report.health.failed, 1, "{:?}", report.health);
            assert!(report.outcomes[0].is_ok());
            assert!(report.outcomes[1].error().is_some());
            assert!(report.outcomes[2].is_ok());
            assert!(report.into_results().is_err());
        }
    }

    /// A source whose fetches panic: drives the panic-isolation path.
    struct PanickySource {
        spec: IndexSpec,
        n_rows: usize,
    }

    impl BitmapSource for PanickySource {
        fn spec(&self) -> &IndexSpec {
            &self.spec
        }
        fn n_rows(&self) -> usize {
            self.n_rows
        }
        fn try_fetch(&mut self, comp: usize, slot: usize) -> bindex_core::error::Result<BitVec> {
            panic!("injected panic fetching ({comp}, {slot})");
        }
        fn try_fetch_nn(&mut self) -> bindex_core::error::Result<Option<BitVec>> {
            Ok(None)
        }
    }

    #[test]
    fn panicking_queries_become_worker_panic_outcomes() {
        let spec = IndexSpec::new(
            bindex_core::Base::from_msb(&[4, 5]).unwrap(),
            bindex_core::Encoding::Range,
        );
        let queries: Vec<SelectionQuery> = (1..9).map(|v| SelectionQuery::new(Op::Eq, v)).collect();
        for threads in [1, 3] {
            let report = evaluate_selection_workload(
                || PanickySource {
                    spec: spec.clone(),
                    n_rows: 100,
                },
                &queries,
                Algorithm::Auto,
                &BatchOptions::with_threads(threads),
            );
            assert_eq!(report.health.failed, queries.len(), "{:?}", report.health);
            assert_eq!(
                report.health.worker_panics,
                queries.len(),
                "{:?}",
                report.health
            );
            for o in &report.outcomes {
                match o.error() {
                    Some(Error::WorkerPanic(msg)) => {
                        assert!(msg.contains("injected panic"), "{msg}")
                    }
                    other => panic!("expected WorkerPanic, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn expired_deadline_times_out_unstarted_queries() {
        let t = table();
        let qs = workload();
        let options = BatchOptions::with_threads(2).with_deadline(Deadline::after(Duration::ZERO));
        let report = execute_workload(&t, &qs, &options);
        assert_eq!(report.health.timed_out, qs.len(), "{:?}", report.health);
        assert!(report.into_results().is_err());
    }

    #[test]
    fn failure_cap_skips_the_tail() {
        let t = table();
        let qs: Vec<ConjunctiveQuery> = (0..12)
            .map(|_| ConjunctiveQuery::new().and("missing", SelectionQuery::new(Op::Le, 1)))
            .collect();
        let options = BatchOptions::single_threaded().with_max_failures(3);
        let report = execute_workload(&t, &qs, &options);
        assert_eq!(report.health.failed, 3, "{:?}", report.health);
        assert_eq!(report.health.skipped, 9, "{:?}", report.health);
    }

    #[test]
    fn deadline_accessors_behave() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));
        let past = Deadline::at(Instant::now());
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }

    #[test]
    fn empty_workload_is_fine() {
        let t = table();
        let out = execute_workload(&t, &[], &BatchOptions::with_threads(4));
        assert!(out.outcomes.is_empty());
        assert!(out.health.all_ok());
        assert_eq!(out.health.total(), 0);
    }
}
