//! Byte-level run-length codec.
//!
//! Format: a sequence of `(varint run_len, byte)` pairs. Simple, fast, and a
//! useful lower bound on what LZ77-family codecs achieve on bitmap files,
//! which are dominated by long runs of `0x00` / `0xff` bytes.

use crate::{varint, Codec, DecodeError};

/// Run-length codec over bytes. Stateless; see module docs for the format.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

impl Codec for Rle {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + input.len() / 32);
        let mut i = 0;
        while i < input.len() {
            let byte = input[i];
            let mut j = i + 1;
            while j < input.len() && input[j] == byte {
                j += 1;
            }
            varint::write(&mut out, (j - i) as u64);
            out.push(byte);
            i = j;
        }
        out
    }

    fn decompress(&self, input: &[u8], original_len: usize) -> Result<Vec<u8>, DecodeError> {
        let mut out = Vec::with_capacity(original_len);
        let mut pos = 0;
        while pos < input.len() {
            let run = varint::read(input, &mut pos)? as usize;
            let &byte = input
                .get(pos)
                .ok_or_else(|| DecodeError("rle: missing run byte".into()))?;
            pos += 1;
            if out.len() + run > original_len {
                return Err(DecodeError("rle: output longer than declared".into()));
            }
            out.resize(out.len() + run, byte);
        }
        if out.len() != original_len {
            return Err(DecodeError(format!(
                "rle: produced {} bytes, expected {original_len}",
                out.len()
            )));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = Rle.compress(data);
        assert_eq!(Rle.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
        assert_eq!(Rle.compress(&[]).len(), 0);
    }

    #[test]
    fn single_long_run() {
        let data = vec![0u8; 100_000];
        let c = Rle.compress(&data);
        assert!(c.len() <= 4, "run should collapse, got {} bytes", c.len());
        roundtrip(&data);
    }

    #[test]
    fn alternating_worst_case() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        roundtrip(&data);
        // worst case: 2 bytes per input byte
        assert!(Rle.compress(&data).len() <= 2 * data.len());
    }

    #[test]
    fn mixed_runs() {
        let mut data = vec![0xffu8; 300];
        data.extend(std::iter::repeat_n(0u8, 500));
        data.extend(0..=255u8);
        roundtrip(&data);
    }

    #[test]
    fn rejects_wrong_length() {
        let c = Rle.compress(&[1, 1, 1]);
        assert!(Rle.decompress(&c, 2).is_err());
        assert!(Rle.decompress(&c, 4).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let c = Rle.compress(&[7u8; 500]);
        assert!(Rle.decompress(&c[..c.len() - 1], 500).is_err());
    }
}
