//! Row reordering as a build-time physical-layout option.
//!
//! WAH compression pays for run structure: the more consecutive rows fall
//! into the same bitmap, the longer the fill words. Row order is a free
//! physical variable — a relation's tuples carry no intrinsic order — so
//! reordering rows before encoding (Kaser & Lemire, arXiv 0808.2083) can
//! shrink every stored bitmap at once. This module provides the two
//! classic orders next to the natural one:
//!
//! * [`RowOrder::FrequencySort`] — group rows by attribute value, most
//!   frequent value first: every equality bitmap becomes one run.
//! * [`RowOrder::GrayCode`] — sort rows by the reflected mixed-radix
//!   Gray rank of their digit vector under the index base: adjacent rows
//!   differ in few digits, so *component* bitmaps (what multi-component
//!   indexes actually store) get long runs too.
//!
//! Reordering permutes the rows the index sees, so query answers come
//! back in *internal* order; the build returns a [`RowPermutation`] that
//! maps them back ([`RowPermutation::externalize`]) and serializes for
//! persistence alongside the stored index. Natural order returns no
//! permutation and changes nothing.

use bindex_bitvec::BitVec;
use bindex_relation::Column;

use crate::encoding::IndexSpec;
use crate::error::{Error, Result};
use crate::index::BitmapIndex;

/// Physical row order applied before encoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RowOrder {
    /// Keep rows as given (the only order prior formats knew).
    #[default]
    Natural,
    /// Group rows by value, value groups by descending frequency (ties by
    /// value, rows within a group in natural order).
    FrequencySort,
    /// Sort rows by the reflected mixed-radix Gray rank of their digit
    /// vector under the index base.
    GrayCode,
}

impl RowOrder {
    /// Stable lowercase name (CLI flags, manifests, bench emitters).
    pub fn as_str(&self) -> &'static str {
        match self {
            RowOrder::Natural => "natural",
            RowOrder::FrequencySort => "freq",
            RowOrder::GrayCode => "gray",
        }
    }

    /// Parses [`RowOrder::as_str`] names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "natural" => Some(RowOrder::Natural),
            "freq" => Some(RowOrder::FrequencySort),
            "gray" => Some(RowOrder::GrayCode),
            _ => None,
        }
    }

    /// All orders, for sweeps.
    pub const ALL: [RowOrder; 3] = [
        RowOrder::Natural,
        RowOrder::FrequencySort,
        RowOrder::GrayCode,
    ];
}

/// Build-time physical-layout options (extensible; today just the order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildOptions {
    /// Row order applied before encoding.
    pub row_order: RowOrder,
}

/// The row permutation a reordered build applied: `perm[internal]` is the
/// external (original) row id of internal row `internal`.
///
/// Bitmap answers computed against a reordered index are in internal
/// order; [`RowPermutation::externalize`] maps them back so callers see
/// original row ids. Rows appended after the build keep identity mapping
/// (internal id == external id past the permutation's length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPermutation {
    perm: Vec<u32>,
}

impl RowPermutation {
    /// Wraps an explicit permutation, validating that it is one (every
    /// external id below `len` appears exactly once).
    pub fn new(perm: Vec<u32>) -> Result<Self> {
        let n = perm.len();
        let mut seen = BitVec::zeros(n);
        for &p in &perm {
            if (p as usize) >= n || seen.get(p as usize) {
                return Err(Error::CorruptIndex(format!(
                    "row permutation of {n} rows is not a bijection (id {p})"
                )));
            }
            seen.set(p as usize, true);
        }
        Ok(Self { perm })
    }

    /// Number of permuted rows.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` when the permutation covers no rows.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// External row id of internal row `internal` (identity past the end,
    /// matching appended rows).
    pub fn external_of(&self, internal: usize) -> usize {
        self.perm.get(internal).map_or(internal, |&p| p as usize)
    }

    /// Maps an internal-order bitmap (a query answer) back to external
    /// row ids. The result has the same length and population count.
    #[must_use]
    pub fn externalize(&self, internal: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(internal.len());
        for i in internal.iter_ones() {
            out.set(self.external_of(i), true);
        }
        out
    }

    /// Serializes as little-endian `u32` per internal row, for storing
    /// next to the index files.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.perm.len() * 4);
        for &p in &self.perm {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Deserializes [`RowPermutation::to_bytes`] output, re-validating the
    /// bijection so a corrupt file cannot scramble answers silently.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if !bytes.len().is_multiple_of(4) {
            return Err(Error::CorruptIndex(format!(
                "row permutation payload of {} bytes is not u32-aligned",
                bytes.len()
            )));
        }
        let perm = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Self::new(perm)
    }
}

/// Builds an index under `options.row_order`, returning the permutation
/// that was applied (`None` for natural order — the result is then
/// bit-identical to [`BitmapIndex::build`]). Rows flagged in `null_mask`
/// are reordered with everything else and excluded from the bitmaps
/// exactly as in [`BitmapIndex::build_with_nulls`].
pub fn build_reordered(
    column: &Column,
    null_mask: Option<&BitVec>,
    spec: IndexSpec,
    options: BuildOptions,
) -> Result<(BitmapIndex, Option<RowPermutation>)> {
    if let Some(mask) = null_mask {
        if mask.len() != column.len() {
            return Err(Error::CorruptIndex(format!(
                "null mask has {} bits for {} rows",
                mask.len(),
                column.len()
            )));
        }
    }
    let order = match options.row_order {
        RowOrder::Natural => {
            let idx = match null_mask {
                Some(mask) => BitmapIndex::build_with_nulls(column, mask, spec)?,
                None => BitmapIndex::build(column, spec)?,
            };
            return Ok((idx, None));
        }
        RowOrder::FrequencySort => frequency_order(column),
        RowOrder::GrayCode => gray_order(column, &spec)?,
    };
    let values = column.values();
    let reordered = Column::new(
        order.iter().map(|&r| values[r as usize]).collect(),
        column.cardinality(),
    );
    let remapped_mask = null_mask.map(|mask| {
        let mut m = BitVec::zeros(mask.len());
        for (internal, &external) in order.iter().enumerate() {
            if mask.get(external as usize) {
                m.set(internal, true);
            }
        }
        m
    });
    let idx = match &remapped_mask {
        Some(mask) => BitmapIndex::build_with_nulls(&reordered, mask, spec)?,
        None => BitmapIndex::build(&reordered, spec)?,
    };
    Ok((idx, Some(RowPermutation { perm: order })))
}

/// Internal order for [`RowOrder::FrequencySort`]: stable sort of row ids
/// by (descending value frequency, value).
fn frequency_order(column: &Column) -> Vec<u32> {
    let values = column.values();
    let mut counts = vec![0u32; column.cardinality() as usize];
    for &v in values {
        counts[v as usize] += 1;
    }
    let mut order: Vec<u32> = (0..values.len() as u32).collect();
    order.sort_by_key(|&r| {
        let v = values[r as usize];
        (std::cmp::Reverse(counts[v as usize]), v)
    });
    order
}

/// Internal order for [`RowOrder::GrayCode`]: stable sort of row ids by
/// the reflected Gray rank of each value's digit vector, most significant
/// component first. Adjacent ranks differ in one digit by one, so rows
/// close in Gray order set nearly the same component bitmaps.
fn gray_order(column: &Column, spec: &IndexSpec) -> Result<Vec<u32>> {
    let card = column.cardinality();
    let mut rank = Vec::with_capacity(card as usize);
    for v in 0..card {
        let digits = spec.base.decompose(v)?;
        // decompose is LSB-first; walk MSB→LSB with the reflection flag.
        let mut r: u64 = 0;
        let mut reflected = false;
        for (ci, &d) in digits.iter().enumerate().rev() {
            let b = u64::from(spec.base.component(ci + 1));
            let e = if reflected {
                b - 1 - u64::from(d)
            } else {
                u64::from(d)
            };
            r = r * b + e;
            if e % 2 == 1 {
                reflected = !reflected;
            }
        }
        rank.push(r);
    }
    let values = column.values();
    let mut order: Vec<u32> = (0..values.len() as u32).collect();
    order.sort_by_key(|&r| rank[values[r as usize] as usize]);
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use crate::encoding::Encoding;
    use crate::eval::{evaluate, Algorithm};
    use bindex_compress::wah::WahBitmap;
    use bindex_relation::query::{Op, SelectionQuery};

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// A shuffled skewed column: heavy value 0, long tail.
    fn skewed_column(n: usize, card: u32) -> Column {
        let mut state = 0x5eed5eed5eed5eedu64;
        let values = (0..n)
            .map(|_| {
                let r = xorshift(&mut state) % 100;
                if r < 60 {
                    0
                } else {
                    (xorshift(&mut state) % u64::from(card)) as u32
                }
            })
            .collect();
        Column::new(values, card)
    }

    fn wah_bytes(idx: &BitmapIndex) -> usize {
        idx.components()
            .iter()
            .flatten()
            .map(|bm| WahBitmap::from_bitvec(bm).compressed_bytes())
            .sum()
    }

    #[test]
    fn natural_order_is_the_plain_build() {
        let col = skewed_column(500, 8);
        let spec = IndexSpec::new(Base::single(8).unwrap(), Encoding::Equality);
        let (idx, perm) =
            build_reordered(&col, None, spec.clone(), BuildOptions::default()).unwrap();
        assert!(perm.is_none());
        let plain = BitmapIndex::build(&col, spec).unwrap();
        assert_eq!(idx.components(), plain.components());
    }

    #[test]
    fn reordering_shrinks_wah_size_on_skewed_data() {
        let col = skewed_column(20_000, 16);
        let spec = IndexSpec::new(Base::single(16).unwrap(), Encoding::Equality);
        let natural = BitmapIndex::build(&col, spec.clone()).unwrap();
        for order in [RowOrder::FrequencySort, RowOrder::GrayCode] {
            let (sorted, perm) =
                build_reordered(&col, None, spec.clone(), BuildOptions { row_order: order })
                    .unwrap();
            assert!(perm.is_some());
            assert!(
                wah_bytes(&sorted) < wah_bytes(&natural),
                "{order:?}: {} !< {}",
                wah_bytes(&sorted),
                wah_bytes(&natural)
            );
        }
    }

    #[test]
    fn externalized_answers_match_natural_answers() {
        let col = skewed_column(3_000, 9);
        let nulls = {
            let mut m = BitVec::zeros(3_000);
            let mut state = 7u64;
            for _ in 0..40 {
                m.set((xorshift(&mut state) % 3_000) as usize, true);
            }
            m
        };
        for encoding in [Encoding::Equality, Encoding::Range, Encoding::Interval] {
            let spec = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), encoding);
            let natural = BitmapIndex::build_with_nulls(&col, &nulls, spec.clone()).unwrap();
            for order in [RowOrder::FrequencySort, RowOrder::GrayCode] {
                let (sorted, perm) = build_reordered(
                    &col,
                    Some(&nulls),
                    spec.clone(),
                    BuildOptions { row_order: order },
                )
                .unwrap();
                let perm = perm.unwrap();
                for (op, c) in [(Op::Eq, 4), (Op::Le, 2), (Op::Gt, 6), (Op::Ne, 0)] {
                    let q = SelectionQuery::new(op, c);
                    let (want, _) = evaluate(&mut natural.source(), q, Algorithm::Auto).unwrap();
                    let (got, _) = evaluate(&mut sorted.source(), q, Algorithm::Auto).unwrap();
                    assert_eq!(
                        perm.externalize(&got),
                        want,
                        "{encoding:?} {order:?} {op:?} {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn permutation_roundtrips_and_rejects_corruption() {
        let perm = RowPermutation::new(vec![2, 0, 3, 1]).unwrap();
        let bytes = perm.to_bytes();
        assert_eq!(RowPermutation::from_bytes(&bytes).unwrap(), perm);
        assert_eq!(perm.external_of(0), 2);
        assert_eq!(perm.external_of(9), 9, "identity past the end");
        // Duplicate id, out-of-range id, misaligned payload: all rejected.
        assert!(RowPermutation::new(vec![0, 0, 1]).is_err());
        assert!(RowPermutation::new(vec![0, 4]).is_err());
        assert!(RowPermutation::from_bytes(&bytes[..5]).is_err());
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(RowPermutation::from_bytes(&bad).is_err());
    }

    #[test]
    fn gray_rank_orders_single_component_by_value_adjacency() {
        // Base <4,4>: Gray order over values 0..16 must change one digit
        // at a time between consecutive ranks.
        let card = 16;
        let col = Column::new((0..card).collect(), card);
        let spec = IndexSpec::new(Base::from_msb(&[4, 4]).unwrap(), Encoding::Equality);
        let order = gray_order(&col, &spec).unwrap();
        let digits: Vec<Vec<u32>> = (0..card).map(|v| spec.base.decompose(v).unwrap()).collect();
        for pair in order.windows(2) {
            let (a, b) = (&digits[pair[0] as usize], &digits[pair[1] as usize]);
            let diff: u32 = a.iter().zip(b).map(|(x, y)| u32::from(x != y)).sum();
            assert_eq!(diff, 1, "{a:?} -> {b:?}");
        }
    }
}
