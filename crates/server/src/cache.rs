//! A result cache keyed on *normalized* predicates, invalidated by the
//! repair epoch.
//!
//! Selection predicates over an ordered domain alias each other:
//! `A < v` is `A <= v-1`, `A >= v` is `A > v-1`. [`normalize`] folds each
//! query onto one canonical form so aliased predicates share a cache
//! entry — the same trick the paper's RangeEval-Opt plays with `<=`
//! bitmaps, applied one layer up. Threshold queries get the same
//! treatment one level higher: [`normalize_threshold`] folds every
//! predicate and then sorts the set, since "≥ k of N" is a symmetric
//! function of its operands and predicate order must not fragment the
//! cache.
//!
//! Every entry is tagged with the [`repair
//! epoch`](bindex::storage::SharedIndexReader::repair_epoch) of the index
//! it was computed against. A repair rewrites stored files, so the first
//! access after the epoch advances drops the whole map: serving a
//! pre-repair foundset after the bytes underneath changed would be a
//! silent wrong answer, the one thing a robustness layer must never do.
//! Only clean (non-degraded) answers are inserted.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bindex::relation::query::{Op, SelectionQuery};
use bindex::BitVec;

/// Canonical form of a predicate: the key under which its foundset is
/// cached.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NormKey {
    /// `A < 0`: no row qualifies, for any column.
    Empty,
    /// `A >= 0`: every (non-null) row qualifies.
    All,
    /// Everything else, folded onto the `{<=, >, =, !=}` operators.
    Pred(Op, u32),
    /// "At least `k` of these predicates": each predicate folded onto its
    /// canonical selection form, then the whole set sorted — predicate
    /// order never matters to a threshold, so every permutation (and
    /// every aliased spelling of each predicate) shares one entry.
    /// Duplicates are kept: a repeated predicate counts twice toward `k`.
    Threshold(u32, Vec<NormKey>),
}

/// Folds a query onto its canonical form: `Lt v → Le v-1` (or [`NormKey::Empty`]
/// at `v = 0`), `Ge v → Gt v-1` (or [`NormKey::All`] at `v = 0`); `Le`,
/// `Gt`, `Eq`, `Ne` are already canonical.
pub fn normalize(query: SelectionQuery) -> NormKey {
    match (query.op, query.constant) {
        (Op::Lt, 0) => NormKey::Empty,
        (Op::Lt, v) => NormKey::Pred(Op::Le, v - 1),
        (Op::Ge, 0) => NormKey::All,
        (Op::Ge, v) => NormKey::Pred(Op::Gt, v - 1),
        (op, v) => NormKey::Pred(op, v),
    }
}

/// Canonical form of a "≥ k of N" query: normalize each predicate, then
/// sort the set — thresholds are symmetric functions of their operands,
/// so `≥2 of {p, q, r}` and `≥2 of {r, p, q}` must share a cache entry.
pub fn normalize_threshold(k: u32, predicates: &[SelectionQuery]) -> NormKey {
    let mut preds: Vec<NormKey> = predicates.iter().map(|&q| normalize(q)).collect();
    preds.sort_by_key(|p| match *p {
        NormKey::Empty => (0u8, 0u8, 0u32),
        NormKey::All => (1, 0, 0),
        NormKey::Pred(op, v) => (2, op as u8, v),
        // Thresholds never nest inside a predicate set; rank is moot.
        NormKey::Threshold(k, _) => (3, 0, k),
    });
    NormKey::Threshold(k, preds)
}

/// A cached foundset: shared bits plus the precomputed cardinality.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The foundset.
    pub bits: Arc<BitVec>,
    /// `bits.count_ones()`, computed once at insert.
    pub cardinality: u64,
}

struct Inner {
    /// Epoch the resident entries were computed under.
    epoch: u64,
    map: HashMap<NormKey, CachedAnswer>,
    /// Insertion order for FIFO eviction — predictable and O(1), which
    /// matters more here than LRU's marginal hit-rate edge.
    order: VecDeque<NormKey>,
}

/// Bounded per-index result cache. All methods take `&self`.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` foundsets; zero
    /// disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                epoch: 0,
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Looks up `key` computed under `epoch`. An epoch change drops every
    /// resident entry first (counted as one invalidation).
    pub fn get(&self, key: &NormKey, epoch: u64) -> Option<CachedAnswer> {
        let mut inner = self.inner.lock().unwrap();
        self.sync_epoch(&mut inner, epoch);
        match inner.map.get(key).cloned() {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a clean answer computed under `epoch`. Stale-epoch inserts
    /// (a query that raced with a repair) are dropped — never cached.
    pub fn insert(&self, key: NormKey, answer: CachedAnswer, epoch: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        self.sync_epoch(&mut inner, epoch);
        if epoch < inner.epoch {
            return;
        }
        if inner.map.insert(key.clone(), answer).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(evict) = inner.order.pop_front() {
                    inner.map.remove(&evict);
                }
            }
        }
    }

    fn sync_epoch(&self, inner: &mut Inner, epoch: u64) {
        if epoch > inner.epoch {
            if !inner.map.is_empty() {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
            inner.map.clear();
            inner.order.clear();
            inner.epoch = epoch;
        }
    }

    /// `(hits, misses, invalidations)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.invalidations.load(Ordering::Relaxed),
        )
    }

    /// Resident entries (for tests and stats).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(n: u64) -> CachedAnswer {
        CachedAnswer {
            bits: Arc::new(BitVec::from_fn(64, |i| (i as u64) < n)),
            cardinality: n,
        }
    }

    #[test]
    fn normalization_folds_aliases() {
        assert_eq!(
            normalize(SelectionQuery::new(Op::Lt, 5)),
            normalize(SelectionQuery::new(Op::Le, 4))
        );
        assert_eq!(
            normalize(SelectionQuery::new(Op::Ge, 5)),
            normalize(SelectionQuery::new(Op::Gt, 4))
        );
        assert_eq!(normalize(SelectionQuery::new(Op::Lt, 0)), NormKey::Empty);
        assert_eq!(normalize(SelectionQuery::new(Op::Ge, 0)), NormKey::All);
        // Distinct predicates stay distinct.
        assert_ne!(
            normalize(SelectionQuery::new(Op::Eq, 3)),
            normalize(SelectionQuery::new(Op::Ne, 3))
        );
    }

    #[test]
    fn aliased_queries_share_an_entry() {
        let cache = ResultCache::new(8);
        cache.insert(normalize(SelectionQuery::new(Op::Le, 4)), answer(5), 0);
        let hit = cache
            .get(&normalize(SelectionQuery::new(Op::Lt, 5)), 0)
            .unwrap();
        assert_eq!(hit.cardinality, 5);
        assert_eq!(cache.stats(), (1, 0, 0));
    }

    #[test]
    fn threshold_normalization_is_order_and_alias_blind() {
        let preds = [
            SelectionQuery::new(Op::Lt, 5),
            SelectionQuery::new(Op::Ge, 3),
            SelectionQuery::new(Op::Ne, 4),
        ];
        let permuted = [
            SelectionQuery::new(Op::Ne, 4),
            // Aliased spellings of the same two predicates.
            SelectionQuery::new(Op::Gt, 2),
            SelectionQuery::new(Op::Le, 4),
        ];
        assert_eq!(
            normalize_threshold(2, &preds),
            normalize_threshold(2, &permuted)
        );
        // A different k is a different answer, hence a different key.
        assert_ne!(
            normalize_threshold(2, &preds),
            normalize_threshold(3, &preds)
        );
        // Duplicates are load-bearing (they count twice toward k).
        assert_ne!(
            normalize_threshold(2, &preds[..2]),
            normalize_threshold(2, &[preds[0], preds[0]])
        );
        // Threshold keys live in the same cache as selection keys.
        let cache = ResultCache::new(8);
        cache.insert(normalize_threshold(2, &preds), answer(4), 0);
        assert_eq!(
            cache
                .get(&normalize_threshold(2, &permuted), 0)
                .unwrap()
                .cardinality,
            4
        );
    }

    #[test]
    fn epoch_advance_invalidates_everything() {
        let cache = ResultCache::new(8);
        let key = normalize(SelectionQuery::new(Op::Eq, 1));
        cache.insert(key.clone(), answer(3), 0);
        assert!(cache.get(&key, 0).is_some());
        assert!(cache.get(&key, 1).is_none(), "post-repair read must miss");
        assert_eq!(cache.len(), 0);
        let (_, _, invalidations) = cache.stats();
        assert_eq!(invalidations, 1);
        // A stale-epoch insert (query raced the repair) is dropped.
        cache.insert(key.clone(), answer(3), 0);
        assert!(cache.get(&key, 1).is_none());
    }

    #[test]
    fn fifo_eviction_bounds_residency() {
        let cache = ResultCache::new(2);
        for v in 0..5u32 {
            cache.insert(normalize(SelectionQuery::new(Op::Eq, v)), answer(1), 0);
        }
        assert_eq!(cache.len(), 2);
        // Oldest entries are gone, newest survive.
        assert!(cache
            .get(&normalize(SelectionQuery::new(Op::Eq, 4)), 0)
            .is_some());
        assert!(cache
            .get(&normalize(SelectionQuery::new(Op::Eq, 0)), 0)
            .is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        let key = normalize(SelectionQuery::new(Op::Eq, 1));
        cache.insert(key.clone(), answer(1), 0);
        assert!(cache.get(&key, 0).is_none());
    }
}
