//! A minimal blocking client for the wire protocol — enough for the
//! CLI, the load generator, and the integration tests.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bindex::relation::query::SelectionQuery;

use crate::protocol::{read_frame, write_frame, Request, Response, StatsSnapshot};

fn proto(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// One connection to a `bindex-server`; requests are serial
/// (request/response lockstep, like the wire protocol itself).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Caps how long any single reply is waited for; protects callers
    /// against a hung server.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode()?)?;
        let payload =
            read_frame(&mut self.stream)?.ok_or_else(|| proto("server closed the connection"))?;
        Response::decode(&payload)
    }

    /// Evaluates `query` against the served index `index`.
    /// `deadline_ms = 0` uses the server's default deadline.
    pub fn query(
        &mut self,
        index: &str,
        query: SelectionQuery,
        want_bitmap: bool,
        deadline_ms: u64,
    ) -> io::Result<Response> {
        self.request(&Request::Query {
            index: index.to_string(),
            query,
            want_bitmap,
            deadline_ms,
        })
    }

    /// Evaluates "at least `k` of `predicates`" against the served index
    /// `index`. Predicate order does not matter; a duplicated predicate
    /// counts twice toward `k`. `deadline_ms = 0` uses the server's
    /// default deadline.
    pub fn threshold(
        &mut self,
        index: &str,
        k: u32,
        predicates: &[SelectionQuery],
        want_bitmap: bool,
        deadline_ms: u64,
    ) -> io::Result<Response> {
        self.request(&Request::Threshold {
            index: index.to_string(),
            k,
            predicates: predicates.to_vec(),
            want_bitmap,
            deadline_ms,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(proto(&format!("expected Pong, got {other:?}"))),
        }
    }

    /// Fetches the server counters.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(proto(&format!("expected Stats, got {other:?}"))),
        }
    }

    /// Runs scrub-and-repair on `index`; returns `(repaired,
    /// unrepaired)` file counts.
    pub fn repair(&mut self, index: &str) -> io::Result<(u32, u32)> {
        match self.request(&Request::Repair {
            index: index.to_string(),
        })? {
            Response::Repaired {
                repaired,
                unrepaired,
            } => Ok((repaired, unrepaired)),
            Response::Error { code, message } => {
                Err(proto(&format!("repair failed: {code:?}: {message}")))
            }
            other => Err(proto(&format!("expected Repaired, got {other:?}"))),
        }
    }

    /// Applies one ingest batch (appends with `None` = null, deletes by
    /// row id) to served index `index` and compacts it; returns `(seq,
    /// generation, n_rows)` from the server's acknowledgement.
    pub fn ingest(
        &mut self,
        index: &str,
        appends: &[Option<u32>],
        deletes: &[u64],
    ) -> io::Result<(u64, u64, u64)> {
        match self.request(&Request::Ingest {
            index: index.to_string(),
            appends: appends.to_vec(),
            deletes: deletes.to_vec(),
        })? {
            Response::Ingested {
                seq,
                generation,
                n_rows,
            } => Ok((seq, generation, n_rows)),
            Response::Error { code, message } => {
                Err(proto(&format!("ingest failed: {code:?}: {message}")))
            }
            other => Err(proto(&format!("expected Ingested, got {other:?}"))),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(proto(&format!("expected ShutdownAck, got {other:?}"))),
        }
    }
}
