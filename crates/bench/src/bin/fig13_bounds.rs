//! **Figure 13** — Illustration of the component-count bounds `(n0, n')`
//! inside `TimeOptAlg`: the solution index has at least `n0` components
//! (the least count whose *space-optimal* index fits in `M`) and at most
//! `n'` (the least count `≥ n0` whose *time-optimal* index fits in `M`).
//!
//! The paper shows two cases: (a) `n' = n0` (the fast path — the
//! `n0`-component time-optimal index already fits) and (b) `n' > n0`.

use bindex::core::cost::time_range_paper;
use bindex::core::design::constrained::{component_bounds, time_opt_alg};
use bindex::core::design::range_space;
use bindex::core::design::space_opt::{max_components, space_optimal_best_time};
use bindex::core::design::time_opt::time_optimal;
use bindex_bench::{f3, print_table, Csv};

fn show_case(c: u32, m: u64, csv: &mut Csv) {
    let (n0, n_prime) = component_bounds(c, m).expect("feasible M");
    let mut rows = Vec::new();
    for n in 1..=max_components(c) {
        let so = space_optimal_best_time(c, n).unwrap();
        let to = time_optimal(c, n).unwrap();
        let mark = |s: u64| if s <= m { "fits" } else { "-" };
        rows.push(vec![
            n.to_string(),
            range_space(&so).to_string(),
            mark(range_space(&so)).to_string(),
            range_space(&to).to_string(),
            mark(range_space(&to)).to_string(),
        ]);
        csv.row(&[&c, &m, &n, &range_space(&so), &range_space(&to)])
            .unwrap();
    }
    print_table(
        &format!("Figure 13: bounds for C = {c}, M = {m} bitmaps"),
        &["n", "space-opt space", "<=M?", "time-opt space", "<=M?"],
        &rows,
    );
    let sol = time_opt_alg(c, m).unwrap();
    println!(
        "  n0 = {n0}, n' = {n_prime}{} — solution {} ({} bitmaps, time {})",
        if n0 == n_prime {
            " (fast path: n' = n0)"
        } else {
            ""
        },
        sol,
        range_space(&sol),
        f3(time_range_paper(&sol))
    );
    assert!(sol.n_components() >= n0 && sol.n_components() <= n_prime);
}

fn main() {
    let mut csv = Csv::create(
        "fig13_bounds",
        &["cardinality", "m", "n", "space_opt_space", "time_opt_space"],
    )
    .unwrap();
    // Case (a): M generous enough that the n0-component time-optimal fits.
    show_case(1000, 510, &mut csv);
    // Case (b): n' > n0 — the interesting search window.
    show_case(1000, 100, &mut csv);
    println!("\nCSV: {}", csv.path().display());
}
