//! Deterministic fault injection for storage robustness tests.
//!
//! [`FaultStore`] wraps any [`ByteStore`] and perturbs its operations
//! according to a seeded [`FaultPlan`]: transient read errors (retryable),
//! silent bit flips, truncated reads, and torn (partial) writes. Faults
//! are a pure function of the plan's seed, the file name, and the
//! operation sequence number, so a failing test case replays exactly.
//! Injected faults are tallied in [`FaultCounters`].

use std::io;
use std::sync::Mutex;

use crate::store::ByteStore;

/// SplitMix64, private to the fault layer so the storage crate stays
/// dependency-free (the relation crate's `Rng` would invert the layering).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, enough to give distinct files distinct fault positions.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// What a matching rule does to the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// The read fails with [`io::ErrorKind::Interrupted`] (transient).
    TransientError,
    /// One deterministically-chosen bit of the returned data is flipped.
    BitFlip,
    /// Only the first `keep` bytes of the file are returned.
    Truncate(usize),
    /// Only a deterministically-chosen prefix of the data is persisted.
    TornWrite,
}

#[derive(Debug, Clone)]
struct Rule {
    /// Substring match against the file name; empty matches every file.
    pattern: String,
    kind: FaultKind,
    /// Fire on every `nth` matching operation (1 = every one).
    every_nth: u64,
    /// Remaining firings; `None` = unlimited.
    budget: Option<u64>,
    /// Matching operations seen so far.
    seen: u64,
}

impl Rule {
    fn fire(&mut self) -> bool {
        self.seen += 1;
        if !self.seen.is_multiple_of(self.every_nth) {
            return false;
        }
        match &mut self.budget {
            Some(0) => false,
            Some(n) => {
                *n -= 1;
                true
            }
            None => true,
        }
    }
}

/// A seeded, ordered list of fault rules. Build with the `with_*`
/// methods, then hand to [`FaultStore::new`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    /// Mutation-byte budget after which the store "crashes" (every later
    /// mutation fails); `None` = never.
    crash_after: Option<u64>,
    /// Record every mutation in a replayable trace.
    trace: bool,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
            crash_after: None,
            trace: false,
        }
    }

    fn push(mut self, pattern: &str, kind: FaultKind, every_nth: u64, budget: Option<u64>) -> Self {
        assert!(every_nth >= 1, "every_nth must be at least 1");
        self.rules.push(Rule {
            pattern: pattern.to_string(),
            kind,
            every_nth,
            budget,
            seen: 0,
        });
        self
    }

    /// The first `count` reads of files whose name contains `pattern`
    /// fail with a transient [`io::ErrorKind::Interrupted`] error.
    pub fn with_transient_reads(self, pattern: &str, count: u64) -> Self {
        self.push(pattern, FaultKind::TransientError, 1, Some(count))
    }

    /// Every `nth` read (of any file) fails with a transient error.
    pub fn with_transient_every_nth_read(self, nth: u64) -> Self {
        self.push("", FaultKind::TransientError, nth, None)
    }

    /// Every read of files whose name contains `pattern` returns data
    /// with one seeded bit flipped (silent corruption).
    pub fn with_bit_flip(self, pattern: &str) -> Self {
        self.push(pattern, FaultKind::BitFlip, 1, None)
    }

    /// The first `count` reads of files whose name contains `pattern`
    /// return data with one seeded bit flipped; after the budget is spent
    /// reads are clean again. This models a corrupted-then-repaired store:
    /// chaos stages use it so that a later scrub-and-repair pass (which
    /// rewrites the files) leaves the store genuinely healthy.
    pub fn with_bit_flips(self, pattern: &str, count: u64) -> Self {
        self.push(pattern, FaultKind::BitFlip, 1, Some(count))
    }

    /// Every read of files whose name contains `pattern` returns only the
    /// first `keep` bytes.
    pub fn with_truncated_reads(self, pattern: &str, keep: usize) -> Self {
        self.push(pattern, FaultKind::Truncate(keep), 1, None)
    }

    /// The first `count` writes to files whose name contains `pattern`
    /// persist only a seeded prefix of the data (a torn write).
    pub fn with_torn_writes(self, pattern: &str, count: u64) -> Self {
        self.push(pattern, FaultKind::TornWrite, 1, Some(count))
    }

    /// The process "crashes" once `budget` mutation bytes have been
    /// charged: the mutation that crosses the budget fails — an atomic
    /// `write_file` persists nothing, an `append_file` persists exactly
    /// the remaining-budget prefix (a torn tail) — and every later
    /// mutation fails too. Reads keep working (post-mortem inspection).
    ///
    /// Every mutation is charged its data length with a one-byte floor,
    /// so zero-length operations (`sync_file`, `remove_file`) are
    /// distinct crash points. Combined with the trace of a clean run
    /// ([`FaultStore::write_trace`] under [`FaultPlan::with_write_trace`])
    /// this enumerates a deterministic crash-point matrix: every
    /// operation boundary plus any mid-operation byte offset.
    pub fn with_crash_after_bytes(mut self, budget: u64) -> Self {
        self.crash_after = Some(budget);
        self
    }

    /// Records every mutating operation (name and cumulative charged
    /// bytes) for retrieval via [`FaultStore::write_trace`]. Off by
    /// default — the trace grows without bound on long workloads.
    pub fn with_write_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// Tallies of the faults actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Reads failed with a transient error.
    pub transient_errors: u64,
    /// Reads returned with a flipped bit.
    pub bit_flips: u64,
    /// Reads returned truncated.
    pub truncated_reads: u64,
    /// Writes persisted partially.
    pub torn_writes: u64,
}

impl FaultCounters {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.transient_errors + self.bit_flips + self.truncated_reads + self.torn_writes
    }
}

#[derive(Debug)]
struct FaultState {
    rules: Vec<Rule>,
    counters: FaultCounters,
    /// Remaining mutation-byte budget before the injected crash.
    crash_remaining: Option<u64>,
    /// Once set, every mutation fails.
    crashed: bool,
    /// Mutation bytes charged so far (data length, one-byte floor).
    written: u64,
    /// `Some` when tracing: (op:file, cumulative charged bytes) pairs.
    trace: Option<Vec<(String, u64)>>,
}

/// What a charged mutation may do, given the crash budget.
enum Charge {
    /// The whole operation proceeds.
    Proceed,
    /// The crash point landed inside (or before) this operation: persist
    /// at most `keep` bytes, then fail.
    Crash {
        /// Surviving prefix length for append-style mutations; atomic
        /// replaces persist nothing regardless.
        keep: u64,
    },
}

fn crash_error(op: &str, name: &str) -> io::Error {
    io::Error::other(format!("injected crash: {op} {name} rejected"))
}

/// A [`ByteStore`] wrapper that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultStore<S: ByteStore> {
    inner: S,
    seed: u64,
    state: Mutex<FaultState>,
}

impl<S: ByteStore> FaultStore<S> {
    /// Wraps `inner` with the fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            seed: plan.seed,
            state: Mutex::new(FaultState {
                rules: plan.rules,
                counters: FaultCounters::default(),
                crash_remaining: plan.crash_after,
                crashed: false,
                written: 0,
                trace: plan.trace.then(Vec::new),
            }),
        }
    }

    /// Counters of the faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.lock().counters
    }

    /// Mutation bytes charged so far (data length, one-byte floor per
    /// operation) — the coordinate system of
    /// [`FaultPlan::with_crash_after_bytes`].
    pub fn bytes_written(&self) -> u64 {
        self.lock().written
    }

    /// `true` once the injected crash point has been hit.
    pub fn has_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The mutation trace of a [`FaultPlan::with_write_trace`] run:
    /// `(op:file, cumulative charged bytes)` per mutation, in order. A
    /// crash harness records this on a clean run, then replays with
    /// [`FaultPlan::with_crash_after_bytes`] at every boundary and
    /// mid-operation offset it exposes. Empty when tracing is off.
    pub fn write_trace(&self) -> Vec<(String, u64)> {
        self.lock().trace.clone().unwrap_or_default()
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding the fault plan.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Charges a mutation of `len` data bytes against the crash budget
    /// (one-byte floor) and appends it to the trace when tracing.
    fn charge(&self, op: &str, name: &str, len: u64) -> Charge {
        let mut st = self.lock();
        if st.crashed {
            return Charge::Crash { keep: 0 };
        }
        let cost = len.max(1);
        let keep = match st.crash_remaining {
            Some(remaining) if remaining < cost => {
                st.crashed = true;
                Some(remaining.min(len))
            }
            _ => {
                if let Some(remaining) = &mut st.crash_remaining {
                    *remaining -= cost;
                }
                None
            }
        };
        st.written += keep.unwrap_or(cost);
        let written = st.written;
        if let Some(trace) = &mut st.trace {
            trace.push((format!("{op}:{name}"), written));
        }
        match keep {
            Some(keep) => Charge::Crash { keep },
            None => Charge::Proceed,
        }
    }

    /// Deterministic value in `0..bound` for this (file, occurrence).
    fn roll(&self, name: &str, salt: u64, bound: u64) -> u64 {
        let mut s = self.seed ^ hash_name(name) ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D);
        if bound == 0 {
            return 0;
        }
        splitmix64(&mut s) % bound
    }
}

impl<S: ByteStore> ByteStore for FaultStore<S> {
    fn write_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        // Crash budget first: an atomic replace that crashes persists
        // nothing (the temp file never got renamed into place).
        if let Charge::Crash { .. } = self.charge("write", name, data.len() as u64) {
            return Err(crash_error("write", name));
        }
        let mut torn = None;
        {
            let mut st = self.lock();
            for rule in st.rules.iter_mut() {
                if rule.kind == FaultKind::TornWrite && name.contains(&rule.pattern) && rule.fire()
                {
                    torn = Some(rule.seen);
                    break;
                }
            }
            if torn.is_some() {
                st.counters.torn_writes += 1;
            }
        }
        match torn {
            Some(occurrence) => {
                // Persist a strict prefix: the write started but did not finish.
                let keep = self.roll(name, occurrence, data.len().max(1) as u64) as usize;
                self.inner.write_file(name, &data[..keep])
            }
            None => self.inner.write_file(name, data),
        }
    }

    /// Appends honor both injections: a crash persists exactly the
    /// remaining-budget prefix (a torn log tail), and a matching
    /// [`FaultPlan::with_torn_writes`] rule models a **torn fsync** —
    /// a seeded prefix lands but the operation reports failure, so a
    /// correct caller must not acknowledge the batch.
    fn append_file(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        match self.charge("append", name, data.len() as u64) {
            Charge::Crash { keep } => {
                if keep > 0 {
                    self.inner.append_file(name, &data[..keep as usize])?;
                }
                Err(crash_error("append", name))
            }
            Charge::Proceed => {
                let mut torn = None;
                {
                    let mut st = self.lock();
                    for rule in st.rules.iter_mut() {
                        if rule.kind == FaultKind::TornWrite
                            && name.contains(&rule.pattern)
                            && rule.fire()
                        {
                            torn = Some(rule.seen);
                            break;
                        }
                    }
                    if torn.is_some() {
                        st.counters.torn_writes += 1;
                    }
                }
                match torn {
                    Some(occurrence) => {
                        let keep = self.roll(name, occurrence, data.len().max(1) as u64) as usize;
                        self.inner.append_file(name, &data[..keep])?;
                        Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            format!("injected torn fsync appending {name}"),
                        ))
                    }
                    None => self.inner.append_file(name, data),
                }
            }
        }
    }

    fn sync_file(&mut self, name: &str) -> io::Result<()> {
        match self.charge("sync", name, 0) {
            Charge::Crash { .. } => Err(crash_error("sync", name)),
            Charge::Proceed => self.inner.sync_file(name),
        }
    }

    fn remove_file(&mut self, name: &str) -> io::Result<()> {
        match self.charge("remove", name, 0) {
            Charge::Crash { .. } => Err(crash_error("remove", name)),
            Charge::Proceed => self.inner.remove_file(name),
        }
    }

    fn read_file(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut fault = None;
        {
            let mut st = self.lock();
            for rule in st.rules.iter_mut() {
                if rule.kind != FaultKind::TornWrite && name.contains(&rule.pattern) && rule.fire()
                {
                    fault = Some((rule.kind, rule.seen));
                    break;
                }
            }
            match fault {
                Some((FaultKind::TransientError, _)) => st.counters.transient_errors += 1,
                Some((FaultKind::BitFlip, _)) => st.counters.bit_flips += 1,
                Some((FaultKind::Truncate(_), _)) => st.counters.truncated_reads += 1,
                _ => {}
            }
        }
        match fault {
            Some((FaultKind::TransientError, _)) => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault reading {name}"),
            )),
            Some((FaultKind::BitFlip, occurrence)) => {
                let mut data = self.inner.read_file(name)?;
                if !data.is_empty() {
                    let bit = self.roll(name, occurrence, data.len() as u64 * 8);
                    data[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Ok(data)
            }
            Some((FaultKind::Truncate(keep), _)) => {
                let mut data = self.inner.read_file(name)?;
                data.truncate(keep);
                Ok(data)
            }
            _ => self.inner.read_file(name),
        }
    }

    fn file_size(&self, name: &str) -> io::Result<u64> {
        self.inner.file_size(name)
    }

    fn file_names(&self) -> io::Result<Vec<String>> {
        self.inner.file_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn seeded_store() -> MemStore {
        let mut m = MemStore::new();
        m.write_file("a.bmp", &[0xFF; 32]).unwrap();
        m.write_file("b.cmp", &[0x00; 32]).unwrap();
        m
    }

    #[test]
    fn clean_plan_is_transparent() {
        let fs = FaultStore::new(seeded_store(), FaultPlan::new(1));
        assert_eq!(fs.read_file("a.bmp").unwrap(), vec![0xFF; 32]);
        assert_eq!(fs.counters().total(), 0);
    }

    #[test]
    fn transient_reads_fail_then_recover() {
        let fs = FaultStore::new(
            seeded_store(),
            FaultPlan::new(1).with_transient_reads("a", 2),
        );
        for _ in 0..2 {
            let err = fs.read_file("a.bmp").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        assert_eq!(fs.read_file("a.bmp").unwrap(), vec![0xFF; 32]);
        assert_eq!(fs.read_file("b.cmp").unwrap(), vec![0x00; 32]); // unmatched
        assert_eq!(fs.counters().transient_errors, 2);
    }

    #[test]
    fn every_nth_read_fails() {
        let fs = FaultStore::new(
            seeded_store(),
            FaultPlan::new(1).with_transient_every_nth_read(3),
        );
        let mut failures = 0;
        for _ in 0..9 {
            if fs.read_file("a.bmp").is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(fs.counters().transient_errors, 3);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit_deterministically() {
        let fs = FaultStore::new(seeded_store(), FaultPlan::new(42).with_bit_flip("a.bmp"));
        let first = fs.read_file("a.bmp").unwrap();
        let diff: u32 = first
            .iter()
            .zip([0xFFu8; 32])
            .map(|(&g, w)| (g ^ w).count_ones())
            .sum();
        assert_eq!(diff, 1);
        // Same seed, same occurrence number on a fresh store: same flip.
        let fs2 = FaultStore::new(seeded_store(), FaultPlan::new(42).with_bit_flip("a.bmp"));
        assert_eq!(fs2.read_file("a.bmp").unwrap(), first);
        assert_eq!(fs.counters().bit_flips, 1);
    }

    #[test]
    fn truncated_reads_shorten() {
        let fs = FaultStore::new(
            seeded_store(),
            FaultPlan::new(1).with_truncated_reads("b.cmp", 5),
        );
        assert_eq!(fs.read_file("b.cmp").unwrap().len(), 5);
        assert_eq!(fs.read_file("a.bmp").unwrap().len(), 32);
        assert_eq!(fs.counters().truncated_reads, 1);
    }

    #[test]
    fn crash_budget_fails_mutations_at_the_byte_boundary() {
        // Budget 10: an 8-byte write proceeds, the next 8-byte append
        // crosses the budget and persists exactly the 2 remaining bytes.
        let mut fs = FaultStore::new(
            MemStore::new(),
            FaultPlan::new(1)
                .with_crash_after_bytes(10)
                .with_write_trace(),
        );
        fs.write_file("w.bin", &[1u8; 8]).unwrap();
        let err = fs.append_file("log", &[2u8; 8]).unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert!(fs.has_crashed());
        assert_eq!(fs.inner().read_file("log").unwrap(), vec![2u8; 2]);
        // After the crash every mutation fails; reads still work.
        assert!(fs.write_file("x", &[0]).is_err());
        assert!(fs.sync_file("w.bin").is_err());
        assert!(fs.remove_file("w.bin").is_err());
        assert_eq!(fs.read_file("w.bin").unwrap(), vec![1u8; 8]);
        assert_eq!(fs.bytes_written(), 10);
        let trace = fs.write_trace();
        assert_eq!(trace[0], ("write:w.bin".to_string(), 8));
        assert_eq!(trace[1], ("append:log".to_string(), 10));
    }

    #[test]
    fn crash_mid_atomic_write_persists_nothing() {
        let mut fs = FaultStore::new(seeded_store(), FaultPlan::new(1).with_crash_after_bytes(3));
        let err = fs.write_file("a.bmp", &[7u8; 16]).unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        // The old content survives untouched: atomic replace semantics.
        assert_eq!(fs.inner().read_file("a.bmp").unwrap(), vec![0xFF; 32]);
    }

    #[test]
    fn zero_length_mutations_are_distinct_crash_points() {
        // Budget 1 admits the 1-byte append; the sync (1-byte floor)
        // crashes — the torn-fsync boundary.
        let mut fs = FaultStore::new(MemStore::new(), FaultPlan::new(1).with_crash_after_bytes(1));
        fs.append_file("log", &[5]).unwrap();
        assert!(fs.sync_file("log").is_err());
        assert_eq!(fs.inner().read_file("log").unwrap(), vec![5]);
    }

    #[test]
    fn torn_fsync_on_append_persists_prefix_and_errors() {
        let mut fs = FaultStore::new(
            MemStore::new(),
            FaultPlan::new(7).with_torn_writes("log", 1),
        );
        let err = fs.append_file("log", &[9u8; 100]).unwrap_err();
        assert!(err.to_string().contains("torn fsync"), "{err}");
        let stored = fs.inner().read_file("log").unwrap();
        assert!(stored.len() < 100, "got {} bytes", stored.len());
        // Budget exhausted: the next append lands whole and succeeds.
        fs.append_file("log", &[9u8; 10]).unwrap();
        assert_eq!(
            fs.inner().read_file("log").unwrap().len(),
            stored.len() + 10
        );
        assert_eq!(fs.counters().torn_writes, 1);
    }

    #[test]
    fn torn_write_persists_strict_prefix() {
        let mut fs = FaultStore::new(MemStore::new(), FaultPlan::new(7).with_torn_writes("x", 1));
        fs.write_file("x.bin", &[9u8; 100]).unwrap();
        let stored = fs.inner().read_file("x.bin").unwrap();
        assert!(stored.len() < 100, "got {} bytes", stored.len());
        assert!(stored.iter().all(|&b| b == 9));
        // Budget exhausted: second write lands whole.
        fs.write_file("x.bin", &[9u8; 100]).unwrap();
        assert_eq!(fs.inner().read_file("x.bin").unwrap().len(), 100);
        assert_eq!(fs.counters().torn_writes, 1);
    }
}
