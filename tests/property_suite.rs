//! Property-based tests (proptest) over the core data structures and
//! invariants: bit-vector algebra, codec round-trips, mixed-radix
//! decomposition, evaluator/oracle equivalence on random columns, and the
//! Theorem 8.1 refinement invariants.

use bindex::compress::wah::WahBitmap;
use bindex::compress::{Codec, Lzss, Rle};
use bindex::core::cost::{self, time_range_paper};
use bindex::core::design::constrained::refine_index;
use bindex::core::design::range_space;
use bindex::core::eval::{evaluate, naive, Algorithm};
use bindex::relation::query::{Op, SelectionQuery};
use bindex::relation::Column;
use bindex::{Base, BitVec, BitmapIndex, Encoding, IndexSpec};
use proptest::prelude::*;

fn bitvec_strategy(max_len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), 0..max_len).prop_map(|bits| BitVec::from_bools(&bits))
}

fn bitvec_pair(max_len: usize) -> impl Strategy<Value = (BitVec, BitVec)> {
    (0..max_len).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<bool>(), len..=len),
            prop::collection::vec(any::<bool>(), len..=len),
        )
            .prop_map(|(a, b)| (BitVec::from_bools(&a), BitVec::from_bools(&b)))
    })
}

/// A well-defined base with product in [2, 4096].
fn base_strategy() -> impl Strategy<Value = Base> {
    prop::collection::vec(2u32..13, 1..5)
        .prop_filter("bounded product", |v| {
            v.iter().map(|&b| u64::from(b)).product::<u64>() <= 4096
        })
        .prop_map(|v| Base::new(v).unwrap())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop::sample::select(Op::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- bit-vector algebra ----

    #[test]
    fn bv_double_complement_is_identity(a in bitvec_strategy(300)) {
        prop_assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn bv_demorgan((a, b) in bitvec_pair(300)) {
        prop_assert_eq!((&a & &b).complement(), &a.complement() | &b.complement());
        prop_assert_eq!((&a | &b).complement(), &a.complement() & &b.complement());
    }

    #[test]
    fn bv_xor_is_symmetric_difference((a, b) in bitvec_pair(300)) {
        let direct = &a ^ &b;
        let mut or = a.clone() | &b;
        or.and_not_assign(&(&a & &b));
        prop_assert_eq!(direct, or);
    }

    #[test]
    fn bv_popcount_consistency((a, b) in bitvec_pair(300)) {
        // |A| + |B| = |A∪B| + |A∩B|
        prop_assert_eq!(
            a.count_ones() + b.count_ones(),
            (&a | &b).count_ones() + (&a & &b).count_ones()
        );
    }

    #[test]
    fn bv_bytes_roundtrip(a in bitvec_strategy(500)) {
        prop_assert_eq!(BitVec::from_bytes(a.len(), &a.to_bytes()), a);
    }

    #[test]
    fn bv_iter_ones_sorted_and_complete(a in bitvec_strategy(500)) {
        let ones: Vec<usize> = a.iter_ones().collect();
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(ones.len(), a.count_ones());
        for i in ones {
            prop_assert!(a.get(i));
        }
    }

    // ---- codecs ----

    #[test]
    fn rle_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let c = Rle.compress(&data);
        prop_assert_eq!(Rle.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let codec = Lzss::default();
        let c = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_runny(runs in prop::collection::vec((any::<u8>(), 1usize..200), 0..40) ) {
        let data: Vec<u8> = runs.iter().flat_map(|&(b, n)| std::iter::repeat_n(b, n)).collect();
        let codec = Lzss::default();
        let c = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn wah_roundtrip_and_ops((a, b) in bitvec_pair(600)) {
        let (wa, wb) = (WahBitmap::from_bitvec(&a), WahBitmap::from_bitvec(&b));
        prop_assert_eq!(wa.to_bitvec(), a.clone());
        prop_assert_eq!(wa.count_ones(), a.count_ones());
        prop_assert_eq!(wa.and(&wb).to_bitvec(), &a & &b);
        prop_assert_eq!(wa.or(&wb).to_bitvec(), &a | &b);
        prop_assert_eq!(wa.xor(&wb).to_bitvec(), &a ^ &b);
        prop_assert_eq!(wa.not().to_bitvec(), a.complement());
    }

    // ---- mixed-radix decomposition ----

    #[test]
    fn decompose_compose_roundtrip(base in base_strategy(), vs in prop::collection::vec(0u32..4096, 1..20)) {
        let product = base.product() as u32;
        for v in vs {
            let v = v % product;
            let digits = base.decompose(v).unwrap();
            prop_assert_eq!(digits.len(), base.n_components());
            for (i, &d) in digits.iter().enumerate() {
                prop_assert!(d < base.as_lsb_slice()[i]);
            }
            prop_assert_eq!(base.compose(&digits).unwrap(), v);
        }
    }

    #[test]
    fn decomposition_preserves_order(base in base_strategy()) {
        // Mixed-radix with msb-first digit comparison is order-preserving.
        let product = base.product() as u32;
        let step = (product / 50).max(1);
        let mut prev: Option<Vec<u32>> = None;
        let mut v = 0;
        while v < product {
            let mut digits = base.decompose(v).unwrap();
            digits.reverse(); // msb first for lexicographic comparison
            if let Some(p) = &prev {
                prop_assert!(p < &digits);
            }
            prev = Some(digits);
            v += step;
        }
    }

    // ---- evaluation equivalence on random columns ----

    #[test]
    fn evaluators_match_oracle(
        base in base_strategy(),
        values in prop::collection::vec(0u32..4096, 1..120),
        op in op_strategy(),
        constant in 0u32..4096,
    ) {
        let c = base.product() as u32;
        let values: Vec<u32> = values.into_iter().map(|v| v % c).collect();
        let column = Column::new(values, c);
        let q = SelectionQuery::new(op, constant % c);
        let want = naive::evaluate(&column, q);
        for (encoding, algos) in [
            (Encoding::Range, &[Algorithm::RangeEval, Algorithm::RangeEvalOpt][..]),
            (Encoding::Equality, &[Algorithm::EqualityEval][..]),
            (Encoding::Interval, &[Algorithm::IntervalEval][..]),
        ] {
            let idx = BitmapIndex::build(&column, IndexSpec::new(base.clone(), encoding)).unwrap();
            for &algo in algos {
                let (found, stats) = evaluate(&mut idx.source(), q, algo).unwrap();
                prop_assert_eq!(&found, &want, "{:?} {:?} {}", encoding, algo, q);
                prop_assert_eq!(
                    stats.scans,
                    cost::predicted_scans(&base, q, algo),
                    "scan prediction {:?} {}", algo, q
                );
            }
        }
    }

    // ---- design-layer invariants ----

    #[test]
    fn refine_index_theorem_8_1(base in base_strategy()) {
        // Refinement never increases space or time and keeps coverage,
        // for any cardinality the base covers.
        let product = base.product() as u32;
        for c in [product, product / 2 + 1, (product * 3 / 4).max(2)] {
            if !base.covers(c) || c < 2 { continue; }
            let refined = refine_index(&base, c);
            prop_assert!(refined.covers(c), "{} -> {} does not cover {}", base, refined, c);
            prop_assert!(range_space(&refined) <= range_space(&base));
            prop_assert!(time_range_paper(&refined) <= time_range_paper(&base) + 1e-12,
                "{} -> {} time grew for C={}", base, refined, c);
        }
    }

    #[test]
    fn space_formulas_match_built_indexes(base in base_strategy()) {
        let c = base.product() as u32;
        let column = Column::new(vec![0, c - 1, c / 2], c);
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let spec = IndexSpec::new(base.clone(), encoding);
            let expected = spec.stored_bitmaps();
            let idx = BitmapIndex::build(&column, spec).unwrap();
            let actual: u64 = idx.components().iter().map(|comp| comp.len() as u64).sum();
            prop_assert_eq!(actual, expected);
        }
    }
}
