//! A minimal micro-benchmark harness with a Criterion-shaped API.
//!
//! The build environment has no network access to a crates registry, so
//! the `benches/` targets use this in-repo harness instead of Criterion:
//! same `benchmark_group` / `bench_function` / `iter` / `iter_batched`
//! call shapes, but a deliberately simple measurement loop (calibrate,
//! take a few samples, report the best) printing one line per benchmark.

use std::hint::black_box;
use std::time::Instant;

/// How batched inputs are grouped per measurement (API compatibility;
/// this harness times every routine call individually regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Declared per-iteration work, used to report a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness handle (one per process).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 5,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Number of samples per benchmark (the best is reported).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl AsRef<str>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            best_ns: f64::INFINITY,
        };
        f(&mut b);
        let ns = b.best_ns;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
                let mib_s = bytes as f64 / (ns * 1e-9) / (1024.0 * 1024.0);
                format!("  ({mib_s:.1} MiB/s)")
            }
            Some(Throughput::Elements(elems)) if ns > 0.0 => {
                let e_s = elems as f64 / (ns * 1e-9);
                format!("  ({e_s:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!("{}/{}: {:.0} ns/iter{}", self.name, id.as_ref(), ns, rate);
    }

    /// Ends the group (no-op; kept for API familiarity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    best_ns: f64,
}

impl Bencher {
    /// Times `f`, excluding nothing.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate the per-call cost so each sample runs ~20ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.02 / once) as usize).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
            self.best_ns = self.best_ns.min(ns);
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let probe = setup();
        let t0 = Instant::now();
        black_box(routine(probe));
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.02 / once) as usize).clamp(1, 100_000);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_finite_time() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("microbench_selftest");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(8));
        let mut ran = 0u64;
        g.bench_function("sum", |b| b.iter(|| ran += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran > 0);
    }
}
