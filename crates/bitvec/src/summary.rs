//! Hierarchical summary bitmaps: one bit per fixed-width window of a
//! stored bitmap recording "any bit set in this window".
//!
//! Summaries are the pruning layer of the v4 on-disk format
//! (arXiv 2108.13735 style): segmented execution consults a slot's
//! summary *before* fetching it, and skips fetch + decode of segments
//! whose every overlapping window is provably dead. The window width is
//! fixed at build time ([`SUMMARY_WINDOW_BITS`]) and independent of the
//! runtime segment size — a segment `[lo, hi)` is dead iff every summary
//! window intersecting it is dead, which is sound for any segment size.
//!
//! Soundness rule: a clear `any` bit **guarantees** the window is all
//! zeros; a set bit promises nothing. Serving zeros for a dead window is
//! therefore exact bitmap content, safe under every operator (AND, OR,
//! XOR, NOT), not only AND-family plans.
//!
//! The dual `all` plane records saturation: a **set** `all` bit
//! guarantees the window is entirely ones (a clear bit promises
//! nothing), so serving a ones literal for a saturated window is equally
//! exact. Threshold plans use both planes per window — saturated
//! operands raise the count lower bound, dead operands lower the upper
//! bound — to decide a window without fetching any slot.

use crate::bitvec::BitVec;

/// Bits summarized per summary bit. Chosen as a divisor of the default
/// execution segment (2^18 bits = 8 windows) so a segment probe touches a
/// handful of summary bits, while staying fine-grained enough that
/// clustered data yields long dead runs.
pub const SUMMARY_WINDOW_BITS: usize = 1 << 15;

/// Summary of one stored bitmap: bit `w` of `any` is set iff the source
/// bitmap has any set bit in `[w * window_bits, (w+1) * window_bits)`;
/// bit `w` of `all` is set iff that window (clamped to `len`) is
/// entirely ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSummary {
    /// Bits covered by the summarized bitmap.
    pub len: usize,
    /// Window width in bits.
    pub window_bits: usize,
    /// One bit per window, packed: clear **guarantees** all-zeros.
    pub any: BitVec,
    /// One bit per window, packed: set **guarantees** all-ones. A summary
    /// decoded from a legacy block carries all zeros here — no guarantee,
    /// never wrong.
    pub all: BitVec,
}

impl SlotSummary {
    /// Number of windows needed to cover `len` bits at `window_bits` each.
    pub fn windows_for(len: usize, window_bits: usize) -> usize {
        len.div_ceil(window_bits.max(1))
    }

    /// Builds the summary of `bm` with the default window width.
    pub fn build(bm: &BitVec) -> Self {
        Self::build_with_window(bm, SUMMARY_WINDOW_BITS)
    }

    /// Builds the summary of `bm` with an explicit window width, which
    /// must be a positive multiple of the word size (so windows can be
    /// probed through zero-copy word-aligned views).
    pub fn build_with_window(bm: &BitVec, window_bits: usize) -> Self {
        assert!(
            window_bits > 0 && window_bits.is_multiple_of(crate::WORD_BITS),
            "summary window must be a positive multiple of {}",
            crate::WORD_BITS
        );
        let n_windows = Self::windows_for(bm.len(), window_bits);
        let mut any = BitVec::zeros(n_windows);
        let mut all = BitVec::zeros(n_windows);
        for w in 0..n_windows {
            let lo = w * window_bits;
            let hi = ((w + 1) * window_bits).min(bm.len());
            let view = bm.view_range(lo, hi);
            if !view.none() {
                any.set(w, true);
                if view.count_ones() == hi - lo {
                    all.set(w, true);
                }
            }
        }
        Self {
            len: bm.len(),
            window_bits,
            any,
            all,
        }
    }

    /// `true` iff the summarized bitmap **may** have a set bit in
    /// `[lo, hi)`. `false` is a guarantee of all-zeros over the range.
    /// Ranges beyond `len` count as dead.
    pub fn range_any(&self, lo: usize, hi: usize) -> bool {
        let hi = hi.min(self.len);
        if lo >= hi {
            return false;
        }
        let w_lo = lo / self.window_bits;
        let w_hi = (hi - 1) / self.window_bits;
        (w_lo..=w_hi).any(|w| self.any.get(w))
    }

    /// `true` **guarantees** the summarized bitmap is entirely ones over
    /// `[lo, hi)`; `false` promises nothing. Empty ranges and ranges
    /// reaching past `len` report `false` (no guarantee to give).
    pub fn range_all(&self, lo: usize, hi: usize) -> bool {
        if lo >= hi || hi > self.len {
            return false;
        }
        let w_lo = lo / self.window_bits;
        let w_hi = (hi - 1) / self.window_bits;
        (w_lo..=w_hi).all(|w| self.all.get(w))
    }
}

/// The summaries of every stored bitmap of an index, flattened in
/// component-major order with the optional non-null bitmap's summary
/// last. This is what the v4 summary block deserializes into and what
/// the executor probes per segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSummaries {
    n_rows: usize,
    window_bits: usize,
    /// `offsets[c]` is the flat index of component `c+1`'s slot 0.
    offsets: Vec<usize>,
    slots: Vec<SlotSummary>,
    nn: Option<SlotSummary>,
}

impl IndexSummaries {
    /// Assembles index summaries from per-component slot summaries (the
    /// outer vec is component-major: `slots[i]` lists component `i+1`'s
    /// stored bitmaps in slot order).
    pub fn new(
        n_rows: usize,
        window_bits: usize,
        slots: Vec<Vec<SlotSummary>>,
        nn: Option<SlotSummary>,
    ) -> Self {
        let mut offsets = Vec::with_capacity(slots.len());
        let mut flat = Vec::new();
        for comp in slots {
            offsets.push(flat.len());
            flat.extend(comp);
        }
        Self {
            n_rows,
            window_bits,
            offsets,
            slots: flat,
            nn,
        }
    }

    /// Builds summaries directly from in-memory bitmaps (the write-time
    /// path: `components[i]` lists component `i+1`'s stored bitmaps).
    pub fn build(n_rows: usize, components: &[Vec<BitVec>], nn: Option<&BitVec>) -> Self {
        let slots = components
            .iter()
            .map(|comp| comp.iter().map(SlotSummary::build).collect())
            .collect();
        Self::new(
            n_rows,
            SUMMARY_WINDOW_BITS,
            slots,
            nn.map(SlotSummary::build),
        )
    }

    /// Rows covered by the summarized index.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Window width the summaries were built with.
    pub fn window_bits(&self) -> usize {
        self.window_bits
    }

    /// Total summarized slots (excluding the non-null bitmap).
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// The summary of stored bitmap `slot` of component `comp` (1-based
    /// component), or `None` when the coordinates fall outside the
    /// summarized shape — callers must then fetch and check.
    pub fn get(&self, comp: usize, slot: usize) -> Option<&SlotSummary> {
        let base = *self.offsets.get(comp.checked_sub(1)?)?;
        let end = self.offsets.get(comp).copied().unwrap_or(self.slots.len());
        let idx = base.checked_add(slot)?;
        if idx >= end {
            return None;
        }
        self.slots.get(idx)
    }

    /// The non-null bitmap's summary, if one was recorded.
    pub fn nn(&self) -> Option<&SlotSummary> {
        self.nn.as_ref()
    }

    /// Per-component slot counts, for shape validation against an index.
    pub fn slots_per_component(&self) -> Vec<usize> {
        (0..self.offsets.len())
            .map(|c| {
                let base = self.offsets[c];
                let end = self.offsets.get(c + 1).copied().unwrap_or(self.slots.len());
                end - base
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_reflects_window_occupancy() {
        let mut bm = BitVec::zeros(5 * SUMMARY_WINDOW_BITS + 17);
        bm.set(3, true); // window 0
        bm.set(2 * SUMMARY_WINDOW_BITS, true); // window 2
        bm.set(5 * SUMMARY_WINDOW_BITS + 16, true); // tail window 5
        let s = SlotSummary::build(&bm);
        assert_eq!(s.any.len(), 6);
        assert_eq!(
            (0..6).map(|w| s.any.get(w)).collect::<Vec<_>>(),
            vec![true, false, true, false, false, true]
        );
    }

    #[test]
    fn range_any_is_exact_on_window_boundaries_and_sound_inside() {
        let mut bm = BitVec::zeros(4 * SUMMARY_WINDOW_BITS);
        bm.set(SUMMARY_WINDOW_BITS + 5, true);
        let s = SlotSummary::build(&bm);
        assert!(!s.range_any(0, SUMMARY_WINDOW_BITS));
        assert!(s.range_any(SUMMARY_WINDOW_BITS, 2 * SUMMARY_WINDOW_BITS));
        // Sub-window probe inside a live window must stay conservative.
        assert!(s.range_any(2 * SUMMARY_WINDOW_BITS - 1, 2 * SUMMARY_WINDOW_BITS));
        // Straddling ranges see the union.
        assert!(s.range_any(0, 2 * SUMMARY_WINDOW_BITS));
        assert!(!s.range_any(2 * SUMMARY_WINDOW_BITS, 4 * SUMMARY_WINDOW_BITS));
        // Ranges past the end are dead, empty ranges are dead.
        assert!(!s.range_any(4 * SUMMARY_WINDOW_BITS, 8 * SUMMARY_WINDOW_BITS));
        assert!(!s.range_any(7, 7));
    }

    #[test]
    fn range_any_never_underreports_random_bitmaps() {
        // Deterministic pseudo-random occupancy; compare range_any against
        // ground truth on many random ranges.
        let len = 7 * SUMMARY_WINDOW_BITS + 123;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut bm = BitVec::zeros(len);
        let mut ones = Vec::new();
        for _ in 0..200 {
            let pos = (next() % len as u64) as usize;
            bm.set(pos, true);
            ones.push(pos);
        }
        let s = SlotSummary::build(&bm);
        for _ in 0..500 {
            let a = (next() % len as u64) as usize;
            let b = (next() % (len as u64 + 1)) as usize;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let truth = ones.iter().any(|&p| lo <= p && p < hi);
            if truth {
                assert!(s.range_any(lo, hi), "underreported [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn all_plane_reflects_window_saturation() {
        let len = 4 * SUMMARY_WINDOW_BITS + 17;
        let mut bm = BitVec::ones(len);
        bm.set(SUMMARY_WINDOW_BITS + 5, false); // window 1 loses a bit
        let s = SlotSummary::build(&bm);
        assert_eq!(
            (0..5).map(|w| s.all.get(w)).collect::<Vec<_>>(),
            // The partial tail window is saturated over its clamped range.
            vec![true, false, true, true, true]
        );
        assert!(s.range_all(0, SUMMARY_WINDOW_BITS));
        assert!(!s.range_all(0, SUMMARY_WINDOW_BITS + 6));
        assert!(s.range_all(2 * SUMMARY_WINDOW_BITS, len));
        // No guarantee for empty or out-of-range probes.
        assert!(!s.range_all(7, 7));
        assert!(!s.range_all(0, len + 1));
        // `all` never fires on a window with any clear bit, and implies `any`.
        let sparse = SlotSummary::build(&BitVec::from_indices(len, &[3]));
        assert!((0..5).all(|w| !sparse.all.get(w)));
        for w in 0..5 {
            assert!(
                !s.all.get(w) || s.any.get(w),
                "all implies any (window {w})"
            );
        }
    }

    #[test]
    fn index_summaries_shape_and_lookup() {
        let comps = vec![
            vec![BitVec::zeros(100), BitVec::ones(100)],
            vec![BitVec::from_indices(100, &[40])],
        ];
        let s = IndexSummaries::build(100, &comps, None);
        assert_eq!(s.slots_per_component(), vec![2, 1]);
        assert!(!s.get(1, 0).unwrap().range_any(0, 100));
        assert!(s.get(1, 1).unwrap().range_any(0, 100));
        assert!(s.get(2, 0).unwrap().range_any(0, 100));
        assert!(s.get(1, 2).is_none());
        assert!(s.get(3, 0).is_none());
        assert!(s.get(0, 0).is_none());
        assert!(s.nn().is_none());
    }
}
