//! Extension experiment: batch query throughput — single- vs
//! multi-threaded queries/sec through `engine::batch`, and fused k-ary
//! kernels vs the pairwise folds they replace.
//!
//! Not a figure from the paper: the paper prices queries in scans and
//! operations, and this experiment tracks how fast the runtime actually
//! executes them, so later performance PRs have a trajectory to compare
//! against. Emits `BENCH_batch_throughput.json` at the workspace root
//! (and the usual CSV under `results/`).
//!
//! `--quick` shrinks the workload for CI smoke runs; `BINDEX_THREADS`
//! (forwarded by `all_experiments --threads N`) caps the widest
//! multi-thread configuration measured.

use std::time::Instant;

use bindex::bitvec::kernels;
use bindex::engine::batch::{execute_workload, BatchOptions};
use bindex::engine::{ConjunctiveQuery, IndexChoice, Table};
use bindex::relation::gen;
use bindex::relation::query::{Op, SelectionQuery};
use bindex::BitVec;
use bindex_bench::{f2, print_table, results_dir, Csv, RunProvenance};

struct Config {
    rows: usize,
    queries: usize,
    union_bits: usize,
    kernel_reps: usize,
}

fn build_table(rows: usize) -> Table {
    Table::builder()
        .column("qty", gen::uniform(rows, 50, 1), IndexChoice::Knee)
        .column(
            "day",
            gen::uniform(rows, 300, 2),
            IndexChoice::SpaceBudget(40),
        )
        .column("region", gen::uniform(rows, 25, 3), IndexChoice::Knee)
        .build()
        .expect("table builds")
}

fn workload(n: usize) -> Vec<ConjunctiveQuery> {
    (0..n as u32)
        .map(|v| {
            ConjunctiveQuery::new()
                .and("qty", SelectionQuery::new(Op::Gt, v % 50))
                .and("day", SelectionQuery::new(Op::Le, (v * 13) % 300))
                .and("region", SelectionQuery::new(Op::Ne, v % 25))
        })
        .collect()
}

/// Queries/sec of one batch configuration (best of `reps` runs, so a cold
/// first run doesn't understate the steady state). Returns the effective
/// worker count alongside — `BatchOptions` clamps the request to the
/// machine's available parallelism.
fn qps(table: &Table, queries: &[ConjunctiveQuery], threads: usize, reps: usize) -> (usize, f64) {
    let opts = BatchOptions::with_threads(threads);
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = execute_workload(table, queries, &opts);
        assert!(out.health.all_ok(), "workload executes: {:?}", out.health);
        assert_eq!(out.outcomes.len(), queries.len());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (opts.threads(), queries.len() as f64 / best)
}

/// Seconds per 16-way union, pairwise vs fused (best of `reps`).
fn union_times(bits: usize, reps: usize) -> (f64, f64, f64, f64) {
    let operands: Vec<BitVec> = (0..16)
        .map(|s| BitVec::from_fn(bits, |i| (i * 2654435761 + s).is_multiple_of(7)))
        .collect();
    let refs: Vec<&BitVec> = operands.iter().collect();
    let time = |f: &mut dyn FnMut() -> usize| {
        let mut best = f64::MAX;
        let mut sink = 0;
        for _ in 0..reps {
            let start = Instant::now();
            sink ^= f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        assert!(sink < usize::MAX);
        best
    };
    let pairwise = time(&mut || {
        let mut acc = operands[0].clone();
        for op in &operands[1..] {
            acc.or_assign(op);
        }
        acc.count_ones()
    });
    let fused = time(&mut || kernels::or_all(&refs).count_ones());
    let count_mat = time(&mut || kernels::or_all(&refs).count_ones());
    let count_fused = time(&mut || kernels::count_or(&refs));
    (pairwise, fused, count_mat, count_fused)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            rows: 20_000,
            queries: 32,
            union_bits: 1 << 16,
            kernel_reps: 20,
        }
    } else {
        Config {
            rows: 200_000,
            queries: 200,
            union_bits: 1 << 20,
            kernel_reps: 200,
        }
    };

    let max_threads = BatchOptions::from_env().threads().max(4);

    let table = build_table(cfg.rows);
    let queries = workload(cfg.queries);

    let mut thread_counts = vec![1usize, 2, 4];
    if max_threads > 4 {
        thread_counts.push(max_threads);
    }
    let provenance = RunProvenance::capture(*thread_counts.iter().max().unwrap());
    let hw_threads = provenance.hardware_threads;
    let reps = if quick { 2 } else { 3 };
    // (requested, effective, qps) — effective can be lower than requested
    // on machines with fewer cores than the sweep asks for.
    let measured: Vec<(usize, usize, f64)> = thread_counts
        .iter()
        .map(|&t| {
            let (effective, q) = qps(&table, &queries, t, reps);
            (t, effective, q)
        })
        .collect();
    let single_qps = measured[0].2;

    let mut rows = Vec::new();
    for &(t, eff, q) in &measured {
        rows.push(vec![
            t.to_string(),
            eff.to_string(),
            f2(q),
            f2(q / single_qps),
        ]);
    }
    print_table(
        "batch throughput (queries/sec)",
        &["requested", "effective", "qps", "speedup"],
        &rows,
    );
    println!(
        "  ({} hardware threads available; speedups are hardware-bound)",
        hw_threads
    );

    let (pair_s, fused_s, count_mat_s, count_fused_s) =
        union_times(cfg.union_bits, cfg.kernel_reps);
    print_table(
        "16-way union kernels",
        &["variant", "seconds", "speedup"],
        &[
            vec![
                "pairwise fold".into(),
                format!("{pair_s:.6}"),
                "1.00".into(),
            ],
            vec![
                "fused or_all".into(),
                format!("{fused_s:.6}"),
                f2(pair_s / fused_s),
            ],
            vec![
                "count via materialize".into(),
                format!("{count_mat_s:.6}"),
                "1.00".into(),
            ],
            vec![
                "fused count_or".into(),
                format!("{count_fused_s:.6}"),
                f2(count_mat_s / count_fused_s),
            ],
        ],
    );

    let mut csv = Csv::create(
        "ext_batch_throughput",
        &[
            "requested_threads",
            "effective_threads",
            "oversubscribed",
            "qps",
            "speedup",
        ],
    )
    .expect("csv");
    for &(t, eff, q) in &measured {
        csv.row(&[&t, &eff, &(t > eff), &f2(q), &f2(q / single_qps)])
            .expect("row");
    }
    println!("\nCSV: {}", csv.path().display());

    // Hand-rolled JSON (no serde in the dependency set).
    let threads_json: Vec<String> = measured
        .iter()
        .map(|(t, eff, q)| {
            format!(
                "    {{\"requested_threads\": {t}, \"effective_threads\": {eff}, \
                 \"oversubscribed\": {}, \"qps\": {q:.2}, \"speedup\": {:.3}}}",
                t > eff,
                q / single_qps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"batch_throughput\",\n  \"quick\": {quick},\n  \
         \"rows\": {rows},\n  \"queries\": {nq},\n  {prov},\n  \
         \"batch\": [\n{threads}\n  ],\n  \"union_16way\": {{\n    \
         \"bits\": {bits},\n    \"pairwise_seconds\": {pair:.6},\n    \
         \"fused_seconds\": {fused:.6},\n    \"fused_speedup\": {sp:.3},\n    \
         \"count_materialized_seconds\": {cmat:.6},\n    \
         \"count_fused_seconds\": {cfused:.6},\n    \"count_fused_speedup\": {csp:.3}\n  }}\n}}\n",
        rows = cfg.rows,
        nq = cfg.queries,
        prov = provenance.json_fields(),
        threads = threads_json.join(",\n"),
        bits = cfg.union_bits,
        pair = pair_s,
        fused = fused_s,
        sp = pair_s / fused_s,
        cmat = count_mat_s,
        cfused = count_fused_s,
        csp = count_mat_s / count_fused_s,
    );
    let json_path = results_dir()
        .parent()
        .map(|p| p.join("BENCH_batch_throughput.json"))
        .expect("results dir has a parent");
    std::fs::write(&json_path, json).expect("write json");
    println!("JSON: {}", json_path.display());
}
