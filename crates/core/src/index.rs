//! In-memory bitmap index construction and the [`BitmapSource`] abstraction
//! the evaluators read bitmaps through.

use bindex_bitvec::BitVec;
use bindex_relation::Column;

use crate::encoding::{Encoding, IndexSpec};
use crate::error::{Error, Result};

/// Provider of stored bitmaps to the evaluation algorithms.
///
/// The in-memory [`BitmapIndex`] implements this directly (via
/// [`BitmapIndex::source`]); the storage layer provides disk-backed
/// implementations under the BS/CS/IS layouts. `try_fetch` models one
/// *bitmap scan* of stored bitmap `slot` of component `comp` — the unit
/// of the paper's time metric. Slot numbering follows the storage rule of
/// [`Encoding`]: range components store `B^0 … B^{b−2}` in slots
/// `0 … b−2`; equality components with `b > 2` store `E^0 … E^{b−1}`,
/// and `b = 2` components store only `E^1` in slot 0.
///
/// Fetches are fallible: disk-backed sources surface I/O failures as
/// [`Error::Storage`] and corrupted files as [`Error::ChecksumMismatch`],
/// and the whole query path propagates them instead of panicking — a
/// damaged bitmap must never become a silently wrong foundset.
pub trait BitmapSource {
    /// The index layout this source serves.
    fn spec(&self) -> &IndexSpec;

    /// Number of rows (bits per bitmap).
    fn n_rows(&self) -> usize;

    /// Reads stored bitmap `slot` of component `comp` (1-based component,
    /// 0-based slot).
    fn try_fetch(&mut self, comp: usize, slot: usize) -> Result<BitVec>;

    /// The non-null bitmap `B_nn`, or `None` when the attribute has no
    /// nulls (then `B_nn` is implicitly all ones and costs nothing).
    fn try_fetch_nn(&mut self) -> Result<Option<BitVec>>;

    /// Reads stored bitmap `slot` of component `comp` in its stored
    /// execution representation. Sources that keep slots compressed (the
    /// v3 storage layout) override this to hand the executor the
    /// compressed form; the default materializes through
    /// [`BitmapSource::try_fetch`], so every existing source keeps
    /// working unchanged.
    fn try_fetch_repr(&mut self, comp: usize, slot: usize) -> Result<bindex_compress::Repr> {
        self.try_fetch(comp, slot).map(bindex_compress::Repr::from)
    }

    /// The index's hierarchical summary bitmaps, if the backing store
    /// carries them (the v4 layout). Infallible by design: a missing,
    /// corrupt, or shape-mismatched summary block returns `None`, which
    /// only disables segment pruning — the executor then degrades to
    /// fetch-and-check, never to a wrong answer. The default (no
    /// summaries) keeps every existing source working unchanged.
    fn try_fetch_summary(&mut self) -> Option<std::sync::Arc<bindex_bitvec::IndexSummaries>> {
        None
    }
}

/// An in-memory bitmap index over one attribute.
///
/// `components[i-1][j]` is stored bitmap `j` of component `i`.
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    spec: IndexSpec,
    n_rows: usize,
    cardinality: u32,
    components: Vec<Vec<BitVec>>,
    nn: Option<BitVec>,
}

impl BitmapIndex {
    /// Builds the index for `column` under `spec`.
    ///
    /// Fails if the base does not cover the column's cardinality.
    pub fn build(column: &Column, spec: IndexSpec) -> Result<Self> {
        Self::build_inner(column, None, spec)
    }

    /// Builds the index for a column with nulls: rows flagged in
    /// `null_mask` are excluded from every bitmap, and the complement of
    /// the mask is kept as the non-null bitmap `B_nn`.
    pub fn build_with_nulls(column: &Column, null_mask: &BitVec, spec: IndexSpec) -> Result<Self> {
        if null_mask.len() != column.len() {
            return Err(Error::CorruptIndex(format!(
                "null mask has {} bits for {} rows",
                null_mask.len(),
                column.len()
            )));
        }
        Self::build_inner(column, Some(null_mask), spec)
    }

    fn build_inner(column: &Column, null_mask: Option<&BitVec>, spec: IndexSpec) -> Result<Self> {
        spec.check_covers(column.cardinality())?;
        let n_rows = column.len();
        let n = spec.n_components();
        let mut components: Vec<Vec<BitVec>> = (1..=n)
            .map(|i| vec![BitVec::zeros(n_rows); spec.stored_in_component(i) as usize])
            .collect();

        // Precompute digit decompositions of each attribute value once.
        let card = column.cardinality();
        let mut digit_table: Vec<Vec<u32>> = Vec::with_capacity(card as usize);
        for v in 0..card {
            digit_table.push(spec.base.decompose(v)?);
        }

        for (rid, &v) in column.values().iter().enumerate() {
            if let Some(mask) = null_mask {
                if mask.get(rid) {
                    continue;
                }
            }
            let digits = &digit_table[v as usize];
            for (ci, &digit) in digits.iter().enumerate() {
                let b = spec.base.component(ci + 1);
                let bitmaps = &mut components[ci];
                match spec.encoding {
                    Encoding::Equality => {
                        if b == 2 {
                            if digit == 1 {
                                bitmaps[0].set(rid, true);
                            }
                        } else {
                            bitmaps[digit as usize].set(rid, true);
                        }
                    }
                    Encoding::Range => {
                        // B^j set for all j >= digit (digit <= j), j stored
                        // up to b-2.
                        for j in digit..b - 1 {
                            bitmaps[j as usize].set(rid, true);
                        }
                    }
                    Encoding::Interval => {
                        // I^j set iff j <= digit <= j + m - 1.
                        let m = b.div_ceil(2);
                        let lo = digit.saturating_sub(m - 1);
                        for j in lo..=digit.min(m - 1) {
                            bitmaps[j as usize].set(rid, true);
                        }
                    }
                }
            }
        }

        let nn = null_mask.map(BitVec::complement);
        Ok(Self {
            spec,
            n_rows,
            cardinality: card,
            components,
            nn,
        })
    }

    /// The index layout.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Attribute cardinality of the indexed column.
    pub fn cardinality(&self) -> u32 {
        self.cardinality
    }

    /// Stored bitmap `slot` of component `comp` (1-based component).
    pub fn bitmap(&self, comp: usize, slot: usize) -> &BitVec {
        &self.components[comp - 1][slot]
    }

    /// All stored bitmaps of every component, for handing to the storage
    /// layer: `result[i-1]` lists component `i`'s bitmaps.
    pub fn components(&self) -> &[Vec<BitVec>] {
        &self.components
    }

    /// The non-null bitmap, if the column had nulls.
    pub fn nn(&self) -> Option<&BitVec> {
        self.nn.as_ref()
    }

    /// Total stored bitmaps — `Space(I)` in the paper's space metric.
    pub fn stored_bitmaps(&self) -> u64 {
        self.spec.stored_bitmaps()
    }

    /// Total size of all stored bitmaps in bytes (uncompressed).
    pub fn size_bytes(&self) -> usize {
        self.stored_bitmaps() as usize * self.n_rows.div_ceil(8)
    }

    /// A [`BitmapSource`] view of this index (clones bitmaps on fetch,
    /// modelling a scan from storage into working memory).
    pub fn source(&self) -> MemorySource<'_> {
        MemorySource { index: self }
    }

    /// Appends one row with the given attribute value, extending every
    /// stored bitmap by one bit (the read-mostly maintenance path: DSS
    /// loads append in bulk between query windows).
    ///
    /// Fails if `value` is not representable under the index's base.
    pub fn append(&mut self, value: u32) -> Result<()> {
        let digits = self.spec.base.decompose(value)?;
        for (ci, &digit) in digits.iter().enumerate() {
            let b = self.spec.base.component(ci + 1);
            for (slot, bm) in self.components[ci].iter_mut().enumerate() {
                bm.push(self.spec.encoding.bit_for(b, digit, slot));
            }
        }
        if let Some(nn) = self.nn.as_mut() {
            nn.push(true);
        }
        self.n_rows += 1;
        if u128::from(value) >= u128::from(self.cardinality) {
            self.cardinality = value + 1;
        }
        Ok(())
    }

    /// Appends one row whose attribute value is NULL: the row is absent
    /// from every bitmap and cleared in `B_nn`.
    ///
    /// If the index was built without nulls, a non-null bitmap is
    /// materialized on first use (all previous rows are non-null).
    pub fn append_null(&mut self) {
        for comp in &mut self.components {
            for bm in comp.iter_mut() {
                bm.push(false);
            }
        }
        let nn = self.nn.get_or_insert_with(|| BitVec::ones(self.n_rows));
        nn.push(false);
        self.n_rows += 1;
    }

    /// Exhaustively checks the index invariants against the column it was
    /// built from: every row's digits must be encoded per the scheme, and
    /// null rows must be absent from all bitmaps.
    pub fn verify(&self, column: &Column) -> Result<()> {
        if column.len() != self.n_rows {
            return Err(Error::CorruptIndex(format!(
                "column has {} rows, index has {}",
                column.len(),
                self.n_rows
            )));
        }
        for (rid, &v) in column.values().iter().enumerate() {
            let is_null = self.nn.as_ref().is_some_and(|nn| !nn.get(rid));
            let digits = self.spec.base.decompose(v)?;
            for (ci, &digit) in digits.iter().enumerate() {
                let b = self.spec.base.component(ci + 1);
                let bitmaps = &self.components[ci];
                for (slot, bm) in bitmaps.iter().enumerate() {
                    let expect = !is_null && self.spec.encoding.bit_for(b, digit, slot);
                    if bm.get(rid) != expect {
                        return Err(Error::CorruptIndex(format!(
                            "row {rid} value {v}: component {} slot {slot} is {}, expected {}",
                            ci + 1,
                            bm.get(rid),
                            expect
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Rebuilds stored bitmap `slot` of component `comp` (1-based) by a
/// digit-level scan of the base relation — the last-resort reconstruction
/// path of degraded-mode evaluation and online repair. Rows flagged in
/// `null_mask` are excluded, matching [`BitmapIndex::build_with_nulls`].
///
/// The result is bit-identical to what [`BitmapIndex::build`] would have
/// stored: for a range-encoded slot this computes `B^j = OR(E^0..E^j)` at
/// the digit level (`digit <= j`), without needing any surviving bitmap.
pub fn rebuild_slot(
    column: &Column,
    null_mask: Option<&BitVec>,
    spec: &IndexSpec,
    comp: usize,
    slot: usize,
) -> Result<BitVec> {
    if comp == 0 || comp > spec.n_components() || slot >= spec.stored_in_component(comp) as usize {
        return Err(Error::CorruptIndex(format!(
            "cannot rebuild component {comp} slot {slot}: outside the index shape"
        )));
    }
    if let Some(mask) = null_mask {
        if mask.len() != column.len() {
            return Err(Error::CorruptIndex(format!(
                "null mask has {} bits for {} rows",
                mask.len(),
                column.len()
            )));
        }
    }
    let b = spec.base.component(comp);
    // Per-digit truth table: bit_for depends only on the value's digit, so
    // decompose each distinct value once, not once per row.
    let card = column.cardinality();
    let mut table = Vec::with_capacity(card as usize);
    for v in 0..card {
        let digit = spec.base.decompose(v)?[comp - 1];
        table.push(spec.encoding.bit_for(b, digit, slot));
    }
    let mut out = BitVec::zeros(column.len());
    for (rid, &v) in column.values().iter().enumerate() {
        if null_mask.is_some_and(|m| m.get(rid)) {
            continue;
        }
        if table[v as usize] {
            out.set(rid, true);
        }
    }
    Ok(out)
}

/// Borrowing [`BitmapSource`] over an in-memory [`BitmapIndex`].
pub struct MemorySource<'a> {
    index: &'a BitmapIndex,
}

impl BitmapSource for MemorySource<'_> {
    fn spec(&self) -> &IndexSpec {
        self.index.spec()
    }

    fn n_rows(&self) -> usize {
        self.index.n_rows()
    }

    fn try_fetch(&mut self, comp: usize, slot: usize) -> Result<BitVec> {
        Ok(self.index.bitmap(comp, slot).clone())
    }

    fn try_fetch_nn(&mut self) -> Result<Option<BitVec>> {
        Ok(self.index.nn().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;

    /// The 12-record attribute projection of Figure 1 / Figure 3 / Figure 4.
    /// (The OCR drops the actual values; any fixed 12-row, C=9 column
    /// exercises the same structure.)
    fn figure_column() -> Column {
        Column::new(vec![3, 2, 1, 2, 8, 2, 2, 0, 7, 5, 6, 4], 9)
    }

    #[test]
    fn value_list_structure() {
        let col = figure_column();
        let idx = BitmapIndex::build(&col, IndexSpec::value_list(9).unwrap()).unwrap();
        assert_eq!(idx.stored_bitmaps(), 9);
        // Row i has value v iff bitmap v has bit i set, all others clear.
        for (rid, &v) in col.values().iter().enumerate() {
            for slot in 0..9 {
                assert_eq!(idx.bitmap(1, slot).get(rid), slot as u32 == v);
            }
        }
        idx.verify(&col).unwrap();
    }

    #[test]
    fn two_component_equality_structure() {
        let col = figure_column();
        let spec = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        assert_eq!(idx.stored_bitmaps(), 6);
        // value 7 = <2, 1>: component 2 bitmap 2 and component 1 bitmap 1.
        let rid = 8; // row with value 7
        assert!(idx.bitmap(2, 2).get(rid));
        assert!(idx.bitmap(1, 1).get(rid));
        assert!(!idx.bitmap(1, 0).get(rid));
        idx.verify(&col).unwrap();
    }

    #[test]
    fn range_encoding_structure() {
        let col = figure_column();
        let spec = IndexSpec::new(Base::single(9).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        assert_eq!(idx.stored_bitmaps(), 8);
        // B^j has bit set iff value <= j.
        for (rid, &v) in col.values().iter().enumerate() {
            for j in 0..8usize {
                assert_eq!(idx.bitmap(1, j).get(rid), v <= j as u32, "rid {rid} j {j}");
            }
        }
        idx.verify(&col).unwrap();
    }

    #[test]
    fn base2_equality_stores_single_bitmap() {
        let col = Column::new(vec![0, 1, 1, 0, 1], 2);
        let spec = IndexSpec::new(Base::single(2).unwrap(), Encoding::Equality);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        assert_eq!(idx.stored_bitmaps(), 1);
        // stored bitmap is E^1
        assert_eq!(
            idx.bitmap(1, 0).iter_ones().collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        idx.verify(&col).unwrap();
    }

    #[test]
    fn padded_base_handles_uncovered_tail() {
        // C = 5 but base <2,3> has product 6: values 0..4 must still encode.
        let col = Column::new(vec![4, 0, 3, 2, 1], 5);
        let spec = IndexSpec::new(Base::from_msb(&[2, 3]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build(&col, spec).unwrap();
        idx.verify(&col).unwrap();
    }

    #[test]
    fn base_too_small_rejected() {
        let col = figure_column();
        let spec = IndexSpec::new(Base::from_msb(&[2, 2]).unwrap(), Encoding::Range);
        assert!(matches!(
            BitmapIndex::build(&col, spec),
            Err(Error::BaseTooSmall { .. })
        ));
    }

    #[test]
    fn nulls_excluded_everywhere() {
        let col = Column::new(vec![3, 2, 1, 2, 8, 2], 9);
        let nulls = BitVec::from_indices(6, &[1, 4]);
        let spec = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), Encoding::Range);
        let idx = BitmapIndex::build_with_nulls(&col, &nulls, spec).unwrap();
        for comp in 1..=2 {
            for slot in 0..2 {
                assert!(!idx.bitmap(comp, slot).get(1));
                assert!(!idx.bitmap(comp, slot).get(4));
            }
        }
        assert_eq!(
            idx.nn().unwrap().iter_ones().collect::<Vec<_>>(),
            vec![0, 2, 3, 5]
        );
        idx.verify(&col).unwrap();
    }

    #[test]
    fn verify_detects_corruption() {
        let col = figure_column();
        let mut idx = BitmapIndex::build(&col, IndexSpec::value_list(9).unwrap()).unwrap();
        idx.components[0][0].set(0, true); // row 0 has value 3, not 0
        assert!(idx.verify(&col).is_err());
    }

    #[test]
    fn append_extends_all_bitmaps_consistently() {
        let mut col_values = vec![3u32, 2, 1];
        let col = Column::new(col_values.clone(), 9);
        for encoding in [Encoding::Range, Encoding::Equality] {
            let spec = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), encoding);
            let mut idx = BitmapIndex::build(&col, spec).unwrap();
            for v in [8u32, 0, 5, 2] {
                idx.append(v).unwrap();
            }
            col_values = vec![3, 2, 1, 8, 0, 5, 2];
            let grown = Column::new(col_values.clone(), 9);
            assert_eq!(idx.n_rows(), 7);
            idx.verify(&grown).unwrap();
            col_values.truncate(3);
        }
    }

    #[test]
    fn append_rejects_unrepresentable_value() {
        let col = Column::new(vec![0, 1], 2);
        let spec = IndexSpec::new(Base::single(2).unwrap(), Encoding::Range);
        let mut idx = BitmapIndex::build(&col, spec).unwrap();
        assert!(idx.append(2).is_err());
        assert_eq!(idx.n_rows(), 2);
    }

    #[test]
    fn append_null_materializes_nn() {
        let col = Column::new(vec![1, 0, 2], 3);
        let spec = IndexSpec::new(Base::single(3).unwrap(), Encoding::Range);
        let mut idx = BitmapIndex::build(&col, spec).unwrap();
        assert!(idx.nn().is_none());
        idx.append_null();
        idx.append(2).unwrap();
        let nn = idx.nn().unwrap();
        assert_eq!(nn.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 4]);
        // Queries must exclude the null row.
        let grown = Column::new(vec![1, 0, 2, 0, 2], 3); // row 3's value is a placeholder
        let mut src = idx.source();
        let mut ctx = crate::exec::ExecContext::new(&mut src);
        let q = bindex_relation::query::SelectionQuery::new(bindex_relation::query::Op::Ge, 0);
        let found = crate::eval::range_opt::evaluate(&mut ctx, q).unwrap();
        assert_eq!(found.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 4]);
        let _ = grown;
    }

    #[test]
    fn memory_source_fetches() {
        let col = figure_column();
        let idx = BitmapIndex::build(&col, IndexSpec::value_list(9).unwrap()).unwrap();
        let mut src = idx.source();
        assert_eq!(src.try_fetch(1, 2).unwrap(), *idx.bitmap(1, 2));
        assert_eq!(src.n_rows(), 12);
        assert!(src.try_fetch_nn().unwrap().is_none());
    }
}
