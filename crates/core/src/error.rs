//! Error type for the core index layer.

/// Errors raised by index construction, evaluation, and design routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A base sequence was empty or contained a number `< 2`.
    InvalidBase(String),
    /// The base does not cover the attribute cardinality (`Π b_i < C`).
    BaseTooSmall {
        /// Product of the base numbers.
        product: u128,
        /// Attribute cardinality that must be covered.
        cardinality: u32,
    },
    /// A value or predicate constant was outside `0 .. C`.
    ValueOutOfRange {
        /// The offending value.
        value: u32,
        /// The attribute cardinality.
        cardinality: u32,
    },
    /// An evaluation algorithm was applied to an index with the wrong
    /// encoding (e.g. RangeEval-Opt on an equality-encoded index).
    EncodingMismatch {
        /// What the algorithm requires.
        expected: &'static str,
        /// What the index uses.
        actual: &'static str,
    },
    /// A design problem has no solution (e.g. space constraint below the
    /// space-optimal index).
    Infeasible(String),
    /// An index invariant check failed.
    CorruptIndex(String),
    /// A storage read failed (I/O error fetching a stored bitmap). The
    /// payload is the rendered error; carried as a string so the error
    /// type stays `Clone + Eq` for the design routines.
    Storage(String),
    /// A stored file failed its checksum: the bytes on storage are not the
    /// bytes that were written. Permanent — retrying cannot help.
    ChecksumMismatch(String),
    /// A batch worker panicked while evaluating a query. The payload is
    /// the panic message; the panic is confined to the one query it
    /// interrupted, so the rest of the workload still completes.
    WorkerPanic(String),
    /// The query's deadline expired while it was running. Segment-at-a-time
    /// evaluation checks the [`Deadline`](crate::Deadline) between morsels
    /// and bails out with this error, so shed work stops consuming cores
    /// instead of running to completion for an answer nobody is waiting
    /// for. The partial foundset is discarded.
    DeadlineExceeded,
    /// The serving layer refused the query before evaluation started:
    /// its admission queue was already at its high-water mark. The payload
    /// says which bound was hit. Retryable by the client after backoff —
    /// the index itself is healthy.
    Overloaded(String),
    /// The query itself was structurally invalid before evaluation
    /// started — e.g. a threshold with `k = 0`, `k` exceeding the
    /// predicate count, or no predicates at all. A caller error, never a
    /// panic or a silent empty foundset; the serving layer maps it to a
    /// typed `BadRequest` rejection.
    InvalidQuery(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidBase(msg) => write!(f, "invalid base: {msg}"),
            Error::BaseTooSmall {
                product,
                cardinality,
            } => write!(
                f,
                "base product {product} does not cover attribute cardinality {cardinality}"
            ),
            Error::ValueOutOfRange { value, cardinality } => {
                write!(
                    f,
                    "value {value} out of range for cardinality {cardinality}"
                )
            }
            Error::EncodingMismatch { expected, actual } => {
                write!(
                    f,
                    "algorithm requires {expected} encoding, index is {actual}"
                )
            }
            Error::Infeasible(msg) => write!(f, "infeasible design problem: {msg}"),
            Error::CorruptIndex(msg) => write!(f, "index invariant violated: {msg}"),
            Error::Storage(msg) => write!(f, "storage error: {msg}"),
            // The carried message is a rendered storage error that already
            // names the file and both checksums; no extra prefix.
            Error::ChecksumMismatch(msg) => write!(f, "{msg}"),
            Error::WorkerPanic(msg) => write!(f, "batch worker panicked: {msg}"),
            Error::DeadlineExceeded => {
                write!(f, "deadline exceeded: query cancelled between segments")
            }
            Error::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
