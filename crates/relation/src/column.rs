//! The [`Column`] type and the raw-value [`ValueMap`].

use std::collections::BTreeMap;

/// A single indexed attribute: `N` row values, each in `0 .. cardinality`.
///
/// This is the paper's normalized setting — actual attribute values are
/// consecutive integers starting at 0. Use [`ValueMap`] to normalize an
/// arbitrary integer column first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    values: Vec<u32>,
    cardinality: u32,
}

impl Column {
    /// Wraps row values with a declared attribute cardinality `C`.
    ///
    /// # Panics
    /// Panics if `cardinality == 0`, or if any value is `>= cardinality`.
    pub fn new(values: Vec<u32>, cardinality: u32) -> Self {
        assert!(cardinality > 0, "attribute cardinality must be positive");
        if let Some(&bad) = values.iter().find(|&&v| v >= cardinality) {
            panic!("column value {bad} >= cardinality {cardinality}");
        }
        Self {
            values,
            cardinality,
        }
    }

    /// Builds a column from raw values, inferring `C = max + 1`.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn from_values(values: Vec<u32>) -> Self {
        let max = *values
            .iter()
            .max()
            .expect("cannot infer cardinality of an empty column");
        Self::new(values, max + 1)
    }

    /// Number of rows (`N`, the relation cardinality).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The attribute cardinality `C`.
    #[inline]
    pub fn cardinality(&self) -> u32 {
        self.cardinality
    }

    /// Row values.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Value of row `rid`.
    #[inline]
    pub fn get(&self, rid: usize) -> u32 {
        self.values[rid]
    }

    /// Number of *distinct* values actually present (≤ `C`).
    pub fn distinct_count(&self) -> usize {
        let mut seen = vec![false; self.cardinality as usize];
        let mut n = 0;
        for &v in &self.values {
            if !seen[v as usize] {
                seen[v as usize] = true;
                n += 1;
            }
        }
        n
    }

    /// Histogram of value frequencies, length `C`.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.cardinality as usize];
        for &v in &self.values {
            h[v as usize] += 1;
        }
        h
    }
}

/// Lookup table mapping arbitrary (non-consecutive) integer attribute values
/// to their dense ranks `0 .. C-1`, as Section 2 of the paper prescribes for
/// the general case.
#[derive(Debug, Clone, Default)]
pub struct ValueMap {
    /// rank -> raw value, ascending.
    raw_of_rank: Vec<i64>,
    /// raw value -> rank.
    rank_of_raw: BTreeMap<i64, u32>,
}

impl ValueMap {
    /// Builds the map and the normalized column from raw integer values.
    pub fn normalize(raw: &[i64]) -> (Self, Column) {
        let mut sorted: Vec<i64> = raw.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let rank_of_raw: BTreeMap<i64, u32> = sorted
            .iter()
            .enumerate()
            .map(|(r, &v)| (v, r as u32))
            .collect();
        let column = Column::new(
            raw.iter().map(|v| rank_of_raw[v]).collect(),
            sorted.len().max(1) as u32,
        );
        (
            Self {
                raw_of_rank: sorted,
                rank_of_raw,
            },
            column,
        )
    }

    /// Number of distinct raw values (the normalized cardinality).
    pub fn cardinality(&self) -> u32 {
        self.raw_of_rank.len() as u32
    }

    /// Rank of a raw value, if present.
    pub fn rank(&self, raw: i64) -> Option<u32> {
        self.rank_of_raw.get(&raw).copied()
    }

    /// Raw value of a rank.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn raw(&self, rank: u32) -> i64 {
        self.raw_of_rank[rank as usize]
    }

    /// Rank of the largest raw value `<= raw`, for translating range
    /// predicates on raw values into rank space. `None` if `raw` is smaller
    /// than every value.
    pub fn rank_le(&self, raw: i64) -> Option<u32> {
        self.rank_of_raw.range(..=raw).next_back().map(|(_, &r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_basics() {
        let c = Column::new(vec![0, 2, 1, 2, 0], 3);
        assert_eq!(c.len(), 5);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(c.histogram(), vec![2, 1, 2]);
        assert_eq!(c.get(1), 2);
    }

    #[test]
    fn from_values_infers_cardinality() {
        let c = Column::from_values(vec![5, 0, 3]);
        assert_eq!(c.cardinality(), 6);
    }

    #[test]
    #[should_panic(expected = ">= cardinality")]
    fn rejects_out_of_range() {
        Column::new(vec![0, 3], 3);
    }

    #[test]
    fn value_map_normalizes_sparse_domain() {
        let raw = vec![100, -7, 100, 2000, -7];
        let (map, col) = ValueMap::normalize(&raw);
        assert_eq!(map.cardinality(), 3);
        assert_eq!(col.cardinality(), 3);
        assert_eq!(col.values(), &[1, 0, 1, 2, 0]);
        assert_eq!(map.raw(0), -7);
        assert_eq!(map.rank(2000), Some(2));
        assert_eq!(map.rank(3), None);
    }

    #[test]
    fn rank_le_for_range_predicates() {
        let (map, _) = ValueMap::normalize(&[10, 20, 30]);
        assert_eq!(map.rank_le(9), None);
        assert_eq!(map.rank_le(10), Some(0));
        assert_eq!(map.rank_le(25), Some(1));
        assert_eq!(map.rank_le(99), Some(2));
    }
}
