//! Microbench: single-bitmap read cost under the three storage schemes —
//! the access asymmetry behind Section 9.2's conclusions (BS reads one
//! file; CS/IS read and transpose a whole row-major file).

use bindex::compress::CodecKind;
use bindex::relation::gen;
use bindex::storage::{MemStore, StorageScheme, StoredIndex};
use bindex::{Base, BitmapIndex, Encoding, IndexSpec};
use bindex_bench::microbench::Criterion;
use bindex_bench::{criterion_group, criterion_main};
use std::hint::black_box;

const N: usize = 100_000;
const C: u32 = 50;

fn stored(scheme: StorageScheme, codec: CodecKind) -> StoredIndex<MemStore> {
    let col = gen::uniform(N, C, 9);
    let spec = IndexSpec::new(Base::from_msb(&[7, 8]).unwrap(), Encoding::Range);
    let idx = BitmapIndex::build(&col, spec).unwrap();
    StoredIndex::create(MemStore::new(), idx.components(), scheme, codec).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage_layouts");
    for (name, scheme, codec) in [
        (
            "bs_read_bitmap",
            StorageScheme::BitmapLevel,
            CodecKind::None,
        ),
        (
            "cbs_read_bitmap",
            StorageScheme::BitmapLevel,
            CodecKind::Lzss,
        ),
        (
            "cs_read_bitmap",
            StorageScheme::ComponentLevel,
            CodecKind::None,
        ),
        (
            "ccs_read_bitmap",
            StorageScheme::ComponentLevel,
            CodecKind::Lzss,
        ),
        ("is_read_bitmap", StorageScheme::IndexLevel, CodecKind::None),
    ] {
        let mut s = stored(scheme, codec);
        g.bench_function(name, |b| {
            b.iter(|| black_box(s.read_bitmap(1, 3).unwrap().count_ones()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
