//! The three physical organizations of Section 9.1 and the stored-index
//! reader with I/O accounting, checksummed framing, and bounded retry.
//!
//! Version 2 stores wrap every file — bitmap payloads and the manifest —
//! in the checksummed frame of [`format`](crate::format), so a read either
//! returns the bytes that were written or a typed
//! [`StorageError`]. Version 1 stores (raw payloads, plain-text manifest)
//! remain readable; the manifest's leading bytes tell the two apart.
//!
//! Version 3 ([`StoredIndex::create_v3`]) keeps the checksummed frame but
//! chooses a representation *per slot* at build time: each bitmap file's
//! payload starts with a one-byte tag selecting either the dense bytes
//! (compressed with the store's byte codec, as in v2) or the WAH
//! compressed form — whichever is smaller by the build heuristic. WAH
//! slots can be handed to the executor still compressed
//! ([`StoredIndex::read_repr`]), so sparse bitmaps cost less I/O, less
//! pool memory, *and* no decompression.
//!
//! Version 4 ([`StoredIndex::create_v4`]) adds a **hierarchical summary
//! block** on top of the v3 slot coding: one framed file holding, for
//! every slot, one bit per [`SUMMARY_WINDOW_BITS`]-bit window recording
//! "any bit set in this window". Segmented execution consults the
//! summaries *before* fetching a slot and skips fetch + decode of
//! provably-dead segments. A clear summary bit is a guarantee of zeros; a
//! missing, corrupt, or shape-mismatched summary block degrades to
//! fetch-and-check ([`StoredIndex::read_summaries`] returns `None`) —
//! never to a wrong answer.

use std::sync::{Arc, OnceLock};

use bindex_bitvec::{BitVec, IndexSummaries, SlotSummary, SUMMARY_WINDOW_BITS};
use bindex_compress::wah::WahBitmap;
use bindex_compress::{CodecKind, Repr};

use crate::error::{RepairReport, RetryPolicy, ScrubFailure, ScrubReport, StorageError};
use crate::format;
use crate::store::{ByteStore, IoStats};

/// Physical organization of an index's bit matrix (Section 9.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageScheme {
    /// **BS**: one file per bitmap (column-major).
    BitmapLevel,
    /// **CS**: one row-major file per component.
    ComponentLevel,
    /// **IS**: one row-major file for the entire index.
    IndexLevel,
}

impl StorageScheme {
    /// The paper's abbreviation, `c`-prefixed when `compressed`.
    pub fn label(self, compressed: bool) -> &'static str {
        match (self, compressed) {
            (StorageScheme::BitmapLevel, false) => "BS",
            (StorageScheme::BitmapLevel, true) => "cBS",
            (StorageScheme::ComponentLevel, false) => "CS",
            (StorageScheme::ComponentLevel, true) => "cCS",
            (StorageScheme::IndexLevel, false) => "IS",
            (StorageScheme::IndexLevel, true) => "cIS",
        }
    }
}

/// Shape metadata of a stored index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredIndexMeta {
    /// Rows per bitmap (`N`).
    pub n_rows: usize,
    /// Stored bitmaps per component (`n_i`).
    pub bitmaps_per_component: Vec<u32>,
    /// Physical organization.
    pub scheme: StorageScheme,
    /// Per-file compression codec.
    pub codec: CodecKind,
    /// Repair journal: every file ever rewritten by
    /// [`StoredIndex::scrub_and_repair`], oldest first, persisted as
    /// `repaired=` lines in the manifest. A non-empty journal tells an
    /// operator the store has lost bytes before, even though reads are
    /// clean now.
    pub repairs: Vec<String>,
    /// Base generation. Generation 0 uses the legacy file names
    /// (`c{i}_b{j}.bmp`); every [`StoredIndex::install_generation`] bumps
    /// it and writes `g{G}_`-prefixed files, so the old and new base never
    /// collide and a crash mid-compaction leaves whichever generation the
    /// manifest points at.
    pub generation: u64,
    /// Highest WAL sequence number folded into this base by compaction.
    /// Replay after reopen skips records at or below it.
    pub wal_applied: u64,
    /// Whether a non-null bitmap file is persisted alongside the slots
    /// (deleted rows are stored as nulls, so any compaction that absorbed
    /// a delete writes one).
    pub has_nn: bool,
    /// Compaction journal: one line per installed generation, oldest
    /// first, persisted as `compacted=` manifest lines — the ingest
    /// counterpart of the `repaired=` journal.
    pub compactions: Vec<String>,
}

impl StoredIndexMeta {
    /// Metadata for a freshly built generation-0 store with empty
    /// journals.
    fn fresh(
        n_rows: usize,
        bitmaps_per_component: Vec<u32>,
        scheme: StorageScheme,
        codec: CodecKind,
    ) -> Self {
        Self {
            n_rows,
            bitmaps_per_component,
            scheme,
            codec,
            repairs: Vec::new(),
            generation: 0,
            wal_applied: 0,
            has_nn: false,
            compactions: Vec::new(),
        }
    }

    /// Total stored bitmaps `n`.
    pub fn total_bitmaps(&self) -> u64 {
        self.bitmaps_per_component
            .iter()
            .map(|&x| u64::from(x))
            .sum()
    }

    /// Serializes the metadata as the manifest file format (one
    /// `key=value` per line; versioned, order-insensitive).
    fn to_manifest(&self, version: u32) -> String {
        let comps: Vec<String> = self
            .bitmaps_per_component
            .iter()
            .map(u32::to_string)
            .collect();
        let mut text = format!(
            "version={}\nn_rows={}\nscheme={}\ncodec={}\ncomponents={}\n",
            version,
            self.n_rows,
            match self.scheme {
                StorageScheme::BitmapLevel => "bs",
                StorageScheme::ComponentLevel => "cs",
                StorageScheme::IndexLevel => "is",
            },
            self.codec.name(),
            comps.join(",")
        );
        // Ingest metadata is emitted only when set, so a never-ingested
        // store's manifest stays byte-identical to what older builds wrote.
        if self.generation != 0 {
            text.push_str(&format!("generation={}\n", self.generation));
        }
        if self.wal_applied != 0 {
            text.push_str(&format!("wal_applied={}\n", self.wal_applied));
        }
        if self.has_nn {
            text.push_str("nn=1\n");
        }
        // The repair journal: one repeatable line per rewritten file.
        for file in &self.repairs {
            text.push_str("repaired=");
            text.push_str(file);
            text.push('\n');
        }
        // The compaction journal: one repeatable line per installed
        // generation.
        for entry in &self.compactions {
            text.push_str("compacted=");
            text.push_str(entry);
            text.push('\n');
        }
        text
    }

    /// Parses a manifest produced by [`StoredIndexMeta::to_manifest`] (or
    /// its version-1 predecessor), returning the metadata and the store's
    /// format version.
    fn from_manifest(text: &str) -> Result<(Self, u32), StorageError> {
        let bad = |msg: &str| StorageError::corrupt(MANIFEST_FILE, format!("manifest: {msg}"));
        let mut n_rows = None;
        let mut scheme = None;
        let mut codec = None;
        let mut comps: Option<Vec<u32>> = None;
        let mut version = None;
        let mut repairs = Vec::new();
        let mut generation = 0;
        let mut wal_applied = 0;
        let mut has_nn = false;
        let mut compactions = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| bad(&format!("malformed line {line:?}")))?;
            match k {
                "version" => version = Some(v.to_string()),
                "n_rows" => n_rows = Some(v.parse().map_err(|_| bad("bad n_rows"))?),
                "scheme" => {
                    scheme = Some(match v {
                        "bs" => StorageScheme::BitmapLevel,
                        "cs" => StorageScheme::ComponentLevel,
                        "is" => StorageScheme::IndexLevel,
                        other => return Err(bad(&format!("unknown scheme {other}"))),
                    })
                }
                "codec" => {
                    codec = Some(match v {
                        "none" => CodecKind::None,
                        "rle" => CodecKind::Rle,
                        "lzss" => CodecKind::Lzss,
                        "deflate" => CodecKind::Deflate,
                        other => return Err(bad(&format!("unknown codec {other}"))),
                    })
                }
                "components" => {
                    comps = Some(
                        v.split(',')
                            .map(|x| x.parse().map_err(|_| bad("bad component count")))
                            .collect::<Result<Vec<u32>, StorageError>>()?,
                    )
                }
                "repaired" => repairs.push(v.to_string()),
                "generation" => generation = v.parse().map_err(|_| bad("bad generation"))?,
                "wal_applied" => wal_applied = v.parse().map_err(|_| bad("bad wal_applied"))?,
                "nn" => {
                    has_nn = match v {
                        "1" => true,
                        "0" => false,
                        other => return Err(bad(&format!("bad nn flag {other}"))),
                    }
                }
                "compacted" => compactions.push(v.to_string()),
                other => return Err(bad(&format!("unknown key {other}"))),
            }
        }
        let version = match version.as_deref() {
            Some("1") => 1,
            Some("2") => 2,
            Some("3") => 3,
            Some("4") => 4,
            _ => return Err(bad("unsupported version")),
        };
        Ok((
            Self {
                n_rows: n_rows.ok_or_else(|| bad("missing n_rows"))?,
                bitmaps_per_component: comps.ok_or_else(|| bad("missing components"))?,
                scheme: scheme.ok_or_else(|| bad("missing scheme"))?,
                codec: codec.ok_or_else(|| bad("missing codec"))?,
                repairs,
                generation,
                wal_applied,
                has_nn,
                compactions,
            },
            version,
        ))
    }
}

/// An index laid out in a [`ByteStore`] under one of the three schemes,
/// readable bitmap-by-bitmap with byte-level I/O accounting. Reads retry
/// transient failures per the [`RetryPolicy`]; checksum and structure
/// failures surface as permanent [`StorageError`]s.
#[derive(Debug)]
pub struct StoredIndex<S: ByteStore> {
    store: S,
    meta: StoredIndexMeta,
    stats: IoStats,
    /// On-disk format version: 1 raw, 2 framed, 3 framed + per-slot codec,
    /// 4 per-slot codec + summary block.
    version: u32,
    retry: RetryPolicy,
    /// Lazily loaded, validated summary block (v4 stores). A resolved
    /// `None` means "no usable summaries" — pre-v4 store, missing file,
    /// or a corrupt/mismatched block that must degrade to fetch-and-check.
    summaries: OnceLock<Option<Arc<IndexSummaries>>>,
}

impl<S: ByteStore> StoredIndex<S> {
    /// Writes `components[i-1][j]` (bitmap `j` of component `i`) into
    /// `store` under `scheme`, compressing each file with `codec` and
    /// wrapping it in the checksummed version-2 frame.
    pub fn create(
        mut store: S,
        components: &[Vec<BitVec>],
        scheme: StorageScheme,
        codec: CodecKind,
    ) -> Result<Self, StorageError> {
        let n_rows = components
            .first()
            .and_then(|c| c.first())
            .map_or(0, BitVec::len);
        for comp in components.iter().flatten() {
            assert_eq!(comp.len(), n_rows, "bitmaps must share the row count");
        }
        let meta = StoredIndexMeta::fresh(
            n_rows,
            components.iter().map(|c| c.len() as u32).collect(),
            scheme,
            codec,
        );
        match scheme {
            StorageScheme::BitmapLevel => {
                for (ci, comp) in components.iter().enumerate() {
                    for (j, bm) in comp.iter().enumerate() {
                        let raw = bm.to_bytes();
                        store.write_file(
                            &bitmap_file(ci + 1, j),
                            &format::frame(&codec.compress(&raw)),
                        )?;
                    }
                }
            }
            StorageScheme::ComponentLevel => {
                for (ci, comp) in components.iter().enumerate() {
                    let raw = row_major(comp, n_rows);
                    store.write_file(
                        &component_file(ci + 1),
                        &format::frame(&codec.compress(&raw)),
                    )?;
                }
            }
            StorageScheme::IndexLevel => {
                let all: Vec<&BitVec> = components.iter().flatten().collect();
                let raw = row_major_refs(&all, n_rows);
                store.write_file(INDEX_FILE, &format::frame(&codec.compress(&raw)))?;
            }
        }
        store.write_file(
            MANIFEST_FILE,
            &format::frame(meta.to_manifest(format::FORMAT_VERSION).as_bytes()),
        )?;
        Ok(Self {
            store,
            meta,
            stats: IoStats::default(),
            version: format::FORMAT_VERSION,
            retry: RetryPolicy::default(),
            summaries: OnceLock::new(),
        })
    }

    /// Writes a **version-3** store: bitmap-level layout where each slot's
    /// framed payload carries a one-byte representation tag. At build time
    /// every bitmap is WAH-encoded and the compressed form is kept iff it
    /// beats the dense bytes by at least 25 % (`4·wah ≤ 3·raw`) — dense
    /// slots fall back to `codec`-compressed bytes exactly as in v2. WAH
    /// slots can later be served still-compressed via
    /// [`StoredIndex::read_repr`].
    pub fn create_v3(
        store: S,
        components: &[Vec<BitVec>],
        codec: CodecKind,
    ) -> Result<Self, StorageError> {
        Self::create_slot_coded(store, components, codec, 3)
    }

    /// Writes a **version-4** store: the v3 per-slot coding plus a framed
    /// summary block ([`SUMMARY_FILE`]) recording, per slot, one bit per
    /// [`SUMMARY_WINDOW_BITS`]-bit window — the pruning layer segmented
    /// execution consults before fetching
    /// ([`StoredIndex::read_summaries`]).
    pub fn create_v4(
        store: S,
        components: &[Vec<BitVec>],
        codec: CodecKind,
    ) -> Result<Self, StorageError> {
        Self::create_slot_coded(store, components, codec, 4)
    }

    /// Shared v3/v4 writer: both formats encode slots through one
    /// [`SlotEncoder`], so the literal-vs-WAH heuristic and the summary
    /// block can never drift between build paths.
    fn create_slot_coded(
        mut store: S,
        components: &[Vec<BitVec>],
        codec: CodecKind,
        version: u32,
    ) -> Result<Self, StorageError> {
        let n_rows = components
            .first()
            .and_then(|c| c.first())
            .map_or(0, BitVec::len);
        for comp in components.iter().flatten() {
            assert_eq!(comp.len(), n_rows, "bitmaps must share the row count");
        }
        let meta = StoredIndexMeta::fresh(
            n_rows,
            components.iter().map(|c| c.len() as u32).collect(),
            StorageScheme::BitmapLevel,
            codec,
        );
        let mut enc = SlotEncoder::new(codec);
        for (ci, comp) in components.iter().enumerate() {
            enc.begin_component();
            for (j, bm) in comp.iter().enumerate() {
                store.write_file(
                    &bitmap_file(ci + 1, j),
                    &format::frame(&enc.encode_slot(bm)),
                )?;
            }
        }
        if version >= 4 {
            store.write_file(SUMMARY_FILE, &format::frame(&enc.summary_payload(n_rows)))?;
        }
        store.write_file(
            MANIFEST_FILE,
            &format::frame(meta.to_manifest(version).as_bytes()),
        )?;
        Ok(Self {
            store,
            meta,
            stats: IoStats::default(),
            version,
            retry: RetryPolicy::default(),
            summaries: OnceLock::new(),
        })
    }

    /// Re-opens an index previously written with [`StoredIndex::create`],
    /// reading its shape from the manifest file — no rebuild needed.
    /// Version-1 stores (unframed files) open transparently.
    pub fn open(store: S) -> Result<Self, StorageError> {
        let retry = RetryPolicy::default();
        let mut retries = 0;
        let data = read_with_retry(&store, MANIFEST_FILE, retry, &mut retries)?;
        let framed = format::sniff(&data);
        let payload = if framed {
            format::unframe(MANIFEST_FILE, &data)?
        } else {
            data
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|_| StorageError::corrupt(MANIFEST_FILE, "manifest not UTF-8"))?;
        let (meta, version) = StoredIndexMeta::from_manifest(text)?;
        if framed != (version >= 2) {
            return Err(StorageError::corrupt(
                MANIFEST_FILE,
                format!("manifest framing does not match declared version {version}"),
            ));
        }
        if version >= 3 && meta.scheme != StorageScheme::BitmapLevel {
            return Err(StorageError::corrupt(
                MANIFEST_FILE,
                "version 3 requires the bitmap-level scheme",
            ));
        }
        let mut index = Self {
            store,
            meta,
            stats: IoStats {
                retries,
                ..IoStats::default()
            },
            version,
            retry,
            summaries: OnceLock::new(),
        };
        index.scavenge_stale_generations();
        Ok(index)
    }

    /// Removes data files belonging to generations other than the
    /// manifest's — orphans left by a crash between compaction steps
    /// (new-generation files written but never committed, or an old
    /// generation whose garbage collection was interrupted). Best-effort:
    /// a store that cannot mutate (e.g. a crashed fault store) keeps its
    /// orphans until the next open; reads never consult them.
    fn scavenge_stale_generations(&mut self) -> Vec<String> {
        let names = match self.store.file_names() {
            Ok(names) => names,
            Err(_) => return Vec::new(),
        };
        let mut removed = Vec::new();
        for name in names {
            if data_file_generation(&name).is_some_and(|g| g != self.meta.generation)
                && self.store.remove_file(&name).is_ok()
            {
                removed.push(name);
            }
        }
        removed.sort();
        removed
    }

    /// Shape metadata.
    pub fn meta(&self) -> &StoredIndexMeta {
        &self.meta
    }

    /// On-disk format version: 4 for summary-carrying stores, 3 for
    /// per-slot-coded stores, 2 for checksum-framed stores, 1 for legacy.
    pub fn format_version(&self) -> u32 {
        self.version
    }

    /// `true` when files carry the checksummed frame (versions ≥ 2).
    fn framed(&self) -> bool {
        self.version >= 2
    }

    /// `true` when each slot payload starts with a representation tag
    /// (version 3).
    fn slot_coded(&self) -> bool {
        self.version >= 3
    }

    /// The retry policy applied to transient read failures.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The underlying byte store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the underlying byte store — the ingest layer's
    /// WAL append path writes through here so the log and the base share
    /// one store (and one fault plan under test).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Slot file name under this store's current generation.
    fn slot_file(&self, comp: usize, slot: usize) -> String {
        gen_bitmap_file(self.meta.generation, comp, slot)
    }

    /// Consumes the index, returning the underlying store.
    pub fn into_store(self) -> S {
        self.store
    }

    /// Total stored bytes across all bitmap files (physical size including
    /// frame headers; compressed size when compressed) — the space metric
    /// of Section 9. The tiny manifest is excluded. Files whose size
    /// cannot be read count as zero.
    pub fn total_stored_bytes(&self) -> u64 {
        self.store
            .file_names()
            .unwrap_or_default()
            .iter()
            .filter(|n| n.as_str() != MANIFEST_FILE && n.as_str() != crate::wal::WAL_FILE)
            .map(|n| self.store.file_size(n).unwrap_or(0))
            .sum()
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Returns and resets the I/O statistics.
    pub fn take_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    /// Reads stored bitmap `slot` of component `comp` (1-based component).
    ///
    /// Under BS this reads one bitmap file; under CS it reads and
    /// transposes the whole component file; under IS the whole index file
    /// — exactly the access-cost asymmetry Section 9.2 describes.
    ///
    /// Out-of-shape addresses return [`StorageError::InvalidSlot`];
    /// transient store failures are retried up to the policy bound and
    /// then propagate; corruption is reported as a permanent error, never
    /// as a wrong bitmap.
    pub fn read_bitmap(&mut self, comp: usize, slot: usize) -> Result<BitVec, StorageError> {
        let mut delta = IoStats::default();
        let out = self.read_bitmap_into(comp, slot, &mut delta);
        self.stats.add(&delta);
        out
    }

    /// Shared-state variant of [`StoredIndex::read_bitmap`]: takes `&self`
    /// and returns the bitmap together with the I/O cost of this one read,
    /// instead of accumulating into the index's own counters. This is the
    /// read path of [`SharedIndexReader`](crate::shared::SharedIndexReader),
    /// which lets many threads read one stored index concurrently and merge
    /// the per-read deltas into atomic totals.
    pub fn read_bitmap_shared(
        &self,
        comp: usize,
        slot: usize,
    ) -> Result<(BitVec, IoStats), StorageError> {
        let mut delta = IoStats::default();
        let bm = self.read_bitmap_into(comp, slot, &mut delta)?;
        Ok((bm, delta))
    }

    /// Like [`StoredIndex::read_bitmap`], but returns the slot in its
    /// *stored execution representation*: on a version-3 store a
    /// WAH-tagged slot comes back still compressed
    /// ([`Repr::Wah`]), skipping decompression entirely; every other
    /// slot (and every pre-v3 store) materializes to [`Repr::Literal`].
    pub fn read_repr(&mut self, comp: usize, slot: usize) -> Result<Repr, StorageError> {
        let mut delta = IoStats::default();
        let out = self.read_repr_into(comp, slot, &mut delta);
        self.stats.add(&delta);
        out
    }

    /// Shared-state variant of [`StoredIndex::read_repr`], mirroring
    /// [`StoredIndex::read_bitmap_shared`].
    pub fn read_repr_shared(
        &self,
        comp: usize,
        slot: usize,
    ) -> Result<(Repr, IoStats), StorageError> {
        let mut delta = IoStats::default();
        let repr = self.read_repr_into(comp, slot, &mut delta)?;
        Ok((repr, delta))
    }

    /// Reads the persisted non-null bitmap, if this generation stored one
    /// ([`StoredIndexMeta::has_nn`]). Deleted rows are persisted as nulls,
    /// so evaluators mask them out through the ordinary null-handling
    /// path.
    pub fn read_nn(&mut self) -> Result<Option<BitVec>, StorageError> {
        let mut delta = IoStats::default();
        let out = self.read_nn_into(&mut delta);
        self.stats.add(&delta);
        out
    }

    /// Shared-state variant of [`StoredIndex::read_nn`], mirroring
    /// [`StoredIndex::read_bitmap_shared`].
    pub fn read_nn_shared(&self) -> Result<(Option<BitVec>, IoStats), StorageError> {
        let mut delta = IoStats::default();
        let nn = self.read_nn_into(&mut delta)?;
        Ok((nn, delta))
    }

    fn read_nn_into(&self, delta: &mut IoStats) -> Result<Option<BitVec>, StorageError> {
        if !self.meta.has_nn {
            return Ok(None);
        }
        let name = gen_nn_file(self.meta.generation);
        if self.slot_coded() {
            self.read_nn_slot(&name, delta).map(Some)
        } else {
            let raw = self.read_and_decompress(&name, self.meta.n_rows.div_ceil(8), delta)?;
            Ok(Some(BitVec::from_bytes(self.meta.n_rows, &raw)))
        }
    }

    /// Materializes a v3-tagged nn file.
    fn read_nn_slot(&self, name: &str, delta: &mut IoStats) -> Result<BitVec, StorageError> {
        match self.read_slot_repr(name, delta)? {
            Repr::Literal(b) => Ok(std::sync::Arc::try_unwrap(b).unwrap_or_else(|a| (*a).clone())),
            Repr::Wah(w) => {
                delta.bytes_decompressed += self.meta.n_rows.div_ceil(8) as u64;
                Ok(w.to_bitvec())
            }
        }
    }

    /// The v4 summary block, loaded and shape-validated once per store
    /// handle. `None` for pre-v4 stores and whenever the block is missing,
    /// unreadable, corrupt, or disagrees with the stored shape — callers
    /// degrade to fetch-and-check, never to a wrong answer. (That makes
    /// summary loss strictly a performance event, which is why this path
    /// is infallible rather than `Result`-typed.)
    pub fn read_summaries(&mut self) -> Option<Arc<IndexSummaries>> {
        let (out, delta) = self.read_summaries_shared();
        self.stats.add(&delta);
        out
    }

    /// Shared-state variant of [`StoredIndex::read_summaries`], mirroring
    /// [`StoredIndex::read_bitmap_shared`]. The I/O delta is non-zero only
    /// on the first call that actually loads the block.
    pub fn read_summaries_shared(&self) -> (Option<Arc<IndexSummaries>>, IoStats) {
        let mut delta = IoStats::default();
        let out = self
            .summaries
            .get_or_init(|| self.load_summaries(&mut delta))
            .clone();
        (out, delta)
    }

    fn load_summaries(&self, delta: &mut IoStats) -> Option<Arc<IndexSummaries>> {
        if self.version < 4 {
            return None;
        }
        let name = summary_file(self.meta.generation);
        let data = match read_with_retry(&self.store, &name, self.retry, &mut delta.retries) {
            Ok(data) => data,
            Err(_) => return None,
        };
        delta.reads += 1;
        delta.bytes_read += data.len() as u64;
        let payload = format::unframe(&name, &data).ok()?;
        let summaries = decode_summary_block(&payload)?;
        // Shape check against the manifest: a summary block that
        // disagrees with the stored layout must never prune anything.
        let shape: Vec<usize> = self
            .meta
            .bitmaps_per_component
            .iter()
            .map(|&x| x as usize)
            .collect();
        if summaries.n_rows() != self.meta.n_rows || summaries.slots_per_component() != shape {
            return None;
        }
        Some(Arc::new(summaries))
    }

    fn read_repr_into(
        &self,
        comp: usize,
        slot: usize,
        delta: &mut IoStats,
    ) -> Result<Repr, StorageError> {
        if self.slot_coded() {
            self.check_slot(comp, slot)?;
            self.read_slot_repr(&self.slot_file(comp, slot), delta)
        } else {
            self.read_bitmap_into(comp, slot, delta).map(Repr::literal)
        }
    }

    /// Validates a `(component, slot)` address against the stored shape.
    fn check_slot(&self, comp: usize, slot: usize) -> Result<usize, StorageError> {
        let n_i = match comp
            .checked_sub(1)
            .and_then(|c| self.meta.bitmaps_per_component.get(c))
        {
            Some(&n) => n as usize,
            None => return Err(StorageError::InvalidSlot { comp, slot }),
        };
        if slot >= n_i {
            return Err(StorageError::InvalidSlot { comp, slot });
        }
        Ok(n_i)
    }

    /// Reads one version-3 slot file: unframe, dispatch on the leading
    /// representation tag.
    fn read_slot_repr(&self, name: &str, delta: &mut IoStats) -> Result<Repr, StorageError> {
        let n_rows = self.meta.n_rows;
        let data = read_with_retry(&self.store, name, self.retry, &mut delta.retries)?;
        delta.reads += 1;
        delta.bytes_read += data.len() as u64;
        let payload = format::unframe(name, &data)?;
        let (&tag, rest) = payload
            .split_first()
            .ok_or_else(|| StorageError::corrupt(name, "empty slot payload"))?;
        match tag {
            SLOT_TAG_WAH => WahBitmap::from_bytes(n_rows, rest)
                .map(Repr::wah)
                .map_err(|e| StorageError::corrupt(name, e.to_string())),
            SLOT_TAG_LITERAL => {
                let raw_len = n_rows.div_ceil(8);
                let raw = if self.meta.codec == CodecKind::None {
                    rest.to_vec()
                } else {
                    let out = self
                        .meta
                        .codec
                        .decompress(rest, raw_len)
                        .map_err(|e| StorageError::corrupt(name, e.to_string()))?;
                    delta.bytes_decompressed += out.len() as u64;
                    out
                };
                if raw.len() != raw_len {
                    return Err(StorageError::corrupt(
                        name,
                        format!("slot holds {} bytes, expected {raw_len}", raw.len()),
                    ));
                }
                Ok(Repr::literal(BitVec::from_bytes(n_rows, &raw)))
            }
            other => Err(StorageError::corrupt(
                name,
                format!("unknown slot representation tag {other}"),
            )),
        }
    }

    fn read_bitmap_into(
        &self,
        comp: usize,
        slot: usize,
        delta: &mut IoStats,
    ) -> Result<BitVec, StorageError> {
        let n_i = self.check_slot(comp, slot)?;
        let n_rows = self.meta.n_rows;
        match self.meta.scheme {
            StorageScheme::BitmapLevel if self.slot_coded() => {
                match self.read_slot_repr(&self.slot_file(comp, slot), delta)? {
                    Repr::Literal(b) => {
                        Ok(std::sync::Arc::try_unwrap(b).unwrap_or_else(|a| (*a).clone()))
                    }
                    Repr::Wah(w) => {
                        // Decompressing WAH to dense words is the v3
                        // analogue of a codec decompression.
                        delta.bytes_decompressed += n_rows.div_ceil(8) as u64;
                        Ok(w.to_bitvec())
                    }
                }
            }
            StorageScheme::BitmapLevel => {
                let raw = self.read_and_decompress(
                    &self.slot_file(comp, slot),
                    n_rows.div_ceil(8),
                    delta,
                )?;
                Ok(BitVec::from_bytes(n_rows, &raw))
            }
            StorageScheme::ComponentLevel => {
                let raw_len = (n_rows * n_i).div_ceil(8);
                let raw = self.read_and_decompress(&component_file(comp), raw_len, delta)?;
                Ok(extract_column(&raw, n_rows, n_i, slot))
            }
            StorageScheme::IndexLevel => {
                let n = self.meta.total_bitmaps() as usize;
                let raw_len = (n_rows * n).div_ceil(8);
                let raw = self.read_and_decompress(INDEX_FILE, raw_len, delta)?;
                let global: usize = self.meta.bitmaps_per_component[..comp - 1]
                    .iter()
                    .map(|&x| x as usize)
                    .sum::<usize>()
                    + slot;
                Ok(extract_column(&raw, n_rows, n, global))
            }
        }
    }

    /// Verifies every file in the store against its frame header and
    /// reports (rather than fails on) each corrupt file. Version-1 stores
    /// carry no checksums, so only readability is checked there.
    pub fn scrub(&mut self) -> Result<ScrubReport, StorageError> {
        let mut names = self.store.file_names()?;
        names.sort();
        let mut report = ScrubReport::default();
        for name in &names {
            report.files_checked += 1;
            let outcome = read_with_retry(&self.store, name, self.retry, &mut self.stats.retries)
                .and_then(|data| {
                    if name == crate::wal::WAL_FILE {
                        // The WAL is length-framed per record, not
                        // checksum-framed per file; a torn tail is a normal
                        // crash artifact, only a corrupt header fails.
                        crate::wal::replay(&data).map(|_| ())
                    } else if self.framed() {
                        format::unframe(name, &data).map(|_| ())
                    } else {
                        Ok(())
                    }
                });
            if let Err(e) = outcome {
                report.failures.push(ScrubFailure {
                    file: name.clone(),
                    error: e.to_string(),
                });
            }
        }
        Ok(report)
    }

    /// The `(component, slot)` addresses whose bits live in file `name` —
    /// one bitmap under BS, a whole component under CS, every bitmap under
    /// IS. Empty for the manifest and for names outside the layout.
    pub fn file_slots(&self, name: &str) -> Vec<(usize, usize)> {
        let shape = &self.meta.bitmaps_per_component;
        match self.meta.scheme {
            StorageScheme::BitmapLevel => {
                for (ci, &n_i) in shape.iter().enumerate() {
                    for slot in 0..n_i as usize {
                        if self.slot_file(ci + 1, slot) == name {
                            return vec![(ci + 1, slot)];
                        }
                    }
                }
                Vec::new()
            }
            StorageScheme::ComponentLevel => {
                for (ci, &n_i) in shape.iter().enumerate() {
                    if component_file(ci + 1) == name {
                        return (0..n_i as usize).map(|slot| (ci + 1, slot)).collect();
                    }
                }
                Vec::new()
            }
            StorageScheme::IndexLevel => {
                if name != INDEX_FILE {
                    return Vec::new();
                }
                shape
                    .iter()
                    .enumerate()
                    .flat_map(|(ci, &n_i)| (0..n_i as usize).map(move |slot| (ci + 1, slot)))
                    .collect()
            }
        }
    }

    /// Extends [`StoredIndex::scrub`] into online repair: every corrupt
    /// file whose bitmaps `content` can supply (`content(comp, slot)` must
    /// return a bitmap of the store's row count) is rewritten — compressed,
    /// framed, and through the store's write path, which on
    /// [`DiskStore`](crate::DiskStore) is the atomic temp-file+rename —
    /// and journaled in the manifest's `repaired=` lines. A corrupt
    /// manifest is rewritten from the in-memory metadata. Files `content`
    /// cannot cover are reported, not failed on.
    pub fn scrub_and_repair<F>(&mut self, mut content: F) -> Result<RepairReport, StorageError>
    where
        F: FnMut(usize, usize) -> Option<BitVec>,
    {
        let scrub = self.scrub()?;
        let mut report = RepairReport {
            scrub,
            ..RepairReport::default()
        };
        let mut manifest_dirty = false;
        let mut summary_dirty = false;
        let current_summary = summary_file(self.meta.generation);
        for failure in report.scrub.failures.clone() {
            if failure.file == MANIFEST_FILE {
                manifest_dirty = true;
                continue;
            }
            if failure.file == current_summary {
                // Rebuilt below, after the slots it summarizes are fixed.
                summary_dirty = true;
                continue;
            }
            let slots = self.file_slots(&failure.file);
            if slots.is_empty() {
                report.unrepaired.push(failure);
                continue;
            }
            let mut bitmaps = Vec::with_capacity(slots.len());
            for &(comp, slot) in &slots {
                match content(comp, slot) {
                    Some(bm) if bm.len() == self.meta.n_rows => bitmaps.push(bm),
                    _ => break,
                }
            }
            if bitmaps.len() != slots.len() {
                report.unrepaired.push(failure);
                continue;
            }
            let payload = if self.slot_coded() {
                // v3 slots re-encode through the same per-slot heuristic
                // the store was built with.
                encode_slot_v3(&bitmaps[0], self.meta.codec)
            } else {
                let raw = match self.meta.scheme {
                    StorageScheme::BitmapLevel => bitmaps[0].to_bytes(),
                    StorageScheme::ComponentLevel | StorageScheme::IndexLevel => {
                        row_major(&bitmaps, self.meta.n_rows)
                    }
                };
                self.meta.codec.compress(&raw)
            };
            let data = if self.framed() {
                format::frame(&payload)
            } else {
                payload
            };
            self.store.write_file(&failure.file, &data)?;
            report.repaired.push(failure.file);
        }
        if summary_dirty {
            // The summary block is derived data: rebuild it from the (now
            // repaired) slots rather than asking the caller for content.
            match self.rebuild_summary_block() {
                Ok(()) => report.repaired.push(current_summary),
                Err(e) => report.unrepaired.push(ScrubFailure {
                    file: current_summary,
                    error: e.to_string(),
                }),
            }
        }
        if manifest_dirty {
            report.repaired.push(MANIFEST_FILE.to_string());
        }
        if !report.repaired.is_empty() {
            self.meta.repairs.extend(report.repaired.iter().cloned());
            let text = self.manifest_text();
            let data = if self.framed() {
                format::frame(text.as_bytes())
            } else {
                text.into_bytes()
            };
            self.store.write_file(MANIFEST_FILE, &data)?;
            // Repairs may have rewritten slots or the summary block; drop
            // any summaries resolved before the repair.
            self.summaries = OnceLock::new();
        }
        Ok(report)
    }

    /// Recomputes the current generation's summary block from the stored
    /// slots (and non-null bitmap) and rewrites [`SUMMARY_FILE`] — the
    /// repair path for a corrupted summary. Fails if any slot is
    /// unreadable; the block then stays corrupt and reads keep degrading
    /// to fetch-and-check.
    fn rebuild_summary_block(&mut self) -> Result<(), StorageError> {
        let mut delta = IoStats::default();
        let shape = self.meta.bitmaps_per_component.clone();
        let mut enc = SlotEncoder::new(self.meta.codec);
        for (ci, &n_i) in shape.iter().enumerate() {
            enc.begin_component();
            for slot in 0..n_i as usize {
                let bm = self.read_bitmap_into(ci + 1, slot, &mut delta)?;
                let _ = enc.encode_slot(&bm);
            }
        }
        if let Some(nn) = self.read_nn_into(&mut delta)? {
            let _ = enc.encode_nn(&nn);
        }
        let payload = enc.summary_payload(self.meta.n_rows);
        self.stats.add(&delta);
        self.store.write_file(
            &summary_file(self.meta.generation),
            &format::frame(&payload),
        )?;
        Ok(())
    }

    /// Installs a compacted base as the next generation, atomically.
    ///
    /// The new bitmaps (and optional non-null mask, which also carries
    /// deleted rows as nulls) are written as **version-4** slot files
    /// (plus the generation's summary block) under
    /// `g{G+1}_`-prefixed names, so nothing the current generation reads is
    /// touched. The single commit point is the manifest rewrite — one
    /// atomic `write_file` that flips generation, scheme (always
    /// bitmap-level after compaction), `wal_applied` watermark, and appends
    /// a `compacted=` journal line. A crash strictly before that write
    /// leaves the old generation fully intact (the orphaned `g{G+1}_` files
    /// are scavenged on the next open); a crash after it leaves the new
    /// generation committed (stale old files likewise scavenged). There is
    /// no intermediate state in which a reader mixes the two.
    ///
    /// After the commit, old-generation files are garbage-collected and the
    /// WAL is reset through the atomic write path — both best-effort, since
    /// the commit has already happened and reopen repeats the cleanup. The
    /// WAL is only reset when its highest sequence number is covered by
    /// `wal_applied`, so records appended concurrently with a lagging
    /// compaction are never dropped.
    ///
    /// Returns the new generation number. Version-1 stores (no checksummed
    /// frames, hence no atomic-commit guarantee worth the name) are
    /// rejected.
    pub fn install_generation(
        &mut self,
        components: &[Vec<BitVec>],
        nn: Option<&BitVec>,
        wal_applied: u64,
    ) -> Result<u64, StorageError> {
        if self.version < 2 {
            return Err(StorageError::corrupt(
                MANIFEST_FILE,
                "version 1 stores cannot install compacted generations",
            ));
        }
        let n_rows = components
            .first()
            .and_then(|c| c.first())
            .map_or(0, BitVec::len);
        for comp in components.iter().flatten() {
            assert_eq!(comp.len(), n_rows, "bitmaps must share the row count");
        }
        if let Some(nn) = nn {
            assert_eq!(nn.len(), n_rows, "nn mask must share the row count");
        }
        let next = self.meta.generation + 1;
        // Step 1: write every new-generation file. A crash anywhere in
        // here leaves orphans; the manifest still names the old base.
        // Slots and the summary block go through the same SlotEncoder as
        // the v4 builder, so compaction can never drift from build.
        let mut enc = SlotEncoder::new(self.meta.codec);
        for (ci, comp) in components.iter().enumerate() {
            enc.begin_component();
            for (j, bm) in comp.iter().enumerate() {
                self.store.write_file(
                    &gen_bitmap_file(next, ci + 1, j),
                    &format::frame(&enc.encode_slot(bm)),
                )?;
            }
        }
        if let Some(nn) = nn {
            self.store
                .write_file(&gen_nn_file(next), &format::frame(&enc.encode_nn(nn)))?;
        }
        self.store.write_file(
            &summary_file(next),
            &format::frame(&enc.summary_payload(n_rows)),
        )?;
        // Step 2: the commit point — one atomic manifest swap. Compaction
        // always installs the current (v4) format: per-slot coding plus
        // the summary block just written.
        let mut meta = self.meta.clone();
        meta.n_rows = n_rows;
        meta.bitmaps_per_component = components.iter().map(|c| c.len() as u32).collect();
        meta.scheme = StorageScheme::BitmapLevel;
        meta.generation = next;
        meta.wal_applied = wal_applied;
        meta.has_nn = nn.is_some();
        meta.compactions
            .push(format!("gen{next}:rows={n_rows}:wal={wal_applied}"));
        self.store.write_file(
            MANIFEST_FILE,
            &format::frame(meta.to_manifest(4).as_bytes()),
        )?;
        self.meta = meta;
        self.version = 4;
        self.summaries = OnceLock::new();
        // Step 3: cleanup, best-effort (reopen scavenges whatever this
        // misses — including everything, if the store just crashed).
        self.scavenge_stale_generations();
        if let Ok(data) = self.store.read_file(crate::wal::WAL_FILE) {
            let covered = crate::wal::replay(&data)
                .map(|out| out.records.last().map_or(0, |r| r.seq) <= wal_applied)
                .unwrap_or(true);
            if covered {
                let _ = self
                    .store
                    .write_file(crate::wal::WAL_FILE, &crate::wal::wal_header());
            }
        }
        Ok(next)
    }

    /// The manifest serialization matching this store's format version
    /// (repairs never change a store's version).
    fn manifest_text(&self) -> String {
        self.meta.to_manifest(self.version)
    }

    fn read_and_decompress(
        &self,
        name: &str,
        raw_len: usize,
        delta: &mut IoStats,
    ) -> Result<Vec<u8>, StorageError> {
        let data = read_with_retry(&self.store, name, self.retry, &mut delta.retries)?;
        delta.reads += 1;
        delta.bytes_read += data.len() as u64;
        let payload = if self.framed() {
            format::unframe(name, &data)?
        } else {
            data
        };
        if self.meta.codec == CodecKind::None {
            return Ok(payload);
        }
        let out = self
            .meta
            .codec
            .decompress(&payload, raw_len)
            .map_err(|e| StorageError::corrupt(name, e.to_string()))?;
        delta.bytes_decompressed += out.len() as u64;
        Ok(out)
    }
}

/// Reads `name`, retrying transient failures up to `retry.max_attempts`
/// total attempts and counting each retry into `retries`.
fn read_with_retry<S: ByteStore>(
    store: &S,
    name: &str,
    retry: RetryPolicy,
    retries: &mut u64,
) -> Result<Vec<u8>, StorageError> {
    let mut attempt = 1;
    loop {
        match store.read_file(name) {
            Ok(data) => return Ok(data),
            Err(e) => {
                let err = StorageError::from(e);
                if err.is_transient() && attempt < retry.max_attempts {
                    attempt += 1;
                    *retries += 1;
                } else {
                    return Err(err);
                }
            }
        }
    }
}

/// Name of the single index file under the IS scheme.
const INDEX_FILE: &str = "index.bix";
/// Name of the manifest file present under every scheme.
pub(crate) const MANIFEST_FILE: &str = "manifest.bixm";

/// v3 slot tag: dense bytes, compressed with the store's byte codec.
const SLOT_TAG_LITERAL: u8 = 0;
/// v3 slot tag: WAH compressed words, operable without decompression.
const SLOT_TAG_WAH: u8 = 1;

/// Encodes one bitmap as a version-3 slot payload (tag byte + body),
/// keeping the WAH form iff it is at most a quarter of the dense bytes —
/// the same structural threshold the executor's stay-compressed rule
/// uses, so a WAH slot is one the kernels can actually win on. Slots
/// compressing only marginally (uniform-random bitmaps hover near ratio
/// 0.75–1.0) stay literal: the modest byte saving does not pay for
/// decompressing them on every fetch. Shared by
/// [`StoredIndex::create_v3`] and v3 repair so a repaired slot re-encodes
/// exactly as the builder would.
fn encode_slot_v3(bm: &BitVec, codec: CodecKind) -> Vec<u8> {
    let raw = bm.to_bytes();
    let wah = WahBitmap::from_bitvec(bm);
    if wah.compressed_bytes() * 4 <= raw.len() {
        let mut out = Vec::with_capacity(1 + wah.compressed_bytes());
        out.push(SLOT_TAG_WAH);
        out.extend_from_slice(&wah.to_bytes());
        out
    } else {
        let mut out = vec![SLOT_TAG_LITERAL];
        out.extend_from_slice(&codec.compress(&raw));
        out
    }
}

/// One encoder for every slot-coded writer — build
/// ([`StoredIndex::create_v3`]/[`StoredIndex::create_v4`]), compaction
/// ([`StoredIndex::install_generation`]) and summary repair all encode
/// through this type, so the literal-vs-WAH heuristic and the summary
/// block construction cannot drift between paths: the summary is built
/// from exactly the bitmaps whose encodings were emitted.
struct SlotEncoder {
    codec: CodecKind,
    components: Vec<Vec<SlotSummary>>,
    nn: Option<SlotSummary>,
}

impl SlotEncoder {
    fn new(codec: CodecKind) -> Self {
        Self {
            codec,
            components: Vec::new(),
            nn: None,
        }
    }

    /// Opens the next component; subsequent [`SlotEncoder::encode_slot`]
    /// calls append to it.
    fn begin_component(&mut self) {
        self.components.push(Vec::new());
    }

    /// Encodes one slot payload (tag byte + body) and records its summary.
    fn encode_slot(&mut self, bm: &BitVec) -> Vec<u8> {
        self.components
            .last_mut()
            .expect("begin_component before encode_slot")
            .push(SlotSummary::build(bm));
        encode_slot_v3(bm, self.codec)
    }

    /// Encodes the non-null bitmap and records its summary.
    fn encode_nn(&mut self, bm: &BitVec) -> Vec<u8> {
        self.nn = Some(SlotSummary::build(bm));
        encode_slot_v3(bm, self.codec)
    }

    /// Serializes the accumulated summaries as the v4 summary block
    /// payload (framed by the caller like any other file).
    fn summary_payload(&self, n_rows: usize) -> Vec<u8> {
        encode_summary_block(n_rows, &self.components, self.nn.as_ref())
    }
}

/// Serializes a summary block: fixed header (row count, window width,
/// per-component slot counts, nn flag) followed by each slot's packed
/// window bits in component-major order, nn summary last. Each slot
/// contributes two equal-sized planes back to back: the "any-bit-set"
/// bits, then the "all-ones" bits.
fn encode_summary_block(
    n_rows: usize,
    components: &[Vec<SlotSummary>],
    nn: Option<&SlotSummary>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(n_rows as u64).to_le_bytes());
    out.extend_from_slice(&(SUMMARY_WINDOW_BITS as u32).to_le_bytes());
    out.extend_from_slice(&(components.len() as u32).to_le_bytes());
    for comp in components {
        out.extend_from_slice(&(comp.len() as u32).to_le_bytes());
    }
    out.push(u8::from(nn.is_some()));
    for summary in components.iter().flatten().chain(nn) {
        out.extend_from_slice(&summary.any.to_bytes());
        out.extend_from_slice(&summary.all.to_bytes());
    }
    out
}

/// Parses a summary block payload. `None` on any structural defect —
/// the caller treats that exactly like a missing block.
fn decode_summary_block(payload: &[u8]) -> Option<IndexSummaries> {
    fn take<'a>(p: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if p.len() < n {
            return None;
        }
        let (head, tail) = p.split_at(n);
        *p = tail;
        Some(head)
    }
    let mut p = payload;
    let n_rows = u64::from_le_bytes(take(&mut p, 8)?.try_into().ok()?) as usize;
    let window_bits = u32::from_le_bytes(take(&mut p, 4)?.try_into().ok()?) as usize;
    if window_bits == 0 {
        return None;
    }
    let n_components = u32::from_le_bytes(take(&mut p, 4)?.try_into().ok()?) as usize;
    // The remaining payload bounds the believable slot count; reject
    // headers promising more slots than bytes before allocating.
    if n_components > p.len() / 4 {
        return None;
    }
    let mut counts = Vec::with_capacity(n_components);
    for _ in 0..n_components {
        counts.push(u32::from_le_bytes(take(&mut p, 4)?.try_into().ok()?) as usize);
    }
    let has_nn = match take(&mut p, 1)? {
        [0] => false,
        [1] => true,
        _ => return None,
    };
    let windows = SlotSummary::windows_for(n_rows, window_bits);
    let bytes_per = windows.div_ceil(8);
    let total_slots = counts.iter().try_fold(0usize, |a, &c| a.checked_add(c))?;
    let n_summaries = total_slots.checked_add(usize::from(has_nn))?;
    // Current blocks carry two planes per slot (any + all); blocks written
    // before the all-ones plane carry one. A legacy block decodes with an
    // empty all-plane — "no saturation guarantee" — which is never wrong.
    // Any other size is a structural defect.
    let two_plane = n_summaries
        .checked_mul(bytes_per)?
        .checked_mul(2)
        .is_some_and(|body| p.len() == body);
    let legacy = n_summaries
        .checked_mul(bytes_per)
        .is_some_and(|body| p.len() == body);
    if !two_plane && !legacy {
        return None;
    }
    let read_summary = |p: &mut &[u8]| -> Option<SlotSummary> {
        let any = BitVec::from_bytes(windows, take(p, bytes_per)?);
        let all = if two_plane {
            BitVec::from_bytes(windows, take(p, bytes_per)?)
        } else {
            BitVec::zeros(windows)
        };
        Some(SlotSummary {
            len: n_rows,
            window_bits,
            any,
            all,
        })
    };
    let mut slots = Vec::with_capacity(n_components);
    for &count in &counts {
        let mut comp = Vec::with_capacity(count);
        for _ in 0..count {
            comp.push(read_summary(&mut p)?);
        }
        slots.push(comp);
    }
    let nn = if has_nn {
        Some(read_summary(&mut p)?)
    } else {
        None
    };
    Some(IndexSummaries::new(n_rows, window_bits, slots, nn))
}

fn bitmap_file(comp: usize, slot: usize) -> String {
    gen_bitmap_file(0, comp, slot)
}

/// Slot file name for a given base generation. Generation 0 keeps the
/// legacy names so pre-ingest stores stay readable byte-for-byte;
/// compacted generations are `g{G}_`-prefixed so two generations never
/// collide in one store.
fn gen_bitmap_file(generation: u64, comp: usize, slot: usize) -> String {
    if generation == 0 {
        format!("c{comp}_b{slot}.bmp")
    } else {
        format!("g{generation}_c{comp}_b{slot}.bmp")
    }
}

/// Non-null bitmap file name for a given base generation.
fn gen_nn_file(generation: u64) -> String {
    if generation == 0 {
        "nn.bmp".to_string()
    } else {
        format!("g{generation}_nn.bmp")
    }
}

/// Name of the generation-0 summary block file (v4 stores).
const SUMMARY_FILE: &str = "summary.bxs";

/// Summary block file name for a given base generation.
fn summary_file(generation: u64) -> String {
    if generation == 0 {
        SUMMARY_FILE.to_string()
    } else {
        format!("g{generation}_{SUMMARY_FILE}")
    }
}

/// The generation a data file belongs to, or `None` for files outside the
/// data layout (manifest, WAL, strays). Used to scavenge orphans left by
/// a crash between compaction steps.
fn data_file_generation(name: &str) -> Option<u64> {
    let (generation, rest) = match name.strip_prefix('g') {
        Some(tail) => {
            let (num, rest) = tail.split_once('_')?;
            (num.parse().ok()?, rest)
        }
        None => (0, name),
    };
    let is_data = rest == "nn.bmp"
        || rest == SUMMARY_FILE
        || rest == INDEX_FILE
        || parse_slot_name(rest).is_some()
        || parse_component_name(rest).is_some();
    is_data.then_some(generation)
}

/// Parses `c{comp}_b{slot}.bmp`.
fn parse_slot_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix('c')?.strip_suffix(".bmp")?;
    let (comp, slot) = rest.split_once("_b")?;
    Some((comp.parse().ok()?, slot.parse().ok()?))
}

/// Parses `c{comp}.cmp`.
fn parse_component_name(name: &str) -> Option<usize> {
    name.strip_prefix('c')?.strip_suffix(".cmp")?.parse().ok()
}

fn component_file(comp: usize) -> String {
    format!("c{comp}.cmp")
}

/// Packs `bitmaps` (columns) into a row-major byte buffer: bit
/// `r * width + j` holds bitmap `j`'s bit for row `r`.
fn row_major(bitmaps: &[BitVec], n_rows: usize) -> Vec<u8> {
    let refs: Vec<&BitVec> = bitmaps.iter().collect();
    row_major_refs(&refs, n_rows)
}

fn row_major_refs(bitmaps: &[&BitVec], n_rows: usize) -> Vec<u8> {
    let width = bitmaps.len();
    let total_bits = n_rows * width;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    for (j, bm) in bitmaps.iter().enumerate() {
        for r in bm.iter_ones() {
            let bit = r * width + j;
            out[bit / 8] |= 1 << (bit % 8);
        }
    }
    out
}

/// Extracts column `j` from a row-major buffer of `width` bitmaps.
fn extract_column(raw: &[u8], n_rows: usize, width: usize, j: usize) -> BitVec {
    let mut out = BitVec::zeros(n_rows);
    for r in 0..n_rows {
        let bit = r * width + j;
        if raw[bit / 8] & (1 << (bit % 8)) != 0 {
            out.set(r, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultStore};
    use crate::store::MemStore;

    /// Two components: 3 bitmaps of 20 rows and 2 bitmaps of 20 rows.
    fn sample_components() -> Vec<Vec<BitVec>> {
        let pat =
            |step: usize, off: usize| BitVec::from_fn(20, move |i| (i + off).is_multiple_of(step));
        vec![
            vec![pat(2, 0), pat(3, 1), pat(5, 2)],
            vec![pat(4, 0), pat(7, 3)],
        ]
    }

    fn roundtrip(scheme: StorageScheme, codec: CodecKind) {
        let comps = sample_components();
        let mut stored = StoredIndex::create(MemStore::new(), &comps, scheme, codec).unwrap();
        for (ci, comp) in comps.iter().enumerate() {
            for (j, bm) in comp.iter().enumerate() {
                let got = stored.read_bitmap(ci + 1, j).unwrap();
                assert_eq!(&got, bm, "{scheme:?}/{codec:?} comp {} slot {j}", ci + 1);
            }
        }
    }

    #[test]
    fn all_schemes_all_codecs_roundtrip() {
        for scheme in [
            StorageScheme::BitmapLevel,
            StorageScheme::ComponentLevel,
            StorageScheme::IndexLevel,
        ] {
            for codec in [
                CodecKind::None,
                CodecKind::Rle,
                CodecKind::Lzss,
                CodecKind::Deflate,
            ] {
                roundtrip(scheme, codec);
            }
        }
    }

    #[test]
    fn file_counts_per_scheme() {
        let comps = sample_components();
        let bs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(bs.store.file_names().unwrap().len(), 6); // 5 bitmaps + manifest
        let cs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::ComponentLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(cs.store.file_names().unwrap().len(), 3); // 2 components + manifest
        let is = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(is.store.file_names().unwrap().len(), 2); // index + manifest
    }

    #[test]
    fn io_accounting_reflects_scheme_asymmetry() {
        let comps = sample_components();
        let mut bs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        bs.read_bitmap(1, 0).unwrap();
        let bs_stats = bs.take_stats();
        assert_eq!(bs_stats.reads, 1);
        // ceil(20/8) = 3 payload bytes + 20-byte frame header.
        assert_eq!(bs_stats.bytes_read, 3 + format::HEADER_LEN as u64);

        let mut cs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::ComponentLevel,
            CodecKind::None,
        )
        .unwrap();
        cs.read_bitmap(1, 0).unwrap();
        let cs_stats = cs.take_stats();
        // CS reads the whole 20x3-bit component: ceil(60/8) = 8 bytes + header.
        assert_eq!(cs_stats.bytes_read, 8 + format::HEADER_LEN as u64);
        assert!(cs_stats.bytes_read > bs_stats.bytes_read);
    }

    #[test]
    fn decompression_accounted() {
        let comps = sample_components();
        let mut cbs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::Lzss,
        )
        .unwrap();
        cbs.read_bitmap(2, 1).unwrap();
        let s = cbs.take_stats();
        assert_eq!(s.bytes_decompressed, 3);
        assert!(s.bytes_read > 0);
    }

    #[test]
    fn meta_totals() {
        let comps = sample_components();
        let s = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(s.meta().total_bitmaps(), 5);
        assert_eq!(s.meta().n_rows, 20);
        // IS file: ceil(20*5/8) = 13 payload bytes + frame header.
        assert_eq!(s.total_stored_bytes(), 13 + format::HEADER_LEN as u64);
    }

    #[test]
    fn open_reloads_without_rebuild() {
        let comps = sample_components();
        let store = {
            let stored = StoredIndex::create(
                MemStore::new(),
                &comps,
                StorageScheme::ComponentLevel,
                CodecKind::Deflate,
            )
            .unwrap();
            stored.store
        };
        let mut reopened = StoredIndex::open(store).unwrap();
        assert_eq!(reopened.meta().n_rows, 20);
        assert_eq!(reopened.meta().bitmaps_per_component, vec![3, 2]);
        assert_eq!(reopened.meta().scheme, StorageScheme::ComponentLevel);
        assert_eq!(reopened.meta().codec, CodecKind::Deflate);
        assert_eq!(reopened.format_version(), 2);
        for (ci, comp) in comps.iter().enumerate() {
            for (j, bm) in comp.iter().enumerate() {
                assert_eq!(&reopened.read_bitmap(ci + 1, j).unwrap(), bm);
            }
        }
    }

    #[test]
    fn manifest_roundtrip_and_rejects_garbage() {
        let meta = StoredIndexMeta {
            n_rows: 12345,
            bitmaps_per_component: vec![7, 1, 4],
            scheme: StorageScheme::BitmapLevel,
            codec: CodecKind::Lzss,
            repairs: vec!["c1_b0.bmp".into(), "c3_b2.bmp".into()],
            generation: 0,
            wal_applied: 0,
            has_nn: false,
            compactions: Vec::new(),
        };
        let text = meta.to_manifest(2);
        // Defaulted ingest keys are not emitted: pre-ingest manifests stay
        // byte-identical to what older builds wrote.
        assert!(!text.contains("generation="));
        assert!(!text.contains("wal_applied="));
        assert!(!text.contains("nn="));
        let (parsed, version) = StoredIndexMeta::from_manifest(&text).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(version, 2);
        // Version-1 manifests still parse.
        let v1 = text.replace("version=2", "version=1");
        assert_eq!(StoredIndexMeta::from_manifest(&v1).unwrap(), (meta, 1));
        assert!(StoredIndexMeta::from_manifest("").is_err());
        assert!(StoredIndexMeta::from_manifest("version=9\n").is_err());
        assert!(StoredIndexMeta::from_manifest(&text.replace("lzss", "zip")).is_err());
        assert!(StoredIndexMeta::from_manifest(&text.replace("scheme=bs", "scheme=qq")).is_err());
        let mut store = MemStore::new();
        store.write_file("other", b"x").unwrap();
        assert!(StoredIndex::open(store).is_err(), "missing manifest");
    }

    #[test]
    fn manifest_roundtrips_ingest_metadata() {
        let meta = StoredIndexMeta {
            n_rows: 64,
            bitmaps_per_component: vec![4],
            scheme: StorageScheme::BitmapLevel,
            codec: CodecKind::None,
            repairs: Vec::new(),
            generation: 3,
            wal_applied: 17,
            has_nn: true,
            compactions: vec!["gen3:rows=64:wal=17".into()],
        };
        let text = meta.to_manifest(3);
        let (parsed, version) = StoredIndexMeta::from_manifest(&text).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(version, 3);
        assert!(StoredIndexMeta::from_manifest(&text.replace("nn=1", "nn=2")).is_err());
        assert!(
            StoredIndexMeta::from_manifest(&text.replace("generation=3", "generation=x")).is_err()
        );
    }

    #[test]
    fn data_file_generation_classifies_names() {
        assert_eq!(data_file_generation("c1_b0.bmp"), Some(0));
        assert_eq!(data_file_generation("c2.cmp"), Some(0));
        assert_eq!(data_file_generation("index.bix"), Some(0));
        assert_eq!(data_file_generation("nn.bmp"), Some(0));
        assert_eq!(data_file_generation("g7_c1_b0.bmp"), Some(7));
        assert_eq!(data_file_generation("g7_nn.bmp"), Some(7));
        assert_eq!(data_file_generation(SUMMARY_FILE), Some(0));
        assert_eq!(data_file_generation("g7_summary.bxs"), Some(7));
        assert_eq!(data_file_generation(MANIFEST_FILE), None);
        assert_eq!(data_file_generation(crate::wal::WAL_FILE), None);
        assert_eq!(data_file_generation("stray.tmp"), None);
        assert_eq!(data_file_generation("gx_c1_b0.bmp"), None);
    }

    #[test]
    fn install_generation_swaps_base_atomically() {
        let comps = sample_components();
        let mut stored = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        // New base: same shape, first bitmap complemented, one nulled row.
        let mut new_comps = comps.clone();
        new_comps[0][0].not_assign();
        let mut nn = BitVec::ones(20);
        nn.set(3, false);
        let generation = stored.install_generation(&new_comps, Some(&nn), 9).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(stored.format_version(), 4);
        assert_eq!(stored.meta().generation, 1);
        assert_eq!(stored.meta().wal_applied, 9);
        assert!(stored.meta().has_nn);
        assert_eq!(stored.meta().compactions, vec!["gen1:rows=20:wal=9"]);
        for (ci, comp) in new_comps.iter().enumerate() {
            for (j, bm) in comp.iter().enumerate() {
                assert_eq!(&stored.read_bitmap(ci + 1, j).unwrap(), bm);
            }
        }
        assert_eq!(stored.read_nn().unwrap(), Some(nn.clone()));
        // Old-generation files are gone; a reopen sees only the new base.
        let store = stored.into_store();
        assert!(store.read_file("c1_b0.bmp").is_err());
        let mut reopened = StoredIndex::open(store).unwrap();
        assert_eq!(reopened.meta().generation, 1);
        assert_eq!(reopened.read_nn().unwrap(), Some(nn));
        assert_eq!(&reopened.read_bitmap(1, 0).unwrap(), &new_comps[0][0]);
        assert!(reopened.scrub().unwrap().is_clean());
    }

    #[test]
    fn open_scavenges_orphaned_generation_files() {
        let comps = sample_components();
        let stored = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let mut store = stored.into_store();
        // Simulate a crash mid-compaction: new-generation files written,
        // manifest never swapped.
        store
            .write_file("g1_c1_b0.bmp", &format::frame(b"orphan"))
            .unwrap();
        store
            .write_file("g1_nn.bmp", &format::frame(b"orphan"))
            .unwrap();
        let mut reopened = StoredIndex::open(store).unwrap();
        assert_eq!(reopened.meta().generation, 0);
        assert!(reopened.store().read_file("g1_c1_b0.bmp").is_err());
        assert!(reopened.store().read_file("g1_nn.bmp").is_err());
        assert!(reopened.scrub().unwrap().is_clean());
        assert_eq!(&reopened.read_bitmap(1, 0).unwrap(), &comps[0][0]);
    }

    #[test]
    fn total_bytes_excludes_manifest() {
        let comps = sample_components();
        let s = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        // IS file alone: ceil(20*5/8) = 13 payload bytes + frame header.
        assert_eq!(s.total_stored_bytes(), 13 + format::HEADER_LEN as u64);
    }

    #[test]
    fn bad_slot_is_typed_error() {
        let comps = sample_components();
        let mut s = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        assert!(matches!(
            s.read_bitmap(1, 3),
            Err(StorageError::InvalidSlot { comp: 1, slot: 3 })
        ));
        assert!(matches!(
            s.read_bitmap(0, 0),
            Err(StorageError::InvalidSlot { comp: 0, slot: 0 })
        ));
        assert!(matches!(
            s.read_bitmap(7, 0),
            Err(StorageError::InvalidSlot { comp: 7, slot: 0 })
        ));
    }

    /// Builds a version-1 store by hand (raw payloads, plain manifest).
    fn v1_store(comps: &[Vec<BitVec>], codec: CodecKind) -> MemStore {
        let mut store = MemStore::new();
        for (ci, comp) in comps.iter().enumerate() {
            for (j, bm) in comp.iter().enumerate() {
                store
                    .write_file(&bitmap_file(ci + 1, j), &codec.compress(&bm.to_bytes()))
                    .unwrap();
            }
        }
        let manifest = format!(
            "version=1\nn_rows=20\nscheme=bs\ncodec={}\ncomponents=3,2\n",
            codec.name()
        );
        store
            .write_file(MANIFEST_FILE, manifest.as_bytes())
            .unwrap();
        store
    }

    #[test]
    fn v1_stores_still_open_and_read() {
        let comps = sample_components();
        for codec in [CodecKind::None, CodecKind::Deflate] {
            let mut stored = StoredIndex::open(v1_store(&comps, codec)).unwrap();
            assert_eq!(stored.format_version(), 1);
            for (ci, comp) in comps.iter().enumerate() {
                for (j, bm) in comp.iter().enumerate() {
                    assert_eq!(&stored.read_bitmap(ci + 1, j).unwrap(), bm, "{codec:?}");
                }
            }
            // v1 files carry no checksums: scrub only checks readability.
            assert!(stored.scrub().unwrap().is_clean());
        }
    }

    #[test]
    fn corruption_is_reported_not_returned() {
        let comps = sample_components();
        let stored = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let mut store = stored.into_store();
        // Flip one payload bit of c1_b0.bmp behind the index's back.
        let mut data = store.read_file("c1_b0.bmp").unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        store.write_file("c1_b0.bmp", &data).unwrap();

        let mut reopened = StoredIndex::open(store).unwrap();
        match reopened.read_bitmap(1, 0) {
            Err(StorageError::ChecksumMismatch { file, .. }) => assert_eq!(file, "c1_b0.bmp"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // Other bitmaps are unaffected.
        assert!(reopened.read_bitmap(1, 1).is_ok());
        // Scrub pinpoints exactly the corrupt file.
        let report = reopened.scrub().unwrap();
        assert_eq!(report.files_checked, 6);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].file, "c1_b0.bmp");
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let comps = sample_components();
        let stored = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        let mut store = stored.into_store();
        let data = store.read_file(INDEX_FILE).unwrap();
        store
            .write_file(INDEX_FILE, &data[..data.len() / 2])
            .unwrap();
        let mut reopened = StoredIndex::open(store).unwrap();
        assert!(matches!(
            reopened.read_bitmap(1, 0),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn file_slots_maps_every_scheme() {
        let comps = sample_components();
        let bs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(bs.file_slots("c2_b1.bmp"), vec![(2, 1)]);
        assert_eq!(bs.file_slots(MANIFEST_FILE), vec![]);
        assert_eq!(bs.file_slots("stray.tmp"), vec![]);
        let cs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::ComponentLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(cs.file_slots("c1.cmp"), vec![(1, 0), (1, 1), (1, 2)]);
        let is = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(
            is.file_slots(INDEX_FILE),
            vec![(1, 0), (1, 1), (1, 2), (2, 0), (2, 1)]
        );
    }

    #[test]
    fn scrub_and_repair_restores_corrupt_files_and_journals() {
        for scheme in [
            StorageScheme::BitmapLevel,
            StorageScheme::ComponentLevel,
            StorageScheme::IndexLevel,
        ] {
            let comps = sample_components();
            let stored =
                StoredIndex::create(MemStore::new(), &comps, scheme, CodecKind::Deflate).unwrap();
            let mut store = stored.into_store();
            // Corrupt one payload byte of the first data file.
            let name = store
                .file_names()
                .unwrap()
                .into_iter()
                .find(|n| n != MANIFEST_FILE)
                .unwrap();
            let mut data = store.read_file(&name).unwrap();
            let last = data.len() - 1;
            data[last] ^= 0x10;
            store.write_file(&name, &data).unwrap();

            let mut stored = StoredIndex::open(store).unwrap();
            let report = stored
                .scrub_and_repair(|comp, slot| Some(comps[comp - 1][slot].clone()))
                .unwrap();
            assert_eq!(report.repaired, vec![name.clone()], "{scheme:?}");
            assert!(report.fully_repaired(), "{scheme:?}");
            assert!(stored.scrub().unwrap().is_clean(), "{scheme:?}");
            // A fresh open reads every bitmap clean and sees the journal.
            let mut reopened = StoredIndex::open(stored.into_store()).unwrap();
            assert_eq!(reopened.meta().repairs, vec![name], "{scheme:?}");
            for (ci, comp) in comps.iter().enumerate() {
                for (j, bm) in comp.iter().enumerate() {
                    assert_eq!(&reopened.read_bitmap(ci + 1, j).unwrap(), bm, "{scheme:?}");
                }
            }
        }
    }

    #[test]
    fn unrepairable_files_are_reported_not_failed() {
        let comps = sample_components();
        let stored = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let mut store = stored.into_store();
        let mut data = store.read_file("c1_b0.bmp").unwrap();
        data[0] ^= 0xFF;
        store.write_file("c1_b0.bmp", &data).unwrap();
        let mut stored = StoredIndex::open(store).unwrap();
        // A provider with nothing to offer leaves the file corrupt.
        let report = stored.scrub_and_repair(|_, _| None).unwrap();
        assert!(report.repaired.is_empty());
        assert_eq!(report.unrepaired.len(), 1);
        assert_eq!(report.unrepaired[0].file, "c1_b0.bmp");
        assert!(!report.fully_repaired());
        assert!(!stored.scrub().unwrap().is_clean());
        // No repair happened, so nothing was journaled.
        assert!(stored.meta().repairs.is_empty());
    }

    #[test]
    fn transient_faults_are_retried_within_policy() {
        let comps = sample_components();
        let store = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap()
        .into_store();
        // Two transient failures, then success: within the default 3 attempts.
        let faulty = FaultStore::new(store, FaultPlan::new(5).with_transient_reads("c1_b0", 2));
        let mut stored = StoredIndex::open(faulty).unwrap();
        let bm = stored.read_bitmap(1, 0).unwrap();
        assert_eq!(&bm, &comps[0][0]);
        assert_eq!(stored.stats().retries, 2);

        // Three failures exceed the default policy: the error propagates.
        let store2 = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap()
        .into_store();
        let faulty2 = FaultStore::new(store2, FaultPlan::new(5).with_transient_reads("c1_b0", 3));
        let mut stored2 = StoredIndex::open(faulty2).unwrap();
        let err = stored2.read_bitmap(1, 0).unwrap_err();
        assert!(err.is_transient());
        // A follow-up read succeeds (the budget is spent).
        assert!(stored2.read_bitmap(1, 0).is_ok());
    }

    /// Wide bitmaps where the per-slot heuristic actually diverges: a very
    /// sparse column (WAH wins) next to a dense pseudo-random one (dense
    /// bytes win).
    fn mixed_density_components() -> Vec<Vec<BitVec>> {
        let n = 4096;
        vec![vec![
            BitVec::from_fn(n, |i| i % 1000 == 0),
            BitVec::from_fn(n, |i| (i.wrapping_mul(2_654_435_761)) % 3 == 0),
            BitVec::zeros(n),
        ]]
    }

    #[test]
    fn v3_roundtrips_and_reopens() {
        let comps = mixed_density_components();
        for codec in [CodecKind::None, CodecKind::Deflate] {
            let stored = StoredIndex::create_v3(MemStore::new(), &comps, codec).unwrap();
            assert_eq!(stored.format_version(), 3);
            let mut reopened = StoredIndex::open(stored.into_store()).unwrap();
            assert_eq!(reopened.format_version(), 3);
            for (j, bm) in comps[0].iter().enumerate() {
                assert_eq!(
                    &reopened.read_bitmap(1, j).unwrap(),
                    bm,
                    "{codec:?} slot {j}"
                );
            }
        }
    }

    #[test]
    fn v3_repr_keeps_sparse_slots_compressed() {
        let comps = mixed_density_components();
        let mut stored = StoredIndex::create_v3(MemStore::new(), &comps, CodecKind::None).unwrap();
        let sparse = stored.read_repr(1, 0).unwrap();
        assert!(sparse.is_compressed(), "sparse slot should stay WAH");
        let dense = stored.read_repr(1, 1).unwrap();
        assert!(!dense.is_compressed(), "dense slot should be literal");
        let empty = stored.read_repr(1, 2).unwrap();
        assert!(empty.is_compressed(), "all-zeros slot should stay WAH");
        for (j, bm) in comps[0].iter().enumerate() {
            assert_eq!(*stored.read_repr(1, j).unwrap().to_bitvec(), *bm);
        }
        // WAH slot reads cost no codec decompression.
        let mut fresh = StoredIndex::open(stored.into_store()).unwrap();
        fresh.read_repr(1, 0).unwrap();
        assert_eq!(fresh.stats().bytes_decompressed, 0);
        // Materializing the same slot through read_bitmap does.
        fresh.read_bitmap(1, 0).unwrap();
        assert!(fresh.take_stats().bytes_decompressed > 0);
    }

    #[test]
    fn v3_stores_sparse_slots_smaller_than_v2() {
        let comps = mixed_density_components();
        let v2 = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let v3 = StoredIndex::create_v3(MemStore::new(), &comps, CodecKind::None).unwrap();
        assert!(v3.total_stored_bytes() < v2.total_stored_bytes());
    }

    #[test]
    fn v3_scrub_and_repair_preserves_slot_coding() {
        let comps = mixed_density_components();
        let stored = StoredIndex::create_v3(MemStore::new(), &comps, CodecKind::Deflate).unwrap();
        let mut store = stored.into_store();
        // Corrupt the sparse (WAH-coded) slot file.
        let mut data = store.read_file("c1_b0.bmp").unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x40;
        store.write_file("c1_b0.bmp", &data).unwrap();

        let mut stored = StoredIndex::open(store).unwrap();
        assert!(stored.read_repr(1, 0).is_err());
        let report = stored
            .scrub_and_repair(|comp, slot| Some(comps[comp - 1][slot].clone()))
            .unwrap();
        assert_eq!(report.repaired, vec!["c1_b0.bmp".to_string()]);
        // The repaired slot is WAH again — not silently downgraded to v2.
        let repr = stored.read_repr(1, 0).unwrap();
        assert!(repr.is_compressed());
        assert_eq!(*repr.to_bitvec(), comps[0][0]);
        // Reopen sees version 3 and the repair journal.
        let reopened = StoredIndex::open(stored.into_store()).unwrap();
        assert_eq!(reopened.format_version(), 3);
        assert_eq!(reopened.meta().repairs, vec!["c1_b0.bmp".to_string()]);
    }

    #[test]
    fn pre_v3_read_repr_is_always_literal() {
        let comps = sample_components();
        let mut v2 = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::ComponentLevel,
            CodecKind::Rle,
        )
        .unwrap();
        let repr = v2.read_repr(1, 2).unwrap();
        assert!(!repr.is_compressed());
        assert_eq!(*repr.to_bitvec(), comps[0][2]);
    }

    /// Components wide enough to span several summary windows, with one
    /// slot dead over a whole window range.
    fn windowed_components() -> Vec<Vec<BitVec>> {
        let n = 4 * SUMMARY_WINDOW_BITS + 100;
        vec![
            vec![
                // Live only in the first window.
                BitVec::from_indices(n, &[5, 6, 7]),
                // Live only in the last (partial) window.
                BitVec::from_indices(n, &[4 * SUMMARY_WINDOW_BITS + 50]),
                BitVec::zeros(n),
            ],
            vec![BitVec::from_fn(n, |i| i.is_multiple_of(3))],
        ]
    }

    #[test]
    fn v4_roundtrips_and_serves_validated_summaries() {
        let comps = windowed_components();
        let stored = StoredIndex::create_v4(MemStore::new(), &comps, CodecKind::None).unwrap();
        assert_eq!(stored.format_version(), 4);
        let mut reopened = StoredIndex::open(stored.into_store()).unwrap();
        assert_eq!(reopened.format_version(), 4);
        for (ci, comp) in comps.iter().enumerate() {
            for (j, bm) in comp.iter().enumerate() {
                assert_eq!(&reopened.read_bitmap(ci + 1, j).unwrap(), bm);
            }
        }
        let summaries = reopened.read_summaries().expect("v4 store has summaries");
        assert_eq!(summaries.n_rows(), comps[0][0].len());
        assert_eq!(summaries.slots_per_component(), vec![3, 1]);
        let s = summaries.get(1, 0).unwrap();
        assert!(s.range_any(0, SUMMARY_WINDOW_BITS));
        assert!(!s.range_any(SUMMARY_WINDOW_BITS, 4 * SUMMARY_WINDOW_BITS + 100));
        let tail = summaries.get(1, 1).unwrap();
        assert!(!tail.range_any(0, 4 * SUMMARY_WINDOW_BITS));
        assert!(tail.range_any(4 * SUMMARY_WINDOW_BITS, 4 * SUMMARY_WINDOW_BITS + 100));
        assert!(!summaries.get(1, 2).unwrap().range_any(0, usize::MAX));
        assert!(summaries.get(2, 0).unwrap().range_any(0, 3));
        // The second call serves the cached block without new I/O.
        let before = reopened.stats().reads;
        let again = reopened.read_summaries().unwrap();
        assert!(Arc::ptr_eq(&summaries, &again));
        assert_eq!(reopened.stats().reads, before);
    }

    #[test]
    fn v3_stores_have_no_summaries() {
        let comps = windowed_components();
        let mut stored = StoredIndex::create_v3(MemStore::new(), &comps, CodecKind::None).unwrap();
        assert!(stored.read_summaries().is_none());
    }

    #[test]
    fn corrupt_summary_degrades_to_none_and_repairs() {
        let comps = windowed_components();
        let stored = StoredIndex::create_v4(MemStore::new(), &comps, CodecKind::None).unwrap();
        let mut store = stored.into_store();
        let mut data = store.read_file(SUMMARY_FILE).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x08;
        store.write_file(SUMMARY_FILE, &data).unwrap();

        let mut stored = StoredIndex::open(store).unwrap();
        // Corrupt block: no summaries, but every bitmap still reads clean.
        assert!(stored.read_summaries().is_none());
        assert_eq!(&stored.read_bitmap(1, 0).unwrap(), &comps[0][0]);
        let report = stored.scrub().unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].file, SUMMARY_FILE);
        // Repair rebuilds the block from the stored slots — no caller
        // content needed — and the summaries come back validated.
        let report = stored.scrub_and_repair(|_, _| None).unwrap();
        assert_eq!(report.repaired, vec![SUMMARY_FILE.to_string()]);
        assert!(report.fully_repaired(), "{report:?}");
        assert!(stored.scrub().unwrap().is_clean());
        let summaries = stored.read_summaries().expect("repaired summaries");
        assert!(!summaries.get(1, 2).unwrap().range_any(0, usize::MAX));
        let reopened = StoredIndex::open(stored.into_store()).unwrap();
        assert_eq!(reopened.meta().repairs, vec![SUMMARY_FILE.to_string()]);
    }

    #[test]
    fn mismatched_summary_shape_is_rejected() {
        let comps = windowed_components();
        let stored = StoredIndex::create_v4(MemStore::new(), &comps, CodecKind::None).unwrap();
        let mut store = stored.into_store();
        // A validly framed block whose shape disagrees with the manifest
        // (one component, one slot) must not be served.
        let wrong = encode_summary_block(
            comps[0][0].len(),
            &[vec![SlotSummary::build(&comps[0][0])]],
            None,
        );
        store
            .write_file(SUMMARY_FILE, &format::frame(&wrong))
            .unwrap();
        let mut stored = StoredIndex::open(store).unwrap();
        assert!(stored.read_summaries().is_none());
    }

    #[test]
    fn summary_block_decoder_rejects_structural_garbage() {
        assert!(decode_summary_block(&[]).is_none());
        assert!(decode_summary_block(&[0u8; 16]).is_none());
        let good = encode_summary_block(
            100,
            &[vec![SlotSummary::build(&BitVec::ones(100))]],
            Some(&SlotSummary::build(&BitVec::zeros(100))),
        );
        let decoded = decode_summary_block(&good).unwrap();
        assert_eq!(decoded.n_rows(), 100);
        assert!(decoded.get(1, 0).unwrap().range_any(0, 100));
        assert!(!decoded.nn().unwrap().range_any(0, 100));
        // Truncated and padded bodies both fail the exact-length check.
        assert!(decode_summary_block(&good[..good.len() - 1]).is_none());
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_summary_block(&padded).is_none());
        // A zero window width cannot be divided by.
        let mut zero_window = good;
        zero_window[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_summary_block(&zero_window).is_none());
    }

    #[test]
    fn legacy_single_plane_summary_block_decodes_without_all_guarantees() {
        // A block written before the all-ones plane: header plus one
        // plane (`any` bytes) per summary. It must still decode, with the
        // all-plane empty — no saturation guarantees, never wrong.
        let n_rows = 2 * SUMMARY_WINDOW_BITS + 5;
        let ones = BitVec::ones(n_rows);
        let summary = SlotSummary::build(&ones);
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&(n_rows as u64).to_le_bytes());
        legacy.extend_from_slice(&(SUMMARY_WINDOW_BITS as u32).to_le_bytes());
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.push(0);
        legacy.extend_from_slice(&summary.any.to_bytes());
        let decoded = decode_summary_block(&legacy).expect("legacy block decodes");
        let s = decoded.get(1, 0).unwrap();
        assert!(s.range_any(0, n_rows));
        assert!(
            !s.range_all(0, SUMMARY_WINDOW_BITS),
            "legacy blocks promise no saturation"
        );
        // The current encoder round-trips both planes.
        let current = encode_summary_block(n_rows, &[vec![summary.clone()]], None);
        let decoded = decode_summary_block(&current).unwrap();
        assert_eq!(decoded.get(1, 0).unwrap(), &summary);
        assert!(decoded.get(1, 0).unwrap().range_all(0, n_rows));
    }

    #[test]
    fn install_generation_writes_next_summary_block() {
        let comps = windowed_components();
        let mut stored = StoredIndex::create_v4(MemStore::new(), &comps, CodecKind::None).unwrap();
        // Warm the cache so installation must invalidate it.
        assert!(stored.read_summaries().is_some());
        let mut new_comps = comps.clone();
        new_comps[0][2] = BitVec::from_indices(comps[0][0].len(), &[2 * SUMMARY_WINDOW_BITS + 9]);
        stored.install_generation(&new_comps, None, 1).unwrap();
        assert_eq!(stored.format_version(), 4);
        let summaries = stored.read_summaries().expect("fresh generation summaries");
        let s = summaries.get(1, 2).unwrap();
        assert!(s.range_any(2 * SUMMARY_WINDOW_BITS, 3 * SUMMARY_WINDOW_BITS));
        assert!(!s.range_any(0, 2 * SUMMARY_WINDOW_BITS));
        // The old generation-0 summary block is scavenged with its slots.
        assert!(stored.store().read_file(SUMMARY_FILE).is_err());
        assert!(stored.store().read_file("g1_summary.bxs").is_ok());
        assert!(stored.scrub().unwrap().is_clean());
    }

    #[test]
    fn v3_rejects_unknown_tag_and_bad_wah() {
        let comps = mixed_density_components();
        let stored = StoredIndex::create_v3(MemStore::new(), &comps, CodecKind::None).unwrap();
        let mut store = stored.into_store();
        // Rewrite the sparse slot with an unknown tag, properly framed so
        // only the tag dispatch can object.
        store
            .write_file("c1_b0.bmp", &format::frame(&[9u8, 0, 0, 0, 0]))
            .unwrap();
        let mut stored = StoredIndex::open(store).unwrap();
        match stored.read_repr(1, 0) {
            Err(StorageError::Corrupt { file, .. }) => assert_eq!(file, "c1_b0.bmp"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        // A WAH tag with a malformed body is also a clean typed error.
        let mut store = stored.into_store();
        store
            .write_file("c1_b0.bmp", &format::frame(&[SLOT_TAG_WAH, 1, 2, 3]))
            .unwrap();
        let mut stored = StoredIndex::open(store).unwrap();
        assert!(matches!(
            stored.read_repr(1, 0),
            Err(StorageError::Corrupt { .. })
        ));
    }
}
