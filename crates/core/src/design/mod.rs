//! Optimal index design (Sections 6–8): the four interesting points of the
//! space–time tradeoff graph (Figure 2).
//!
//! * point (A), the **space-optimal** index — [`space_opt`] (Theorem 6.1);
//! * point (D), the **time-optimal** index — [`time_opt`] (Theorem 6.1);
//! * point (C), the **knee** — [`knee`] (Theorem 7.1) and the
//!   gradient-based definition over the Pareto frontier — [`frontier`];
//! * point (B), the **time-optimal index under a space constraint** —
//!   [`constrained`] (`TimeOptAlg`, `TimeOptHeur`, `FindSmallestN`,
//!   `RefineIndex`).
//!
//! All of Sections 6–8 concern range-encoded indexes (the paper's Section 5
//! conclusion), so the time metric throughout is
//! [`cost::time_range_paper`](crate::cost::time_range_paper) and the space
//! metric is `Σ (b_i − 1)`.

pub mod constrained;
pub mod frontier;
pub mod knee;
pub mod space_opt;
pub mod time_opt;

/// Space of a range-encoded index with the given base: `Σ (b_i − 1)`.
pub fn range_space(base: &crate::base::Base) -> u64 {
    base.sum() - base.n_components() as u64
}

/// Integer ceiling `⌈c / d⌉`.
pub(crate) fn div_ceil_u32(c: u32, d: u32) -> u32 {
    c.div_ceil(d)
}

/// Smallest `b` with `b^n >= c` (the `⌈c^{1/n}⌉` of Theorem 6.1), computed
/// exactly with integer arithmetic.
pub(crate) fn ceil_nth_root(c: u32, n: usize) -> u32 {
    assert!(c >= 1 && n >= 1);
    if n == 1 || c == 1 {
        return c;
    }
    let target = u128::from(c);
    let mut lo = 1u32; // pow(lo) < target
    let mut hi = c; // pow(hi) >= target
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if pow_at_least(mid, n, target) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// `b^n >= target`, without overflow.
pub(crate) fn pow_at_least(b: u32, n: usize, target: u128) -> bool {
    let mut acc: u128 = 1;
    for _ in 0..n {
        acc = acc.saturating_mul(u128::from(b));
        if acc >= target {
            return true;
        }
    }
    acc >= target
}

/// Integer square root: `⌊√x⌋`.
pub(crate) fn isqrt_u64(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    // f64 sqrt is only a seed; correct with exact u128 comparisons.
    let mut r = (x as f64).sqrt() as u64;
    while u128::from(r) * u128::from(r) > u128::from(x) {
        r -= 1;
    }
    while u128::from(r + 1) * u128::from(r + 1) <= u128::from(x) {
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_root_exact() {
        assert_eq!(ceil_nth_root(1000, 2), 32);
        assert_eq!(ceil_nth_root(1000, 3), 10);
        assert_eq!(ceil_nth_root(1024, 10), 2);
        assert_eq!(ceil_nth_root(1025, 10), 3);
        assert_eq!(ceil_nth_root(50, 1), 50);
        assert_eq!(ceil_nth_root(49, 2), 7);
        assert_eq!(ceil_nth_root(50, 2), 8);
    }

    #[test]
    fn isqrt_edge_cases() {
        for x in 0..1000u64 {
            let r = isqrt_u64(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "x={x}");
        }
        assert_eq!(isqrt_u64(u64::MAX), (1u64 << 32) - 1);
    }
}
