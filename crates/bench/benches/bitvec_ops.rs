//! Microbench: throughput of the bit-vector substrate's logical operations
//! and popcount on 1M-bit bitmaps — the inner loop of every query.

use bindex::bitvec::rank::RankIndex;
use bindex::BitVec;
use bindex_bench::microbench::{BatchSize, Criterion, Throughput};
use bindex_bench::{criterion_group, criterion_main};
use std::hint::black_box;

const BITS: usize = 1 << 20;

fn mk(seed: usize) -> BitVec {
    BitVec::from_fn(BITS, |i| (i * 2654435761 + seed).is_multiple_of(7))
}

fn bench(c: &mut Criterion) {
    let a = mk(1);
    let b = mk(2);
    let mut g = c.benchmark_group("bitvec_ops");
    g.throughput(Throughput::Bytes((BITS / 8) as u64));

    g.bench_function("and_assign_1m", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.and_assign(&b);
                black_box(x)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("or_assign_1m", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.or_assign(&b);
                black_box(x)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("not_assign_1m", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.not_assign();
                black_box(x)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("count_ones_1m", |bench| {
        bench.iter(|| black_box(&a).count_ones())
    });
    g.bench_function("iter_ones_1m", |bench| {
        bench.iter(|| black_box(&a).iter_ones().sum::<usize>())
    });
    g.bench_function("rank_index_build_1m", |bench| {
        bench.iter(|| RankIndex::new(black_box(&a)).total_ones())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
