//! Runs every experiment binary in sequence — the one-shot reproduction
//! of the paper's full evaluation. Equivalent to invoking each
//! `cargo run --release -p bindex-bench --bin <experiment>` by hand.
//!
//! `--threads N` sets `BINDEX_THREADS=N` for every child experiment, so
//! reproductions that use the batch engine (e.g. `ext_batch_throughput`)
//! opt into the parallel path; experiments that evaluate sequentially
//! ignore it. Remaining arguments are forwarded to each child.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "intro_breakeven",
    "table1_worst_case",
    "fig08_eval_algorithms",
    "fig09_encoding_tradeoff",
    "fig10_tradeoff_all",
    "fig11_knee",
    "fig13_bounds",
    "fig14_candidate_set",
    "table2_heuristic",
    "table3_data",
    "table4_compressibility",
    "fig16_compression",
    "fig17_buffering",
    "ext_interval_encoding",
    "ext_fault_tolerance",
    "ext_batch_throughput",
    "ext_physical_layout",
    "ext_threshold",
];

fn main() {
    let mut threads: Option<String> = None;
    let mut forwarded: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let n = args
                .next()
                .expect("--threads requires a value, e.g. --threads 4");
            assert!(
                n.parse::<usize>().is_ok_and(|v| v >= 1),
                "--threads expects a positive integer, got {n:?}"
            );
            threads = Some(n);
        } else if let Some(n) = arg.strip_prefix("--threads=") {
            assert!(
                n.parse::<usize>().is_ok_and(|v| v >= 1),
                "--threads expects a positive integer, got {n:?}"
            );
            threads = Some(n.to_string());
        } else {
            forwarded.push(arg);
        }
    }

    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        println!("\n########## {name} ##########");
        let mut cmd = Command::new(bin_dir.join(name));
        cmd.args(&forwarded);
        if let Some(n) = &threads {
            cmd.env("BINDEX_THREADS", n);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failed.push(*name);
        }
    }
    if failed.is_empty() {
        println!(
            "\nAll {} experiments completed; CSVs in results/.",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("\nFAILED experiments: {failed:?}");
        std::process::exit(1);
    }
}
