//! Property-style tests over the core data structures and invariants:
//! bit-vector algebra, codec round-trips, mixed-radix decomposition,
//! evaluator/oracle equivalence on random columns, and the Theorem 8.1
//! refinement invariants.
//!
//! Each property is checked over many seeded random cases drawn from the
//! in-repo [`Rng`] (the build environment has no crates-registry access,
//! so an external property-testing framework is not available). Failures
//! print the case seed, which reproduces the case deterministically.

use bindex::compress::wah::WahBitmap;
use bindex::compress::{Codec, Lzss, Rle};
use bindex::core::cost::{self, time_range_paper};
use bindex::core::design::constrained::refine_index;
use bindex::core::design::range_space;
use bindex::core::eval::{evaluate, naive, Algorithm};
use bindex::relation::query::{Op, SelectionQuery};
use bindex::relation::{Column, Rng};
use bindex::{Base, BitVec, BitmapIndex, Encoding, IndexSpec};

const CASES: u64 = 64;

fn rand_bitvec_len(rng: &mut Rng, len: usize) -> BitVec {
    let bools: Vec<bool> = (0..len).map(|_| rng.next_bool()).collect();
    BitVec::from_bools(&bools)
}

fn rand_bitvec(rng: &mut Rng, max_len: usize) -> BitVec {
    let len = rng.below_usize(max_len + 1);
    rand_bitvec_len(rng, len)
}

/// Two random bit-vectors of the same (random) length.
fn rand_pair(rng: &mut Rng, max_len: usize) -> (BitVec, BitVec) {
    let len = rng.below_usize(max_len + 1);
    (rand_bitvec_len(rng, len), rand_bitvec_len(rng, len))
}

fn rand_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.below_usize(max_len + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// A well-defined base: 1..=4 components with digits in `2..13` and
/// product at most 4096 (mirrors the old proptest strategy).
fn rand_base(rng: &mut Rng) -> Base {
    loop {
        let k = rng.range_usize(1, 5);
        let digits: Vec<u32> = (0..k).map(|_| 2 + rng.below_u32(11)).collect();
        if digits.iter().map(|&b| u64::from(b)).product::<u64>() <= 4096 {
            return Base::new(digits).unwrap();
        }
    }
}

// ---- bit-vector algebra ----

#[test]
fn bv_double_complement_is_identity() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let a = rand_bitvec(&mut rng, 300);
        assert_eq!(a.complement().complement(), a, "seed {seed}");
    }
}

#[test]
fn bv_demorgan() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let (a, b) = rand_pair(&mut rng, 300);
        assert_eq!(
            (&a & &b).complement(),
            &a.complement() | &b.complement(),
            "seed {seed}"
        );
        assert_eq!(
            (&a | &b).complement(),
            &a.complement() & &b.complement(),
            "seed {seed}"
        );
    }
}

#[test]
fn bv_xor_is_symmetric_difference() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let (a, b) = rand_pair(&mut rng, 300);
        let direct = &a ^ &b;
        let mut or = a.clone() | &b;
        or.and_not_assign(&(&a & &b));
        assert_eq!(direct, or, "seed {seed}");
    }
}

#[test]
fn bv_popcount_consistency() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4000 + seed);
        let (a, b) = rand_pair(&mut rng, 300);
        // |A| + |B| = |A∪B| + |A∩B|
        assert_eq!(
            a.count_ones() + b.count_ones(),
            (&a | &b).count_ones() + (&a & &b).count_ones(),
            "seed {seed}"
        );
    }
}

#[test]
fn bv_bytes_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5000 + seed);
        let a = rand_bitvec(&mut rng, 500);
        assert_eq!(BitVec::from_bytes(a.len(), &a.to_bytes()), a, "seed {seed}");
    }
}

#[test]
fn bv_iter_ones_sorted_and_complete() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x6000 + seed);
        let a = rand_bitvec(&mut rng, 500);
        let ones: Vec<usize> = a.iter_ones().collect();
        assert!(ones.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        assert_eq!(ones.len(), a.count_ones(), "seed {seed}");
        for i in ones {
            assert!(a.get(i), "seed {seed} bit {i}");
        }
    }
}

// ---- fused k-ary kernels ----

/// Lengths that exercise the word-boundary tails: exact multiples of 64,
/// one straggler bit, a nearly-full tail word, plus a random length.
fn kernel_len(rng: &mut Rng, case: u64) -> usize {
    let words = rng.range_usize(1, 16);
    match case % 4 {
        0 => words * 64,
        1 => words * 64 + 1,
        2 => words * 64 + 63,
        _ => rng.range_usize(1, 1000),
    }
}

fn rand_operands(rng: &mut Rng, case: u64) -> Vec<BitVec> {
    let len = kernel_len(rng, case);
    let k = rng.range_usize(1, 9);
    (0..k).map(|_| rand_bitvec_len(rng, len)).collect()
}

#[test]
fn kary_kernels_match_pairwise_folds() {
    use bindex::bitvec::kernels;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1_1000 + seed);
        let operands = rand_operands(&mut rng, seed);
        let refs: Vec<&BitVec> = operands.iter().collect();
        let fold = |op: fn(&mut BitVec, &BitVec)| {
            let mut acc = operands[0].clone();
            for o in &operands[1..] {
                op(&mut acc, o);
            }
            acc
        };
        assert_eq!(
            kernels::and_all(&refs),
            fold(BitVec::and_assign),
            "seed {seed}"
        );
        assert_eq!(
            kernels::or_all(&refs),
            fold(BitVec::or_assign),
            "seed {seed}"
        );
        assert_eq!(
            kernels::xor_all(&refs),
            fold(BitVec::xor_assign),
            "seed {seed}"
        );
    }
}

#[test]
fn kary_and_not_matches_two_step() {
    use bindex::bitvec::kernels;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1_2000 + seed);
        let len = kernel_len(&mut rng, seed);
        let a = rand_bitvec_len(&mut rng, len);
        let b = rand_bitvec_len(&mut rng, len);
        let mut want = a.clone();
        want.and_assign(&b.complement());
        assert_eq!(kernels::and_not(&a, &b), want, "seed {seed}");
    }
}

#[test]
fn fused_counts_match_materialized_counts() {
    use bindex::bitvec::kernels;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1_3000 + seed);
        let operands = rand_operands(&mut rng, seed);
        let refs: Vec<&BitVec> = operands.iter().collect();
        assert_eq!(
            kernels::count_and(&refs),
            kernels::and_all(&refs).count_ones(),
            "seed {seed}"
        );
        assert_eq!(
            kernels::count_or(&refs),
            kernels::or_all(&refs).count_ones(),
            "seed {seed}"
        );
        assert_eq!(
            kernels::count_xor(&refs),
            kernels::xor_all(&refs).count_ones(),
            "seed {seed}"
        );
        let (a, b) = (refs[0], refs[refs.len() - 1]);
        assert_eq!(
            kernels::count_and_not(a, b),
            kernels::and_not(a, b).count_ones(),
            "seed {seed}"
        );
    }
}

#[test]
fn kary_kernels_preserve_canonical_tail() {
    use bindex::bitvec::kernels;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1_4000 + seed);
        let operands = rand_operands(&mut rng, seed);
        let refs: Vec<&BitVec> = operands.iter().collect();
        // Complementing twice round-trips only if the tail stayed zero.
        for out in [
            kernels::and_all(&refs),
            kernels::or_all(&refs),
            kernels::xor_all(&refs),
        ] {
            assert_eq!(out.complement().complement(), out, "seed {seed}");
        }
    }
}

// ---- codecs ----

#[test]
fn rle_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7000 + seed);
        let data = rand_bytes(&mut rng, 2000);
        let c = Rle.compress(&data);
        assert_eq!(Rle.decompress(&c, data.len()).unwrap(), data, "seed {seed}");
    }
}

#[test]
fn lzss_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x8000 + seed);
        let data = rand_bytes(&mut rng, 2000);
        let codec = Lzss::default();
        let c = codec.compress(&data);
        assert_eq!(
            codec.decompress(&c, data.len()).unwrap(),
            data,
            "seed {seed}"
        );
    }
}

#[test]
fn lzss_roundtrip_runny() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x9000 + seed);
        let n_runs = rng.below_usize(40 + 1);
        let data: Vec<u8> = (0..n_runs)
            .flat_map(|_| {
                let byte = rng.next_u64() as u8;
                let len = rng.range_usize(1, 200);
                std::iter::repeat_n(byte, len)
            })
            .collect();
        let codec = Lzss::default();
        let c = codec.compress(&data);
        assert_eq!(
            codec.decompress(&c, data.len()).unwrap(),
            data,
            "seed {seed}"
        );
    }
}

#[test]
fn wah_roundtrip_and_ops() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa000 + seed);
        let (a, b) = rand_pair(&mut rng, 600);
        let (wa, wb) = (WahBitmap::from_bitvec(&a), WahBitmap::from_bitvec(&b));
        assert_eq!(wa.to_bitvec(), a.clone(), "seed {seed}");
        assert_eq!(wa.count_ones(), a.count_ones(), "seed {seed}");
        assert_eq!(wa.and(&wb).to_bitvec(), &a & &b, "seed {seed}");
        assert_eq!(wa.or(&wb).to_bitvec(), &a | &b, "seed {seed}");
        assert_eq!(wa.xor(&wb).to_bitvec(), &a ^ &b, "seed {seed}");
        assert_eq!(wa.not().to_bitvec(), a.complement(), "seed {seed}");
    }
}

// ---- mixed-radix decomposition ----

#[test]
fn decompose_compose_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xb000 + seed);
        let base = rand_base(&mut rng);
        let product = base.product() as u32;
        let n_values = rng.range_usize(1, 20);
        for _ in 0..n_values {
            let v = rng.below_u32(4096) % product;
            let digits = base.decompose(v).unwrap();
            assert_eq!(digits.len(), base.n_components(), "seed {seed}");
            for (i, &d) in digits.iter().enumerate() {
                assert!(d < base.as_lsb_slice()[i], "seed {seed}");
            }
            assert_eq!(base.compose(&digits).unwrap(), v, "seed {seed}");
        }
    }
}

#[test]
fn decomposition_preserves_order() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xc000 + seed);
        let base = rand_base(&mut rng);
        // Mixed-radix with msb-first digit comparison is order-preserving.
        let product = base.product() as u32;
        let step = (product / 50).max(1);
        let mut prev: Option<Vec<u32>> = None;
        let mut v = 0;
        while v < product {
            let mut digits = base.decompose(v).unwrap();
            digits.reverse(); // msb first for lexicographic comparison
            if let Some(p) = &prev {
                assert!(p < &digits, "seed {seed} v {v}");
            }
            prev = Some(digits);
            v += step;
        }
    }
}

// ---- evaluation equivalence on random columns ----

#[test]
fn evaluators_match_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xd000 + seed);
        let base = rand_base(&mut rng);
        let c = base.product() as u32;
        let n_rows = rng.range_usize(1, 120);
        let values: Vec<u32> = (0..n_rows).map(|_| rng.below_u32(c)).collect();
        let column = Column::new(values, c);
        let op = Op::ALL[rng.below_usize(Op::ALL.len())];
        let q = SelectionQuery::new(op, rng.below_u32(c));
        let want = naive::evaluate(&column, q);
        for (encoding, algos) in [
            (
                Encoding::Range,
                &[Algorithm::RangeEval, Algorithm::RangeEvalOpt][..],
            ),
            (Encoding::Equality, &[Algorithm::EqualityEval][..]),
            (Encoding::Interval, &[Algorithm::IntervalEval][..]),
        ] {
            let idx = BitmapIndex::build(&column, IndexSpec::new(base.clone(), encoding)).unwrap();
            for &algo in algos {
                let (found, stats) = evaluate(&mut idx.source(), q, algo).unwrap();
                assert_eq!(&found, &want, "seed {seed} {encoding:?} {algo:?} {q}");
                assert_eq!(
                    stats.scans,
                    cost::predicted_scans(&base, q, algo),
                    "scan prediction seed {seed} {algo:?} {q}"
                );
            }
        }
    }
}

// ---- design-layer invariants ----

#[test]
fn refine_index_theorem_8_1() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xe000 + seed);
        let base = rand_base(&mut rng);
        // Refinement never increases space or time and keeps coverage,
        // for any cardinality the base covers.
        let product = base.product() as u32;
        for c in [product, product / 2 + 1, (product * 3 / 4).max(2)] {
            if !base.covers(c) || c < 2 {
                continue;
            }
            let refined = refine_index(&base, c);
            assert!(
                refined.covers(c),
                "seed {seed}: {base} -> {refined} does not cover {c}"
            );
            assert!(range_space(&refined) <= range_space(&base), "seed {seed}");
            assert!(
                time_range_paper(&refined) <= time_range_paper(&base) + 1e-12,
                "seed {seed}: {base} -> {refined} time grew for C={c}"
            );
        }
    }
}

#[test]
fn space_formulas_match_built_indexes() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xf000 + seed);
        let base = rand_base(&mut rng);
        let c = base.product() as u32;
        let column = Column::new(vec![0, c - 1, c / 2], c);
        for encoding in [Encoding::Range, Encoding::Equality, Encoding::Interval] {
            let spec = IndexSpec::new(base.clone(), encoding);
            let expected = spec.stored_bitmaps();
            let idx = BitmapIndex::build(&column, spec).unwrap();
            let actual: u64 = idx.components().iter().map(|comp| comp.len() as u64).sum();
            assert_eq!(actual, expected, "seed {seed} {encoding:?}");
        }
    }
}
