//! Explore how the storage scheme (BS / CS / IS), compression codec
//! (none / RLE / LZSS / WAH), and data clustering interact — Section 9 of
//! the paper in miniature, on data you choose.
//!
//! ```sh
//! cargo run --release -p bindex --example compression_explorer -- [rows] [cardinality]
//! ```

use bindex::compress::wah::WahBitmap;
use bindex::compress::CodecKind;
use bindex::core::design::knee::knee;
use bindex::relation::gen;
use bindex::storage::{MemStore, StorageScheme, StoredIndex};
use bindex::{BitmapIndex, Column, Encoding, IndexSpec};

fn index_of(column: &Column) -> BitmapIndex {
    let spec = IndexSpec::new(knee(column.cardinality()).unwrap(), Encoding::Range);
    BitmapIndex::build(column, spec).unwrap()
}

fn report(label: &str, idx: &BitmapIndex) {
    let raw = idx.size_bytes() as f64;
    println!(
        "\n{label}: {} bitmaps, {:.1} KB raw",
        idx.stored_bitmaps(),
        raw / 1024.0
    );
    println!("  {:<22} {:>12} {:>8}", "scheme+codec", "bytes", "% of BS");
    for (scheme, sname) in [
        (StorageScheme::BitmapLevel, "BS"),
        (StorageScheme::ComponentLevel, "CS"),
        (StorageScheme::IndexLevel, "IS"),
    ] {
        for codec in [
            CodecKind::None,
            CodecKind::Rle,
            CodecKind::Lzss,
            CodecKind::Deflate,
        ] {
            let stored =
                StoredIndex::create(MemStore::new(), idx.components(), scheme, codec).unwrap();
            let bytes = stored.total_stored_bytes() as f64;
            println!(
                "  {:<22} {:>12.0} {:>7.1}%",
                format!("{sname}+{}", codec.name()),
                bytes,
                100.0 * bytes / raw
            );
        }
    }
    let wah: usize = idx
        .components()
        .iter()
        .flatten()
        .map(|bm| WahBitmap::from_bitvec(bm).compressed_bytes())
        .sum();
    println!(
        "  {:<22} {:>12} {:>7.1}%   (ops run on compressed form)",
        "WAH (per bitmap)",
        wah,
        100.0 * wah as f64 / raw
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let c: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);

    println!("Compression explorer: {rows} rows, C = {c}, knee-base range-encoded index");

    // Three data layouts with very different compressibility.
    report(
        "uniform (random row order)",
        &index_of(&gen::uniform(rows, c, 1)),
    );
    report(
        "clustered (runs of 64 equal values)",
        &index_of(&gen::clustered(rows, c, 64, 2)),
    );
    report("fully sorted", &index_of(&gen::sorted_uniform(rows, c, 3)));

    println!("\nTakeaways (matching the paper's Section 9):");
    println!("  * CS/IS row-major layouts compress better than BS on high-cardinality data;");
    println!("  * clustering/sorting makes every scheme dramatically more compressible;");
    println!("  * a bitmap-native codec (WAH) competes while keeping ops compressed.");
}
