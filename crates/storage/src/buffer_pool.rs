//! A bitmap-granularity buffer pool (Section 10's unit of buffering),
//! with an LRU eviction policy and hit/miss accounting.
//!
//! The analytic side of Section 10 lives in `bindex-core::buffer`; this
//! pool is the runtime counterpart used by the storage-backed experiments:
//! it caches fetched bitmaps keyed by `(component, slot)` so that a
//! buffered bitmap costs no file read.
//!
//! Entries are stored as [`Repr`] — dense or WAH-compressed, whichever
//! form the store handed out — and the pool can be budgeted either in
//! *slots* (the paper's `m` bitmaps) or in *bytes*
//! ([`BufferPool::with_byte_budget`]). Byte budgeting is what makes the
//! compressed execution path pay off twice: a WAH entry is charged its
//! compressed footprint, so a fixed memory budget keeps more sparse
//! bitmaps resident than the same budget over dense words.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use bindex_bitvec::BitVec;
use bindex_compress::Repr;

/// Buffer pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from the pool.
    pub hits: u64,
    /// Fetches that had to go to storage.
    pub misses: u64,
    /// Bitmaps evicted.
    pub evictions: u64,
}

/// What the pool charges against: a count of resident bitmaps (the
/// paper's `m`) or their total heap bytes.
#[derive(Debug, Clone, Copy)]
enum Budget {
    Slots(usize),
    Bytes(usize),
}

struct Inner {
    /// (component, slot) -> (bitmap representation, last-use tick).
    entries: HashMap<(usize, usize), (Repr, u64)>,
    /// Total [`Repr::heap_bytes`] across resident entries.
    resident_bytes: usize,
    tick: u64,
    stats: PoolStats,
}

impl Inner {
    /// Evicts the least-recently-used entry; returns `false` when empty.
    fn evict_lru(&mut self) -> bool {
        let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, last))| *last) else {
            return false;
        };
        if let Some((repr, _)) = self.entries.remove(&victim) {
            self.resident_bytes -= repr.heap_bytes();
            self.stats.evictions += 1;
        }
        true
    }
}

/// LRU cache of bitmaps under a slot or byte budget. Thread-safe,
/// matching the shared buffer pool of a database server.
pub struct BufferPool {
    budget: Budget,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Locks the pool state, recovering from poisoning: the cache holds no
    /// invariants a panicking reader could break mid-update, so a poisoned
    /// pool keeps serving rather than cascading the panic.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn with_budget(budget: Budget) -> Self {
        Self {
            budget,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Creates a pool holding at most `capacity` bitmaps (`m` in the
    /// paper's notation). Zero capacity disables caching.
    pub fn new(capacity: usize) -> Self {
        Self::with_budget(Budget::Slots(capacity))
    }

    /// Creates a pool bounded by resident heap bytes instead of a bitmap
    /// count: each entry is charged its [`Repr::heap_bytes`], so compressed
    /// entries cost what they actually occupy. Zero disables caching; an
    /// entry larger than the whole budget is served but never cached.
    pub fn with_byte_budget(bytes: usize) -> Self {
        Self::with_budget(Budget::Bytes(bytes))
    }

    /// Maximum resident bitmaps for a slot-budgeted pool; `usize::MAX`
    /// for a byte-budgeted pool (no slot bound).
    pub fn capacity(&self) -> usize {
        match self.budget {
            Budget::Slots(n) => n,
            Budget::Bytes(_) => usize::MAX,
        }
    }

    /// The byte budget, when this pool is byte-budgeted.
    pub fn byte_budget(&self) -> Option<usize> {
        match self.budget {
            Budget::Slots(_) => None,
            Budget::Bytes(b) => Some(b),
        }
    }

    fn disabled(&self) -> bool {
        matches!(self.budget, Budget::Slots(0) | Budget::Bytes(0))
    }

    /// Fetches the representation for `key`, loading it with `load` on a
    /// miss. The returned [`Repr`] is an `Arc`-backed handle — a hit costs
    /// a reference bump, not a bitmap copy.
    pub fn get_or_load_repr<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<Repr, E>,
    ) -> Result<Repr, E> {
        if self.disabled() {
            self.lock().stats.misses += 1;
            return load();
        }
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((repr, last)) = inner.entries.get_mut(&key) {
                *last = tick;
                let out = repr.clone();
                inner.stats.hits += 1;
                return Ok(out);
            }
            inner.stats.misses += 1;
        }
        // Load outside the lock; racing loads are benign (last write wins).
        let repr = load()?;
        let bytes = repr.heap_bytes();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((old, _)) = inner.entries.remove(&key) {
            inner.resident_bytes -= old.heap_bytes();
        }
        match self.budget {
            Budget::Slots(cap) => {
                while inner.entries.len() >= cap {
                    if !inner.evict_lru() {
                        break;
                    }
                }
            }
            Budget::Bytes(cap) => {
                if bytes > cap {
                    // Oversized for the whole pool: serve without caching.
                    return Ok(repr);
                }
                while inner.resident_bytes + bytes > cap {
                    if !inner.evict_lru() {
                        break;
                    }
                }
            }
        }
        inner.resident_bytes += bytes;
        inner.entries.insert(key, (repr.clone(), tick));
        Ok(repr)
    }

    /// Fetches the bitmap for `key` in dense form, loading it with `load`
    /// on a miss. Compressed entries are decompressed on the way out; the
    /// cached copy keeps its stored representation.
    pub fn get_or_load<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<BitVec, E>,
    ) -> Result<BitVec, E> {
        let repr = self.get_or_load_repr(key, || load().map(Repr::literal))?;
        Ok(match repr {
            Repr::Literal(b) => Arc::try_unwrap(b).unwrap_or_else(|a| (*a).clone()),
            Repr::Wah(w) => w.to_bitvec(),
        })
    }

    /// Fetches the bitmap for `key` as a **shared dense handle**: a hit on
    /// a dense entry is a reference-count bump, never a word copy. This is
    /// the read path for segment-at-a-time workers — many morsels of one
    /// query touching the same slot share a single resident copy.
    ///
    /// A cached compressed entry is decompressed once and the cache entry
    /// is upgraded in place to the dense form (re-charged at its dense
    /// footprint, evicting colder entries if the byte budget demands it),
    /// so concurrent readers of a hot slot do not repeat the decode.
    pub fn get_or_load_arc<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<BitVec, E>,
    ) -> Result<Arc<BitVec>, E> {
        let repr = self.get_or_load_repr(key, || load().map(Repr::literal))?;
        let upgraded_from = repr.heap_bytes();
        let dense = match repr {
            Repr::Literal(b) => return Ok(b),
            Repr::Wah(w) => Arc::new(w.to_bitvec()),
        };
        let new_repr = Repr::Literal(Arc::clone(&dense));
        let new_bytes = new_repr.heap_bytes();
        let mut inner = self.lock();
        // Upgrade only if the compressed entry is still resident (it may
        // have been evicted or replaced while we decoded).
        let still_compressed = inner
            .entries
            .get(&key)
            .is_some_and(|(r, _)| r.is_compressed());
        if still_compressed {
            if let Budget::Bytes(cap) = self.budget {
                if new_bytes > cap {
                    // Dense form oversized for the whole pool: keep the
                    // compressed entry, serve the decode uncached.
                    return Ok(dense);
                }
            }
            if let Some((slot, _)) = inner.entries.get_mut(&key) {
                *slot = new_repr;
            }
            inner.resident_bytes = inner.resident_bytes - upgraded_from + new_bytes;
            if let Budget::Bytes(cap) = self.budget {
                while inner.resident_bytes > cap {
                    if !inner.evict_lru() {
                        break;
                    }
                }
            }
        }
        Ok(dense)
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    /// Number of bitmaps currently resident.
    pub fn resident(&self) -> usize {
        self.lock().entries.len()
    }

    /// Total heap bytes of the resident entries (each charged in its
    /// stored representation).
    pub fn resident_bytes(&self) -> usize {
        self.lock().resident_bytes
    }

    /// Empties the pool and resets statistics.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.resident_bytes = 0;
        inner.stats = PoolStats::default();
    }
}

/// A sharded bitmap cache for the parallel read path: `n_shards`
/// independent [`BufferPool`]s, with each `(component, slot)` key pinned
/// to one shard, so concurrent readers contend only when they touch the
/// same shard rather than on one global lock.
pub struct ShardedPool {
    shards: Vec<BufferPool>,
}

impl ShardedPool {
    /// Creates a pool of `capacity` bitmaps total, spread over `n_shards`
    /// shards (each shard holds `⌈capacity / n_shards⌉` at most; zero
    /// capacity disables caching).
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(capacity: usize, n_shards: usize) -> Self {
        assert!(n_shards > 0, "ShardedPool needs at least one shard");
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(n_shards)
        };
        Self {
            shards: (0..n_shards).map(|_| BufferPool::new(per_shard)).collect(),
        }
    }

    /// Creates a byte-budgeted pool of `bytes` total, spread over
    /// `n_shards` shards.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn with_byte_budget(bytes: usize, n_shards: usize) -> Self {
        assert!(n_shards > 0, "ShardedPool needs at least one shard");
        let per_shard = if bytes == 0 {
            0
        } else {
            bytes.div_ceil(n_shards)
        };
        Self {
            shards: (0..n_shards)
                .map(|_| BufferPool::with_byte_budget(per_shard))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total slot capacity across shards (`usize::MAX` when byte-budgeted).
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(BufferPool::capacity)
            .fold(0usize, usize::saturating_add)
    }

    fn shard_of(&self, key: (usize, usize)) -> &BufferPool {
        // Fibonacci hash of the key: cheap and spreads the sequential
        // slot numbers of one component across shards.
        let h = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((key.1 as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Fetches the bitmap for `key` from its shard, loading on a miss.
    pub fn get_or_load<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<BitVec, E>,
    ) -> Result<BitVec, E> {
        self.shard_of(key).get_or_load(key, load)
    }

    /// Fetches the bitmap for `key` from its shard as a shared dense
    /// handle (see [`BufferPool::get_or_load_arc`]).
    pub fn get_or_load_arc<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<BitVec, E>,
    ) -> Result<Arc<BitVec>, E> {
        self.shard_of(key).get_or_load_arc(key, load)
    }

    /// Fetches the representation for `key` from its shard, loading on a
    /// miss.
    pub fn get_or_load_repr<E>(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> Result<Repr, E>,
    ) -> Result<Repr, E> {
        self.shard_of(key).get_or_load_repr(key, load)
    }

    /// Aggregated statistics across all shards.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            let p = s.stats();
            total.hits += p.hits;
            total.misses += p.misses;
            total.evictions += p.evictions;
        }
        total
    }

    /// Total resident bitmaps across all shards.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(BufferPool::resident).sum()
    }

    /// Total resident heap bytes across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(BufferPool::resident_bytes).sum()
    }

    /// Empties every shard and resets statistics.
    pub fn clear(&self) {
        for s in &self.shards {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bindex_compress::wah::WahBitmap;

    fn bm(tag: usize) -> BitVec {
        BitVec::from_fn(64, |i| (i + tag).is_multiple_of(3))
    }

    #[test]
    fn hit_after_load() {
        let pool = BufferPool::new(4);
        let a = pool.get_or_load::<()>((1, 0), || Ok(bm(1))).unwrap();
        let b = pool
            .get_or_load::<()>((1, 0), || panic!("must hit"))
            .unwrap();
        assert_eq!(a, b);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let pool = BufferPool::new(2);
        pool.get_or_load::<()>((1, 0), || Ok(bm(0))).unwrap();
        pool.get_or_load::<()>((1, 1), || Ok(bm(1))).unwrap();
        pool.get_or_load::<()>((1, 0), || panic!("hot")).unwrap(); // refresh (1,0)
        pool.get_or_load::<()>((1, 2), || Ok(bm(2))).unwrap(); // evicts (1,1)
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.stats().evictions, 1);
        // (1,1) must reload; (1,0) must still hit.
        pool.get_or_load::<()>((1, 0), || panic!("still hot"))
            .unwrap();
        let mut reloaded = false;
        pool.get_or_load::<()>((1, 1), || {
            reloaded = true;
            Ok(bm(1))
        })
        .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn zero_capacity_never_caches() {
        let pool = BufferPool::new(0);
        for _ in 0..3 {
            pool.get_or_load::<()>((1, 0), || Ok(bm(0))).unwrap();
        }
        assert_eq!(pool.stats().misses, 3);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn load_errors_propagate() {
        let pool = BufferPool::new(2);
        let r = pool.get_or_load::<&str>((9, 9), || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn clear_resets() {
        let pool = BufferPool::new(2);
        pool.get_or_load::<()>((1, 0), || Ok(bm(0))).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn byte_budget_charges_heap_bytes() {
        // Each 64-bit literal costs 8 bytes: a 24-byte budget holds 3.
        let pool = BufferPool::with_byte_budget(24);
        assert_eq!(pool.byte_budget(), Some(24));
        for slot in 0..3 {
            pool.get_or_load::<()>((1, slot), || Ok(bm(slot))).unwrap();
        }
        assert_eq!(pool.resident(), 3);
        assert_eq!(pool.resident_bytes(), 24);
        // A fourth entry must evict the LRU first.
        pool.get_or_load::<()>((1, 3), || Ok(bm(3))).unwrap();
        assert_eq!(pool.resident(), 3);
        assert_eq!(pool.resident_bytes(), 24);
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_holds_more_compressed_entries() {
        // Sparse 4096-bit bitmaps: 512 dense bytes each, a handful of
        // WAH words each. The same byte budget keeps every compressed
        // entry resident but only one dense one.
        let sparse = |tag: usize| BitVec::from_fn(4096, move |i| i == tag);
        let budget = 600;
        let dense = BufferPool::with_byte_budget(budget);
        let compressed = BufferPool::with_byte_budget(budget);
        for slot in 0..8 {
            dense
                .get_or_load::<()>((1, slot), || Ok(sparse(slot)))
                .unwrap();
            compressed
                .get_or_load_repr::<()>((1, slot), || {
                    Ok(Repr::wah(WahBitmap::from_bitvec(&sparse(slot))))
                })
                .unwrap();
        }
        assert_eq!(dense.resident(), 1);
        assert_eq!(compressed.resident(), 8);
        assert!(compressed.resident_bytes() <= budget);
    }

    #[test]
    fn oversized_entry_served_not_cached() {
        let pool = BufferPool::with_byte_budget(8);
        let big = BitVec::from_fn(1024, |i| i % 2 == 0); // 128 bytes
        let got = pool.get_or_load::<()>((1, 0), || Ok(big.clone())).unwrap();
        assert_eq!(got, big);
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn repr_hits_preserve_representation() {
        let pool = BufferPool::new(4);
        let bits = BitVec::from_fn(2048, |i| i == 7);
        let wah = WahBitmap::from_bitvec(&bits);
        pool.get_or_load_repr::<()>((2, 0), || Ok(Repr::wah(wah)))
            .unwrap();
        let hit = pool
            .get_or_load_repr::<()>((2, 0), || panic!("must hit"))
            .unwrap();
        assert!(hit.is_compressed());
        assert_eq!(*hit.to_bitvec(), bits);
        // The dense accessor decompresses on the way out but keeps the
        // compressed copy cached.
        let dense = pool
            .get_or_load::<()>((2, 0), || panic!("must hit"))
            .unwrap();
        assert_eq!(dense, bits);
        assert!(pool.resident_bytes() < bits.words().len() * 8);
    }

    #[test]
    fn arc_hits_share_one_copy() {
        let pool = BufferPool::new(4);
        let a = pool.get_or_load_arc::<()>((1, 0), || Ok(bm(1))).unwrap();
        let b = pool
            .get_or_load_arc::<()>((1, 0), || panic!("must hit"))
            .unwrap();
        // Both handles point at the same resident words — no deep copy.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, bm(1));
    }

    #[test]
    fn arc_read_upgrades_compressed_entry_once() {
        let pool = BufferPool::new(4);
        let bits = BitVec::from_fn(4096, |i| i == 9);
        let wah = WahBitmap::from_bitvec(&bits);
        pool.get_or_load_repr::<()>((3, 0), || Ok(Repr::wah(wah)))
            .unwrap();
        let first = pool
            .get_or_load_arc::<()>((3, 0), || panic!("must hit"))
            .unwrap();
        assert_eq!(*first, bits);
        // The entry is now dense: the next arc read shares the decode.
        let second = pool
            .get_or_load_arc::<()>((3, 0), || panic!("must hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // Byte accounting now charges the dense footprint.
        assert_eq!(pool.resident_bytes(), bits.words().len() * 8);
    }

    #[test]
    fn arc_upgrade_respects_byte_budget() {
        // Budget fits the compressed form but not the dense one: the
        // decode is served, the compressed entry stays.
        let bits = BitVec::from_fn(4096, |i| i == 5);
        let pool = BufferPool::with_byte_budget(64);
        pool.get_or_load_repr::<()>((1, 0), || Ok(Repr::wah(WahBitmap::from_bitvec(&bits))))
            .unwrap();
        let before = pool.resident_bytes();
        let got = pool
            .get_or_load_arc::<()>((1, 0), || panic!("must hit"))
            .unwrap();
        assert_eq!(*got, bits);
        assert_eq!(pool.resident_bytes(), before, "entry must stay compressed");
    }

    #[test]
    fn sharded_pool_caches_and_aggregates() {
        let pool = ShardedPool::new(16, 4);
        assert_eq!(pool.n_shards(), 4);
        assert_eq!(pool.capacity(), 16);
        for slot in 0..8 {
            pool.get_or_load::<()>((1, slot), || Ok(bm(slot))).unwrap();
        }
        for slot in 0..8 {
            let got = pool
                .get_or_load::<()>((1, slot), || panic!("must hit"))
                .unwrap();
            assert_eq!(got, bm(slot));
        }
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (8, 8));
        assert_eq!(pool.resident(), 8);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn sharded_byte_budget_accounts_bytes() {
        let pool = ShardedPool::with_byte_budget(1024, 4);
        for slot in 0..8 {
            pool.get_or_load::<()>((1, slot), || Ok(bm(slot))).unwrap();
        }
        assert_eq!(pool.resident(), 8);
        assert_eq!(pool.resident_bytes(), 64);
    }

    #[test]
    fn sharded_pool_zero_capacity_never_caches() {
        let pool = ShardedPool::new(0, 4);
        for _ in 0..3 {
            pool.get_or_load::<()>((2, 1), || Ok(bm(1))).unwrap();
        }
        assert_eq!(pool.stats().misses, 3);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn sharded_pool_is_shareable_across_threads() {
        let pool = ShardedPool::new(64, 8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    for slot in 0..16 {
                        pool.get_or_load::<()>((t, slot), || Ok(bm(slot))).unwrap();
                        pool.get_or_load::<()>((t, slot), || Ok(bm(slot))).unwrap();
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 128);
        assert!(s.hits >= 64, "second touch of each key must hit");
    }
}
