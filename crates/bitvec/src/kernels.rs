//! Fused k-ary bitmap kernels: horizontal combine and combine-and-count
//! operations over any number of operands in a single cache-blocked pass.
//!
//! The evaluation algorithms frequently fold a *wide* fan-in of bitmaps —
//! an equality-encoded `≤` predicate ORs up to half a component's slot
//! bitmaps, the engine's P3 plan ANDs one foundset per predicate. Folding
//! those pairwise costs `k − 1` full-size allocations and `k − 1` sweeps
//! over memory. The kernels here combine all `k` operands with **one**
//! output allocation, walking the operands in blocks small enough that the
//! accumulator stays L1-resident, so every operand word is read exactly
//! once (the "horizontal" algorithms of Kaser & Lemire, *Compressed bitmap
//! indexes: beyond unions and intersections*).
//!
//! The fused counting kernels (`count_and`, `count_or`, `count_xor`) go
//! one step further for callers that only need the cardinality of a
//! combination: they popcount the combined words on the fly, in a
//! fixed-size stack buffer, without materializing the result bitmap at all
//! (the "symmetric functions over bitmaps" shape).
//!
//! # Dispatch tiers
//!
//! Every kernel exists in two implementations selected by
//! [`KernelDispatch`]:
//!
//! * **`Scalar`** — plain chunked `u64` iteration, no explicit widening.
//!   The reference implementation and guaranteed-available fallback.
//! * **`Unrolled`** — the inner combine loop runs over fixed-size
//!   `[u64; LANES]` arrays (u64x8), which the compiler lowers to vector
//!   loads/stores and vector bitwise ops on any target with SIMD (SSE2,
//!   AVX2, NEON) without `unsafe` or nightly `std::simd`. The counting
//!   kernels additionally accumulate popcounts through a 4-way carry-save
//!   adder (the Harley–Seal shape): only every fourth combined word pays a
//!   full popcount, the rest fold into `ones`/`twos` carry words.
//!
//! The two tiers are **bit-identical by construction**: AND/OR/XOR/ANDNOT
//! are lane-independent, so any blocking or unrolling of the same operand
//! walk produces the same words, and the carry-save accumulation is exact
//! integer arithmetic. `property_kernels_dispatch` proves it over random
//! operands, ragged tails, and segment views.
//!
//! The process-wide tier is chosen once, on first use, from the
//! `BINDEX_KERNEL` environment variable (`scalar` | `unrolled`, default
//! `unrolled`); benches and tests can pin it with
//! [`KernelDispatch::force`] or call the explicit `*_with` entry points.
//!
//! # Panics
//! Every kernel panics on an empty operand list or mismatched operand
//! lengths; bitmaps of one index always share the relation cardinality
//! `N`, so a mismatch is a logic error (matching [`BitVec`]'s own binary
//! operations).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::bitvec::{BitVec, SegmentView};

/// Environment variable selecting the process-wide dispatch tier
/// (`scalar` | `unrolled`). Read once, on the first kernel call.
pub const KERNEL_ENV: &str = "BINDEX_KERNEL";

/// Words per SIMD lane group of the unrolled tier: `[u64; 8]` is 512 bits,
/// one AVX-512 register or two AVX2 / four NEON registers — wide enough
/// that the compiler vectorizes the fixed-size loop on every common
/// target, narrow enough that the ragged tail costs at most 7 scalar ops.
pub const LANES: usize = 8;

/// Words per block: 8 KiB of accumulator, comfortably L1-resident even
/// with an operand stream being pulled through the cache alongside it.
const BLOCK_WORDS: usize = 1024;

/// Words per stack buffer used by the fused counting kernels. Matches
/// [`BLOCK_WORDS`] (8 KiB): the previous 2 KiB buffer re-entered the
/// per-block setup (operand slicing, loop prologue) 4× as often, which at
/// 16-way fan-in cost more than the fused popcount saved — the
/// `count_fused_speedup < 1.0` regression in `BENCH_batch_throughput.json`.
const COUNT_BLOCK_WORDS: usize = 1024;

/// Which kernel implementation tier runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelDispatch {
    /// Plain chunked `u64` loops — the reference tier, always available.
    Scalar,
    /// `[u64; LANES]` array arithmetic plus carry-save popcount
    /// accumulation — the default tier.
    Unrolled,
}

/// The process-wide tier: 0 = undecided, else `code()` of the choice.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

impl KernelDispatch {
    /// Parses an environment-variable value (case-insensitive, trimmed).
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Self::Scalar),
            "unrolled" => Some(Self::Unrolled),
            _ => None,
        }
    }

    /// The tier's name as accepted by [`KernelDispatch::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Unrolled => "unrolled",
        }
    }

    fn code(self) -> u8 {
        match self {
            Self::Scalar => 1,
            Self::Unrolled => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Scalar),
            2 => Some(Self::Unrolled),
            _ => None,
        }
    }

    /// The process-wide dispatch tier, decided once: `BINDEX_KERNEL` if
    /// set and valid (an invalid value warns to stderr rather than
    /// silently changing the tier), otherwise [`KernelDispatch::Unrolled`].
    pub fn active() -> Self {
        if let Some(d) = Self::from_code(ACTIVE.load(Ordering::Relaxed)) {
            return d;
        }
        let chosen = match std::env::var(KERNEL_ENV) {
            Ok(raw) => Self::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "warning: {KERNEL_ENV}={raw:?} is not \"scalar\" or \
                     \"unrolled\"; using the unrolled tier"
                );
                Self::Unrolled
            }),
            Err(_) => Self::Unrolled,
        };
        ACTIVE.store(chosen.code(), Ordering::Relaxed);
        chosen
    }

    /// Overrides the process-wide tier (tests and benches that compare
    /// tiers in one process; production code should set `BINDEX_KERNEL`).
    pub fn force(self) {
        ACTIVE.store(self.code(), Ordering::Relaxed);
    }
}

/// A word-level binary operation, monomorphized into both dispatch tiers.
trait WordOp {
    fn apply(a: u64, b: u64) -> u64;
}

struct OpAnd;
struct OpOr;
struct OpXor;
struct OpAndNot;

impl WordOp for OpAnd {
    #[inline(always)]
    fn apply(a: u64, b: u64) -> u64 {
        a & b
    }
}
impl WordOp for OpOr {
    #[inline(always)]
    fn apply(a: u64, b: u64) -> u64 {
        a | b
    }
}
impl WordOp for OpXor {
    #[inline(always)]
    fn apply(a: u64, b: u64) -> u64 {
        a ^ b
    }
}
impl WordOp for OpAndNot {
    #[inline(always)]
    fn apply(a: u64, b: u64) -> u64 {
        a & !b
    }
}

/// Anything the kernels can fold: a whole [`BitVec`] or a word-aligned
/// [`SegmentView`] of one. Both are canonically masked, so the fold core
/// never needs to re-mask its output.
pub trait KernelOperand {
    /// Number of bits.
    fn len(&self) -> usize;
    /// The canonically masked backing words.
    fn words(&self) -> &[u64];
    /// `true` if the operand holds zero bits.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl KernelOperand for &BitVec {
    fn len(&self) -> usize {
        BitVec::len(self)
    }
    fn words(&self) -> &[u64] {
        BitVec::words(self)
    }
}

impl KernelOperand for SegmentView<'_> {
    fn len(&self) -> usize {
        SegmentView::len(self)
    }
    fn words(&self) -> &[u64] {
        SegmentView::words(self)
    }
}

fn check_operands<T: KernelOperand>(operands: &[T]) -> usize {
    let first = operands
        .first()
        .expect("k-ary kernel needs at least one operand");
    for op in &operands[1..] {
        assert_eq!(
            first.len(),
            op.len(),
            "bitmap length mismatch: {} vs {}",
            first.len(),
            op.len()
        );
    }
    first.len()
}

/// Scalar combine: one word at a time, relying on autovectorization.
///
/// `inline(never)` on this and the other per-block combine loops is
/// deliberate: inlined into large callers they land in arbitrary
/// codegen-unit contexts where the vectorizer sometimes gives up (measured
/// ~35% throughput swings between identical instantiations). As
/// standalone symbols every instantiation compiles to the same vector
/// loop, and one call per 8 KiB block is free.
#[inline(never)]
fn combine_scalar<O: WordOp>(dst: &mut [u64], src: &[u64]) {
    for (a, &b) in dst.iter_mut().zip(src) {
        *a = O::apply(*a, b);
    }
}

/// Unrolled combine: `[u64; LANES]` groups the compiler lowers to vector
/// loads, vector bitwise ops, and vector stores; the ragged tail (at most
/// `LANES − 1` words, only ever in the final block) runs scalar.
/// `inline(never)`: see [`combine_scalar`].
#[inline(never)]
fn combine_unrolled<O: WordOp>(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let split = n - n % LANES;
    let (dst_body, dst_tail) = dst[..n].split_at_mut(split);
    let (src_body, src_tail) = src[..n].split_at(split);
    for (dc, sc) in dst_body
        .chunks_exact_mut(LANES)
        .zip(src_body.chunks_exact(LANES))
    {
        let d: &mut [u64; LANES] = dc.try_into().expect("exact chunk");
        let s: &[u64; LANES] = sc.try_into().expect("exact chunk");
        for l in 0..LANES {
            d[l] = O::apply(d[l], s[l]);
        }
    }
    for (a, &b) in dst_tail.iter_mut().zip(src_tail) {
        *a = O::apply(*a, b);
    }
}

#[inline]
fn combine<O: WordOp>(dispatch: KernelDispatch, dst: &mut [u64], src: &[u64]) {
    match dispatch {
        KernelDispatch::Scalar => combine_scalar::<O>(dst, src),
        KernelDispatch::Unrolled => combine_unrolled::<O>(dst, src),
    }
}

/// `dst[i] = O::apply(a[i], b[i])`: seeds the count buffer from the first
/// two operands in one pass, where copy-then-combine would take two.
/// `inline(never)`: see [`combine_scalar`].
#[inline(never)]
fn combine2<O: WordOp>(dispatch: KernelDispatch, dst: &mut [u64], a: &[u64], b: &[u64]) {
    match dispatch {
        KernelDispatch::Scalar => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = O::apply(x, y);
            }
        }
        KernelDispatch::Unrolled => {
            let n = dst.len();
            let split = n - n % LANES;
            for ((dc, xc), yc) in dst[..split]
                .chunks_exact_mut(LANES)
                .zip(a[..split].chunks_exact(LANES))
                .zip(b[..split].chunks_exact(LANES))
            {
                let d: &mut [u64; LANES] = dc.try_into().expect("exact chunk");
                let x: &[u64; LANES] = xc.try_into().expect("exact chunk");
                let y: &[u64; LANES] = yc.try_into().expect("exact chunk");
                for l in 0..LANES {
                    d[l] = O::apply(x[l], y[l]);
                }
            }
            for ((d, &x), &y) in dst[split..n].iter_mut().zip(&a[split..n]).zip(&b[split..n]) {
                *d = O::apply(x, y);
            }
        }
    }
}

/// Fused combine-and-popcount of two word slices, per dispatch tier.
#[inline]
fn count2<O: WordOp>(dispatch: KernelDispatch, a: &[u64], b: &[u64]) -> usize {
    match dispatch {
        KernelDispatch::Scalar => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| O::apply(x, y).count_ones() as usize)
            .sum(),
        KernelDispatch::Unrolled => csa_count_fused::<O>(a, b),
    }
}

/// One carry-save adder step: `(carry, sum)` of three one-bit-per-lane
/// addends — `sum` holds the low bit of `a + b + c` per bit position,
/// `carry` the high bit.
#[inline(always)]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    ((a & b) | ((a ^ b) & c), a ^ b ^ c)
}

/// Popcount of `O::apply(a[i], b[i])` through a lane-wide 4-way carry-save
/// adder (the Harley–Seal accumulation shape): the `ones`/`twos` carry
/// state is a `[u64; LANES]` vector, so each step folds `4 × LANES` words
/// with pure lane-parallel bitwise ops and only every fourth word pays a
/// full popcount. A scalar carry would serialize the loop on the
/// `ones`/`twos` dependency chain; keeping the carries lane-wide lets the
/// compiler run the chain in vector registers. Exact by construction —
/// carry-save addition loses no bits — hence bit-identical to the scalar
/// sweep. Counting a single bitmap reuses this with `OpOr` and `a == b`
/// (`w | w == w`). `inline(never)`: see [`combine_scalar`].
#[inline(never)]
fn csa_count_fused<O: WordOp>(a: &[u64], b: &[u64]) -> usize {
    const STEP: usize = 4 * LANES;
    let n = a.len().min(b.len());
    let split = n - n % STEP;
    let mut ones = [0u64; LANES];
    let mut twos = [0u64; LANES];
    // Per-lane popcount accumulator: folding `f.count_ones()` into one
    // scalar inside the lane loop would put a horizontal reduction on the
    // critical path; per-lane sums keep the loop body lane-parallel and
    // cannot overflow (≤ 64 per step, and callers hand in one
    // cache-blocked slice at a time).
    let mut fours = [0u64; LANES];
    for (ac, bc) in a[..split]
        .chunks_exact(STEP)
        .zip(b[..split].chunks_exact(STEP))
    {
        let ac: &[u64; STEP] = ac.try_into().expect("exact chunk");
        let bc: &[u64; STEP] = bc.try_into().expect("exact chunk");
        for l in 0..LANES {
            let d0 = O::apply(ac[l], bc[l]);
            let d1 = O::apply(ac[LANES + l], bc[LANES + l]);
            let d2 = O::apply(ac[2 * LANES + l], bc[2 * LANES + l]);
            let d3 = O::apply(ac[3 * LANES + l], bc[3 * LANES + l]);
            let (t1, o1) = csa(ones[l], d0, d1);
            let (t2, o2) = csa(o1, d2, d3);
            let (f, t) = csa(twos[l], t1, t2);
            ones[l] = o2;
            twos[l] = t;
            fours[l] += u64::from(f.count_ones());
        }
    }
    let mut total = 0usize;
    for l in 0..LANES {
        total += 4 * fours[l] as usize
            + 2 * twos[l].count_ones() as usize
            + ones[l].count_ones() as usize;
    }
    for (&x, &y) in a[split..n].iter().zip(&b[split..n]) {
        total += O::apply(x, y).count_ones() as usize;
    }
    total
}

/// Folds `operands` into a fresh output vector with `O`, one block at a
/// time so the output block stays in L1 while each operand streams
/// through exactly once.
fn fold_blocks<T: KernelOperand, O: WordOp>(operands: &[T], dispatch: KernelDispatch) -> BitVec {
    let len = check_operands(operands);
    let mut words = operands[0].words().to_vec();
    let n_words = words.len();
    let mut start = 0;
    while start < n_words {
        let end = (start + BLOCK_WORDS).min(n_words);
        let dst = &mut words[start..end];
        for op in &operands[1..] {
            combine::<O>(dispatch, dst, &op.words()[start..end]);
        }
        start = end;
    }
    BitVec::from_words_unmasked(words, len)
}

/// Counts the set bits of the k-ary combination without materializing it:
/// each block of combined words lives only in a stack buffer that is
/// popcounted and discarded.
///
/// The buffer is seeded by [`combine2`] (first two operands in one pass)
/// and the last operand's combine is fused with the popcount, so a
/// `k`-operand count makes `k − 2` buffer-writing passes plus one counting
/// pass where materialize-then-count makes an allocation, `k` passes, and
/// a cold final sweep — fused counting is strictly less work, never a
/// loss. One- and two-operand counts skip the buffer entirely and count
/// straight off the input slices. Under the unrolled tier the counting
/// pass accumulates through [`csa_count_fused`].
fn count_blocks<T: KernelOperand, O: WordOp>(operands: &[T], dispatch: KernelDispatch) -> usize {
    check_operands(operands);
    let (last, rest) = operands.split_last().expect("checked non-empty");
    let (first, second, mids) = match rest {
        [] => {
            // Single operand: no combining at all, just a popcount sweep
            // (the unrolled tier reuses the CSA path with `w | w == w`).
            let words = last.words();
            return match dispatch {
                KernelDispatch::Scalar => words.iter().map(|w| w.count_ones() as usize).sum(),
                KernelDispatch::Unrolled => csa_count_fused::<OpOr>(words, words),
            };
        }
        // Two operands: one fused pass over the inputs, no buffer.
        [first] => return count2::<O>(dispatch, first.words(), last.words()),
        [first, second, mids @ ..] => (first, second, mids),
    };
    let n_words = first.words().len();
    let mut buf = [0u64; COUNT_BLOCK_WORDS];
    let mut ones = 0usize;
    let mut start = 0;
    while start < n_words {
        let end = (start + COUNT_BLOCK_WORDS).min(n_words);
        let width = end - start;
        combine2::<O>(
            dispatch,
            &mut buf[..width],
            &first.words()[start..end],
            &second.words()[start..end],
        );
        for op in mids {
            combine::<O>(dispatch, &mut buf[..width], &op.words()[start..end]);
        }
        ones += count2::<O>(dispatch, &buf[..width], &last.words()[start..end]);
        start = end;
    }
    ones
}

/// AND of all operands in a single pass with one output allocation.
///
/// Equivalent to (but faster than) the pairwise fold
/// `operands[0] & operands[1] & …`. Operands are whole bitmaps
/// (`&BitVec`) or word-aligned [`SegmentView`]s — segment-at-a-time
/// execution drives exactly this kernel over cache-sized slices.
#[must_use]
pub fn and_all<T: KernelOperand>(operands: &[T]) -> BitVec {
    and_all_with(KernelDispatch::active(), operands)
}

/// [`and_all`] pinned to a dispatch tier (benches and property tests).
#[must_use]
pub fn and_all_with<T: KernelOperand>(dispatch: KernelDispatch, operands: &[T]) -> BitVec {
    fold_blocks::<T, OpAnd>(operands, dispatch)
}

/// OR of all operands in a single pass with one output allocation.
#[must_use]
pub fn or_all<T: KernelOperand>(operands: &[T]) -> BitVec {
    or_all_with(KernelDispatch::active(), operands)
}

/// [`or_all`] pinned to a dispatch tier.
#[must_use]
pub fn or_all_with<T: KernelOperand>(dispatch: KernelDispatch, operands: &[T]) -> BitVec {
    fold_blocks::<T, OpOr>(operands, dispatch)
}

/// XOR of all operands in a single pass with one output allocation.
#[must_use]
pub fn xor_all<T: KernelOperand>(operands: &[T]) -> BitVec {
    xor_all_with(KernelDispatch::active(), operands)
}

/// [`xor_all`] pinned to a dispatch tier.
#[must_use]
pub fn xor_all_with<T: KernelOperand>(dispatch: KernelDispatch, operands: &[T]) -> BitVec {
    fold_blocks::<T, OpXor>(operands, dispatch)
}

/// `a ∧ ¬b` with the output sized once — the owned counterpart of
/// [`BitVec::and_not_assign`], without the clone-then-assign double pass.
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn and_not<T: KernelOperand + Copy>(a: T, b: T) -> BitVec {
    and_not_with(KernelDispatch::active(), a, b)
}

/// [`and_not`] pinned to a dispatch tier.
#[must_use]
pub fn and_not_with<T: KernelOperand + Copy>(dispatch: KernelDispatch, a: T, b: T) -> BitVec {
    fold_blocks::<T, OpAndNot>(&[a, b], dispatch)
}

/// `|operands[0] ∧ operands[1] ∧ …|` without materializing the result.
#[must_use]
pub fn count_and<T: KernelOperand>(operands: &[T]) -> usize {
    count_and_with(KernelDispatch::active(), operands)
}

/// [`count_and`] pinned to a dispatch tier.
#[must_use]
pub fn count_and_with<T: KernelOperand>(dispatch: KernelDispatch, operands: &[T]) -> usize {
    count_blocks::<T, OpAnd>(operands, dispatch)
}

/// `|operands[0] ∨ operands[1] ∨ …|` without materializing the result.
#[must_use]
pub fn count_or<T: KernelOperand>(operands: &[T]) -> usize {
    count_or_with(KernelDispatch::active(), operands)
}

/// [`count_or`] pinned to a dispatch tier.
#[must_use]
pub fn count_or_with<T: KernelOperand>(dispatch: KernelDispatch, operands: &[T]) -> usize {
    count_blocks::<T, OpOr>(operands, dispatch)
}

/// `|operands[0] ⊕ operands[1] ⊕ …|` without materializing the result.
#[must_use]
pub fn count_xor<T: KernelOperand>(operands: &[T]) -> usize {
    count_xor_with(KernelDispatch::active(), operands)
}

/// [`count_xor`] pinned to a dispatch tier.
#[must_use]
pub fn count_xor_with<T: KernelOperand>(dispatch: KernelDispatch, operands: &[T]) -> usize {
    count_blocks::<T, OpXor>(operands, dispatch)
}

/// `|a ∧ ¬b|` without materializing the difference.
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn count_and_not<T: KernelOperand + Copy>(a: T, b: T) -> usize {
    count_and_not_with(KernelDispatch::active(), a, b)
}

/// [`count_and_not`] pinned to a dispatch tier.
#[must_use]
pub fn count_and_not_with<T: KernelOperand + Copy>(dispatch: KernelDispatch, a: T, b: T) -> usize {
    count_blocks::<T, OpAndNot>(&[a, b], dispatch)
}

/// Most counter levels a bit-sliced threshold counter can carry: 8 bits
/// count fan-ins up to [`MAX_THRESHOLD_FAN_IN`] operands. The counter
/// state of one chunk is `levels × LANES` words — at 8 levels still a
/// 512-byte register/stack footprint.
const MAX_COUNTER_LEVELS: usize = 8;

/// Largest operand count the threshold kernels accept (the counter is
/// [`MAX_COUNTER_LEVELS`] bit-slices wide). Far above any query plan's
/// fan-in; a wider threshold should be split and merged by the caller.
pub const MAX_THRESHOLD_FAN_IN: usize = (1 << MAX_COUNTER_LEVELS) - 1;

/// Counter bit-slices needed to hold counts `0..=n`.
fn counter_levels(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()) as usize
}

/// The bit-sliced carry-save threshold core: for every bit position,
/// counts how many of `ops` have the bit set — the count lives as
/// `levels` bit-slices, one `[u64; L]` lane group per slice — then
/// compares the sliced counter against `k` without ever materializing
/// per-row integers (Kaser & Lemire, *Threshold and symmetric functions
/// over bitmaps*).
///
/// Operands are folded **two at a time** through the same full-adder
/// [`csa`] step the Harley–Seal counting kernels use: a pair costs one
/// CSA at level 0 plus one half-adder ripple per higher level, instead
/// of two full ripples. All carry state is lane-wide (`[u64; L]`), so
/// the compiler keeps the whole counter network in vector registers.
///
/// Processes `chunks` chunks of exactly `L` words starting at word
/// `start`; returns the popcount of the result and, when `MATERIALIZE`,
/// writes the result words into `out`. With `EXACT` the comparison is
/// `count == k` instead of `count ≥ k`.
///
/// Callers guarantee `1 ≤ k ≤ n < 2^levels`, so bit positions past a
/// bitmap's canonical length (count 0) can never satisfy the predicate
/// and the output needs no re-masking. `inline(never)`: see
/// [`combine_scalar`].
#[inline(never)]
fn threshold_block<const L: usize, const MATERIALIZE: bool, const EXACT: bool>(
    ops: &[&[u64]],
    start: usize,
    chunks: usize,
    k: u64,
    levels: usize,
    out: &mut [u64],
) -> usize {
    debug_assert!(levels <= MAX_COUNTER_LEVELS);
    let mut total = 0usize;
    let mut pos = start;
    for _ in 0..chunks {
        let mut cnt = [[0u64; L]; MAX_COUNTER_LEVELS];
        let mut pairs = ops.chunks_exact(2);
        for pair in &mut pairs {
            let a: &[u64; L] = pair[0][pos..pos + L].try_into().expect("exact chunk");
            let b: &[u64; L] = pair[1][pos..pos + L].try_into().expect("exact chunk");
            let mut carry = [0u64; L];
            for i in 0..L {
                let (c, s) = csa(cnt[0][i], a[i], b[i]);
                cnt[0][i] = s;
                carry[i] = c;
            }
            for row in cnt.iter_mut().take(levels).skip(1) {
                for i in 0..L {
                    let s = row[i] ^ carry[i];
                    carry[i] &= row[i];
                    row[i] = s;
                }
            }
        }
        if let [last] = pairs.remainder() {
            let mut carry: [u64; L] = last[pos..pos + L].try_into().expect("exact chunk");
            for row in cnt.iter_mut().take(levels) {
                for i in 0..L {
                    let s = row[i] ^ carry[i];
                    carry[i] &= row[i];
                    row[i] = s;
                }
            }
        }
        // Bit-sliced comparison against the constant k: a borrow-chain
        // subtraction for `count ≥ k`, an XNOR-AND fold for `count == k`.
        let mut acc = if EXACT { [u64::MAX; L] } else { [0u64; L] };
        for (lvl, row) in cnt.iter().enumerate().take(levels) {
            let kmask = if (k >> lvl) & 1 == 1 { u64::MAX } else { 0u64 };
            for i in 0..L {
                if EXACT {
                    acc[i] &= !(row[i] ^ kmask);
                } else {
                    acc[i] = (!row[i] & kmask) | ((!row[i] | kmask) & acc[i]);
                }
            }
        }
        for i in 0..L {
            let w = if EXACT { acc[i] } else { !acc[i] };
            total += w.count_ones() as usize;
            if MATERIALIZE {
                out[pos + i] = w;
            }
        }
        pos += L;
    }
    total
}

/// Drives [`threshold_block`] over a full word range under a dispatch
/// tier: the unrolled tier runs `[u64; LANES]` chunks with a scalar
/// ragged tail, the scalar tier runs everything word at a time.
fn threshold_words<const MATERIALIZE: bool, const EXACT: bool>(
    dispatch: KernelDispatch,
    ops: &[&[u64]],
    k: u64,
    levels: usize,
    out: &mut [u64],
) -> usize {
    let n_words = ops[0].len();
    match dispatch {
        KernelDispatch::Scalar => {
            threshold_block::<1, MATERIALIZE, EXACT>(ops, 0, n_words, k, levels, out)
        }
        KernelDispatch::Unrolled => {
            let body = n_words / LANES;
            let mut total =
                threshold_block::<LANES, MATERIALIZE, EXACT>(ops, 0, body, k, levels, out);
            total += threshold_block::<1, MATERIALIZE, EXACT>(
                ops,
                body * LANES,
                n_words - body * LANES,
                k,
                levels,
                out,
            );
            total
        }
    }
}

/// Gathers operand word slices and checks the fan-in bound.
fn threshold_operand_words<T: KernelOperand>(operands: &[T]) -> Vec<&[u64]> {
    assert!(
        operands.len() <= MAX_THRESHOLD_FAN_IN,
        "threshold fan-in {} exceeds the kernel maximum {MAX_THRESHOLD_FAN_IN}",
        operands.len()
    );
    operands.iter().map(KernelOperand::words).collect()
}

/// "At least `k` of the operands set": bit `i` of the result is set iff
/// `k` or more operands have bit `i` set, evaluated in a **single pass**
/// through a bit-sliced carry-save counter network — `O(n log n)` word
/// operations total, versus `C(n, k)` AND/OR folds for the naive
/// OR-of-all-k-subsets formulation.
///
/// Degenerate thresholds are total, not errors: `k = 0` is all ones
/// (every row trivially matches) and `k > n` is all zeros. `k = 1`
/// and `k = n` fast-path to the fused [`or_all`] / [`and_all`] kernels.
///
/// # Panics
/// Panics on an empty operand list, mismatched operand lengths, or more
/// than [`MAX_THRESHOLD_FAN_IN`] operands.
#[must_use]
pub fn threshold_k<T: KernelOperand>(operands: &[T], k: usize) -> BitVec {
    threshold_k_with(KernelDispatch::active(), operands, k)
}

/// [`threshold_k`] pinned to a dispatch tier (benches and property tests).
#[must_use]
pub fn threshold_k_with<T: KernelOperand>(
    dispatch: KernelDispatch,
    operands: &[T],
    k: usize,
) -> BitVec {
    let len = check_operands(operands);
    let n = operands.len();
    if k == 0 {
        return BitVec::ones(len);
    }
    if k > n {
        return BitVec::zeros(len);
    }
    if k == 1 {
        return or_all_with(dispatch, operands);
    }
    if k == n {
        return and_all_with(dispatch, operands);
    }
    let ops = threshold_operand_words(operands);
    let mut out = vec![0u64; crate::words_for(len)];
    threshold_words::<true, false>(dispatch, &ops, k as u64, counter_levels(n), &mut out);
    BitVec::from_words_unmasked(out, len)
}

/// `|threshold_k(operands, k)|` without materializing the result bitmap:
/// the comparison words are popcounted as they fall out of the counter
/// network.
///
/// # Panics
/// Panics on an empty operand list, mismatched operand lengths, or more
/// than [`MAX_THRESHOLD_FAN_IN`] operands.
#[must_use]
pub fn count_threshold_k<T: KernelOperand>(operands: &[T], k: usize) -> usize {
    count_threshold_k_with(KernelDispatch::active(), operands, k)
}

/// [`count_threshold_k`] pinned to a dispatch tier.
#[must_use]
pub fn count_threshold_k_with<T: KernelOperand>(
    dispatch: KernelDispatch,
    operands: &[T],
    k: usize,
) -> usize {
    let len = check_operands(operands);
    let n = operands.len();
    if k == 0 {
        return len;
    }
    if k > n {
        return 0;
    }
    if k == 1 {
        return count_blocks::<T, OpOr>(operands, dispatch);
    }
    if k == n {
        return count_blocks::<T, OpAnd>(operands, dispatch);
    }
    let ops = threshold_operand_words(operands);
    threshold_words::<false, false>(dispatch, &ops, k as u64, counter_levels(n), &mut [])
}

/// "Exactly `k` of the operands set" — the symmetric-function companion
/// of [`threshold_k`], evaluated in the same single counter-network pass
/// with an equality comparison instead of the borrow chain.
///
/// `k = 0` is the complement of the union; `k > n` is all zeros.
///
/// # Panics
/// Panics on an empty operand list, mismatched operand lengths, or more
/// than [`MAX_THRESHOLD_FAN_IN`] operands.
#[must_use]
pub fn exact_k<T: KernelOperand>(operands: &[T], k: usize) -> BitVec {
    exact_k_with(KernelDispatch::active(), operands, k)
}

/// [`exact_k`] pinned to a dispatch tier.
#[must_use]
pub fn exact_k_with<T: KernelOperand>(
    dispatch: KernelDispatch,
    operands: &[T],
    k: usize,
) -> BitVec {
    let len = check_operands(operands);
    let n = operands.len();
    if k > n {
        return BitVec::zeros(len);
    }
    if k == 0 {
        return or_all_with(dispatch, operands).complement();
    }
    if k == n {
        return and_all_with(dispatch, operands);
    }
    let ops = threshold_operand_words(operands);
    let mut out = vec![0u64; crate::words_for(len)];
    threshold_words::<true, true>(dispatch, &ops, k as u64, counter_levels(n), &mut out);
    BitVec::from_words_unmasked(out, len)
}

/// Majority vote over the operands: set where **more than half** are set
/// (`k = ⌊n/2⌋ + 1`), the classic symmetric-function fast path.
///
/// # Panics
/// Panics on an empty operand list, mismatched operand lengths, or more
/// than [`MAX_THRESHOLD_FAN_IN`] operands.
#[must_use]
pub fn majority<T: KernelOperand>(operands: &[T]) -> BitVec {
    majority_with(KernelDispatch::active(), operands)
}

/// [`majority`] pinned to a dispatch tier.
#[must_use]
pub fn majority_with<T: KernelOperand>(dispatch: KernelDispatch, operands: &[T]) -> BitVec {
    threshold_k_with(dispatch, operands, operands.len() / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u64) -> BitVec {
        // Deterministic pseudo-random words (splitmix64), canonically masked.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        BitVec::from_fn(len, |_| {
            state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
            state & 1 == 1
        })
    }

    fn pairwise(operands: &[&BitVec], f: impl Fn(&mut BitVec, &BitVec)) -> BitVec {
        let mut acc = operands[0].clone();
        for op in &operands[1..] {
            f(&mut acc, op);
        }
        acc
    }

    #[test]
    fn kary_matches_pairwise_fold_on_both_tiers() {
        // Lengths straddling block, lane, and word boundaries, including
        // the tail-word cases len % 64 ∈ {0, 1, 63} and ragged lane tails.
        for len in [1usize, 63, 64, 65, 127, 128, 8 * 1024, 64 * 1024 + 63] {
            let owned: Vec<BitVec> = (0..9).map(|k| sample(len, k as u64)).collect();
            let ops: Vec<&BitVec> = owned.iter().collect();
            for dispatch in [KernelDispatch::Scalar, KernelDispatch::Unrolled] {
                assert_eq!(
                    and_all_with(dispatch, &ops),
                    pairwise(&ops, |a, b| a.and_assign(b)),
                    "and len {len} {dispatch:?}"
                );
                assert_eq!(
                    or_all_with(dispatch, &ops),
                    pairwise(&ops, |a, b| a.or_assign(b)),
                    "or len {len} {dispatch:?}"
                );
                assert_eq!(
                    xor_all_with(dispatch, &ops),
                    pairwise(&ops, |a, b| a.xor_assign(b)),
                    "xor len {len} {dispatch:?}"
                );
            }
        }
    }

    #[test]
    fn single_operand_is_identity() {
        let v = sample(1000, 3);
        assert_eq!(and_all(&[&v]), v);
        assert_eq!(or_all(&[&v]), v);
        assert_eq!(xor_all(&[&v]), v);
        for dispatch in [KernelDispatch::Scalar, KernelDispatch::Unrolled] {
            assert_eq!(count_and_with(dispatch, &[&v]), v.count_ones());
        }
    }

    #[test]
    fn fused_counts_match_materialized_on_both_tiers() {
        for len in [65usize, 4096, 16 * 1024 + 1] {
            let owned: Vec<BitVec> = (0..5).map(|k| sample(len, 17 + k as u64)).collect();
            let ops: Vec<&BitVec> = owned.iter().collect();
            let (and, or, xor) = (
                and_all(&ops).count_ones(),
                or_all(&ops).count_ones(),
                xor_all(&ops).count_ones(),
            );
            for dispatch in [KernelDispatch::Scalar, KernelDispatch::Unrolled] {
                assert_eq!(
                    count_and_with(dispatch, &ops),
                    and,
                    "len {len} {dispatch:?}"
                );
                assert_eq!(count_or_with(dispatch, &ops), or, "len {len} {dispatch:?}");
                assert_eq!(
                    count_xor_with(dispatch, &ops),
                    xor,
                    "len {len} {dispatch:?}"
                );
            }
        }
    }

    #[test]
    fn and_not_matches_assign() {
        let a = sample(777, 1);
        let b = sample(777, 2);
        let mut want = a.clone();
        want.and_not_assign(&b);
        for dispatch in [KernelDispatch::Scalar, KernelDispatch::Unrolled] {
            assert_eq!(and_not_with(dispatch, &a, &b), want);
            assert_eq!(count_and_not_with(dispatch, &a, &b), want.count_ones());
        }
    }

    #[test]
    fn canonical_tail_preserved() {
        // All-ones operands: results must stay masked past `len`.
        let a = BitVec::ones(65);
        let b = BitVec::ones(65);
        let o = or_all(&[&a, &b]);
        assert_eq!(o.count_ones(), 65);
        assert_eq!(o.words()[1], 1);
        let x = xor_all(&[&a, &b]);
        assert_eq!(x.count_ones(), 0);
    }

    #[test]
    fn empty_length_operands() {
        let a = BitVec::zeros(0);
        let b = BitVec::zeros(0);
        assert_eq!(or_all(&[&a, &b]).len(), 0);
        assert_eq!(count_or(&[&a, &b]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one operand")]
    fn empty_operand_list_panics() {
        let _ = and_all::<&BitVec>(&[]);
    }

    #[test]
    fn views_feed_the_same_kernels() {
        let owned: Vec<BitVec> = (0..4).map(|k| sample(64 * 1024 + 37, 90 + k)).collect();
        let full: Vec<&BitVec> = owned.iter().collect();
        let whole = and_all(&full);
        // Reassemble the whole-bitmap result segment by segment.
        let seg_bits = 4096;
        let mut got = Vec::new();
        let mut lo = 0;
        while lo < owned[0].len() {
            let hi = (lo + seg_bits).min(owned[0].len());
            let views: Vec<_> = owned.iter().map(|b| b.view_range(lo, hi)).collect();
            let part = and_all(&views);
            assert_eq!(part.count_ones(), count_and(&views), "{lo}..{hi}");
            got.extend_from_slice(part.words());
            lo = hi;
        }
        assert_eq!(BitVec::from_words(got, owned[0].len()), whole);
        // Pairwise view ops agree with their whole-bitmap counterparts.
        let (a, b) = (&owned[0], &owned[1]);
        assert_eq!(
            and_not(a.view_range(0, 4096), b.view_range(0, 4096)),
            and_not(
                &a.view_range(0, 4096).to_bitvec(),
                &b.view_range(0, 4096).to_bitvec()
            ),
        );
        let mut acc = a.view_range(64, 4096 + 64).to_bitvec();
        acc.or_assign_view(b.view_range(64, 4096 + 64));
        let mut want = a.view_range(64, 4096 + 64).to_bitvec();
        want.or_assign(&b.view_range(64, 4096 + 64).to_bitvec());
        assert_eq!(acc, want);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        let _ = or_all(&[&a, &b]);
    }

    #[test]
    fn csa_count_is_exact() {
        // Lengths that hit the 4×LANES CSA body, its scalar tail, the
        // empty case, and multi-step bodies with ragged remainders.
        for n_words in [0usize, 1, 2, 31, 32, 33, 63, 64, 65, 127, 128, 200] {
            let a: Vec<u64> = (0..n_words as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 3))
                .collect();
            let b: Vec<u64> = (0..n_words as u64)
                .map(|i| i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).rotate_left(17))
                .collect();
            let want_or: usize = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x | y).count_ones() as usize)
                .sum();
            assert_eq!(csa_count_fused::<OpOr>(&a, &b), want_or, "{n_words} words");
            let want_and: usize = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x & y).count_ones() as usize)
                .sum();
            assert_eq!(
                csa_count_fused::<OpAnd>(&a, &b),
                want_and,
                "{n_words} words"
            );
            // Single-bitmap counting path: OpOr with both slices aliased.
            let want_self: usize = a.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(
                csa_count_fused::<OpOr>(&a, &a),
                want_self,
                "{n_words} words"
            );
        }
        let full = vec![u64::MAX; 37];
        assert_eq!(csa_count_fused::<OpOr>(&full, &full), 37 * 64);
        let empty = vec![0u64; 41];
        assert_eq!(csa_count_fused::<OpAnd>(&empty, &empty), 0);
    }

    /// Per-row popcount reference for the threshold kernels.
    fn threshold_reference(ops: &[&BitVec], k: usize, exact: bool) -> BitVec {
        let len = ops[0].len();
        BitVec::from_fn(len, |i| {
            let c = ops.iter().filter(|b| b.get(i)).count();
            if exact {
                c == k
            } else {
                c >= k
            }
        })
    }

    #[test]
    fn threshold_matches_per_row_reference_on_both_tiers() {
        for len in [1usize, 63, 64, 65, 127, 128, 4096, 8 * 1024 + 7] {
            for n in [1usize, 2, 3, 4, 7, 8, 13] {
                let owned: Vec<BitVec> = (0..n).map(|j| sample(len, 0xA0 + j as u64)).collect();
                let ops: Vec<&BitVec> = owned.iter().collect();
                for k in 0..=(n + 1) {
                    let want = threshold_reference(&ops, k, false);
                    let want_exact = threshold_reference(&ops, k, true);
                    for dispatch in [KernelDispatch::Scalar, KernelDispatch::Unrolled] {
                        let got = threshold_k_with(dispatch, &ops, k);
                        assert_eq!(got, want, "len {len} n {n} k {k} {dispatch:?}");
                        assert_eq!(
                            count_threshold_k_with(dispatch, &ops, k),
                            want.count_ones(),
                            "count len {len} n {n} k {k} {dispatch:?}"
                        );
                        assert_eq!(
                            exact_k_with(dispatch, &ops, k),
                            want_exact,
                            "exact len {len} n {n} k {k} {dispatch:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn threshold_degenerate_cases() {
        let owned: Vec<BitVec> = (0..3).map(|j| sample(500, 7 + j)).collect();
        let ops: Vec<&BitVec> = owned.iter().collect();
        // k = 0: every row matches; k > n: none do.
        assert_eq!(threshold_k(&ops, 0), BitVec::ones(500));
        assert_eq!(count_threshold_k(&ops, 0), 500);
        assert_eq!(threshold_k(&ops, 4), BitVec::zeros(500));
        assert_eq!(count_threshold_k(&ops, 4), 0);
        assert_eq!(exact_k(&ops, 4), BitVec::zeros(500));
        // k = 1 / k = n collapse to the union / intersection kernels.
        assert_eq!(threshold_k(&ops, 1), or_all(&ops));
        assert_eq!(threshold_k(&ops, 3), and_all(&ops));
        // exact 0 is the complement of the union.
        assert_eq!(exact_k(&ops, 0), or_all(&ops).complement());
        // Majority of three = at least two.
        assert_eq!(majority(&ops), threshold_k(&ops, 2));
    }

    #[test]
    fn threshold_canonical_tail_preserved() {
        // Saturated operands on a ragged length: the result must stay
        // masked past `len` so equality against canonical bitmaps holds.
        let ops: Vec<BitVec> = (0..5).map(|_| BitVec::ones(65)).collect();
        let refs: Vec<&BitVec> = ops.iter().collect();
        for dispatch in [KernelDispatch::Scalar, KernelDispatch::Unrolled] {
            let got = threshold_k_with(dispatch, &refs, 3);
            assert_eq!(got, BitVec::ones(65), "{dispatch:?}");
            assert_eq!(got.words()[1], 1, "{dispatch:?}");
            assert_eq!(count_threshold_k_with(dispatch, &refs, 3), 65);
            assert_eq!(exact_k_with(dispatch, &refs, 5), BitVec::ones(65));
        }
    }

    #[test]
    fn threshold_over_views_matches_whole() {
        let owned: Vec<BitVec> = (0..6).map(|j| sample(64 * 1024 + 37, 50 + j)).collect();
        let full: Vec<&BitVec> = owned.iter().collect();
        let whole = threshold_k(&full, 3);
        let seg_bits = 4096;
        let mut got = Vec::new();
        let mut lo = 0;
        while lo < owned[0].len() {
            let hi = (lo + seg_bits).min(owned[0].len());
            let views: Vec<_> = owned.iter().map(|b| b.view_range(lo, hi)).collect();
            let part = threshold_k(&views, 3);
            assert_eq!(
                part.count_ones(),
                count_threshold_k(&views, 3),
                "{lo}..{hi}"
            );
            got.extend_from_slice(part.words());
            lo = hi;
        }
        assert_eq!(BitVec::from_words(got, owned[0].len()), whole);
    }

    #[test]
    #[should_panic(expected = "at least one operand")]
    fn threshold_empty_operand_list_panics() {
        let _ = threshold_k::<&BitVec>(&[], 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn threshold_mismatched_lengths_panic() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        let _ = threshold_k(&[&a, &b], 1);
    }

    #[test]
    fn dispatch_parse_and_names() {
        assert_eq!(
            KernelDispatch::parse("scalar"),
            Some(KernelDispatch::Scalar)
        );
        assert_eq!(
            KernelDispatch::parse(" UNROLLED "),
            Some(KernelDispatch::Unrolled)
        );
        assert_eq!(KernelDispatch::parse("avx9000"), None);
        assert_eq!(KernelDispatch::parse(""), None);
        assert_eq!(KernelDispatch::Scalar.name(), "scalar");
        assert_eq!(KernelDispatch::Unrolled.name(), "unrolled");
        // active() always resolves to a concrete tier and is stable.
        assert_eq!(KernelDispatch::active(), KernelDispatch::active());
    }
}
