//! Validated environment-variable parsing with warning fallback.
//!
//! Every `BINDEX_*` tuning knob follows the same contract: an unset
//! variable silently uses the built-in default, a well-formed value is
//! applied, and a malformed value (junk, zero where a positive number is
//! required, overflow) prints one warning to stderr and falls back to the
//! default — a typo in a job script must never abort a workload or,
//! worse, be silently ignored. [`parse_env`] is that contract in one
//! place; `BatchOptions::from_env` (`BINDEX_THREADS`,
//! `BINDEX_SEGMENT_BITS`) and the server's `ServerConfig::from_env`
//! (`BINDEX_QUEUE_DEPTH`, `BINDEX_DEADLINE_MS`) all route through it.

/// Reads `var` and validates it with `parse`. Returns `None` when the
/// variable is unset (caller uses its default, silently) **or** set to
/// something `parse` rejects (caller uses its default, after a warning to
/// stderr naming the variable, the offending value, and `expected`).
pub fn parse_env<T>(var: &str, expected: &str, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    let raw = std::env::var(var).ok()?;
    let parsed = parse(&raw);
    if parsed.is_none() {
        eprintln!("warning: ignoring {var}={raw:?} (expected {expected}); using the default");
    }
    parsed
}

/// Parses a positive (`>= 1`) integer; rejects junk, zero, negatives, and
/// values that overflow the target width.
pub fn positive_usize(raw: &str) -> Option<usize> {
    let n = raw.trim().parse::<usize>().ok()?;
    (n >= 1).then_some(n)
}

/// Parses a positive (`>= 1`) 64-bit integer; rejects junk, zero,
/// negatives, and overflow.
pub fn positive_u64(raw: &str) -> Option<u64> {
    let n = raw.trim().parse::<u64>().ok()?;
    (n >= 1).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_usize_accepts_and_rejects() {
        assert_eq!(positive_usize("1"), Some(1));
        assert_eq!(positive_usize(" 64 "), Some(64));
        // Zero, negative, junk, empty, fractional, overflow.
        assert_eq!(positive_usize("0"), None);
        assert_eq!(positive_usize("-3"), None);
        assert_eq!(positive_usize("banana"), None);
        assert_eq!(positive_usize(""), None);
        assert_eq!(positive_usize("2.5"), None);
        assert_eq!(positive_usize("99999999999999999999999999"), None);
    }

    #[test]
    fn positive_u64_accepts_and_rejects() {
        assert_eq!(positive_u64("250"), Some(250));
        assert_eq!(positive_u64(&u64::MAX.to_string()), Some(u64::MAX));
        assert_eq!(positive_u64("0"), None);
        assert_eq!(positive_u64("18446744073709551616"), None); // 2^64
        assert_eq!(positive_u64("ten"), None);
    }

    /// One test covers all env interactions so parallel test threads never
    /// race on the process environment; each case uses its own variable.
    #[test]
    fn parse_env_unset_set_and_malformed() {
        assert_eq!(
            parse_env("BINDEX_ENVCFG_TEST_UNSET", "anything", positive_usize),
            None
        );
        std::env::set_var("BINDEX_ENVCFG_TEST_OK", "12");
        assert_eq!(
            parse_env(
                "BINDEX_ENVCFG_TEST_OK",
                "a positive integer",
                positive_usize
            ),
            Some(12)
        );
        for bad in ["0", "nope", "-1", "1e9"] {
            std::env::set_var("BINDEX_ENVCFG_TEST_BAD", bad);
            assert_eq!(
                parse_env(
                    "BINDEX_ENVCFG_TEST_BAD",
                    "a positive integer",
                    positive_usize
                ),
                None,
                "{bad:?} must fall back"
            );
        }
        std::env::remove_var("BINDEX_ENVCFG_TEST_OK");
        std::env::remove_var("BINDEX_ENVCFG_TEST_BAD");
    }
}
