//! The three physical organizations of Section 9.1 and the stored-index
//! reader with I/O accounting.

use std::io;

use bindex_bitvec::BitVec;
use bindex_compress::CodecKind;

use crate::store::{ByteStore, IoStats};

/// Physical organization of an index's bit matrix (Section 9.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageScheme {
    /// **BS**: one file per bitmap (column-major).
    BitmapLevel,
    /// **CS**: one row-major file per component.
    ComponentLevel,
    /// **IS**: one row-major file for the entire index.
    IndexLevel,
}

impl StorageScheme {
    /// The paper's abbreviation, `c`-prefixed when `compressed`.
    pub fn label(self, compressed: bool) -> &'static str {
        match (self, compressed) {
            (StorageScheme::BitmapLevel, false) => "BS",
            (StorageScheme::BitmapLevel, true) => "cBS",
            (StorageScheme::ComponentLevel, false) => "CS",
            (StorageScheme::ComponentLevel, true) => "cCS",
            (StorageScheme::IndexLevel, false) => "IS",
            (StorageScheme::IndexLevel, true) => "cIS",
        }
    }
}

/// Shape metadata of a stored index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredIndexMeta {
    /// Rows per bitmap (`N`).
    pub n_rows: usize,
    /// Stored bitmaps per component (`n_i`).
    pub bitmaps_per_component: Vec<u32>,
    /// Physical organization.
    pub scheme: StorageScheme,
    /// Per-file compression codec.
    pub codec: CodecKind,
}

impl StoredIndexMeta {
    /// Total stored bitmaps `n`.
    pub fn total_bitmaps(&self) -> u64 {
        self.bitmaps_per_component.iter().map(|&x| u64::from(x)).sum()
    }

    /// Serializes the metadata as the manifest file format (one
    /// `key=value` per line; versioned, order-insensitive).
    fn to_manifest(&self) -> String {
        let comps: Vec<String> = self
            .bitmaps_per_component
            .iter()
            .map(u32::to_string)
            .collect();
        format!(
            "version=1\nn_rows={}\nscheme={}\ncodec={}\ncomponents={}\n",
            self.n_rows,
            match self.scheme {
                StorageScheme::BitmapLevel => "bs",
                StorageScheme::ComponentLevel => "cs",
                StorageScheme::IndexLevel => "is",
            },
            self.codec.name(),
            comps.join(",")
        )
    }

    /// Parses a manifest produced by [`StoredIndexMeta::to_manifest`].
    fn from_manifest(text: &str) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"));
        let mut n_rows = None;
        let mut scheme = None;
        let mut codec = None;
        let mut comps: Option<Vec<u32>> = None;
        let mut version = None;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| bad(&format!("malformed line {line:?}")))?;
            match k {
                "version" => version = Some(v.to_string()),
                "n_rows" => n_rows = Some(v.parse().map_err(|_| bad("bad n_rows"))?),
                "scheme" => {
                    scheme = Some(match v {
                        "bs" => StorageScheme::BitmapLevel,
                        "cs" => StorageScheme::ComponentLevel,
                        "is" => StorageScheme::IndexLevel,
                        other => return Err(bad(&format!("unknown scheme {other}"))),
                    })
                }
                "codec" => {
                    codec = Some(match v {
                        "none" => CodecKind::None,
                        "rle" => CodecKind::Rle,
                        "lzss" => CodecKind::Lzss,
                        "deflate" => CodecKind::Deflate,
                        other => return Err(bad(&format!("unknown codec {other}"))),
                    })
                }
                "components" => {
                    comps = Some(
                        v.split(',')
                            .map(|x| x.parse().map_err(|_| bad("bad component count")))
                            .collect::<io::Result<Vec<u32>>>()?,
                    )
                }
                other => return Err(bad(&format!("unknown key {other}"))),
            }
        }
        if version.as_deref() != Some("1") {
            return Err(bad("unsupported version"));
        }
        Ok(Self {
            n_rows: n_rows.ok_or_else(|| bad("missing n_rows"))?,
            bitmaps_per_component: comps.ok_or_else(|| bad("missing components"))?,
            scheme: scheme.ok_or_else(|| bad("missing scheme"))?,
            codec: codec.ok_or_else(|| bad("missing codec"))?,
        })
    }
}

/// An index laid out in a [`ByteStore`] under one of the three schemes,
/// readable bitmap-by-bitmap with byte-level I/O accounting.
#[derive(Debug)]
pub struct StoredIndex<S: ByteStore> {
    store: S,
    meta: StoredIndexMeta,
    stats: IoStats,
}

impl<S: ByteStore> StoredIndex<S> {
    /// Writes `components[i-1][j]` (bitmap `j` of component `i`) into
    /// `store` under `scheme`, compressing each file with `codec`.
    pub fn create(
        mut store: S,
        components: &[Vec<BitVec>],
        scheme: StorageScheme,
        codec: CodecKind,
    ) -> io::Result<Self> {
        let n_rows = components
            .first()
            .and_then(|c| c.first())
            .map_or(0, BitVec::len);
        for comp in components.iter().flatten() {
            assert_eq!(comp.len(), n_rows, "bitmaps must share the row count");
        }
        let meta = StoredIndexMeta {
            n_rows,
            bitmaps_per_component: components.iter().map(|c| c.len() as u32).collect(),
            scheme,
            codec,
        };
        match scheme {
            StorageScheme::BitmapLevel => {
                for (ci, comp) in components.iter().enumerate() {
                    for (j, bm) in comp.iter().enumerate() {
                        let raw = bm.to_bytes();
                        store.write_file(&bitmap_file(ci + 1, j), &codec.compress(&raw))?;
                    }
                }
            }
            StorageScheme::ComponentLevel => {
                for (ci, comp) in components.iter().enumerate() {
                    let raw = row_major(comp, n_rows);
                    store.write_file(&component_file(ci + 1), &codec.compress(&raw))?;
                }
            }
            StorageScheme::IndexLevel => {
                let all: Vec<&BitVec> = components.iter().flatten().collect();
                let raw = row_major_refs(&all, n_rows);
                store.write_file(INDEX_FILE, &codec.compress(&raw))?;
            }
        }
        store.write_file(MANIFEST_FILE, meta.to_manifest().as_bytes())?;
        Ok(Self {
            store,
            meta,
            stats: IoStats::default(),
        })
    }

    /// Re-opens an index previously written with [`StoredIndex::create`],
    /// reading its shape from the manifest file — no rebuild needed.
    pub fn open(store: S) -> io::Result<Self> {
        let manifest = store.read_file(MANIFEST_FILE)?;
        let text = std::str::from_utf8(&manifest)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "manifest not UTF-8"))?;
        let meta = StoredIndexMeta::from_manifest(text)?;
        Ok(Self {
            store,
            meta,
            stats: IoStats::default(),
        })
    }

    /// Shape metadata.
    pub fn meta(&self) -> &StoredIndexMeta {
        &self.meta
    }

    /// Total stored bytes across all bitmap files (compressed size if
    /// compressed) — the space metric of Section 9. The tiny manifest is
    /// excluded.
    pub fn total_stored_bytes(&self) -> u64 {
        self.store.total_bytes()
            - self.store.file_size(MANIFEST_FILE).unwrap_or(0)
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Returns and resets the I/O statistics.
    pub fn take_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    /// Reads stored bitmap `slot` of component `comp` (1-based component).
    ///
    /// Under BS this reads one bitmap file; under CS it reads and
    /// transposes the whole component file; under IS the whole index file
    /// — exactly the access-cost asymmetry Section 9.2 describes.
    pub fn read_bitmap(&mut self, comp: usize, slot: usize) -> io::Result<BitVec> {
        let n_i = self.meta.bitmaps_per_component[comp - 1] as usize;
        assert!(slot < n_i, "slot {slot} out of range for component {comp}");
        let n_rows = self.meta.n_rows;
        match self.meta.scheme {
            StorageScheme::BitmapLevel => {
                let raw = self.read_and_decompress(&bitmap_file(comp, slot), n_rows.div_ceil(8))?;
                Ok(BitVec::from_bytes(n_rows, &raw))
            }
            StorageScheme::ComponentLevel => {
                let raw_len = (n_rows * n_i).div_ceil(8);
                let raw = self.read_and_decompress(&component_file(comp), raw_len)?;
                Ok(extract_column(&raw, n_rows, n_i, slot))
            }
            StorageScheme::IndexLevel => {
                let n = self.meta.total_bitmaps() as usize;
                let raw_len = (n_rows * n).div_ceil(8);
                let raw = self.read_and_decompress(INDEX_FILE, raw_len)?;
                let global: usize = self.meta.bitmaps_per_component[..comp - 1]
                    .iter()
                    .map(|&x| x as usize)
                    .sum::<usize>()
                    + slot;
                Ok(extract_column(&raw, n_rows, n, global))
            }
        }
    }

    fn read_and_decompress(&mut self, name: &str, raw_len: usize) -> io::Result<Vec<u8>> {
        let data = self.store.read_file(name)?;
        self.stats.reads += 1;
        self.stats.bytes_read += data.len() as u64;
        if self.meta.codec == CodecKind::None {
            return Ok(data);
        }
        let out = self
            .meta
            .codec
            .decompress(&data, raw_len)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.stats.bytes_decompressed += out.len() as u64;
        Ok(out)
    }
}

const INDEX_FILE: &str = "index.bix";
const MANIFEST_FILE: &str = "manifest.bixm";

fn bitmap_file(comp: usize, slot: usize) -> String {
    format!("c{comp}_b{slot}.bmp")
}

fn component_file(comp: usize) -> String {
    format!("c{comp}.cmp")
}

/// Packs `bitmaps` (columns) into a row-major byte buffer: bit
/// `r * width + j` holds bitmap `j`'s bit for row `r`.
fn row_major(bitmaps: &[BitVec], n_rows: usize) -> Vec<u8> {
    let refs: Vec<&BitVec> = bitmaps.iter().collect();
    row_major_refs(&refs, n_rows)
}

fn row_major_refs(bitmaps: &[&BitVec], n_rows: usize) -> Vec<u8> {
    let width = bitmaps.len();
    let total_bits = n_rows * width;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    for (j, bm) in bitmaps.iter().enumerate() {
        for r in bm.iter_ones() {
            let bit = r * width + j;
            out[bit / 8] |= 1 << (bit % 8);
        }
    }
    out
}

/// Extracts column `j` from a row-major buffer of `width` bitmaps.
fn extract_column(raw: &[u8], n_rows: usize, width: usize, j: usize) -> BitVec {
    let mut out = BitVec::zeros(n_rows);
    for r in 0..n_rows {
        let bit = r * width + j;
        if raw[bit / 8] & (1 << (bit % 8)) != 0 {
            out.set(r, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    /// Two components: 3 bitmaps of 20 rows and 2 bitmaps of 20 rows.
    fn sample_components() -> Vec<Vec<BitVec>> {
        let pat = |step: usize, off: usize| BitVec::from_fn(20, move |i| (i + off) % step == 0);
        vec![
            vec![pat(2, 0), pat(3, 1), pat(5, 2)],
            vec![pat(4, 0), pat(7, 3)],
        ]
    }

    fn roundtrip(scheme: StorageScheme, codec: CodecKind) {
        let comps = sample_components();
        let mut stored = StoredIndex::create(MemStore::new(), &comps, scheme, codec).unwrap();
        for (ci, comp) in comps.iter().enumerate() {
            for (j, bm) in comp.iter().enumerate() {
                let got = stored.read_bitmap(ci + 1, j).unwrap();
                assert_eq!(&got, bm, "{scheme:?}/{codec:?} comp {} slot {j}", ci + 1);
            }
        }
    }

    #[test]
    fn all_schemes_all_codecs_roundtrip() {
        for scheme in [
            StorageScheme::BitmapLevel,
            StorageScheme::ComponentLevel,
            StorageScheme::IndexLevel,
        ] {
            for codec in [
                CodecKind::None,
                CodecKind::Rle,
                CodecKind::Lzss,
                CodecKind::Deflate,
            ] {
                roundtrip(scheme, codec);
            }
        }
    }

    #[test]
    fn file_counts_per_scheme() {
        let comps = sample_components();
        let bs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(bs.store.file_names().len(), 6); // 5 bitmaps + manifest
        let cs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::ComponentLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(cs.store.file_names().len(), 3); // 2 components + manifest
        let is = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(is.store.file_names().len(), 2); // index + manifest
    }

    #[test]
    fn io_accounting_reflects_scheme_asymmetry() {
        let comps = sample_components();
        let mut bs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        bs.read_bitmap(1, 0).unwrap();
        let bs_stats = bs.take_stats();
        assert_eq!(bs_stats.reads, 1);
        assert_eq!(bs_stats.bytes_read, 3); // ceil(20/8)

        let mut cs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::ComponentLevel,
            CodecKind::None,
        )
        .unwrap();
        cs.read_bitmap(1, 0).unwrap();
        let cs_stats = cs.take_stats();
        // CS reads the whole 20x3-bit component: ceil(60/8) = 8 bytes.
        assert_eq!(cs_stats.bytes_read, 8);
        assert!(cs_stats.bytes_read > bs_stats.bytes_read);
    }

    #[test]
    fn decompression_accounted() {
        let comps = sample_components();
        let mut cbs = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::Lzss,
        )
        .unwrap();
        cbs.read_bitmap(2, 1).unwrap();
        let s = cbs.take_stats();
        assert_eq!(s.bytes_decompressed, 3);
        assert!(s.bytes_read > 0);
    }

    #[test]
    fn meta_totals() {
        let comps = sample_components();
        let s = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        assert_eq!(s.meta().total_bitmaps(), 5);
        assert_eq!(s.meta().n_rows, 20);
        // IS file: ceil(20*5/8) = 13 bytes
        assert_eq!(s.total_stored_bytes(), 13);
    }

    #[test]
    fn open_reloads_without_rebuild() {
        let comps = sample_components();
        let store = {
            let stored = StoredIndex::create(
                MemStore::new(),
                &comps,
                StorageScheme::ComponentLevel,
                CodecKind::Deflate,
            )
            .unwrap();
            stored.store
        };
        let mut reopened = StoredIndex::open(store).unwrap();
        assert_eq!(reopened.meta().n_rows, 20);
        assert_eq!(reopened.meta().bitmaps_per_component, vec![3, 2]);
        assert_eq!(reopened.meta().scheme, StorageScheme::ComponentLevel);
        assert_eq!(reopened.meta().codec, CodecKind::Deflate);
        for (ci, comp) in comps.iter().enumerate() {
            for (j, bm) in comp.iter().enumerate() {
                assert_eq!(&reopened.read_bitmap(ci + 1, j).unwrap(), bm);
            }
        }
    }

    #[test]
    fn manifest_roundtrip_and_rejects_garbage() {
        let meta = StoredIndexMeta {
            n_rows: 12345,
            bitmaps_per_component: vec![7, 1, 4],
            scheme: StorageScheme::BitmapLevel,
            codec: CodecKind::Lzss,
        };
        let text = meta.to_manifest();
        assert_eq!(StoredIndexMeta::from_manifest(&text).unwrap(), meta);
        assert!(StoredIndexMeta::from_manifest("").is_err());
        assert!(StoredIndexMeta::from_manifest("version=9\n").is_err());
        assert!(StoredIndexMeta::from_manifest(&text.replace("lzss", "zip")).is_err());
        assert!(StoredIndexMeta::from_manifest(&text.replace("scheme=bs", "scheme=qq")).is_err());
        let mut store = MemStore::new();
        store.write_file("other", b"x").unwrap();
        assert!(StoredIndex::open(store).is_err(), "missing manifest");
    }

    #[test]
    fn total_bytes_excludes_manifest() {
        let comps = sample_components();
        let s = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::IndexLevel,
            CodecKind::None,
        )
        .unwrap();
        // IS file alone: ceil(20*5/8) = 13 bytes.
        assert_eq!(s.total_stored_bytes(), 13);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let comps = sample_components();
        let mut s = StoredIndex::create(
            MemStore::new(),
            &comps,
            StorageScheme::BitmapLevel,
            CodecKind::None,
        )
        .unwrap();
        let _ = s.read_bitmap(1, 3);
    }
}
