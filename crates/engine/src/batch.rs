//! Parallel batch query execution: evaluate a workload of queries across
//! worker threads with work-stealing-style dynamic dispatch, isolating
//! each query's failures from the rest of the workload.
//!
//! A decision-support session rarely asks one question; it asks hundreds
//! (the paper's Section 9 experiments average over 100-query workloads).
//! Queries of a workload are independent, so they parallelize trivially —
//! once everything on the read path is shareable. That is what the `Arc`
//! fetch cache in [`ExecContext`], the owned [`Table`], and the
//! `&self`-based `SharedIndexReader` of the storage crate buy: worker
//! threads borrow one table (or build one [`BitmapSource`] each from a
//! shared factory) and drain tasks from a work-stealing [`StealQueue`]:
//! each worker owns a deque seeded with a contiguous block of the
//! workload and steals half of a victim's remaining tail when its own
//! runs dry, so a skewed mix (one huge query among many cheap ones)
//! rebalances instead of convoying behind whichever worker drew the
//! expensive block. Workers that find nothing to steal spin briefly, then
//! park with a timeout until the workload drains.
//!
//! Independence cuts the other way too: one query hitting a corrupt
//! bitmap — or a bug that panics — is no reason to throw away the other
//! ninety-nine answers. Each query therefore runs under
//! [`catch_unwind`], its failure is recorded as its own
//! [`QueryOutcome`], and the workload keeps draining; a [`Deadline`]
//! and a failure cap bound how long and how hard a sick store is
//! hammered. The caller gets every per-query outcome plus a
//! [`BatchHealth`] summary instead of a first-error abort.
//!
//! Built on `std::thread::scope` — no runtime, no dependency, no unsafe.
//! `threads = 1` runs inline on the calling thread, so single-threaded
//! baselines measure the sequential path itself rather than a one-worker
//! thread pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bindex_bitvec::BitVec;
use bindex_core::error::{Error, Result};
use bindex_core::eval::{evaluate_in, Algorithm};
use bindex_core::{BitmapSource, DeltaOverlay, EvalStats, ExecContext, RecoveryPolicy};
use bindex_relation::query::{SelectionQuery, ThresholdQuery};

use crate::plan::{self, ConjunctiveQuery, ExecutionStats};
use crate::table::Table;

/// Environment variable overriding the default worker count
/// (`all_experiments --threads N` forwards it to every experiment).
pub const THREADS_ENV: &str = "BINDEX_THREADS";

/// Environment variable selecting the morsel size (in bits) for
/// segment-at-a-time workload execution. Unset means whole-bitmap
/// evaluation; a valid value (a power of two, at least
/// [`MIN_SEGMENT_BITS`]) switches [`evaluate_selection_workload`] to the
/// segmented path with that segment size.
pub const SEGMENT_BITS_ENV: &str = "BINDEX_SEGMENT_BITS";

/// Smallest accepted segment size: anything below 512 bits spends more
/// time on per-segment bookkeeping than on bit operations.
pub const MIN_SEGMENT_BITS: usize = 512;

/// Environment variable gating summary-based segment pruning (v4 stores
/// only): set to `0` to force every fetch through storage even when the
/// summary block proves a window dead. On by default — pruning never
/// changes an answer, a scan/buffer-hit charge, or an op count.
pub const PRUNING_ENV: &str = "BINDEX_PRUNE";

/// Validates a `BINDEX_SEGMENT_BITS` value: a positive power of two of at
/// least [`MIN_SEGMENT_BITS`]. (A value larger than the relation is fine —
/// the query just runs as one segment.) Returns `None` on anything else so
/// callers can warn and fall back rather than aborting a workload over a
/// typo.
pub fn parse_segment_bits(raw: &str) -> Option<usize> {
    let n = raw.trim().parse::<usize>().ok()?;
    (n.is_power_of_two() && n >= MIN_SEGMENT_BITS).then_some(n)
}

/// A wall-clock cut-off for a workload — now defined in `bindex-core`
/// (see [`bindex_core::Deadline`]) so segment-at-a-time evaluation can
/// check it between morsels, and re-exported here where it has always
/// lived. Queries claimed after expiry come back
/// [`QueryOutcome::TimedOut`] without running; a segmented query that is
/// already running is cancelled at its next segment boundary and comes
/// back [`QueryOutcome::DeadlineExceeded`]; a whole-bitmap query that is
/// already running finishes.
pub use bindex_core::Deadline;

/// What happened to one query of a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome<T> {
    /// Evaluated normally.
    Ok(T),
    /// Evaluated to an exact answer, but through the degraded path: at
    /// least one stored bitmap was unreadable and had to be reconstructed
    /// (see [`RecoveryPolicy`]).
    Degraded(T),
    /// The query failed — including [`Error::WorkerPanic`] when its
    /// evaluation panicked. Other queries are unaffected.
    Failed(Error),
    /// The workload [`Deadline`] expired before this query started.
    TimedOut,
    /// The [`Deadline`] expired while this query was running on the
    /// segmented path: evaluation was cancelled at a segment boundary and
    /// its partial foundset discarded, so shed work stops consuming
    /// cores. Only segment-at-a-time execution can produce this — a
    /// whole-bitmap query that has started always finishes.
    DeadlineExceeded,
    /// The failure cap ([`BatchOptions::with_max_failures`]) was reached
    /// before this query started.
    Skipped,
}

impl<T> QueryOutcome<T> {
    /// The answer, if the query produced one (normally or degraded).
    pub fn result(&self) -> Option<&T> {
        match self {
            QueryOutcome::Ok(v) | QueryOutcome::Degraded(v) => Some(v),
            _ => None,
        }
    }

    /// Consumes the outcome into its answer, if any.
    pub fn into_result(self) -> Option<T> {
        match self {
            QueryOutcome::Ok(v) | QueryOutcome::Degraded(v) => Some(v),
            _ => None,
        }
    }

    /// `true` for [`QueryOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, QueryOutcome::Ok(_))
    }

    /// `true` for [`QueryOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryOutcome::Degraded(_))
    }

    /// `true` when the query was answered, normally or degraded.
    pub fn is_answered(&self) -> bool {
        self.result().is_some()
    }

    /// The error, for [`QueryOutcome::Failed`].
    pub fn error(&self) -> Option<&Error> {
        match self {
            QueryOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-workload outcome tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchHealth {
    /// Queries answered normally.
    pub ok: usize,
    /// Queries answered exactly but through the degraded path.
    pub degraded: usize,
    /// Queries that failed (including worker panics).
    pub failed: usize,
    /// Queries not started because the deadline expired.
    pub timed_out: usize,
    /// Queries cancelled mid-run at a segment boundary because the
    /// deadline expired (segmented execution only).
    pub deadline_exceeded: usize,
    /// Queries not started because the failure cap was reached.
    pub skipped: usize,
    /// Of `failed`, how many were [`Error::WorkerPanic`]s.
    pub worker_panics: usize,
}

impl BatchHealth {
    fn tally<T>(outcomes: &[QueryOutcome<T>]) -> Self {
        let mut h = Self::default();
        for o in outcomes {
            match o {
                QueryOutcome::Ok(_) => h.ok += 1,
                QueryOutcome::Degraded(_) => h.degraded += 1,
                QueryOutcome::Failed(e) => {
                    h.failed += 1;
                    if matches!(e, Error::WorkerPanic(_)) {
                        h.worker_panics += 1;
                    }
                }
                QueryOutcome::TimedOut => h.timed_out += 1,
                QueryOutcome::DeadlineExceeded => h.deadline_exceeded += 1,
                QueryOutcome::Skipped => h.skipped += 1,
            }
        }
        h
    }

    /// Every query answered normally — no degradation, failure, timeout,
    /// cancellation, or skip.
    pub fn all_ok(&self) -> bool {
        self.degraded == 0
            && self.failed == 0
            && self.timed_out == 0
            && self.deadline_exceeded == 0
            && self.skipped == 0
    }

    /// Queries that produced an answer (ok + degraded).
    pub fn answered(&self) -> usize {
        self.ok + self.degraded
    }

    /// Total queries in the workload.
    pub fn total(&self) -> usize {
        self.ok
            + self.degraded
            + self.failed
            + self.timed_out
            + self.deadline_exceeded
            + self.skipped
    }
}

/// Everything a workload run produced: one [`QueryOutcome`] per query in
/// workload order, plus the [`BatchHealth`] tallies.
#[derive(Debug, Clone)]
pub struct WorkloadReport<T> {
    /// Per-query outcomes, in workload order.
    pub outcomes: Vec<QueryOutcome<T>>,
    /// Outcome tallies.
    pub health: BatchHealth,
    /// Successful work-steal operations during the run: how often an idle
    /// worker took half of another's remaining tasks. Zero on the
    /// sequential path and on perfectly balanced workloads; greater than
    /// zero is the signature of a skewed mix being rebalanced.
    pub steals: usize,
}

impl<T> WorkloadReport<T> {
    /// Strict view: every answer in workload order, or the first
    /// non-answer as an error — the pre-isolation calling convention, for
    /// callers that treat any incomplete workload as a failure.
    pub fn into_results(self) -> Result<Vec<T>> {
        self.outcomes
            .into_iter()
            .map(|o| match o {
                QueryOutcome::Ok(v) | QueryOutcome::Degraded(v) => Ok(v),
                QueryOutcome::Failed(e) => Err(e),
                QueryOutcome::TimedOut => Err(Error::Infeasible(
                    "query missed the workload deadline".into(),
                )),
                QueryOutcome::DeadlineExceeded => Err(Error::DeadlineExceeded),
                QueryOutcome::Skipped => Err(Error::Infeasible(
                    "query skipped after the workload failure cap".into(),
                )),
            })
            .collect()
    }
}

/// Worker configuration for a batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    requested_threads: usize,
    threads: usize,
    deadline: Option<Deadline>,
    max_failures: Option<usize>,
    recovery: RecoveryPolicy,
    segment_bits: Option<usize>,
    overlay: Option<Arc<DeltaOverlay>>,
    /// Inverted so `derive(Default)` keeps pruning ON by default.
    no_pruning: bool,
}

impl BatchOptions {
    /// Runs with `threads` workers. The request is clamped to at least 1
    /// and at most the machine's available parallelism — oversubscribing
    /// cores only adds scheduler churn for this CPU-bound workload. A
    /// clamp is logged to stderr; the original request stays visible via
    /// [`requested_threads`](Self::requested_threads).
    pub fn with_threads(threads: usize) -> Self {
        let requested = threads.max(1);
        let cap =
            std::thread::available_parallelism().map_or(requested, std::num::NonZeroUsize::get);
        let effective = requested.min(cap);
        if effective < requested {
            eprintln!(
                "warning: clamping worker count {requested} to available parallelism {effective}"
            );
        }
        Self {
            requested_threads: requested,
            threads: effective,
            deadline: None,
            max_failures: None,
            recovery: RecoveryPolicy::default(),
            segment_bits: None,
            overlay: None,
            no_pruning: false,
        }
    }

    /// Runs inline on the calling thread.
    pub fn single_threaded() -> Self {
        Self::with_threads(1)
    }

    /// Runs with exactly `threads` workers, skipping the
    /// available-parallelism clamp — deliberate oversubscription. For
    /// tests and harnesses that must exercise the multi-worker machinery
    /// (work stealing, morsel assembly, panic isolation) on boxes with
    /// fewer cores than workers; production callers should prefer
    /// [`BatchOptions::with_threads`].
    pub fn with_threads_unclamped(threads: usize) -> Self {
        let mut options = Self::with_threads(1);
        options.requested_threads = threads.max(1);
        options.threads = threads.max(1);
        options
    }

    /// Reads the worker count from the `BINDEX_THREADS` environment
    /// variable (falling back to the machine's available parallelism) and
    /// the segment size from `BINDEX_SEGMENT_BITS` — with a warning to
    /// stderr, via [`crate::envcfg::parse_env`], when either variable is
    /// set to something unusable, rather than silently ignoring it.
    pub fn from_env() -> Self {
        let threads = crate::envcfg::parse_env(
            THREADS_ENV,
            "a positive integer",
            crate::envcfg::positive_usize,
        )
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        let mut options = Self::with_threads(threads);
        options.segment_bits = crate::envcfg::parse_env(
            SEGMENT_BITS_ENV,
            &format!("a power of two >= {MIN_SEGMENT_BITS}"),
            parse_segment_bits,
        );
        if let Some(enabled) =
            crate::envcfg::parse_env(PRUNING_ENV, "0 or 1", |raw| match raw.trim() {
                "0" => Some(false),
                "1" => Some(true),
                _ => None,
            })
        {
            options.no_pruning = !enabled;
        }
        options
    }

    /// Sets a wall-clock deadline; queries claimed after it expires come
    /// back [`QueryOutcome::TimedOut`].
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops starting new queries once `max` have failed; the remainder
    /// come back [`QueryOutcome::Skipped`]. Unlimited by default.
    pub fn with_max_failures(mut self, max: usize) -> Self {
        self.max_failures = Some(max);
        self
    }

    /// Sets the degraded-mode [`RecoveryPolicy`] applied to every query's
    /// [`ExecContext`] (storage-backed selection workloads only).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Switches [`evaluate_selection_workload`] to segment-at-a-time
    /// execution with morsels of `bits` bits.
    ///
    /// # Panics
    /// Panics unless `bits` is a power of two of at least
    /// [`MIN_SEGMENT_BITS`] (use [`parse_segment_bits`] to validate
    /// untrusted input).
    pub fn with_segment_bits(mut self, bits: usize) -> Self {
        assert!(
            bits.is_power_of_two() && bits >= MIN_SEGMENT_BITS,
            "segment size must be a power of two >= {MIN_SEGMENT_BITS} bits, got {bits}"
        );
        self.segment_bits = Some(bits);
        self
    }

    /// Number of worker threads actually used (after the
    /// available-parallelism clamp).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Number of worker threads originally asked for, before clamping.
    pub fn requested_threads(&self) -> usize {
        self.requested_threads.max(1)
    }

    /// `true` when more workers were requested than the machine can run in
    /// parallel (the clamp kicked in) — worth recording next to any
    /// throughput number measured under such a configuration.
    pub fn oversubscribed(&self) -> bool {
        self.requested_threads() > self.threads()
    }

    /// The segment size for segment-at-a-time execution, if enabled.
    pub fn segment_bits(&self) -> Option<usize> {
        self.segment_bits
    }

    /// The workload deadline, if any.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// The failure cap, if any.
    pub fn max_failures(&self) -> Option<usize> {
        self.max_failures
    }

    /// The degraded-mode recovery policy.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// Attaches a streaming-ingest [`DeltaOverlay`] applied to every
    /// query's [`ExecContext`] (storage-backed selection workloads only):
    /// workers see the base index plus the not-yet-compacted appends and
    /// deletes. A quiesced overlay is dropped, keeping the workload
    /// bit-identical — statistics included — to running without one.
    pub fn with_overlay(mut self, overlay: Option<Arc<DeltaOverlay>>) -> Self {
        self.overlay = overlay.filter(|o| !o.is_quiesced());
        self
    }

    /// The ingest overlay, if one is attached (and not quiesced).
    pub fn overlay(&self) -> Option<&Arc<DeltaOverlay>> {
        self.overlay.as_ref()
    }

    /// Enables or disables summary-based segment pruning on every query's
    /// [`ExecContext`]. On by default; pruning only fires on v4 stores
    /// (others have no summary block) and never changes an answer.
    pub fn with_pruning(mut self, enabled: bool) -> Self {
        self.no_pruning = !enabled;
        self
    }

    /// Whether summary-based segment pruning is enabled.
    pub fn pruning(&self) -> bool {
        !self.no_pruning
    }
}

/// Failed claim attempts a worker spins through (with
/// [`std::hint::spin_loop`]) before backing off to
/// [`std::thread::park_timeout`]. Spinning covers the common
/// milliseconds-long gap while a steal is in flight; parking caps the
/// cost of waiting out one long straggler task.
const IDLE_SPINS: u32 = 64;

/// Park interval while idle: long enough not to busy-wait, short enough
/// that the last worker to finish never strands the others noticeably.
const PARK_INTERVAL: Duration = Duration::from_micros(100);

/// Work-stealing task queue: per-worker deques of task indices, seeded
/// with contiguous blocks of the workload in index order.
///
/// A worker pops its own deque from the front (preserving input order, so
/// early tasks — which seed caches and op accounting — run early) and, on
/// empty, steals the back *half* of the first non-empty victim's deque.
/// Steal-half rather than steal-one amortizes the lock traffic: a worker
/// that went idle takes enough work to stay busy, instead of coming back
/// for every task. Tasks are never re-enqueued, so `remaining` (tasks not
/// yet finished) is the drain condition; the brief window where stolen
/// tasks are in a thief's hands but not yet re-dequed is covered by the
/// claim-side spin.
struct StealQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Tasks claimed but whose execution has not finished, plus tasks
    /// still queued. Zero ⇔ the workload is fully drained.
    remaining: AtomicUsize,
    /// Successful steal operations (each moves half a victim's tail).
    steals: AtomicUsize,
}

impl StealQueue {
    /// Distributes `0..n_tasks` over `workers` deques in contiguous
    /// blocks. Contiguity is deliberate: it keeps each worker streaming
    /// adjacent tasks (locality), and it means a skewed workload lands on
    /// one deque — exactly the shape stealing exists to fix.
    fn new(n_tasks: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let chunk = n_tasks.div_ceil(workers).max(1);
        let deques = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n_tasks);
                let hi = ((w + 1) * chunk).min(n_tasks);
                Mutex::new((lo..hi).collect::<VecDeque<usize>>())
            })
            .collect();
        Self {
            deques,
            remaining: AtomicUsize::new(n_tasks),
            steals: AtomicUsize::new(0),
        }
    }

    /// Next task for worker `w`: own deque first, else steal. `None`
    /// means nothing was claimable *right now* — not that the workload is
    /// done (see [`StealQueue::drained`]).
    fn claim(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.deques[w].lock().unwrap().pop_front() {
            return Some(i);
        }
        let n = self.deques.len();
        for v in (w + 1..n).chain(0..w) {
            let mut stolen = {
                let mut victim = self.deques[v].lock().unwrap();
                let len = victim.len();
                if len == 0 {
                    continue;
                }
                victim.split_off(len - len.div_ceil(2))
            };
            self.steals.fetch_add(1, Ordering::Relaxed);
            let first = stolen.pop_front().expect("stole at least one task");
            if !stolen.is_empty() {
                self.deques[w].lock().unwrap().append(&mut stolen);
            }
            return Some(first);
        }
        None
    }

    /// Marks one claimed task as executed.
    fn finish_task(&self) {
        self.remaining.fetch_sub(1, Ordering::Release);
    }

    /// `true` once every task has finished executing.
    fn drained(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Successful steals over the queue's lifetime.
    fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// Runs `work(i)` for every task the queue yields to worker `w`,
    /// with idle-spin → park backoff between failed claims, returning
    /// when the whole workload has drained.
    fn drain(&self, w: usize, mut work: impl FnMut(usize)) {
        let mut idle = 0u32;
        loop {
            if let Some(i) = self.claim(w) {
                idle = 0;
                work(i);
                self.finish_task();
                continue;
            }
            if self.drained() {
                return;
            }
            idle += 1;
            if idle < IDLE_SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::park_timeout(PARK_INTERVAL);
            }
        }
    }
}

/// Renders a panic payload for [`Error::WorkerPanic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// The resilient workload driver behind [`execute_workload`] and
/// [`evaluate_selection_workload`]. Runs `step(state, i)` for every
/// `i in 0..n` across the configured workers, keeping outcomes in input
/// order. Workers claim indices from a work-stealing [`StealQueue`], so
/// long queries don't stall the queue behind them and a skewed block of
/// expensive queries gets redistributed.
///
/// Each worker owns one `init()`-built state (a table handle, a bitmap
/// source). Every step runs under [`catch_unwind`]: a panic becomes that
/// query's [`QueryOutcome::Failed`]\([`Error::WorkerPanic`]\) and the
/// worker rebuilds its state — which the panic may have left inconsistent
/// — before claiming the next query. `step` returns the answer plus a
/// flag marking it degraded. Deadline and failure-cap checks happen
/// between queries; a `step` that cancels itself mid-query by returning
/// [`Error::DeadlineExceeded`] (segment-at-a-time evaluation checks the
/// deadline between morsels) is reported as
/// [`QueryOutcome::DeadlineExceeded`] without charging the failure cap.
fn run_workload<St, T, I, W>(
    n: usize,
    options: &BatchOptions,
    init: I,
    step: W,
) -> WorkloadReport<T>
where
    T: Send,
    I: Fn() -> St + Sync,
    W: Fn(&mut St, usize) -> Result<(T, bool)> + Sync,
{
    let threads = options.threads().min(n.max(1));
    let failures = AtomicUsize::new(0);
    // One query's worth of work, shared by the sequential and parallel
    // paths so both charge failures and isolate panics identically.
    let run_one = |state: &mut St, i: usize| -> QueryOutcome<T> {
        if options
            .max_failures()
            .is_some_and(|cap| failures.load(Ordering::Relaxed) >= cap)
        {
            return QueryOutcome::Skipped;
        }
        if options.deadline().is_some_and(|d| d.expired()) {
            return QueryOutcome::TimedOut;
        }
        // Unwind safety: on panic the worker state is discarded and
        // rebuilt from `init`, so no broken invariant is observed.
        match catch_unwind(AssertUnwindSafe(|| step(state, i))) {
            Ok(Ok((v, false))) => QueryOutcome::Ok(v),
            Ok(Ok((v, true))) => QueryOutcome::Degraded(v),
            // Cooperative cancellation is the deadline working as designed,
            // not a storage fault: report it without charging the failure
            // cap, so shed queries never trip `max_failures`.
            Ok(Err(Error::DeadlineExceeded)) => QueryOutcome::DeadlineExceeded,
            Ok(Err(e)) => {
                failures.fetch_add(1, Ordering::Relaxed);
                QueryOutcome::Failed(e)
            }
            Err(payload) => {
                failures.fetch_add(1, Ordering::Relaxed);
                *state = init();
                QueryOutcome::Failed(Error::WorkerPanic(panic_message(payload.as_ref())))
            }
        }
    };
    let queue = StealQueue::new(n, threads);
    let worker = |w: usize, out: &mut Vec<(usize, QueryOutcome<T>)>| {
        let mut state = init();
        queue.drain(w, |i| out.push((i, run_one(&mut state, i))));
    };

    let mut collected: Vec<(usize, QueryOutcome<T>)> = Vec::new();
    let mut steals = 0usize;
    if threads <= 1 {
        // Straight-line sequential path: no shared queue, no thread
        // scope — a single-worker run measures the sequential algorithm,
        // not a one-worker thread pool.
        let mut state = init();
        for i in 0..n {
            collected.push((i, run_one(&mut state, i)));
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let worker = &worker;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        worker(w, &mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                // A worker can only die outside `catch_unwind` (its state
                // factory panicked). Its claimed-but-unreported queries
                // surface below as WorkerPanic outcomes.
                if let Ok(chunk) = h.join() {
                    collected.extend(chunk);
                }
            }
        });
        steals = queue.steals();
    }

    let mut slots: Vec<Option<QueryOutcome<T>>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, o) in collected {
        slots[i] = Some(o);
    }
    let outcomes: Vec<QueryOutcome<T>> = slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                QueryOutcome::Failed(Error::WorkerPanic(
                    "worker thread died before reporting its results".into(),
                ))
            })
        })
        .collect();
    let health = BatchHealth::tally(&outcomes);
    WorkloadReport {
        outcomes,
        health,
        steals,
    }
}

/// Executes a workload of conjunctive queries against `table`, choosing
/// the cheapest plan per query and fanning the queries out across the
/// configured worker threads. Outcomes come back in workload order; a
/// failing (or panicking) query is recorded in its own slot and never
/// aborts the rest of the workload.
pub fn execute_workload(
    table: &Table,
    queries: &[ConjunctiveQuery],
    options: &BatchOptions,
) -> WorkloadReport<(BitVec, ExecutionStats)> {
    run_workload(
        queries.len(),
        options,
        || (),
        |_, i| {
            let q = &queries[i];
            let best = plan::choose(table, q)?;
            let (found, stats) = plan::execute(table, q, &best.plan)?;
            let degraded = stats.degraded_fetches > 0;
            Ok(((found, stats), degraded))
        },
    )
}

/// Evaluates a workload of single-attribute selection queries, one
/// [`BitmapSource`] per worker from `make_source` (e.g. a closure opening
/// a source backed by the storage crate's `SharedIndexReader`). Returns
/// per-query outcomes holding foundsets and [`EvalStats`], in workload
/// order. With a [`RecoveryPolicy`] in `options`, queries that had to
/// reconstruct an unreadable bitmap come back
/// [`QueryOutcome::Degraded`] — still bit-exact.
pub fn evaluate_selection_workload<S, F>(
    make_source: F,
    queries: &[SelectionQuery],
    algorithm: Algorithm,
    options: &BatchOptions,
) -> WorkloadReport<(BitVec, EvalStats)>
where
    S: BitmapSource,
    F: Fn() -> S + Sync,
{
    if let Some(segment_bits) = options.segment_bits() {
        return evaluate_segmented_workload(
            make_source,
            queries.len(),
            |ctx, i, row_lo, row_hi, out| {
                bindex_core::eval::evaluate_segment_range_in(
                    ctx,
                    queries[i],
                    algorithm,
                    segment_bits,
                    row_lo,
                    row_hi,
                    out,
                )
            },
            options,
            segment_bits,
        );
    }
    run_workload(queries.len(), options, &make_source, |source, i| {
        let mut ctx = ExecContext::new(source)
            .with_recovery(options.recovery().clone())
            .with_deadline(options.deadline())
            .with_overlay(options.overlay().cloned())
            .with_pruning(options.pruning());
        let found = evaluate_in(&mut ctx, queries[i], algorithm)?;
        let stats = ctx.take_stats();
        Ok(((found, stats), stats.degraded_fetches > 0))
    })
}

/// Evaluates a workload of k-of-N [`ThresholdQuery`]s against one index,
/// with the same worker, recovery, overlay, pruning, deadline, and
/// segment-at-a-time machinery as [`evaluate_selection_workload`]. Each
/// query's predicate foundsets are produced by the ordinary evaluator
/// and combined in one pass by the bit-sliced CSA threshold kernel; on
/// the segmented path the per-window early-exit bound sheds work the
/// summary planes prove pointless. A malformed query (`k = 0`, `k > N`,
/// no predicates) comes back as its own
/// [`QueryOutcome::Failed`]\([`Error::InvalidQuery`]\) without touching
/// the rest of the workload.
pub fn evaluate_threshold_workload<S, F>(
    make_source: F,
    queries: &[ThresholdQuery],
    algorithm: Algorithm,
    options: &BatchOptions,
) -> WorkloadReport<(BitVec, EvalStats)>
where
    S: BitmapSource,
    F: Fn() -> S + Sync,
{
    use bindex_core::eval::threshold;
    if let Some(segment_bits) = options.segment_bits() {
        return evaluate_segmented_workload(
            make_source,
            queries.len(),
            |ctx, i, row_lo, row_hi, out| {
                threshold::validate(&queries[i])?;
                threshold::evaluate_threshold_segment_range_in(
                    ctx,
                    &queries[i],
                    algorithm,
                    segment_bits,
                    row_lo,
                    row_hi,
                    out,
                )
            },
            options,
            segment_bits,
        );
    }
    run_workload(queries.len(), options, &make_source, |source, i| {
        let mut ctx = ExecContext::new(source)
            .with_recovery(options.recovery().clone())
            .with_deadline(options.deadline())
            .with_overlay(options.overlay().cloned())
            .with_pruning(options.pruning());
        let found = threshold::evaluate_threshold_in(&mut ctx, &queries[i], algorithm)?;
        let stats = ctx.take_stats();
        Ok(((found, stats), stats.degraded_fetches > 0))
    })
}

/// One morsel of work on the shared queue: a contiguous run of segments
/// of one query.
#[derive(Debug, Clone, Copy)]
struct Morsel {
    query: usize,
    row_lo: usize,
    row_hi: usize,
}

/// Lifecycle of one query on the segmented path. `FRESH` → (`RUNNING` |
/// `DEAD`) happens exactly once, on the query's first claimed morsel, so
/// deadline and failure-cap checks keep whole-query granularity: a query
/// that has started always finishes (bit-exact answers or a real error),
/// exactly as on the whole-bitmap path.
const FRESH: usize = 0;
const RUNNING: usize = 1;
const DEAD: usize = 2;

/// Shared per-query assembly state for the segmented path.
struct QueryCell {
    state: AtomicUsize,
    /// Morsels not yet finished; the worker that drops this to zero
    /// finalizes the outcome.
    pending: AtomicUsize,
    /// Full-length foundset words; morsels write disjoint ranges under a
    /// short lock (evaluation itself runs on a morsel-local buffer).
    words: Mutex<Vec<u64>>,
    /// Merged statistics: the morsel containing segment 0 contributes the
    /// paper-model counters (op charges land only there, and its fetch
    /// cache touches every slot the query needs, so they equal the
    /// whole-bitmap numbers); every morsel contributes its segment
    /// counters.
    stats: Mutex<EvalStats>,
    /// The terminal outcome for a `DEAD` query (failed / timed out /
    /// skipped), recorded by whichever worker killed it.
    verdict: Mutex<Option<QueryOutcome<(BitVec, EvalStats)>>>,
}

/// The segmented workload driver: every query is cut into at most
/// `threads` contiguous segment-aligned morsels, the morsels (in
/// query-major order) seed a work-stealing [`StealQueue`], and workers
/// drain it — so a workload of one huge query and a workload of many
/// small ones saturate the same pool (inter-query and intra-query
/// parallelism are the same mechanism). Because distribution is
/// contiguous, one pathologically expensive query initially lands on one
/// worker's deque — and gets stolen away morsel by morsel as the others
/// run dry, which is what keeps wall-clock near the longest single query
/// rather than the longest initial block.
///
/// Generic over the per-morsel evaluation: `eval_range(ctx, query_index,
/// row_lo, row_hi, out)` runs the segments of `[row_lo, row_hi)` into
/// `out` (a word buffer covering exactly that range), so selection and
/// threshold workloads share one driver.
fn evaluate_segmented_workload<S, F, E>(
    make_source: F,
    n: usize,
    eval_range: E,
    options: &BatchOptions,
    segment_bits: usize,
) -> WorkloadReport<(BitVec, EvalStats)>
where
    S: BitmapSource,
    F: Fn() -> S + Sync,
    E: Fn(&mut ExecContext<'_, S>, usize, usize, usize, &mut [u64]) -> Result<()> + Sync,
{
    if n == 0 {
        return WorkloadReport {
            outcomes: Vec::new(),
            health: BatchHealth::default(),
            steals: 0,
        };
    }
    // The overlay extends the logical relation past the base index, so
    // morsel partitioning must cover the merged row count.
    let n_rows = options
        .overlay()
        .map_or_else(|| make_source().n_rows(), |o| o.n_rows());
    let threads = options.threads();
    let n_segments = n_rows.div_ceil(segment_bits).max(1);
    // At most `threads` morsels per query: enough to keep every worker
    // busy on a single-query workload, without flooding the queue (and
    // multiplying per-chunk fetch work) on wide ones.
    let morsels_per_query = threads.min(n_segments).max(1);
    let segs_per_morsel = n_segments.div_ceil(morsels_per_query);
    let mut morsels = Vec::with_capacity(n * morsels_per_query);
    let mut cells = Vec::with_capacity(n);
    for query in 0..n {
        let mut count = 0usize;
        let mut seg0 = 0usize;
        while seg0 < n_segments {
            let row_lo = seg0 * segment_bits;
            let row_hi = ((seg0 + segs_per_morsel) * segment_bits).min(n_rows);
            morsels.push(Morsel {
                query,
                row_lo,
                row_hi,
            });
            count += 1;
            seg0 += segs_per_morsel;
        }
        cells.push(QueryCell {
            state: AtomicUsize::new(FRESH),
            pending: AtomicUsize::new(count),
            words: Mutex::new(vec![0u64; bindex_bitvec::words_for(n_rows)]),
            stats: Mutex::new(EvalStats::default()),
            verdict: Mutex::new(None),
        });
    }

    let failures = AtomicUsize::new(0);
    let workers = threads.min(morsels.len()).max(1);
    let queue = StealQueue::new(morsels.len(), workers);
    let worker = |w: usize, out: &mut Vec<(usize, QueryOutcome<(BitVec, EvalStats)>)>| {
        let mut source = make_source();
        queue.drain(w, |mi| {
            let morsel = morsels[mi];
            let cell = &cells[morsel.query];
            // Deadline / failure-cap gate, decided once per query on its
            // first claimed morsel.
            if cell.state.load(Ordering::Acquire) == FRESH {
                let kill = if options
                    .max_failures()
                    .is_some_and(|cap| failures.load(Ordering::Relaxed) >= cap)
                {
                    Some(QueryOutcome::Skipped)
                } else if options.deadline().is_some_and(|d| d.expired()) {
                    Some(QueryOutcome::TimedOut)
                } else {
                    None
                };
                let target = if kill.is_some() { DEAD } else { RUNNING };
                if cell
                    .state
                    .compare_exchange(FRESH, target, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    if let Some(v) = kill {
                        *cell.verdict.lock().unwrap() = Some(v);
                    }
                }
            }
            if cell.state.load(Ordering::Acquire) == RUNNING
                && options.deadline().is_some_and(|d| d.expired())
            {
                // The deadline expired after this query started: cancel it
                // before doing any more work, without charging the failure
                // cap — remaining morsels fall through as no-ops and the
                // queue keeps serving other queries.
                if kill_query_quiet(cell) {
                    *cell.verdict.lock().unwrap() = Some(QueryOutcome::DeadlineExceeded);
                }
            }
            if cell.state.load(Ordering::Acquire) == RUNNING {
                let words_lo = morsel.row_lo / 64;
                let span = bindex_bitvec::words_for(morsel.row_hi) - words_lo;
                // Unwind safety: on panic the morsel buffer and context
                // are discarded and the source is rebuilt.
                let ran = catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = ExecContext::new(&mut source)
                        .with_recovery(options.recovery().clone())
                        .with_deadline(options.deadline())
                        .with_overlay(options.overlay().cloned())
                        .with_pruning(options.pruning());
                    let mut local = vec![0u64; span];
                    let res = eval_range(
                        &mut ctx,
                        morsel.query,
                        morsel.row_lo,
                        morsel.row_hi,
                        &mut local,
                    );
                    (res.map(|()| local), ctx.take_stats())
                }));
                match ran {
                    Ok((Ok(local), stats)) => {
                        let contributed = if morsel.row_lo == 0 {
                            stats
                        } else {
                            // Off-zero morsels re-fetch and re-run the op
                            // sequence for their own rows; only their
                            // segment counters are new information.
                            EvalStats {
                                segments_evaluated: stats.segments_evaluated,
                                segments_skipped: stats.segments_skipped,
                                segments_pruned: stats.segments_pruned,
                                ..EvalStats::default()
                            }
                        };
                        cell.stats.lock().unwrap().add(&contributed);
                        cell.words.lock().unwrap()[words_lo..words_lo + span]
                            .copy_from_slice(&local);
                    }
                    Ok((Err(Error::DeadlineExceeded), _)) => {
                        // Mid-morsel cooperative cancellation: the eval
                        // loop noticed the deadline between segments.
                        if kill_query_quiet(cell) {
                            *cell.verdict.lock().unwrap() = Some(QueryOutcome::DeadlineExceeded);
                        }
                    }
                    Ok((Err(e), _)) => {
                        if kill_query(cell, &failures) {
                            *cell.verdict.lock().unwrap() = Some(QueryOutcome::Failed(e));
                        }
                    }
                    Err(payload) => {
                        source = make_source();
                        if kill_query(cell, &failures) {
                            *cell.verdict.lock().unwrap() = Some(QueryOutcome::Failed(
                                Error::WorkerPanic(panic_message(payload.as_ref())),
                            ));
                        }
                    }
                }
            }
            if cell.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last morsel of this query: assemble the outcome.
                let outcome = match cell.verdict.lock().unwrap().take() {
                    Some(v) => v,
                    None => {
                        let words = std::mem::take(&mut *cell.words.lock().unwrap());
                        let stats = *cell.stats.lock().unwrap();
                        let found = BitVec::from_words(words, n_rows);
                        if stats.degraded_fetches > 0 {
                            QueryOutcome::Degraded((found, stats))
                        } else {
                            QueryOutcome::Ok((found, stats))
                        }
                    }
                };
                out.push((morsel.query, outcome));
            }
        });
    };

    let mut collected: Vec<(usize, QueryOutcome<(BitVec, EvalStats)>)> = Vec::new();
    if threads <= 1 {
        worker(0, &mut collected);
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let worker = &worker;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        worker(w, &mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                if let Ok(chunk) = h.join() {
                    collected.extend(chunk);
                }
            }
        });
    }
    let steals = queue.steals();

    let mut slots: Vec<Option<QueryOutcome<(BitVec, EvalStats)>>> =
        std::iter::repeat_with(|| None).take(n).collect();
    for (i, o) in collected {
        slots[i] = Some(o);
    }
    let outcomes: Vec<_> = slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                QueryOutcome::Failed(Error::WorkerPanic(
                    "worker thread died before reporting its results".into(),
                ))
            })
        })
        .collect();
    let health = BatchHealth::tally(&outcomes);
    WorkloadReport {
        outcomes,
        health,
        steals,
    }
}

/// Transitions a query to `DEAD`, charging the workload failure counter.
/// Returns `true` for the worker that performed the transition (and so
/// owns writing the verdict); later morsels of an already-dead query are
/// no-ops.
fn kill_query(cell: &QueryCell, failures: &AtomicUsize) -> bool {
    if kill_query_quiet(cell) {
        failures.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// Transitions a query to `DEAD` **without** charging the failure counter
/// — for deadline cancellations, which are the serving layer shedding load
/// by design, not evidence of a broken query or store. Returns `true` for
/// the worker that owns writing the verdict.
fn kill_query_quiet(cell: &QueryCell) -> bool {
    cell.state.swap(DEAD, Ordering::AcqRel) != DEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::IndexChoice;
    use bindex_core::eval::naive;
    use bindex_core::IndexSpec;
    use bindex_relation::gen;
    use bindex_relation::query::Op;
    use std::time::{Duration, Instant};

    fn table() -> Table {
        Table::builder()
            .column("qty", gen::uniform(2000, 50, 1), IndexChoice::Knee)
            .column(
                "day",
                gen::uniform(2000, 300, 2),
                IndexChoice::SpaceBudget(40),
            )
            .column("note", gen::uniform(2000, 7, 3), IndexChoice::None)
            .build()
            .unwrap()
    }

    fn workload() -> Vec<ConjunctiveQuery> {
        let mut out = Vec::new();
        for v in 0..24u32 {
            out.push(
                ConjunctiveQuery::new()
                    .and("qty", SelectionQuery::new(Op::Gt, v % 50))
                    .and("day", SelectionQuery::new(Op::Le, (v * 11) % 300))
                    .and("note", SelectionQuery::new(Op::Ne, v % 7)),
            );
        }
        out
    }

    #[test]
    fn parallel_matches_single_thread() {
        let t = table();
        let qs = workload();
        let single = execute_workload(&t, &qs, &BatchOptions::single_threaded());
        let multi = execute_workload(&t, &qs, &BatchOptions::with_threads(4));
        assert!(single.health.all_ok(), "{:?}", single.health);
        assert!(multi.health.all_ok(), "{:?}", multi.health);
        assert_eq!(single.outcomes.len(), multi.outcomes.len());
        for (i, (s, m)) in single.outcomes.iter().zip(&multi.outcomes).enumerate() {
            assert_eq!(s, m, "query {i}");
        }
    }

    #[test]
    fn selection_workload_matches_naive_in_parallel() {
        let col = gen::uniform(1500, 40, 7);
        let idx = bindex_core::BitmapIndex::build(
            &col,
            IndexSpec::new(
                bindex_core::Base::from_msb(&[5, 8]).unwrap(),
                bindex_core::Encoding::Range,
            ),
        )
        .unwrap();
        let queries: Vec<SelectionQuery> = (0..40)
            .map(|v| SelectionQuery::new(if v % 2 == 0 { Op::Le } else { Op::Eq }, v))
            .collect();
        let results = evaluate_selection_workload(
            || idx.source(),
            &queries,
            Algorithm::Auto,
            &BatchOptions::with_threads(4),
        )
        .into_results()
        .unwrap();
        assert_eq!(results.len(), queries.len());
        for (q, (found, stats)) in queries.iter().zip(&results) {
            assert_eq!(found, &naive::evaluate(&col, *q), "{q}");
            assert!(stats.scans > 0 || q.constant == 0, "{q}");
        }
        // Stats must be identical to the sequential run, per query.
        let sequential = evaluate_selection_workload(
            || idx.source(),
            &queries,
            Algorithm::Auto,
            &BatchOptions::single_threaded(),
        )
        .into_results()
        .unwrap();
        assert_eq!(results, sequential);
    }

    /// A workload over base index ⊕ ingest overlay (appends plus deletes
    /// that have not been compacted yet) answers exactly like the same
    /// workload over an index rebuilt from the merged relation — on the
    /// whole-bitmap path and the segmented path, sequential and parallel.
    #[test]
    fn overlay_workload_matches_rebuilt_index() {
        let cardinality = 40;
        let base_col = gen::uniform(1400, cardinality, 13);
        let delta_col = gen::uniform(200, cardinality, 17);
        let spec = IndexSpec::new(
            bindex_core::Base::from_msb(&[5, 8]).unwrap(),
            bindex_core::Encoding::Range,
        );
        let base_idx = bindex_core::BitmapIndex::build(&base_col, spec.clone()).unwrap();
        let delta_idx = bindex_core::BitmapIndex::build(&delta_col, spec.clone()).unwrap();
        let n_rows = base_col.len() + delta_col.len();
        let deleted = BitVec::from_indices(n_rows, &[3, 777, 1399, 1400, 1555]);
        let overlay = Arc::new(
            bindex_core::DeltaOverlay::from_index(base_col.len(), &delta_idx, deleted.clone())
                .unwrap(),
        );
        let merged: Vec<u32> = base_col
            .values()
            .iter()
            .chain(delta_col.values())
            .copied()
            .collect();
        let merged_col = bindex_relation::Column::new(merged, cardinality);
        let ref_idx =
            bindex_core::BitmapIndex::build_with_nulls(&merged_col, &deleted, spec).unwrap();
        let queries: Vec<SelectionQuery> = (0..40)
            .map(|v| SelectionQuery::new([Op::Le, Op::Gt, Op::Eq, Op::Ne][v as usize % 4], v))
            .collect();
        let expected = evaluate_selection_workload(
            || ref_idx.source(),
            &queries,
            Algorithm::Auto,
            &BatchOptions::single_threaded(),
        )
        .into_results()
        .unwrap();
        for threads in [1usize, 4] {
            for segment_bits in [None, Some(512)] {
                let mut options =
                    BatchOptions::with_threads(threads).with_overlay(Some(overlay.clone()));
                if let Some(bits) = segment_bits {
                    options = options.with_segment_bits(bits);
                }
                let report = evaluate_selection_workload(
                    || base_idx.source(),
                    &queries,
                    Algorithm::Auto,
                    &options,
                );
                assert!(report.health.all_ok(), "{:?}", report.health);
                let got = report.into_results().unwrap();
                for (i, ((ef, _), (gf, _))) in expected.iter().zip(&got).enumerate() {
                    assert_eq!(
                        ef, gf,
                        "foundset query {i} threads {threads} segment {segment_bits:?}"
                    );
                }
            }
        }
    }

    /// Threshold workloads answer identically to the per-row reference
    /// on the whole-bitmap and segmented paths, sequential and parallel,
    /// with paper-model stats parity between the two paths — and a
    /// malformed query fails alone with the typed error.
    #[test]
    fn threshold_workload_matches_reference_on_all_paths() {
        let col = gen::uniform(3000, 40, 19);
        let idx = bindex_core::BitmapIndex::build(
            &col,
            IndexSpec::new(
                bindex_core::Base::from_msb(&[5, 8]).unwrap(),
                bindex_core::Encoding::Range,
            ),
        )
        .unwrap();
        let queries: Vec<ThresholdQuery> = (0..12u32)
            .map(|v| {
                ThresholdQuery::new(
                    1 + v % 3,
                    vec![
                        SelectionQuery::new(Op::Le, 10 + v),
                        SelectionQuery::new(Op::Ge, v),
                        SelectionQuery::new(Op::Ne, 3 * v % 40),
                    ],
                )
            })
            .collect();
        let whole = evaluate_threshold_workload(
            || idx.source(),
            &queries,
            Algorithm::Auto,
            &BatchOptions::single_threaded(),
        )
        .into_results()
        .unwrap();
        for (q, (found, _)) in queries.iter().zip(&whole) {
            let want = BitVec::from_fn(col.len(), |r| q.matches(col.values()[r]));
            assert_eq!(found, &want, "{q}");
        }
        for threads in [1usize, 4] {
            for segment_bits in [None, Some(512)] {
                let mut options = BatchOptions::with_threads(threads);
                if let Some(bits) = segment_bits {
                    options = options.with_segment_bits(bits);
                }
                let report = evaluate_threshold_workload(
                    || idx.source(),
                    &queries,
                    Algorithm::Auto,
                    &options,
                );
                assert!(report.health.all_ok(), "{:?}", report.health);
                let got = report.into_results().unwrap();
                for (i, ((wf, ws), (gf, gs))) in whole.iter().zip(&got).enumerate() {
                    assert_eq!(wf, gf, "query {i} threads {threads} seg {segment_bits:?}");
                    assert_eq!(
                        (ws.scans, ws.ands, ws.ors, ws.threshold_combines),
                        (gs.scans, gs.ands, gs.ors, gs.threshold_combines),
                        "stats query {i} threads {threads} seg {segment_bits:?}"
                    );
                }
            }
        }
        // One malformed query fails alone with the typed error.
        let mut mixed = queries[..2].to_vec();
        mixed.push(ThresholdQuery::new(5, queries[0].predicates.clone()));
        for segment_bits in [None, Some(512)] {
            let mut options = BatchOptions::with_threads(2);
            if let Some(bits) = segment_bits {
                options = options.with_segment_bits(bits);
            }
            let report =
                evaluate_threshold_workload(|| idx.source(), &mixed, Algorithm::Auto, &options);
            assert_eq!(report.health.ok, 2, "{:?}", report.health);
            assert_eq!(report.health.failed, 1, "{:?}", report.health);
            assert!(
                matches!(report.outcomes[2].error(), Some(Error::InvalidQuery(_))),
                "{:?}",
                report.outcomes[2]
            );
        }
    }

    /// Segment-at-a-time workload execution returns the same foundsets
    /// and the same paper-model statistics as the whole-bitmap path, for
    /// both the sequential and the morsel-queue parallel drivers.
    #[test]
    fn segmented_workload_matches_whole_bitmap() {
        let col = gen::uniform(3000, 40, 11);
        let idx = bindex_core::BitmapIndex::build(
            &col,
            IndexSpec::new(
                bindex_core::Base::from_msb(&[5, 8]).unwrap(),
                bindex_core::Encoding::Range,
            ),
        )
        .unwrap();
        let queries: Vec<SelectionQuery> = (0..40)
            .map(|v| SelectionQuery::new(if v % 2 == 0 { Op::Le } else { Op::Gt }, v))
            .collect();
        let whole = evaluate_selection_workload(
            || idx.source(),
            &queries,
            Algorithm::Auto,
            &BatchOptions::single_threaded(),
        )
        .into_results()
        .unwrap();
        for threads in [1usize, 4] {
            let options = BatchOptions::with_threads(threads).with_segment_bits(512);
            let report =
                evaluate_selection_workload(|| idx.source(), &queries, Algorithm::Auto, &options);
            assert!(report.health.all_ok(), "{:?}", report.health);
            let segmented = report.into_results().unwrap();
            for (i, ((wf, ws), (sf, ss))) in whole.iter().zip(&segmented).enumerate() {
                assert_eq!(wf, sf, "foundset query {i} threads {threads}");
                assert_eq!(
                    (ws.scans, ws.ands, ws.ors, ws.xors, ws.nots),
                    (ss.scans, ss.ands, ss.ors, ss.xors, ss.nots),
                    "stats query {i} threads {threads}"
                );
                assert_eq!(ss.segments_evaluated, 3000usize.div_ceil(512));
            }
        }
    }

    #[test]
    fn segmented_workload_isolates_panics_and_deadlines() {
        let spec = IndexSpec::new(
            bindex_core::Base::from_msb(&[4, 5]).unwrap(),
            bindex_core::Encoding::Range,
        );
        let queries: Vec<SelectionQuery> = (1..9).map(|v| SelectionQuery::new(Op::Eq, v)).collect();
        for threads in [1, 3] {
            let options = BatchOptions::with_threads(threads).with_segment_bits(512);
            let report = evaluate_selection_workload(
                || PanickySource {
                    spec: spec.clone(),
                    n_rows: 5000,
                },
                &queries,
                Algorithm::Auto,
                &options,
            );
            assert_eq!(report.health.failed, queries.len(), "{:?}", report.health);
            assert_eq!(report.health.worker_panics, queries.len());
        }
        // An already-expired deadline times out every query before it runs.
        let col = gen::uniform(2000, 9, 3);
        let idx = bindex_core::BitmapIndex::build(
            &col,
            IndexSpec::new(
                bindex_core::Base::single(9).unwrap(),
                bindex_core::Encoding::Range,
            ),
        )
        .unwrap();
        let options = BatchOptions::with_threads(2)
            .with_segment_bits(512)
            .with_deadline(Deadline::after(Duration::ZERO));
        let report =
            evaluate_selection_workload(|| idx.source(), &queries, Algorithm::Auto, &options);
        assert_eq!(
            report.health.timed_out,
            queries.len(),
            "{:?}",
            report.health
        );
    }

    #[test]
    fn segment_bits_validation() {
        assert_eq!(parse_segment_bits("512"), Some(512));
        assert_eq!(parse_segment_bits(" 262144 "), Some(262_144));
        assert_eq!(parse_segment_bits("1024"), Some(1024));
        // Not a power of two, too small, junk, negative, empty.
        assert_eq!(parse_segment_bits("1000"), None);
        assert_eq!(parse_segment_bits("256"), None);
        assert_eq!(parse_segment_bits("banana"), None);
        assert_eq!(parse_segment_bits("-512"), None);
        assert_eq!(parse_segment_bits(""), None);
        let opts = BatchOptions::single_threaded().with_segment_bits(4096);
        assert_eq!(opts.segment_bits(), Some(4096));
        assert!(BatchOptions::single_threaded().segment_bits().is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_segment_bits_rejects_invalid() {
        let _ = BatchOptions::single_threaded().with_segment_bits(1000);
    }

    #[test]
    fn options_clamp_and_env_parse() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(BatchOptions::with_threads(0).threads(), 1);
        let eight = BatchOptions::with_threads(8);
        assert_eq!(eight.requested_threads(), 8);
        assert_eq!(eight.threads(), 8.min(cores));
        assert!(BatchOptions::with_threads(1).threads() == 1);
        assert!(BatchOptions::from_env().threads() >= 1);
        assert!(BatchOptions::from_env().threads() <= cores);
    }

    #[test]
    fn failing_query_is_isolated() {
        let t = table();
        let qs = vec![
            ConjunctiveQuery::new().and("qty", SelectionQuery::new(Op::Le, 10)),
            ConjunctiveQuery::new().and("missing", SelectionQuery::new(Op::Le, 1)),
            ConjunctiveQuery::new().and("day", SelectionQuery::new(Op::Le, 100)),
        ];
        for options in [
            BatchOptions::with_threads(2),
            BatchOptions::single_threaded(),
        ] {
            let report = execute_workload(&t, &qs, &options);
            assert_eq!(report.health.ok, 2, "{:?}", report.health);
            assert_eq!(report.health.failed, 1, "{:?}", report.health);
            assert!(report.outcomes[0].is_ok());
            assert!(report.outcomes[1].error().is_some());
            assert!(report.outcomes[2].is_ok());
            assert!(report.into_results().is_err());
        }
    }

    /// A source whose fetches panic: drives the panic-isolation path.
    struct PanickySource {
        spec: IndexSpec,
        n_rows: usize,
    }

    impl BitmapSource for PanickySource {
        fn spec(&self) -> &IndexSpec {
            &self.spec
        }
        fn n_rows(&self) -> usize {
            self.n_rows
        }
        fn try_fetch(&mut self, comp: usize, slot: usize) -> bindex_core::error::Result<BitVec> {
            panic!("injected panic fetching ({comp}, {slot})");
        }
        fn try_fetch_nn(&mut self) -> bindex_core::error::Result<Option<BitVec>> {
            Ok(None)
        }
    }

    #[test]
    fn panicking_queries_become_worker_panic_outcomes() {
        let spec = IndexSpec::new(
            bindex_core::Base::from_msb(&[4, 5]).unwrap(),
            bindex_core::Encoding::Range,
        );
        let queries: Vec<SelectionQuery> = (1..9).map(|v| SelectionQuery::new(Op::Eq, v)).collect();
        for threads in [1, 3] {
            let report = evaluate_selection_workload(
                || PanickySource {
                    spec: spec.clone(),
                    n_rows: 100,
                },
                &queries,
                Algorithm::Auto,
                &BatchOptions::with_threads(threads),
            );
            assert_eq!(report.health.failed, queries.len(), "{:?}", report.health);
            assert_eq!(
                report.health.worker_panics,
                queries.len(),
                "{:?}",
                report.health
            );
            for o in &report.outcomes {
                match o.error() {
                    Some(Error::WorkerPanic(msg)) => {
                        assert!(msg.contains("injected panic"), "{msg}")
                    }
                    other => panic!("expected WorkerPanic, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn expired_deadline_times_out_unstarted_queries() {
        let t = table();
        let qs = workload();
        let options = BatchOptions::with_threads(2).with_deadline(Deadline::after(Duration::ZERO));
        let report = execute_workload(&t, &qs, &options);
        assert_eq!(report.health.timed_out, qs.len(), "{:?}", report.health);
        assert!(report.into_results().is_err());
    }

    #[test]
    fn failure_cap_skips_the_tail() {
        let t = table();
        let qs: Vec<ConjunctiveQuery> = (0..12)
            .map(|_| ConjunctiveQuery::new().and("missing", SelectionQuery::new(Op::Le, 1)))
            .collect();
        let options = BatchOptions::single_threaded().with_max_failures(3);
        let report = execute_workload(&t, &qs, &options);
        assert_eq!(report.health.failed, 3, "{:?}", report.health);
        assert_eq!(report.health.skipped, 9, "{:?}", report.health);
    }

    #[test]
    fn deadline_accessors_behave() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));
        let past = Deadline::at(Instant::now());
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }

    #[test]
    fn steal_queue_semantics() {
        // Contiguous block distribution: 10 tasks over 3 workers.
        let q = StealQueue::new(10, 3);
        assert!(!q.drained());
        // Worker 0 owns 0..4 and pops them in order.
        for want in 0..4 {
            assert_eq!(q.claim(0), Some(want));
            q.finish_task();
        }
        // Its deque is dry: the next claim steals half of worker 1's
        // remaining tail {4,5,6,7} → takes {6,7}, runs 6 first.
        assert_eq!(q.claim(0), Some(6));
        q.finish_task();
        assert_eq!(q.steals(), 1);
        assert_eq!(q.claim(0), Some(7));
        q.finish_task();
        // Worker 1 still holds its unstolen front.
        assert_eq!(q.claim(1), Some(4));
        q.finish_task();
        // Drain the rest from anywhere; claim returns None only when
        // every deque is empty.
        let mut rest = Vec::new();
        while let Some(i) = q.claim(2) {
            rest.push(i);
            q.finish_task();
        }
        rest.sort_unstable();
        assert_eq!(rest, vec![5, 8, 9]);
        assert!(q.drained());
        assert_eq!(q.claim(0), None);
    }

    #[test]
    fn steal_queue_single_worker_never_steals() {
        let q = StealQueue::new(5, 1);
        let mut got = Vec::new();
        q.drain(0, |i| got.push(i));
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.steals(), 0);
        assert!(q.drained());
    }

    #[test]
    fn unclamped_threads_skip_the_parallelism_cap() {
        let o = BatchOptions::with_threads_unclamped(6);
        assert_eq!(o.threads(), 6);
        assert_eq!(o.requested_threads(), 6);
        assert!(!o.oversubscribed());
        // And the workload still runs correctly with more workers than
        // cores (the whole point on a small CI box).
        let t = table();
        let qs = workload();
        let report = execute_workload(&t, &qs, &o);
        assert!(report.health.all_ok(), "{:?}", report.health);
        let single = execute_workload(&t, &qs, &BatchOptions::single_threaded());
        assert_eq!(report.outcomes, single.outcomes);
    }

    #[test]
    fn empty_workload_is_fine() {
        let t = table();
        let out = execute_workload(&t, &[], &BatchOptions::with_threads(4));
        assert!(out.outcomes.is_empty());
        assert!(out.health.all_ok());
        assert_eq!(out.health.total(), 0);
    }
}
