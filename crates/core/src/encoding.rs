//! Bitmap encoding schemes (Section 2, dimension 2 of the design space),
//! and the [`IndexSpec`] combining a base with an encoding.

use crate::base::Base;
use crate::error::{Error, Result};

/// How each component's digits are encoded in bitmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// One bitmap per digit value; bit set iff the digit **equals** the
    /// value. A component with base `b_i` stores `b_i` bitmaps, except
    /// `b_i = 2`, which stores only `E^1` (`E^0` is its complement).
    Equality,
    /// One bitmap per digit value; bitmap `B^j` has a bit set iff the digit
    /// is **`≤ j`**. `B^{b_i−1}` is all ones and is not stored, so a
    /// component stores `b_i − 1` bitmaps.
    Range,
    /// One *window* bitmap per slot `j < ⌈b_i/2⌉`; `I^j` has a bit set iff
    /// the digit lies in `[j, j + ⌈b_i/2⌉ − 1]`. Half the space of range
    /// encoding at ≤ 2 scans per digit predicate — an extension
    /// implementing Chan & Ioannidis's follow-up encoding (SIGMOD 1999).
    Interval,
}

impl Encoding {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Equality => "equality",
            Encoding::Range => "range",
            Encoding::Interval => "interval",
        }
    }

    /// Whether stored bitmap `slot` of a component with base number `b`
    /// has its bit set for a row whose digit is `digit` — the single
    /// source of truth for the per-encoding storage rule (equality `b = 2`
    /// components store only `E^1` in slot 0).
    pub fn bit_for(self, b: u32, digit: u32, slot: usize) -> bool {
        match self {
            Encoding::Equality => {
                if b == 2 {
                    digit == 1
                } else {
                    digit as usize == slot
                }
            }
            Encoding::Range => digit as usize <= slot,
            Encoding::Interval => {
                let m = b.div_ceil(2) as usize;
                slot <= digit as usize && (digit as usize) < slot + m
            }
        }
    }

    /// Number of bitmaps *stored* for a component with base number `b`.
    pub fn stored_bitmaps(self, b: u32) -> u32 {
        match self {
            Encoding::Equality => {
                if b > 2 {
                    b
                } else {
                    1
                }
            }
            Encoding::Range => b - 1,
            Encoding::Interval => b.div_ceil(2),
        }
    }
}

/// A point in the paper's two-dimensional design space: an attribute value
/// decomposition ([`Base`]) plus a bitmap [`Encoding`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexSpec {
    /// The mixed-radix base.
    pub base: Base,
    /// The per-component encoding scheme.
    pub encoding: Encoding,
}

impl IndexSpec {
    /// Creates a spec.
    pub fn new(base: Base, encoding: Encoding) -> Self {
        Self { base, encoding }
    }

    /// The classical **Value-List index**: single component of base `C`,
    /// equality encoded (Figure 1 of the paper).
    pub fn value_list(c: u32) -> Result<Self> {
        Ok(Self::new(Base::single(c)?, Encoding::Equality))
    }

    /// The **Bit-Sliced index**: smallest uniform base-`b` decomposition
    /// covering `C`, range encoded (O'Neil & Quass; `b = 2` gives the
    /// classical binary bit-sliced index).
    pub fn bit_sliced(c: u32, b: u32) -> Result<Self> {
        Ok(Self::new(Base::uniform_for(b, c)?, Encoding::Range))
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.base.n_components()
    }

    /// Number of bitmaps stored in component `i` (1-based).
    pub fn stored_in_component(&self, i: usize) -> u32 {
        self.encoding.stored_bitmaps(self.base.component(i))
    }

    /// Total number of bitmaps stored — the paper's **space metric**
    /// `Space(I)` (Theorem 5.1, Eqs. 1 and 3).
    pub fn stored_bitmaps(&self) -> u64 {
        (1..=self.n_components())
            .map(|i| u64::from(self.stored_in_component(i)))
            .sum()
    }

    /// Validates the spec against an attribute cardinality.
    pub fn check_covers(&self, c: u32) -> Result<()> {
        if !self.base.covers(c) {
            return Err(Error::BaseTooSmall {
                product: self.base.product(),
                cardinality: c,
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}-encoded", self.base, self.encoding.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_bitmap_counts() {
        assert_eq!(Encoding::Interval.stored_bitmaps(9), 5);
        assert_eq!(Encoding::Interval.stored_bitmaps(8), 4);
        assert_eq!(Encoding::Interval.stored_bitmaps(2), 1);
        assert_eq!(Encoding::Equality.stored_bitmaps(9), 9);
        assert_eq!(Encoding::Equality.stored_bitmaps(3), 3);
        assert_eq!(Encoding::Equality.stored_bitmaps(2), 1);
        assert_eq!(Encoding::Range.stored_bitmaps(9), 8);
        assert_eq!(Encoding::Range.stored_bitmaps(2), 1);
    }

    #[test]
    fn value_list_spec() {
        let s = IndexSpec::value_list(9).unwrap();
        assert_eq!(s.n_components(), 1);
        assert_eq!(s.stored_bitmaps(), 9);
        assert_eq!(s.to_string(), "<9> equality-encoded");
    }

    #[test]
    fn figure3_decomposition_space_saving() {
        // Figure 3: decomposing the base-9 Value-List index into <3, 3>
        // reduces bitmaps from 9 to 6.
        let s = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), Encoding::Equality);
        assert_eq!(s.stored_bitmaps(), 6);
    }

    #[test]
    fn figure4_range_encoded_sizes() {
        // Figure 4(b): base-9 range-encoded stores 8 bitmaps;
        // Figure 4(c): base-<3,3> range-encoded stores 4.
        let b9 = IndexSpec::new(Base::single(9).unwrap(), Encoding::Range);
        assert_eq!(b9.stored_bitmaps(), 8);
        let b33 = IndexSpec::new(Base::from_msb(&[3, 3]).unwrap(), Encoding::Range);
        assert_eq!(b33.stored_bitmaps(), 4);
    }

    #[test]
    fn bit_sliced_binary() {
        let s = IndexSpec::bit_sliced(1000, 2).unwrap();
        assert_eq!(s.n_components(), 10);
        assert_eq!(s.stored_bitmaps(), 10);
        assert!(s.check_covers(1000).is_ok());
        assert!(s.check_covers(2000).is_err());
    }
}
